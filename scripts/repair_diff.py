#!/usr/bin/env python
"""Repair-engine differential gate: engine agents must equal the legacy loops.

The repair-engine refactor rewrote :class:`repro.agents.react.ReActAgent`
and :class:`repro.agents.simfix.SimDebugAgent` as thin configurations of
the generic :class:`repro.repair.engine.RepairEngine`.  The contract is
**bit-identity**: same transcripts, same results, same digests as the
pre-refactor hand-rolled loops, which live on verbatim in
:mod:`repro.repair.legacy` as the reference implementation.

This gate prosecutes that contract corpus-wide:

* **syntax** -- every entry of the curated VerilogEval-syntax dataset,
  debugged by the legacy and the engine-backed ReAct loop under each
  (flavor, RAG, seed) configuration;
* **functional** -- every corpus problem, logic-mutated at several
  seeds, repaired by the legacy and the engine-backed simulation-
  debugging loop.

Each pair of runs is compared by :func:`repro.repair.result_digest`
(success, final code, iteration count, mismatch bookkeeping and every
transcript turn).  Any divergence is reported and the script exits
non-zero -- run as a CI stage by ``scripts/ci.sh``.

Usage:
    scripts/repair_diff.py [--dataset-size N] [--problems N] [--seeds N]
"""

import argparse
import random
import sys
import time

sys.path.insert(0, "src")

from repro.agents import ReActAgent, SimDebugAgent  # noqa: E402
from repro.dataset.corpus import verilogeval  # noqa: E402
from repro.dataset.curate import build_syntax_dataset  # noqa: E402
from repro.dataset.mutate import force_behavior_change, mutate_logic  # noqa: E402
from repro.diagnostics import Compiler  # noqa: E402
from repro.llm import SimulatedLLM, SimulatedLogicDebugger  # noqa: E402
from repro.rag import ExactTagRetriever, build_default_database  # noqa: E402
from repro.repair import result_digest  # noqa: E402
from repro.repair.legacy import (  # noqa: E402
    LegacyReActAgent,
    LegacySimDebugAgent,
)
from repro.runtime import CompileCache, use_compile_cache  # noqa: E402

#: (flavor, use_rag, model seed) configurations for the syntax half.
REACT_CONFIGS = (
    ("quartus", True, 0),
    ("quartus", False, 1),
    ("iverilog", True, 2),
    ("iverilog", False, 3),
)


def diff_react(dataset_size: int) -> tuple[int, int]:
    """Legacy vs engine ReAct over the curated syntax dataset."""
    database = build_default_database()
    dataset = build_syntax_dataset(
        verilogeval(), samples_per_problem=4, target_size=dataset_size
    )
    runs = mismatches = 0
    for flavor, use_rag, seed in REACT_CONFIGS:
        legacy = LegacyReActAgent(
            model=SimulatedLLM(seed=seed),
            compiler=Compiler(flavor=flavor),
            retriever=ExactTagRetriever(database, flavor) if use_rag else None,
        )
        engine = ReActAgent(
            model=SimulatedLLM(seed=seed),
            compiler=Compiler(flavor=flavor),
            retriever=ExactTagRetriever(database, flavor) if use_rag else None,
        )
        for entry in dataset:
            runs += 1
            want = result_digest(legacy.run(entry.code))
            got = result_digest(engine.run(entry.code))
            if want != got:
                mismatches += 1
                print(
                    f"MISMATCH react {entry.problem_id} "
                    f"(flavor={flavor}, rag={use_rag}, seed={seed}): "
                    f"{want[:12]} != {got[:12]}"
                )
    return runs, mismatches


def diff_simfix(problem_limit: int, seeds: int) -> tuple[int, int]:
    """Legacy vs engine simulation debugging over mutated references."""
    problems = list(verilogeval())
    if problem_limit:
        problems = problems[:problem_limit]
    runs = mismatches = 0
    for seed in range(seeds):
        for problem in problems:
            rng = random.Random(f"repair-diff|{seed}|{problem.id}")
            buggy = mutate_logic(problem.reference, rng)
            if buggy == problem.reference:
                buggy = force_behavior_change(problem.reference)
                if buggy is None:
                    continue
            legacy = LegacySimDebugAgent(
                model=SimulatedLogicDebugger(seed=seed)
            )
            engine = SimDebugAgent(model=SimulatedLogicDebugger(seed=seed))
            runs += 1
            want = result_digest(
                legacy.run(buggy, problem.reference, problem.difficulty)
            )
            got = result_digest(
                engine.run(buggy, problem.reference, problem.difficulty)
            )
            if want != got:
                mismatches += 1
                print(
                    f"MISMATCH simfix {problem.id} (seed={seed}): "
                    f"{want[:12]} != {got[:12]}"
                )
    return runs, mismatches


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--dataset-size", type=int, default=48,
                        help="curated syntax entries for the ReAct half")
    parser.add_argument("--problems", type=int, default=0,
                        help="corpus problems for the functional half "
                        "(0 = all)")
    parser.add_argument("--seeds", type=int, default=2,
                        help="mutation/model seeds for the functional half")
    args = parser.parse_args()

    started = time.perf_counter()
    with use_compile_cache(CompileCache()):
        react_runs, react_bad = diff_react(args.dataset_size)
        sim_runs, sim_bad = diff_simfix(args.problems, args.seeds)
    elapsed = time.perf_counter() - started

    total_bad = react_bad + sim_bad
    print(
        f"repair differential: {react_runs} react + {sim_runs} simfix "
        f"legacy-vs-engine pairs in {elapsed:.1f}s"
    )
    if total_bad:
        print(f"FAILED: {total_bad} digest mismatch(es)")
        return 1
    print("OK: every engine run is digest-identical to the legacy loop")
    return 0


if __name__ == "__main__":
    sys.exit(main())
