#!/usr/bin/env python
"""CI resume smoke: run a tiny durable report, SIGKILL it mid-run,
resume it, and verify the resumed report JSON is byte-identical to an
uninterrupted baseline (the durable-run acceptance check, as a
standalone script so ``scripts/ci.sh`` can gate on it).

Usage:  PYTHONPATH=src python scripts/resume_smoke.py [workdir]

Exits 0 on success (digests match), 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import time

#: Tiny-but-nontrivial scale (~200 work units): enough that a kill lands
#: mid-run, small enough to finish in seconds.
TINY_SCALE = [
    "--dataset-size", "3", "--dataset-samples", "2", "--repeats", "1",
    "--n-samples", "2", "--sim-samples", "4", "--simfix-samples", "1",
    "--no-gpt4",
]

#: Journaled trials to wait for before killing the durable run.
KILL_AFTER_RECORDS = 10


def _cmd(run_dir: str, json_out: str, *extra: str) -> list[str]:
    """argv for one tiny durable report subprocess."""
    return [
        sys.executable, "-m", "repro.cli", "report",
        "--run-dir", run_dir, "--json", json_out, *TINY_SCALE, *extra,
    ]


def _digest(path: str) -> str:
    """SHA-256 of a file's bytes."""
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def _wait_for_journal(journal_path: str, proc: subprocess.Popen) -> None:
    """Block until the journal holds enough records to kill mid-run."""
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"resume smoke: run exited early (rc={proc.returncode}) "
                f"before {KILL_AFTER_RECORDS} trials were journaled"
            )
        if os.path.exists(journal_path):
            with open(journal_path, "rb") as handle:
                if handle.read().count(b"\n") >= KILL_AFTER_RECORDS:
                    return
        time.sleep(0.05)
    raise SystemExit("resume smoke: journal never grew; is the run stuck?")


def main() -> int:
    """Run the kill/resume scenario; return a process exit code."""
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="resume-smoke-"
    )
    cleanup = len(sys.argv) <= 1
    baseline_dir = os.path.join(workdir, "baseline")
    baseline_json = os.path.join(workdir, "baseline.json")
    killed_dir = os.path.join(workdir, "killed")
    killed_json = os.path.join(workdir, "killed.json")
    try:
        print("resume smoke: uninterrupted baseline run...")
        subprocess.run(
            _cmd(baseline_dir, baseline_json), check=True, timeout=600
        )

        print("resume smoke: durable run, SIGKILL mid-flight...")
        proc = subprocess.Popen(
            _cmd(killed_dir, killed_json),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            _wait_for_journal(os.path.join(killed_dir, "journal.jsonl"), proc)
        finally:
            proc.kill()
            proc.wait(timeout=60)

        print("resume smoke: resuming the killed run...")
        subprocess.run(
            _cmd(killed_dir, killed_json, "--resume"), check=True, timeout=600
        )

        baseline = _digest(baseline_json)
        resumed = _digest(killed_json)
        print(f"resume smoke: baseline sha256 {baseline}")
        print(f"resume smoke: resumed  sha256 {resumed}")
        if baseline != resumed:
            print("resume smoke: FAILED -- resumed report differs from "
                  "the uninterrupted baseline", file=sys.stderr)
            return 1
        print("resume smoke: OK (byte-identical report after kill+resume)")
        return 0
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
