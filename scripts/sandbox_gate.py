#!/usr/bin/env python
"""Hostile-testbench sandbox gate: no hang, no crash, typed verdicts.

Runs every design in ``tests/data/sim_hostile/`` -- runaway procedural
loops, oscillating combinational nets, $display floods, trace bombs and
absurd cycle counts -- through the never-crash simulation boundary
(:func:`repro.sim.simulate`) under the **default** production budgets,
once per engine:

* **interp**   -- the AST-walking 4-state :class:`repro.sim.Simulator`;
* **compiled** -- :class:`repro.sim.CompiledSimulator`.

Each file's first line is a ``// hostile:`` pragma naming the harness
mode, the sample count and the budget expected to fire, e.g.::

    // hostile: mode=feedback samples=1500 kind=trace_bytes

The gate asserts, for every file and both engines:

* the run returns (bounded wall clock -- a hang here is the exact
  failure mode the sandbox exists to prevent);
* the verdict is a typed ``limit`` or ``crashed`` classification, never
  a raw exception;
* the exhausted budget matches the pragma's ``kind``;
* both engines agree on the (category, kind) pair -- the dataset-scale
  counterpart of the ``sandbox-differential`` fuzz invariant.

Exit code 0 iff every assertion holds for every file.

Usage:
    scripts/sandbox_gate.py [--corpus DIR] [--budget SECONDS]
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, "src")

from repro.diagnostics import compile_source  # noqa: E402
from repro.sim import no_verdict_cache, simulate  # noqa: E402

ENGINES = ("interp", "compiled")

DEFAULT_CORPUS = Path(__file__).resolve().parent.parent / (
    "tests/data/sim_hostile"
)


def parse_pragma(text: str, name: str) -> dict:
    """Parse the ``// hostile:`` header into {mode, samples, kind}."""
    head = text.splitlines()[0] if text else ""
    if not head.startswith("// hostile:"):
        raise ValueError(f"{name}: missing '// hostile:' pragma on line 1")
    pragma = {}
    for token in head.replace("// hostile:", "").split():
        key, sep, value = token.partition("=")
        if not sep:
            raise ValueError(f"{name}: bad pragma token {token!r}")
        pragma[key] = value
    pragma.setdefault("mode", "diff")
    pragma["samples"] = int(pragma.get("samples", 16))
    # Budget kinds use spaces ("trace bytes"); pragmas use underscores.
    pragma["kind"] = pragma.get("kind", "").replace("_", " ")
    return pragma


def main() -> int:
    """Run the hostile corpus under both engines; 0 = sandbox held."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--corpus", type=Path, default=DEFAULT_CORPUS,
        help="directory of '// hostile:'-tagged .v files",
    )
    parser.add_argument(
        "--budget", type=float, default=30.0,
        help="per-run wall-clock allowance (the sandbox must return "
        "well inside this; the default production watchdog is 10s)",
    )
    args = parser.parse_args()

    files = sorted(args.corpus.glob("*.v"))
    if not files:
        print(f"no hostile corpus at {args.corpus}", file=sys.stderr)
        return 1
    print(
        f"sandbox gate: {len(files)} hostile designs x {len(ENGINES)} "
        f"engines, default budgets"
    )

    failures = 0

    def fail(message: str) -> None:
        nonlocal failures
        failures += 1
        print(f"FAIL: {message}", file=sys.stderr)

    with no_verdict_cache():
        for path in files:
            text = path.read_text()
            try:
                pragma = parse_pragma(text, path.name)
            except ValueError as exc:
                fail(str(exc))
                continue
            result = compile_source(text, name=path.name)
            if not result.ok or result.elaborated is None:
                fail(f"{path.name}: does not elaborate: "
                     f"{result.log.splitlines()[0] if result.log else '?'}")
                continue
            design = result.elaborated
            verdicts = {}
            for engine in ENGINES:
                start = time.perf_counter()
                try:
                    outcome = simulate(
                        design, design, mode=pragma["mode"],
                        samples=pragma["samples"], engine=engine,
                    )
                except BaseException as exc:
                    fail(f"{path.name} [{engine}]: escaped the sandbox: "
                         f"{type(exc).__name__}: {exc}")
                    continue
                took = time.perf_counter() - start
                verdict = outcome.verdict
                verdicts[engine] = verdict
                print(f"  {path.name:>18} [{engine:>8}]: "
                      f"{verdict.summary()} ({took:.2f}s)")
                if took > args.budget:
                    fail(f"{path.name} [{engine}]: {took:.1f}s exceeds the "
                         f"{args.budget:.0f}s gate allowance")
                if verdict.category not in ("limit", "crashed"):
                    fail(f"{path.name} [{engine}]: hostile design yielded "
                         f"{verdict.summary()!r}, expected limit/crashed")
                elif pragma["kind"] and verdict.kind != pragma["kind"]:
                    fail(f"{path.name} [{engine}]: budget {verdict.kind!r} "
                         f"fired, pragma expects {pragma['kind']!r}")
            if len(verdicts) == len(ENGINES):
                iv, cv = verdicts["interp"], verdicts["compiled"]
                if (iv.category, iv.kind) != (cv.category, cv.kind):
                    fail(f"{path.name}: engines disagree: "
                         f"interp={iv.summary()!r} "
                         f"compiled={cv.summary()!r}")

    if failures:
        print(f"FAILED: {failures} sandbox violation(s)", file=sys.stderr)
        return 1
    print("sandbox gate: every hostile design contained, engines agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
