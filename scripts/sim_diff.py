#!/usr/bin/env python
"""Simulator differential gate: compiled engine must equal the interpreter.

Compiles every golden reference in the VerilogEval-style corpus and runs
the full differential testbench plus an output-tracing simulation on each
design **twice**:

* **interp**   -- the AST-walking 4-state :class:`repro.sim.Simulator`,
  the reference semantics;
* **compiled** -- :class:`repro.sim.CompiledSimulator`, the closure-
  lowered two-state fast path with per-process interpreter fallback.

Both runs happen under :func:`repro.sim.no_verdict_cache` so every
simulation is really executed (no memoized verdict can mask an engine
bug).  Any divergence in the testbench verdict (pass/fail, sample and
mismatch counts, recorded mismatches, failure reason) or in the traced
output waveforms (bit-identical, X/Z included) is reported and the script
exits non-zero -- this is the dataset-scale counterpart of the
``simulator-differential`` fuzz invariant, run as a CI stage.  Per-engine
simulated-cycles/sec throughput is printed so the fast path's speedup is
visible in CI logs.

Usage:
    scripts/sim_diff.py [--limit N] [--samples N] [--seed N]
"""

import argparse
import sys
import time

sys.path.insert(0, "src")

from repro.dataset import verilogeval  # noqa: E402
from repro.diagnostics import compile_source  # noqa: E402
from repro.sim import (  # noqa: E402
    no_verdict_cache,
    run_differential,
    simulate_with_traces,
)

ENGINES = ("interp", "compiled")


def _verdict_fingerprint(result) -> tuple:
    """Everything observable about one TestbenchResult, as a plain tuple."""
    return (
        result.passed,
        result.samples,
        result.mismatch_count,
        tuple(
            (m.sample, m.output, m.expected, m.actual)
            for m in result.mismatches
        ),
        result.failure_reason,
    )


def _trace_fingerprint(traces) -> tuple:
    """Bit-exact snapshot of a (candidate, reference) trace pair."""
    out = []
    for trace in traces:
        for name in trace.signals:
            for i in range(trace.length):
                value = trace.value_at(name, i)
                out.append(
                    (name, i)
                    if value is None
                    else (name, i, value.width, value.bits,
                          value.xmask, value.signed)
                )
    return tuple(out)


def main() -> int:
    """Run the dataset-scale engine differential; 0 = bit-identical."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--limit", type=int, default=0,
        help="check only the first N designs (0 = all)",
    )
    parser.add_argument(
        "--samples", type=int, default=64,
        help="stimulus vectors / clock cycles per testbench run",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    corpus = verilogeval()
    designs = []
    for problem in corpus:
        result = compile_source(problem.reference, name=problem.id)
        if result.ok and result.elaborated is not None:
            designs.append((problem.id, result.elaborated))
    if args.limit:
        designs = designs[: args.limit]
    print(
        f"simulator differential: {len(designs)} corpus references "
        f"x {len(ENGINES)} engines, {args.samples} samples each"
    )

    divergences = 0
    elapsed = dict.fromkeys(ENGINES, 0.0)
    cycles = dict.fromkeys(ENGINES, 0)
    with no_verdict_cache():
        for name, design in designs:
            verdicts = {}
            traces = {}
            for engine in ENGINES:
                start = time.perf_counter()
                verdicts[engine] = _verdict_fingerprint(
                    run_differential(
                        design, design, samples=args.samples,
                        seed=args.seed, engine=engine,
                    )
                )
                traces[engine] = _trace_fingerprint(
                    simulate_with_traces(
                        design, design, samples=args.samples,
                        seed=args.seed, engine=engine,
                    )
                )
                elapsed[engine] += time.perf_counter() - start
                cycles[engine] += 2 * args.samples  # testbench + traced run
            if verdicts["interp"] != verdicts["compiled"]:
                divergences += 1
                print(
                    f"VERDICT DIVERGENCE at {name}:\n"
                    f"  interp:   {verdicts['interp']!r}\n"
                    f"  compiled: {verdicts['compiled']!r}",
                    file=sys.stderr,
                )
            if traces["interp"] != traces["compiled"]:
                divergences += 1
                print(f"TRACE DIVERGENCE at {name}", file=sys.stderr)

    for engine in ENGINES:
        rate = cycles[engine] / elapsed[engine] if elapsed[engine] else 0.0
        print(
            f"  {engine:>8}: {elapsed[engine]:.1f}s "
            f"({rate:,.0f} simulated cycles/sec)"
        )
    if elapsed["compiled"]:
        print(
            f"  speedup: {elapsed['interp'] / elapsed['compiled']:.1f}x"
        )
    if divergences:
        print(f"FAILED: {divergences} divergence(s)", file=sys.stderr)
        return 1
    print("simulator differential: compiled engine bit-identical to interp")
    return 0


if __name__ == "__main__":
    sys.exit(main())
