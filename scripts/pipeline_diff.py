#!/usr/bin/env python
"""Pipeline differential gate: warm sessions must equal cold compiles.

Builds the 212-sample VerilogEval-syntax dataset (plus every golden
reference) and compiles each source twice per flavour:

* **cold** -- :func:`repro.diagnostics.compile_source`, no caches: the
  monolithic reference implementation;
* **warm** -- one long-lived :class:`repro.verilog.pipeline.CompileSession`
  shared across *all* sources under one shared
  :class:`~repro.verilog.pipeline.StageCache`, so every compile after the
  first exercises artifact reuse, incremental lexing and segment replay.

Any :func:`~repro.verilog.pipeline.result_fingerprint` divergence (log
text, diagnostics, spans, ok/crashed flags, module sets) is reported and
the script exits non-zero -- this is the dataset-scale counterpart of the
``pipeline-differential`` fuzz invariant, run as a CI stage.

Usage:
    scripts/pipeline_diff.py [--limit N] [--samples-per-problem N]
"""

import argparse
import sys
import time

sys.path.insert(0, "src")

from repro.dataset import build_syntax_dataset, verilogeval  # noqa: E402
from repro.diagnostics import compile_source  # noqa: E402
from repro.runtime import no_compile_cache  # noqa: E402
from repro.verilog.pipeline import (  # noqa: E402
    CompileSession,
    StageCache,
    no_stage_cache,
    result_fingerprint,
    use_stage_cache,
)

FLAVORS = ("iverilog", "quartus")


def main() -> int:
    """Run the dataset-scale differential; 0 = bit-identical throughout."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--limit", type=int, default=0,
        help="check only the first N sources (0 = all)",
    )
    parser.add_argument(
        "--samples-per-problem", type=int, default=20,
        help="curation width for the syntax dataset (paper: 20)",
    )
    args = parser.parse_args()

    corpus = verilogeval()
    dataset = build_syntax_dataset(
        corpus, samples_per_problem=args.samples_per_problem
    )
    sources = [entry.code for entry in dataset]
    sources += [problem.reference for problem in corpus]
    if args.limit:
        sources = sources[: args.limit]
    print(
        f"pipeline differential: {len(sources)} sources "
        f"({len(dataset)} dataset samples + references) x {len(FLAVORS)} flavours"
    )

    session = CompileSession()
    stage_cache = StageCache()
    divergences = 0
    start = time.perf_counter()
    for index, code in enumerate(sources):
        for flavor in FLAVORS:
            with no_compile_cache(), no_stage_cache():
                cold = compile_source(code, flavor=flavor)
            with no_compile_cache(), use_stage_cache(stage_cache):
                warm = session.compile(code, flavor=flavor)
            if result_fingerprint(warm) != result_fingerprint(cold):
                divergences += 1
                print(
                    f"DIVERGENCE at source {index} ({flavor}):\n"
                    f"  cold: {result_fingerprint(cold)!r}\n"
                    f"  warm: {result_fingerprint(warm)!r}",
                    file=sys.stderr,
                )
    elapsed = time.perf_counter() - start

    stats = stage_cache.stats
    print(
        f"checked {len(sources)} sources in {elapsed:.1f}s: "
        f"{stats.segments_reused} segments and {stats.tokens_reused} tokens "
        f"reused, stage hit rate {stats.hit_rate:.1%}"
    )
    if divergences:
        print(f"FAILED: {divergences} divergence(s)", file=sys.stderr)
        return 1
    print("pipeline differential: warm sessions bit-identical to cold compiles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
