#!/usr/bin/env python
"""Deterministic load generator for the repair service.

Spawns an ``rtlfixer serve`` instance (or targets a running one with
``--port``), replays a seeded multi-tenant workload against it at a
fixed client-side concurrency, and emits a machine-readable benchmark
artifact (``BENCH_service.json``) with:

* latency percentiles (p50/p99) and throughput (jobs/sec) for the
  *admitted* jobs,
* the shed rate and the per-reason shed breakdown,
* the journal-replay and compile-cache hit rates,
* the final ``/stats`` ledger (zero ``crashed`` is asserted).

Two drill modes on top of the plain benchmark:

* ``--overload``: offered load is sized at ~2x the server's capacity
  (small queues, slow jobs), so a healthy run MUST shed -- the script
  fails if nothing was shed, if any admitted job crashed, or if any
  rejection was untyped;
* ``--chaos``: the spawned server gets a mid-load backend outage window
  (``--chaos-outage``); the script asserts the service degraded
  (backend errors and/or breaker sheds), healed (jobs succeed after the
  window), and never crashed.

Usage:
    PYTHONPATH=src python scripts/loadgen.py                 # benchmark
    PYTHONPATH=src python scripts/loadgen.py --overload
    PYTHONPATH=src python scripts/loadgen.py --chaos
    PYTHONPATH=src python scripts/loadgen.py --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.client import ServiceClient  # noqa: E402

#: Seeded workload: small broken modules the simulated backend can
#: repair quickly; per-job seeds make every submission a distinct
#: journal key.
SNIPPETS = [
    "module top_module(input [7:0] in, output [7:0] out);\n"
    "assign out[8] = in[0];\nendmodule\n",
    "module adder(input [3:0] a, input [3:0] b, output [4:0] s);\n"
    "assign s = a + b\nendmodule\n",
    "module mux(input a, input b, input sel, output y);\n"
    "assign y = sel ? a : b;\nendmodule\n",
]

TENANTS = ["tenant-a", "tenant-b", "tenant-c"]


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (0 for an empty sample set)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def spawn_server(args: argparse.Namespace) -> tuple[subprocess.Popen, int]:
    """Start ``rtlfixer serve`` and wait for its SERVING line."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0",
        "--capacity", str(args.capacity),
        "--queue-per-tenant", str(args.queue_per_tenant),
        "--max-queued", str(args.max_queued),
        "--work-delay", str(args.work_delay),
        "--breaker-threshold", str(args.breaker_threshold),
        "--probe-interval", "2",
    ]
    if args.chaos:
        cmd += ["--chaos-outage", args.chaos_outage]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("SERVING"):
            return proc, int(line.rsplit(":", 1)[1].strip().rstrip("/"))
        if not line and proc.poll() is not None:
            break
    proc.kill()
    raise RuntimeError("server did not print a SERVING line")


async def drive(args: argparse.Namespace, port: int) -> dict:
    """Fire the workload and collect the measurements."""
    client = ServiceClient("127.0.0.1", port, timeout=120.0)
    semaphore = asyncio.Semaphore(args.concurrency)
    outcomes: list[dict] = []

    async def one_job(index: int) -> None:
        """Submit job ``index`` and record its outcome + latency."""
        tenant = TENANTS[index % len(TENANTS)]
        code = SNIPPETS[index % len(SNIPPETS)]
        async with semaphore:
            started = time.monotonic()
            status, result = await client.repair(
                code=code, tenant=tenant, seed=args.seed + index,
                deadline_s=args.deadline_s,
            )
            outcomes.append({
                "http": status,
                "status": result.get("status", "?"),
                "reason": result.get("reason"),
                "latency_s": time.monotonic() - started,
            })

    started = time.monotonic()
    await asyncio.gather(*(one_job(i) for i in range(args.jobs)))
    wall_s = time.monotonic() - started
    _, stats = await client.stats()
    return {"outcomes": outcomes, "wall_s": wall_s, "stats": stats}


def summarize(args: argparse.Namespace, measured: dict) -> dict:
    """Reduce raw outcomes to the benchmark artifact payload."""
    outcomes = measured["outcomes"]
    admitted = [o for o in outcomes if o["status"] not in ("overloaded", "?")]
    shed = [o for o in outcomes if o["status"] == "overloaded"]
    latencies = [o["latency_s"] for o in admitted]
    service = measured["stats"]["service"]
    cache = measured["stats"].get("compile_cache") or {}
    submitted = max(1, service["submitted"])
    shed_reasons: dict[str, int] = {}
    for entry in shed:
        reason = entry["reason"] or "untyped"
        shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
    return {
        "benchmark": "service_loadgen",
        "mode": ("chaos" if args.chaos
                 else "overload" if args.overload else "steady"),
        "jobs_offered": len(outcomes),
        "jobs_admitted": len(admitted),
        "jobs_shed": len(shed),
        "shed_rate": len(shed) / max(1, len(outcomes)),
        "shed_reasons": shed_reasons,
        "latency_p50_s": round(percentile(latencies, 0.50), 6),
        "latency_p99_s": round(percentile(latencies, 0.99), 6),
        "jobs_per_sec": round(len(admitted) / max(1e-9, measured["wall_s"]), 3),
        "wall_s": round(measured["wall_s"], 3),
        "replay_hit_rate": service["replayed"] / submitted,
        "compile_cache_hit_rate": cache.get("hit_rate", 0.0),
        "service": service,
        "params": {
            "capacity": args.capacity,
            "concurrency": args.concurrency,
            "work_delay": args.work_delay,
            "queue_per_tenant": args.queue_per_tenant,
            "max_queued": args.max_queued,
            "seed": args.seed,
        },
    }


def check(args: argparse.Namespace, summary: dict) -> list[str]:
    """The drill assertions; returns a list of failures (empty = pass)."""
    failures: list[str] = []
    service = summary["service"]
    if service["crashed"]:
        failures.append(f"{service['crashed']} job(s) CRASHED (must be 0)")
    if summary["shed_reasons"].get("untyped"):
        failures.append("untyped overload rejection observed")
    if args.overload:
        if summary["jobs_shed"] == 0:
            failures.append(
                "overload drill shed nothing (offered load should exceed "
                "capacity)"
            )
        if service["completed"] - service["deadline_expired"] <= 0:
            failures.append("overload drill completed no admitted jobs")
    if args.chaos:
        degraded = (
            service["backend_errors"] > 0
            or service["shed"].get("breaker_open", 0) > 0
        )
        if not degraded:
            failures.append(
                "chaos drill saw no backend errors or breaker sheds "
                "(outage window did not bite)"
            )
        if service["fixed"] == 0:
            failures.append("chaos drill never healed (no job succeeded)")
    return failures


def main() -> int:
    """Run the drill / benchmark; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--port", type=int, default=None,
                        help="target a running server instead of spawning")
    parser.add_argument("--jobs", type=int, default=36)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--capacity", type=int, default=2)
    parser.add_argument("--queue-per-tenant", type=int, default=4)
    parser.add_argument("--max-queued", type=int, default=8)
    parser.add_argument("--work-delay", type=float, default=0.05)
    parser.add_argument("--deadline-s", type=float, default=30.0)
    parser.add_argument("--breaker-threshold", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--overload", action="store_true",
                        help="assert the 2x-capacity overload contract")
    parser.add_argument("--chaos", action="store_true",
                        help="inject a mid-load backend outage and assert "
                        "shed-then-heal")
    parser.add_argument("--chaos-outage", default="4:6",
                        help="outage window START:COUNT for --chaos")
    parser.add_argument("--out", default=None, metavar="JSON",
                        help="write the benchmark artifact here")
    args = parser.parse_args()
    if args.overload:
        # Size the drill so shedding is guaranteed by construction:
        # more concurrent submissions than capacity + every queue slot
        # can absorb (~2x), with jobs slow enough that the backlog
        # cannot drain between waves.
        args.concurrency = max(
            args.concurrency, 2 * (args.capacity + args.max_queued)
        )
        args.jobs = max(args.jobs, 2 * args.concurrency)
        args.work_delay = max(args.work_delay, 0.1)

    proc = None
    if args.port is None:
        proc, port = spawn_server(args)
    else:
        port = args.port
    try:
        measured = asyncio.run(drive(args, port))
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
    summary = summarize(args, measured)
    failures = check(args, summary)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    print(
        f"offered={summary['jobs_offered']} admitted={summary['jobs_admitted']} "
        f"shed={summary['jobs_shed']} ({summary['shed_rate']:.0%}) "
        f"p50={summary['latency_p50_s'] * 1000:.1f}ms "
        f"p99={summary['latency_p99_s'] * 1000:.1f}ms "
        f"throughput={summary['jobs_per_sec']}/s "
        f"crashed={summary['service']['crashed']}"
    )
    if proc is not None and proc.returncode != 0:
        failures.append(f"server exited {proc.returncode} (want 0 after drain)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("loadgen: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
