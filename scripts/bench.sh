#!/usr/bin/env bash
# Run the benchmark suite and emit machine-readable results so the perf
# trajectory is tracked across PRs.
#
# Usage:
#   scripts/bench.sh                 # runtime benches -> BENCH_runtime.json
#   scripts/bench.sh --all           # every bench    -> BENCH_all.json
#   REPRO_BENCH_PROFILE=paper scripts/bench.sh   # full paper protocol
#
# The cold-vs-warm compile-pipeline bench is additionally emitted on its
# own as BENCH_pipeline.json (override with BENCH_PIPELINE_JSON=), the
# simulation-engine benches (compiled vs interp throughput, verdict
# cache) as BENCH_sim.json (override with BENCH_SIM_JSON=), and the
# LLM-pool benches (routed vs direct overhead, tokens/trial, hedged
# tail latency) as BENCH_llm.json (override with BENCH_LLM_JSON=), the
# sandbox budget-check overhead (tracked vs UNTRACKED on both engines
# and the clean corpus, <5% gate) as BENCH_sandbox.json (override with
# BENCH_SANDBOX_JSON=), the repair-engine functional workload (templates
# simulated/sec, trace-diff localization latency, fix rate by bug class)
# as BENCH_repair.json (override with BENCH_REPAIR_JSON=), and the
# repair-service load benchmark (p50/p99 latency, jobs/sec, shed rate
# via scripts/loadgen.py) as BENCH_service.json (override with
# BENCH_SERVICE_JSON=).
#
# The chaos (fault-injection) suite and a fuzz smoke run first: perf
# numbers for a runtime whose failure paths are broken, or a compiler
# front-end that crashes on hostile input, are not worth recording.
# Skip them with REPRO_BENCH_SKIP_CHAOS=1 / REPRO_BENCH_SKIP_FUZZ=1.
#
# The runtime benches include the durable-run journal overhead
# (fsync'd append cost and ms-per-trial of a --run-dir run vs a plain
# one) under extra_info in the emitted BENCH_*.json.
#
# Extra pytest arguments can follow the optional --all flag.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${REPRO_BENCH_SKIP_CHAOS:-0}" != "1" ]]; then
    echo "running fault-injection (chaos) suite..."
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest tests/test_faults.py -m chaos -q
fi

if [[ "${REPRO_BENCH_SKIP_FUZZ:-0}" != "1" ]]; then
    echo "running compiler front-end fuzz smoke (200 iterations)..."
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m repro.cli fuzz --seed 0 --iterations 200
fi

profile="${REPRO_BENCH_PROFILE:-quick}"
target="benchmarks/test_bench_runtime.py"
out="${BENCH_JSON:-BENCH_runtime.json}"
if [[ "${1:-}" == "--all" ]]; then
    shift
    target="benchmarks/"
    out="${BENCH_JSON:-BENCH_all.json}"
fi

# Dedicated cold-vs-warm pipeline artifact (per-stage breakdown under
# extra_info) so the incremental-recompilation trajectory is tracked on
# its own across PRs.
pipeline_out="${BENCH_PIPELINE_JSON:-BENCH_pipeline.json}"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" REPRO_BENCH_PROFILE="$profile" \
    python -m pytest benchmarks/test_bench_runtime.py \
    -k pipeline_session --benchmark-only \
    --benchmark-json "$pipeline_out"
echo "pipeline benchmark written to $pipeline_out"

# Dedicated simulation-engine artifact: compiled-vs-interp throughput
# (simulated cycles/sec under extra_info) and verdict-cache warm-vs-cold,
# so the simulator speedup is tracked on its own across PRs.
sim_out="${BENCH_SIM_JSON:-BENCH_sim.json}"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" REPRO_BENCH_PROFILE="$profile" \
    python -m pytest benchmarks/test_bench_runtime.py \
    -k "sim_" --benchmark-only \
    --benchmark-json "$sim_out"
echo "simulation benchmark written to $sim_out"

# Dedicated sandbox artifact: budget-check overhead of the tracked
# engines vs the UNTRACKED baseline (per-engine drives plus the clean
# corpus differential, <5% corpus gate), so the cost of the crash-proof
# sandbox is tracked on its own across PRs.
sandbox_out="${BENCH_SANDBOX_JSON:-BENCH_sandbox.json}"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" REPRO_BENCH_PROFILE="$profile" \
    python -m pytest benchmarks/test_bench_runtime.py \
    -k "sandbox_overhead" --benchmark-only \
    --benchmark-json "$sandbox_out"
echo "sandbox benchmark written to $sandbox_out"

# Dedicated LLM-pool artifact: routed-vs-direct overhead and estimated
# tokens/cost per trial, plus the hedged-tail-latency drill, so the
# backend-pool cost axis is tracked on its own across PRs.
llm_out="${BENCH_LLM_JSON:-BENCH_llm.json}"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" REPRO_BENCH_PROFILE="$profile" \
    python -m pytest benchmarks/test_bench_runtime.py \
    -k "llm_pool" --benchmark-only \
    --benchmark-json "$llm_out"
echo "LLM pool benchmark written to $llm_out"

# Dedicated repair-engine artifact: the Table-4 functional workload
# (template-search throughput, localization latency, fix rate by bug
# class), so the repair-kernel trajectory is tracked on its own across
# PRs.
repair_out="${BENCH_REPAIR_JSON:-BENCH_repair.json}"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" REPRO_BENCH_PROFILE="$profile" \
    python -m pytest benchmarks/test_bench_runtime.py \
    -k "repair_engine" --benchmark-only \
    --benchmark-json "$repair_out"
echo "repair benchmark written to $repair_out"

# Repair-service load benchmark: a spawned server driven by the
# deterministic load generator; p50/p99 latency, jobs/sec, shed rate
# and cache hit rates land in BENCH_service.json (override with
# BENCH_SERVICE_JSON=; skip with REPRO_BENCH_SKIP_SERVICE=1).
if [[ "${REPRO_BENCH_SKIP_SERVICE:-0}" != "1" ]]; then
    service_out="${BENCH_SERVICE_JSON:-BENCH_service.json}"
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python scripts/loadgen.py --out "$service_out"
    echo "service benchmark written to $service_out"
fi

# The main run goes last: every pytest session rewrites the tracked
# benchmark_results.txt, so the broadest table set must be the one that
# lands in the file.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" REPRO_BENCH_PROFILE="$profile" \
    python -m pytest "$target" --benchmark-only \
    --benchmark-json "$out" "$@"
echo "benchmark results written to $out (profile: $profile)"
