#!/usr/bin/env bash
# Run the benchmark suite and emit machine-readable results so the perf
# trajectory is tracked across PRs.
#
# Usage:
#   scripts/bench.sh                 # runtime benches -> BENCH_runtime.json
#   scripts/bench.sh --all           # every bench    -> BENCH_all.json
#   REPRO_BENCH_PROFILE=paper scripts/bench.sh   # full paper protocol
#
# Extra pytest arguments can follow the optional --all flag.
set -euo pipefail
cd "$(dirname "$0")/.."

profile="${REPRO_BENCH_PROFILE:-quick}"
target="benchmarks/test_bench_runtime.py"
out="${BENCH_JSON:-BENCH_runtime.json}"
if [[ "${1:-}" == "--all" ]]; then
    shift
    target="benchmarks/"
    out="${BENCH_JSON:-BENCH_all.json}"
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" REPRO_BENCH_PROFILE="$profile" \
    python -m pytest "$target" --benchmark-only \
    --benchmark-json "$out" "$@"
echo "benchmark results written to $out (profile: $profile)"
