#!/usr/bin/env python
"""CI smoke drill for the repair service: serve, drain, resume.

One self-contained pass over the service's whole lifecycle contract:

1. start ``rtlfixer serve`` with a journal (``--run-dir``), wait for
   the SERVING line;
2. submit a batch of jobs concurrently and SIGTERM the server while
   they are in flight;
3. assert the two-stage drain held: every submission got a typed
   answer (result or ``draining`` shed -- never a dropped connection),
   and the server exited 0;
4. restart the server on the same run directory with ``--resume``,
   resubmit every job that completed before the drain, and assert each
   replays from the journal (``replayed: true``) with a
   ``result_digest`` identical to the pre-drain answer.

Exit code 0 when every assertion holds.  Used as a ci.sh stage.

Usage:
    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.client import ServiceClient  # noqa: E402

BROKEN = (
    "module top_module(input [7:0] in, output [7:0] out);\n"
    "assign out[8] = in[0];\nendmodule\n"
)
JOBS = 10


def start_server(run_dir: str, resume: bool) -> tuple[subprocess.Popen, int]:
    """Spawn one journaled server; returns (process, port)."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0", "--capacity", "2",
        "--work-delay", "0.15",
        "--run-dir", run_dir,
    ]
    if resume:
        cmd.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("SERVING"):
            return proc, int(line.rsplit(":", 1)[1].strip())
        if not line and proc.poll() is not None:
            break
    proc.kill()
    raise RuntimeError("server did not print a SERVING line")


async def submit_batch(port: int, proc: subprocess.Popen) -> list[dict]:
    """Submit the batch, SIGTERM the server mid-load, gather answers."""
    client = ServiceClient("127.0.0.1", port, timeout=120.0)

    async def one(index: int) -> dict:
        """One submission; connection errors count as dropped."""
        try:
            status, result = await client.repair(
                code=BROKEN, tenant="smoke", seed=index
            )
            return {"index": index, "http": status, **result}
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            return {"index": index, "status": "dropped", "error": str(exc)}

    tasks = [asyncio.create_task(one(i)) for i in range(JOBS)]
    # Let a few jobs land, then pull the plug mid-load.
    await asyncio.sleep(0.5)
    proc.send_signal(signal.SIGTERM)
    return list(await asyncio.gather(*tasks))


async def resubmit(port: int, indices: list[int]) -> list[dict]:
    """Resubmit completed jobs against the resumed server."""
    client = ServiceClient("127.0.0.1", port, timeout=120.0)
    results = []
    for index in indices:
        status, result = await client.repair(
            code=BROKEN, tenant="smoke", seed=index
        )
        results.append({"index": index, "http": status, **result})
    return results


def main() -> int:
    """Run the drill; prints PASS/FAIL per assertion."""
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="service_smoke_") as run_dir:
        proc, port = start_server(run_dir, resume=False)
        answers = asyncio.run(submit_batch(port, proc))
        exit_code = proc.wait(timeout=120)
        if exit_code != 0:
            failures.append(f"drained server exited {exit_code}, want 0")
        dropped = [a for a in answers if a["status"] == "dropped"]
        if dropped:
            failures.append(
                f"{len(dropped)} submission(s) dropped without a typed "
                f"answer: {dropped[:3]}"
            )
        completed = {
            a["index"]: a for a in answers
            if a["status"] in ("fixed", "not_fixed")
        }
        shed = [a for a in answers if a["status"] == "overloaded"]
        for entry in shed:
            if entry.get("reason") not in ("draining", "tenant_queue_full",
                                           "server_queue_full"):
                failures.append(f"untyped/unexpected shed: {entry}")
        print(
            f"pre-drain: {len(completed)} completed, {len(shed)} shed "
            f"(typed), exit={exit_code}"
        )
        if not completed:
            failures.append("no job completed before the drain bit")
        # Stage 2: resume and replay.
        proc2, port2 = start_server(run_dir, resume=True)
        try:
            replays = asyncio.run(resubmit(port2, sorted(completed)))
        finally:
            proc2.send_signal(signal.SIGTERM)
            exit2 = proc2.wait(timeout=120)
        if exit2 != 0:
            failures.append(f"resumed server exited {exit2}, want 0")
        for replay in replays:
            original = completed[replay["index"]]
            if not replay.get("replayed"):
                failures.append(
                    f"job seed={replay['index']} re-executed instead of "
                    "replaying from the journal"
                )
            if replay.get("result_digest") != original.get("result_digest"):
                failures.append(
                    f"job seed={replay['index']} digest mismatch: "
                    f"{original.get('result_digest')} -> "
                    f"{replay.get('result_digest')}"
                )
        print(f"post-resume: {len(replays)} replayed digest-identical")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
