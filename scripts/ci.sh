#!/usr/bin/env bash
# One-command CI gate: tier-1 tests, the chaos (fault-injection) suite,
# the pool-chaos drills (outage of each LLM tier: cheap heals via
# failover, strong trips the breaker, whole-ladder propagates), a
# 200-iteration compiler front-end fuzz smoke, the pipeline
# differential (warm CompileSession vs cold compile_source over the full
# 212-sample dataset, both flavours, bit-identical), the simulator
# differential (compiled engine vs interpreter over every corpus
# reference, verdicts and traces bit-identical), the sandbox gate (the
# hostile-testbench corpus under both engines: every runaway/oscillator/
# bomb design must come back as a typed limit/crashed verdict with both
# engines agreeing), the repair-engine differential (legacy hand-rolled
# ReAct/simfix loops vs their RepairEngine rewrites, corpus-wide,
# transcript-digest-identical), the durable-run resume smoke (run,
# SIGKILL, resume, compare report digests), and the repair-service smoke
# (serve, SIGTERM drain mid-load, resume, replay digest-identical).
# Exits non-zero if any stage fails; later stages still run so one log
# shows every break.
#
# Usage:
#   scripts/ci.sh                # all ten stages
#   FUZZ_ITERATIONS=1000 scripts/ci.sh   # deeper fuzz stage
set -uo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
iterations="${FUZZ_ITERATIONS:-200}"
status=0

echo "== tier-1 tests =="
python -m pytest -q || status=1

echo "== chaos (fault-injection) suite =="
python -m pytest tests/test_faults.py -m chaos -q || status=1

echo "== pool chaos (per-tier LLM outages, breaker armed) =="
python -m pytest tests/test_pool.py -m chaos -q || status=1

echo "== fuzz smoke ($iterations iterations, seed 0) =="
python -m repro.cli fuzz --seed 0 --iterations "$iterations" || status=1

echo "== pipeline differential (warm session vs cold compile, full dataset) =="
python scripts/pipeline_diff.py || status=1

echo "== simulator differential (compiled engine vs interp, full corpus) =="
python scripts/sim_diff.py || status=1

echo "== sandbox gate (hostile corpus, both engines, default budgets) =="
python scripts/sandbox_gate.py || status=1

echo "== repair-engine differential (legacy vs engine, corpus-wide) =="
python scripts/repair_diff.py || status=1

echo "== resume smoke (run, kill -9, resume, compare digests) =="
python scripts/resume_smoke.py || status=1

echo "== service smoke (serve, SIGTERM drain mid-load, resume, replay) =="
python scripts/service_smoke.py || status=1

if [[ "$status" -eq 0 ]]; then
    echo "CI: all stages passed"
else
    echo "CI: FAILED (see stage output above)" >&2
fi
exit "$status"
