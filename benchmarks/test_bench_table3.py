"""Table 3: generalization to the RTLLM-style benchmark with the stock
RAG database (no new guidance entries), ReAct + RAG + Quartus."""

from conftest import report

from repro.dataset import rtllm
from repro.eval import run_table3


def test_table3_rtllm_generalization(benchmark, profile):
    result = benchmark.pedantic(
        run_table3,
        kwargs={
            "problems": rtllm(),
            "n_samples": profile.n_samples,
            "sim_samples": profile.sim_samples,
        },
        rounds=1, iterations=1,
    )
    report("Table 3 (RTLLM generalization)", result.render())

    # Paper: syntax success 73% -> 93%, pass@1 11% -> 16%.
    assert result.syntax_after > result.syntax_before + 0.10
    assert result.syntax_after > 0.85
    assert result.pass1_after >= result.pass1_before
    # Fixing syntax only recovers a modest amount of functional passes on
    # these harder design-level problems (as in the paper).
    assert result.pass1_after - result.pass1_before < 0.25
