"""§5 extension bench: simulation-error (logic) debugging.

The paper's preliminary study: feeding waveform-style simulation
feedback to the LLM fixes logic bugs on *simple* problems but struggles
on complex ones.  This bench regenerates that finding.
"""

from conftest import report

from repro.dataset import verilogeval
from repro.eval.experiments import run_simfix_extension


def test_simfix_extension(benchmark, profile):
    result = benchmark.pedantic(
        run_simfix_extension,
        kwargs={
            "problems": verilogeval(),
            "samples_per_problem": max(2, profile.repeats),
            "sim_samples": profile.sim_samples,
        },
        rounds=1, iterations=1,
    )
    report("§5 extension (simulation-error debugging)", result.render())

    easy = result.fix_rate("easy")
    hard = result.fix_rate("hard")
    attempted_easy, _ = result.by_difficulty["easy"]
    attempted_hard, _ = result.by_difficulty["hard"]
    assert attempted_easy > 0 and attempted_hard > 0
    # Works on simple problems...
    assert easy > 0.30
    # ...struggles on hard ones (the paper's "limited improvements").
    assert hard < easy
    assert hard < 0.45
