"""Figure 7: distribution of ReAct iterations needed to fix a syntax
error (paper: ~90% resolved in a single revision), plus the Figure 6
failure case (index arithmetic the agent cannot fix)."""

from conftest import report

from repro.eval import figure6_failure_case, run_figure7


def test_figure7_iteration_distribution(benchmark, syntax_dataset, profile):
    result = benchmark.pedantic(
        run_figure7,
        kwargs={"dataset": syntax_dataset, "repeats": profile.repeats},
        rounds=1, iterations=1,
    )
    report("Figure 7 (ReAct iterations to fix)", result.render())

    assert result.total > 0
    # Paper: about 90% of problems are resolved in a single revision.
    assert result.single_revision_share() > 0.70
    # The distribution has a tail: some fixes genuinely need >1 round.
    assert result.fraction(1) < 1.0
    # Monotone-ish decay: 1 revision is the most common outcome.
    assert result.histogram[1] == max(result.histogram.values())


def test_figure6_failure_case(benchmark, profile):
    result = benchmark.pedantic(
        figure6_failure_case,
        kwargs={"repeats": max(4, profile.repeats)},
        rounds=1, iterations=1,
    )
    report(
        "Figure 6 (failure case: loop index arithmetic)",
        f"Quartus log:\n{result['log']}\n\nRTLFixer fix rate: {result['fix_rate']:.2f}",
    )
    # The paper singles this case out as beyond the LLM: the index
    # arithmetic (-17 into [255:0]) resists repair.
    assert "index -17" in result["log"]
    assert result["fix_rate"] <= 0.35
