"""Table 2 + Figure 4: pass@{1,5} on VerilogEval before and after fixing
syntax errors, for Human/Machine descriptions and easy/hard subsets, and
the error-composition pies (syntax ~55% of GPT-3.5 failures).
"""

import pytest
from conftest import report

from repro.dataset import verilogeval
from repro.eval import render_table, run_table2


_CACHE: dict = {}


@pytest.fixture(scope="module")
def table2(profile):
    if "result" not in _CACHE:
        _CACHE["result"] = run_table2(
            verilogeval(),
            n_samples=profile.n_samples,
            sim_samples=profile.sim_samples,
        )
    return _CACHE["result"]


def test_table2_pass_at_k(benchmark, profile):
    result = benchmark.pedantic(
        run_table2,
        kwargs={
            "problems": verilogeval(),
            "n_samples": profile.n_samples,
            "sim_samples": profile.sim_samples,
        },
        rounds=1, iterations=1,
    )
    _CACHE["result"] = result  # reused by the Figure 4 check
    report("Table 2 (pass@k before/after syntax fixing)", result.render())

    for bench in ("human", "machine"):
        for subset in ("all", "easy", "hard"):
            for k in (1, 5):
                orig = result.pass_at(bench, subset, k, fixed=False)
                fixed = result.pass_at(bench, subset, k, fixed=True)
                assert fixed >= orig, (bench, subset, k)
        # Fixing must produce a real uplift overall.
        assert result.pass_at(bench, "all", 1, True) > result.pass_at(bench, "all", 1, False) + 0.05
    # Machine descriptions are easier than Human ones.
    assert result.pass_at("machine", "all", 1, False) > result.pass_at("human", "all", 1, False)
    # Easy > hard on both.
    for bench in ("human", "machine"):
        assert result.pass_at(bench, "easy", 1, False) > result.pass_at(bench, "hard", 1, False)


def test_figure4_error_composition(benchmark, table2):
    compositions = benchmark.pedantic(
        lambda: {
            (bench, fixed): table2.error_composition(bench, fixed=fixed)
            for bench in ("human", "machine")
            for fixed in (False, True)
        },
        rounds=1, iterations=1,
    )
    rows = []
    for bench in ("human", "machine"):
        before = compositions[(bench, False)]
        after = compositions[(bench, True)]
        rows.append([
            bench, f"{before['pass']:.3f}", f"{before['syntax']:.3f}",
            f"{before['sim']:.3f}", f"{after['pass']:.3f}",
            f"{after['syntax']:.3f}", f"{after['sim']:.3f}",
        ])
    report(
        "Figure 4 (sample composition before -> after fixing)",
        render_table(
            ["bench", "pass", "syntax", "sim", "pass'", "syntax'", "sim'"], rows
        ),
    )
    # The paper's headline: syntax errors are the dominant failure class
    # (~55% of failing GPT-3.5 samples on VerilogEval-Human).
    share = table2.syntax_share_of_failures("human")
    assert 0.35 <= share <= 0.75, f"syntax share {share} out of plausible band"
    # After RTLFixer, syntax failures nearly vanish.
    for bench in ("human", "machine"):
        after = table2.error_composition(bench, fixed=True)
        assert after["syntax"] < 0.08
