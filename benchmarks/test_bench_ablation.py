"""Ablation benches for the design choices DESIGN.md calls out:

* retriever kind (the paper used exact tag matching "for simplicity");
* ReAct iteration cap (1..10);
* the rule-based pre-fixer on/off;
* sampling temperature around the paper's 0.4;
* DBSCAN eps sensitivity in dataset curation.
"""

import pytest
from conftest import report

from repro.core import RTLFixer
from repro.dataset import build_syntax_dataset, verilogeval
from repro.eval import render_table, run_fix_experiment


@pytest.fixture(scope="module")
def ablation_dataset():
    # A smaller slice keeps the ablation grid affordable.
    return build_syntax_dataset(
        verilogeval(), samples_per_problem=8, target_size=80, seed=3
    )


def _rate(dataset, repeats=2, **config):
    fixer = RTLFixer(**config)
    return run_fix_experiment(dataset, fixer, repeats=repeats).rate


def test_ablation_retriever_kind(benchmark, ablation_dataset):
    def run():
        return {
            kind: _rate(ablation_dataset, retriever=kind)
            for kind in ("exact", "fuzzy", "jaccard", "tfidf")
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation: retriever kind (ReAct + RAG + Quartus)",
        render_table(["retriever", "fix rate"], [[k, v] for k, v in rates.items()]),
    )
    no_rag = _rate(ablation_dataset, use_rag=False)
    # Every retriever provides usable guidance (beats no-RAG); the exact
    # tag match the paper chose is at least competitive.
    for kind, rate in rates.items():
        assert rate > no_rag - 0.02, f"{kind} retriever worse than no RAG"
    assert rates["exact"] >= max(rates.values()) - 0.06


def test_ablation_iteration_cap(benchmark, ablation_dataset):
    caps = (1, 2, 3, 5, 10)

    def run():
        return {cap: _rate(ablation_dataset, max_iterations=cap) for cap in caps}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation: ReAct iteration cap",
        render_table(["max iterations", "fix rate"], [[c, rates[c]] for c in caps]),
    )
    # More iterations never hurt much, and the gains saturate (Fig. 7:
    # ~90% of fixes need only one revision).
    assert rates[10] >= rates[1]
    assert rates[10] - rates[5] < 0.05


def test_ablation_rule_fixer(benchmark, ablation_dataset):
    def run():
        return {
            "with rule-fix": _rate(ablation_dataset, apply_rule_fix=True),
            "without rule-fix": _rate(ablation_dataset, apply_rule_fix=False),
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation: rule-based pre-fixer",
        render_table(["setting", "fix rate"], [[k, v] for k, v in rates.items()]),
    )
    # The curated dataset is already markdown-stripped, so the pre-fixer
    # should be close to neutral here (its value is on raw samples).
    assert abs(rates["with rule-fix"] - rates["without rule-fix"]) < 0.10


def test_ablation_temperature(benchmark, ablation_dataset):
    temperatures = (0.0, 0.4, 0.8)

    def run():
        return {t: _rate(ablation_dataset, temperature=t) for t in temperatures}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation: sampling temperature (paper uses 0.4)",
        render_table(["temperature", "fix rate"], [[t, rates[t]] for t in temperatures]),
    )
    # Mild effect only; higher temperature should not *improve* fixing.
    assert rates[0.0] >= rates[0.8] - 0.03


def test_ablation_dbscan_eps(benchmark, ablation_dataset):
    """Eps controls how aggressively near-duplicate erroneous samples
    are merged: looser eps -> fewer representatives kept."""
    from repro.dataset import cluster_codes

    eps_values = (0.05, 0.3, 0.7)
    codes = [e.code for e in ablation_dataset.entries]

    def run():
        return {
            eps: len(cluster_codes(codes, eps=eps).representatives())
            for eps in eps_values
        }

    reps = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation: DBSCAN eps in dataset curation",
        render_table(
            ["eps", "representatives kept"], [[e, reps[e]] for e in eps_values]
        ),
    )
    # Looser eps merges more samples -> monotonically fewer reps.
    assert reps[0.05] >= reps[0.3] >= reps[0.7]
    assert reps[0.7] >= 1
