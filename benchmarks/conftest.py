"""Shared fixtures for the benchmark harness.

Profiles (select with REPRO_BENCH_PROFILE):

* ``quick`` (default) -- full 212-entry dataset, 3 repeated trials, 10
  generation samples per problem: minutes, same qualitative shapes;
* ``paper`` -- the paper's full protocol (10 repeats, n=20 samples).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.dataset import build_syntax_dataset, verilogeval
from repro.dataset.curate import SyntaxDataset


@dataclass(frozen=True)
class BenchProfile:
    name: str
    repeats: int
    n_samples: int
    sim_samples: int
    dataset_samples_per_problem: int
    target_size: int


PROFILES = {
    "quick": BenchProfile(
        name="quick", repeats=3, n_samples=10, sim_samples=24,
        dataset_samples_per_problem=20, target_size=212,
    ),
    "paper": BenchProfile(
        name="paper", repeats=10, n_samples=20, sim_samples=48,
        dataset_samples_per_problem=20, target_size=212,
    ),
    "smoke": BenchProfile(
        name="smoke", repeats=1, n_samples=4, sim_samples=12,
        dataset_samples_per_problem=6, target_size=60,
    ),
}


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if name not in PROFILES:
        raise ValueError(f"REPRO_BENCH_PROFILE must be one of {sorted(PROFILES)}")
    return PROFILES[name]


@pytest.fixture(scope="session")
def syntax_dataset(profile) -> SyntaxDataset:
    """The VerilogEval-syntax-equivalent dataset (212 entries)."""
    return build_syntax_dataset(
        verilogeval(),
        samples_per_problem=profile.dataset_samples_per_problem,
        target_size=profile.target_size,
        seed=0,
    )


_RESULTS_FILE = os.path.join(os.path.dirname(__file__), "..", "benchmark_results.txt")
_session_header_written = False


def report(title: str, text: str) -> None:
    """Print a rendered table (visible with ``pytest -s``) and persist it
    to ``benchmark_results.txt`` so plain runs keep the tables too."""
    global _session_header_written
    block = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n"
    print(block)
    mode = "a" if _session_header_written else "w"
    with open(_RESULTS_FILE, mode) as f:
        if not _session_header_written:
            f.write("Regenerated tables/figures (see EXPERIMENTS.md for "
                    "paper-vs-measured commentary)\n")
            _session_header_written = True
        f.write(block)
