"""Figure 5: the same erroneous design rendered through iverilog-style
and Quartus-style diagnostics -- the feedback-quality contrast."""

from conftest import report

from repro.eval import FIG5_CODE, figure5_logs


def test_figure5_compiler_log_comparison(benchmark):
    logs = benchmark.pedantic(figure5_logs, rounds=1, iterations=1)
    report(
        "Figure 5 (compiler log comparison)",
        f"Erroneous implementation:\n{FIG5_CODE}\n"
        f"--- iverilog ---\n{logs['iverilog']}\n\n"
        f"--- Quartus ---\n{logs['quartus']}",
    )
    # iverilog: terse, no remediation.
    assert "Unable to bind wire/reg/memory `clk'" in logs["iverilog"]
    assert "declare the object" not in logs["iverilog"]
    # Quartus: tagged, verbose, with a remediation hint (Fig. 5 text).
    assert "Error (10161)" in logs["quartus"]
    assert 'object "clk" is not declared' in logs["quartus"]
    assert "declare the object" in logs["quartus"]
    # Quartus logs carry strictly more guidance text.
    assert len(logs["quartus"]) > len(logs["iverilog"])
