"""Substrate microbenchmarks: compiler and simulator throughput.

Unlike the table/figure benches (pedantic single runs of whole
experiments), these measure the hot paths the experiments are built on,
so performance regressions in the front-end or the simulation kernel
show up directly.
"""

from repro.dataset import verilogeval
from repro.diagnostics import compile_source
from repro.sim import SimLimits, Simulator, run_differential

CORPUS = verilogeval()
COMB = CORPUS.get("vector_reverse32")
SEQ = CORPUS.get("counter_load")
FSM = CORPUS.get("fsm_seq101")


def test_compile_throughput_comb(benchmark):
    result = benchmark(compile_source, COMB.reference)
    assert result.ok


def test_compile_throughput_fsm(benchmark):
    result = benchmark(compile_source, FSM.reference)
    assert result.ok


def test_compile_error_path(benchmark):
    broken = SEQ.reference.replace("assign", "asign").replace(";", "", 1)

    def run():
        return compile_source(broken, flavor="quartus")

    result = benchmark(run)
    assert not result.ok


def test_simulator_construction(benchmark):
    elab = compile_source(SEQ.reference).elaborated

    sim = benchmark(Simulator, elab)
    assert sim.top.name == "top_module"


def test_sequential_cycles_per_second(benchmark):
    elab = compile_source(SEQ.reference).elaborated
    # One simulator lives across every calibration/measurement round, so
    # the default lifetime cycle budget (sized for one testbench run)
    # needs raising; the per-cycle budgets still apply.
    sim = Simulator(elab, sim_limits=SimLimits(max_cycles=100_000_000))
    sim.step({"clk": 0, "reset": 1, "load": 0, "d": 0})
    sim.step({"clk": 1})
    sim.step({"reset": 0})

    def ten_cycles():
        for _ in range(10):
            sim.step({"clk": 0})
            sim.step({"clk": 1})

    benchmark(ten_cycles)
    assert sim.get("q").is_fully_known


def test_differential_testbench(benchmark):
    elab = compile_source(COMB.reference).elaborated

    def run():
        return run_differential(elab, elab, samples=16)

    result = benchmark(run)
    assert result.passed
