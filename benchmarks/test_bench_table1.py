"""Table 1: fix rate for One-shot vs ReAct, w/ and w/o RAG, across
feedback qualities (Simple / iverilog / Quartus), plus the GPT-4 column.

Regenerates every cell of the paper's Table 1 and checks the paper's
qualitative claims hold:

* ReAct beats One-shot in every feedback/RAG setting;
* RAG improves both prompting modes;
* feedback quality orders Simple < iverilog <= Quartus;
* GPT-4 outperforms GPT-3.5 and nearly saturates with RAG.
"""

from conftest import report

from repro.eval import run_table1


def test_table1_fix_rates(benchmark, syntax_dataset, profile):
    result = benchmark.pedantic(
        run_table1,
        kwargs={"dataset": syntax_dataset, "repeats": profile.repeats},
        rounds=1, iterations=1,
    )
    report("Table 1 (fix rate on VerilogEval-syntax)", result.render())

    rates = result.rates
    for compiler in ("simple", "iverilog", "quartus"):
        assert (
            rates[("react", compiler, False)] > rates[("oneshot", compiler, False)]
        ), f"ReAct must beat One-shot on {compiler}"
    for prompting in ("oneshot", "react"):
        for compiler in ("iverilog", "quartus"):
            assert (
                rates[(prompting, compiler, True)] > rates[(prompting, compiler, False)]
            ), f"RAG must help {prompting}+{compiler}"
        assert (
            rates[(prompting, "simple", False)] <= rates[(prompting, "iverilog", False)] + 0.02
        )
        assert (
            rates[(prompting, "iverilog", False)] <= rates[(prompting, "quartus", False)] + 0.03
        )
    # GPT-4 column: stronger model, and its one-shot/react gap is small.
    assert rates[("react-gpt4", "quartus", False)] > rates[("react", "quartus", False)]
    gap_gpt4 = (
        rates[("react-gpt4", "quartus", True)] - rates[("oneshot-gpt4", "quartus", True)]
    )
    assert gap_gpt4 < 0.10
    # Headline: the best configuration fixes nearly everything.
    assert rates[("react", "quartus", True)] > 0.90
