"""Runtime-subsystem benchmarks: content-addressed compile cache,
staged compile pipeline, simulation engines and parallel experiment
executor.

Measures the speedups the runtime provides -- cold vs warm compile
cache, cold vs warm pipeline sessions across an agent-style edit
sequence (with a per-stage time breakdown), compiled vs interpreting
simulation (simulated cycles/sec), cold vs warm verdict memoization,
and serial vs parallel experiment fan-out -- and asserts the
determinism contracts (parallel results bit-identical to serial, warm
session results bit-identical to cold compiles, compiled simulation
bit-identical to the interpreter) plus the
zero-redundant-reference-compilation property on the Table 2 path.

Machine-readable output: run via ``scripts/bench.sh`` (or pass
``--benchmark-json BENCH_runtime.json``) to track the perf trajectory
across PRs; the ``sim_`` benches are additionally emitted as
``BENCH_sim.json``.
"""

import os
import random
import time

from conftest import report

from repro.core.fixer import RTLFixer
from repro.dataset import ProblemSet, build_syntax_dataset, verilogeval
from repro.diagnostics import compile_source
from repro.eval import render_table, run_table2
from repro.eval.runner import run_fix_experiment
from repro.runtime import (
    CompileCache,
    Journal,
    ParallelRunner,
    no_compile_cache,
    use_compile_cache,
)
from repro.sim import (
    UNTRACKED,
    SimLimits,
    VerdictCache,
    make_simulator,
    no_verdict_cache,
    run_differential,
    use_verdict_cache,
)
from repro.verilog.pipeline import (
    CompileSession,
    StageCache,
    no_stage_cache,
    result_fingerprint,
    use_stage_cache,
)

CORPUS = verilogeval()
REFERENCES = [problem.reference for problem in CORPUS]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_compile_cache_cold_vs_warm(benchmark):
    """Warm cache lookups must beat full front-end recompilation by a
    wide margin on the corpus working set."""
    with no_compile_cache():
        _, cold = _timed(lambda: [compile_source(src) for src in REFERENCES])

    cache = CompileCache()
    with use_compile_cache(cache):
        for src in REFERENCES:  # fill
            cache.compile(src)

        def warm():
            for src in REFERENCES:
                cache.compile(src)

        benchmark.pedantic(warm, rounds=3, iterations=1)
        _, warm_time = _timed(warm)

    assert cache.stats.hits >= 3 * len(REFERENCES)
    assert cache.stats.misses == len(REFERENCES)
    speedup = cold / warm_time if warm_time else float("inf")
    benchmark.extra_info["cold_seconds"] = round(cold, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    report(
        "Runtime: compile cache cold vs warm",
        render_table(
            ["sources", "cold (s)", "warm (s)", "speedup"],
            [[len(REFERENCES), f"{cold:.3f}", f"{warm_time:.4f}", f"{speedup:.0f}x"]],
        ),
    )
    # The headline wall-clock win: content-addressed hits skip the whole
    # lexer -> preprocessor -> parser -> elaborator pipeline.
    assert warm_time < cold / 5, f"warm cache only {speedup:.1f}x faster"


def _agent_edit_sequence(iterations=20, n_modules=8, n_stmts=12):
    """A ReAct-style revision history: a multi-module design whose last
    module is edited slightly on every iteration (the access pattern the
    pipeline session is built for)."""

    def revision(tag):
        parts = []
        for m in range(n_modules):
            edit = tag if m == n_modules - 1 else 0
            body = "\n".join(
                f"    y{m} <= x + {m} + {s} + {edit};" for s in range(n_stmts)
            )
            parts.append(
                f"module m{m}(input clk, input [7:0] x, "
                f"output reg [7:0] y{m});\n"
                f"  always @(posedge clk) begin\n{body}\n  end\nendmodule\n"
            )
        return "".join(parts)

    return [revision(tag) for tag in range(iterations)]


def test_pipeline_session_cold_vs_warm(benchmark):
    """A warm CompileSession over an agent-style edit sequence must beat
    cold per-revision compiles by >= 2x, bit-identically."""
    edits = _agent_edit_sequence()

    with no_compile_cache(), no_stage_cache():
        cold_results, cold = _timed(
            lambda: [compile_source(code) for code in edits]
        )

    cache = StageCache()
    with no_compile_cache(), use_stage_cache(cache):
        session = CompileSession()
        session.compile(edits[0])  # fill: the agent's first compile

        def warm():
            return [session.compile(code) for code in edits]

        benchmark.pedantic(warm, rounds=3, iterations=1)
        warm_results, warm_time = _timed(warm)

    for warm_result, cold_result in zip(warm_results, cold_results):
        assert result_fingerprint(warm_result) == result_fingerprint(cold_result)
    assert cache.stats.segments_reused > 0
    assert cache.stats.incremental_lexes > 0

    speedup = cold / warm_time if warm_time else float("inf")
    stats = cache.stats.as_dict()
    benchmark.extra_info["cold_seconds"] = round(cold, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_time, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["stage_seconds"] = stats["stage_seconds"]
    benchmark.extra_info["tokens_reused"] = stats["tokens_reused"]
    benchmark.extra_info["segments_reused"] = stats["segments_reused"]
    benchmark.extra_info["stage_hit_rate"] = stats["hit_rate"]
    breakdown = ", ".join(
        f"{name}={secs:.3f}s" for name, secs in stats["stage_seconds"].items()
    )
    report(
        "Runtime: pipeline session cold vs warm (agent edit sequence)",
        render_table(
            ["revisions", "cold (s)", "warm (s)", "speedup",
             "segments reused", "tokens reused"],
            [[len(edits), f"{cold:.3f}", f"{warm_time:.4f}", f"{speedup:.1f}x",
              stats["segments_reused"], stats["tokens_reused"]]],
        ) + f"\nper-stage (warm): {breakdown}",
    )
    # The tentpole acceptance floor: incremental recompilation must at
    # least halve the agent's compile wall-clock.
    assert warm_time < cold / 2, f"warm session only {speedup:.2f}x faster"


def test_fix_experiment_serial_vs_parallel(benchmark, profile):
    """Fanning trials across workers must not change a single bit of the
    result; on multi-core hosts it must also be faster."""
    dataset = build_syntax_dataset(
        CORPUS, samples_per_problem=4, seed=0, target_size=24
    )
    fixer = RTLFixer()
    repeats = max(2, profile.repeats)
    jobs = min(4, os.cpu_count() or 1) or 1

    with use_compile_cache():
        serial, t_serial = _timed(
            lambda: run_fix_experiment(dataset, fixer, repeats=repeats)
        )
    with use_compile_cache():
        parallel, t_parallel = _timed(
            lambda: benchmark.pedantic(
                run_fix_experiment,
                args=(dataset, fixer),
                kwargs={
                    "repeats": repeats,
                    "runner": ParallelRunner(jobs=jobs, backend="process"),
                },
                rounds=1, iterations=1,
            )
        )

    assert parallel.fixed_counts == serial.fixed_counts
    assert parallel.iterations == serial.iterations
    speedup = t_serial / t_parallel if t_parallel else float("inf")
    benchmark.extra_info["serial_seconds"] = round(t_serial, 3)
    benchmark.extra_info["parallel_seconds"] = round(t_parallel, 3)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["speedup"] = round(speedup, 2)
    report(
        "Runtime: fix experiment serial vs parallel (bit-identical results)",
        render_table(
            ["trials", "jobs", "serial (s)", "parallel (s)", "speedup"],
            [[len(dataset) * repeats, jobs, f"{t_serial:.2f}",
              f"{t_parallel:.2f}", f"{speedup:.2f}x"]],
        ),
    )
    if (os.cpu_count() or 1) >= 4:
        assert t_parallel < t_serial * 0.9, (
            f"expected parallel speedup on {os.cpu_count()} CPUs, "
            f"got {speedup:.2f}x"
        )


def test_table2_reference_compilation_avoided(benchmark):
    """Table 2 must elaborate each golden reference exactly once, and a
    warm re-run must perform zero redundant compilations."""
    picked = [
        CORPUS.get(pid)
        for pid in ("mux2to1", "counter4_reset", "fsm_seq101", "popcount8")
    ]
    problems = ProblemSet(name="bench-runtime", problems=picked)

    with use_compile_cache() as cache:
        _, cold = _timed(
            lambda: benchmark.pedantic(
                run_table2,
                args=(problems,),
                kwargs={"n_samples": 6, "sim_samples": 12},
                rounds=1, iterations=1,
            )
        )
        for problem in problems:
            assert cache.misses_for(problem.reference) == 1, problem.id
        cold_misses = cache.stats.misses
        _, warm = _timed(lambda: run_table2(problems, n_samples=6, sim_samples=12))
        assert cache.stats.misses == cold_misses, "warm re-run recompiled sources"
        assert cache.stats.hits > cold_misses, "warm re-run did not use the cache"

    stats = cache.stats.as_dict()
    benchmark.extra_info.update(stats)
    benchmark.extra_info["cold_seconds"] = round(cold, 3)
    benchmark.extra_info["warm_seconds"] = round(warm, 3)
    report(
        "Runtime: Table 2 compile-cache effectiveness",
        render_table(
            ["cold (s)", "warm (s)", "hits", "misses", "compiles avoided", "hit rate"],
            [[f"{cold:.2f}", f"{warm:.2f}", stats["hits"], stats["misses"],
              stats["compiles_avoided"], f"{stats['hit_rate']:.1%}"]],
        ),
    )
    # Wall-clock here is dominated by simulation, so the compile saving is
    # a few percent -- reported above, asserted robustly (with a 5x floor)
    # in test_compile_cache_cold_vs_warm instead of flakily here.


def test_journal_overhead_per_trial(benchmark, tmp_path):
    """Durability must stay cheap: the fsync'd journal append is the only
    per-trial cost a ``--run-dir`` run adds, measured both micro
    (append-only) and end-to-end (durable vs plain run_fix_experiment)."""
    # micro: cost of one durable (fsync'd) append of a realistic record
    record = {
        "key": "0" * 64, "stage": "table1/react/quartus/rag",
        "skipped": False, "result": {"__tuple__": [True, 3]},
    }
    appends = 200
    journal = Journal(str(tmp_path / "micro.jsonl"))

    def append_many():
        for _ in range(appends):
            journal.append(record)

    benchmark.pedantic(append_many, rounds=3, iterations=1)
    _, t_appends = _timed(append_many)
    journal.close()
    per_append_ms = t_appends / appends * 1000

    # end-to-end: identical experiment with and without a run directory
    dataset = build_syntax_dataset(
        CORPUS, samples_per_problem=2, seed=0, target_size=12
    )
    with use_compile_cache():
        plain, t_plain = _timed(
            lambda: run_fix_experiment(dataset, RTLFixer(), repeats=2)
        )
    with use_compile_cache():
        durable, t_durable = _timed(
            lambda: run_fix_experiment(
                dataset, RTLFixer(run_dir=str(tmp_path / "run")), repeats=2
            )
        )
    assert durable.fixed_counts == plain.fixed_counts  # durability is free
    trials = len(dataset) * 2
    per_trial_ms = max(0.0, t_durable - t_plain) / trials * 1000

    benchmark.extra_info["fsync_append_ms"] = round(per_append_ms, 3)
    benchmark.extra_info["plain_seconds"] = round(t_plain, 3)
    benchmark.extra_info["durable_seconds"] = round(t_durable, 3)
    benchmark.extra_info["journal_overhead_ms_per_trial"] = round(per_trial_ms, 3)
    report(
        "Runtime: journal overhead per trial (durable vs plain run)",
        render_table(
            ["trials", "plain (s)", "durable (s)",
             "overhead/trial (ms)", "fsync append (ms)"],
            [[trials, f"{t_plain:.2f}", f"{t_durable:.2f}",
              f"{per_trial_ms:.2f}", f"{per_append_ms:.3f}"]],
        ),
    )
    # An fsync'd append must stay far below the cost of one trial (tens
    # of ms of fix work): 25ms is generous even for slow CI disks.
    assert per_append_ms < 25, f"journal append too slow: {per_append_ms:.1f}ms"


# A register pipeline with comb glue: the shape the fast path is built
# for (edge-sensitive NBAs over known two-state values after reset).
_SIM_DUT = """
module bench_dut(
    input clk, input reset, input [7:0] a, input [7:0] b,
    output [7:0] y, output reg [7:0] acc
);
  reg [7:0] s0, s1, s2, s3;
  wire [7:0] m = (a & b) ^ (a >> 1);
  always @(posedge clk) begin
    if (reset) begin
      s0 <= 0; s1 <= 0; s2 <= 0; s3 <= 0; acc <= 0;
    end else begin
      s0 <= a + b;
      s1 <= s0 ^ m;
      s2 <= s1 + {4'h0, s0[7:4]};
      s3 <= s2 < s1 ? s2 + 8'd3 : s2 - s1;
      acc <= acc + s3;
    end
  end
  assign y = s3 ^ acc;
endmodule
"""

_SIM_CYCLES = 2000


def _drive_cycles(sim, cycles):
    """Reset then clock ``cycles`` cycles of seeded random stimulus."""
    rng = random.Random(7)
    for cycle in range(cycles):
        sim.step({
            "clk": 0,
            "reset": 1 if cycle < 2 else 0,
            "a": rng.getrandbits(8),
            "b": rng.getrandbits(8),
        })
        sim.step({"clk": 1})
    return sim


def test_sim_compiled_vs_interp_throughput(benchmark):
    """The closure-lowered engine must sustain >= 5x the interpreter's
    simulated-cycles/sec on a fast-path-friendly register pipeline,
    bit-identically (the headline tentpole number in BENCH_sim.json)."""
    design = compile_source(_SIM_DUT).elaborated
    assert design is not None

    interp_sim, t_interp = _timed(
        lambda: _drive_cycles(make_simulator(design, engine="interp"),
                              _SIM_CYCLES)
    )

    def compiled_run():
        return _drive_cycles(
            make_simulator(design, engine="compiled"), _SIM_CYCLES
        )

    benchmark.pedantic(compiled_run, rounds=3, iterations=1)
    compiled_sim, t_compiled = _timed(compiled_run)

    # Bit-identical end state (X/Z flags included), and the fast path --
    # not the interpreter fallback -- did the work.
    assert dict(compiled_sim.state.values) == dict(interp_sim.state.values)
    assert compiled_sim.fast_runs > 0
    assert compiled_sim.demotions < compiled_sim.fast_runs / 100

    speedup = t_interp / t_compiled if t_compiled else float("inf")
    interp_rate = _SIM_CYCLES / t_interp if t_interp else 0.0
    compiled_rate = _SIM_CYCLES / t_compiled if t_compiled else 0.0
    benchmark.extra_info["interp_seconds"] = round(t_interp, 4)
    benchmark.extra_info["compiled_seconds"] = round(t_compiled, 4)
    benchmark.extra_info["interp_cycles_per_sec"] = round(interp_rate)
    benchmark.extra_info["compiled_cycles_per_sec"] = round(compiled_rate)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["fast_runs"] = compiled_sim.fast_runs
    benchmark.extra_info["demotions"] = compiled_sim.demotions
    report(
        "Sim: compiled engine vs interpreter (register pipeline)",
        render_table(
            ["cycles", "interp (s)", "compiled (s)",
             "interp cyc/s", "compiled cyc/s", "speedup"],
            [[_SIM_CYCLES, f"{t_interp:.3f}", f"{t_compiled:.3f}",
              f"{interp_rate:,.0f}", f"{compiled_rate:,.0f}",
              f"{speedup:.1f}x"]],
        ),
    )
    # The tentpole acceptance floor (target is 10x; 5x is the hard gate).
    assert speedup >= 5, f"compiled engine only {speedup:.1f}x faster"


def test_sim_sandbox_overhead(benchmark):
    """The sandbox budget checks must cost < 5% on a clean corpus.

    Measures both engines driving the register-pipeline DUT and a set of
    clean corpus differentials with the default budgets (tracked) vs the
    ``UNTRACKED`` sentinel (no tracker built at all), best-of-N to keep
    timing noise out of the gate (emitted as BENCH_sandbox.json)."""
    design = compile_source(_SIM_DUT).elaborated
    assert design is not None
    problems = [
        CORPUS.get(pid)
        for pid in ("mux2to1", "counter4_reset", "fsm_seq101", "popcount8")
    ]
    pairs = [compile_source(p.reference).elaborated for p in problems]
    assert all(d is not None for d in pairs)

    def overhead_pct(tracked_fn, untracked_fn, rounds):
        """Median of per-round tracked/untracked ratios, back-to-back
        pairs after a warmup round, alternating which variant runs
        first.  A single min-of-N split across two separately-timed
        batches drifts with CPU ramp-up and scheduler noise by far more
        than the ~2% effect being measured; paired ratios cancel the
        drift, alternation cancels within-pair ordering bias, and the
        median ignores spikes."""
        tracked_fn()
        untracked_fn()
        ratios = []
        t_best = u_best = float("inf")
        for index in range(rounds):
            if index % 2 == 0:
                t = _timed(tracked_fn)[1]
                u = _timed(untracked_fn)[1]
            else:
                u = _timed(untracked_fn)[1]
                t = _timed(tracked_fn)[1]
            t_best = min(t_best, t)
            u_best = min(u_best, u)
            ratios.append(t / u if u else 1.0)
        ratios.sort()
        return 100.0 * (ratios[len(ratios) // 2] - 1.0), t_best, u_best

    # Long-enough drives that the ~ms scheduler noise on a small CI box
    # stays well under the effect size; the tracked variant gets a
    # raised cycle ceiling (the per-check cost being measured does not
    # depend on the ceiling's value).
    drive_cycles = {"interp": _SIM_CYCLES, "compiled": 4 * _SIM_CYCLES}
    drive_limits = SimLimits(max_cycles=10 * _SIM_CYCLES)
    rows = []
    overheads = {}
    for engine, rounds in (("interp", 5), ("compiled", 7)):
        pct, tracked, untracked = overhead_pct(
            lambda e=engine: _drive_cycles(
                make_simulator(design, engine=e, sim_limits=drive_limits),
                drive_cycles[e],
            ),
            lambda e=engine: _drive_cycles(
                make_simulator(design, engine=e, sim_limits=UNTRACKED),
                drive_cycles[e],
            ),
            rounds=rounds,
        )
        overheads[engine] = pct
        rows.append([f"drive/{engine}", f"{untracked:.3f}",
                     f"{tracked:.3f}", f"{pct:+.1f}%"])
        benchmark.extra_info[f"{engine}_untracked_seconds"] = round(untracked, 4)
        benchmark.extra_info[f"{engine}_tracked_seconds"] = round(tracked, 4)
        benchmark.extra_info[f"{engine}_overhead_pct"] = round(pct, 2)

    def run_corpus(sim_limits):
        with no_verdict_cache():
            return [
                run_differential(d, d, samples=128, sim_limits=sim_limits).passed
                for d in pairs
            ]

    benchmark.pedantic(lambda: run_corpus(None), rounds=3, iterations=1)
    corpus_pct, corpus_tracked, corpus_untracked = overhead_pct(
        lambda: run_corpus(None), lambda: run_corpus(UNTRACKED), rounds=11
    )
    overheads["corpus"] = corpus_pct
    rows.append(["corpus diff", f"{corpus_untracked:.3f}",
                 f"{corpus_tracked:.3f}", f"{corpus_pct:+.1f}%"])
    benchmark.extra_info["corpus_untracked_seconds"] = round(corpus_untracked, 4)
    benchmark.extra_info["corpus_tracked_seconds"] = round(corpus_tracked, 4)
    benchmark.extra_info["corpus_overhead_pct"] = round(corpus_pct, 2)

    report(
        "Sim: sandbox budget-check overhead (tracked vs untracked)",
        render_table(
            ["workload", "untracked (s)", "tracked (s)", "overhead"], rows
        ),
    )
    # The acceptance gate is the clean corpus -- the workload the
    # sandbox actually runs in production.  The synthetic drive loops
    # are reported for visibility but gated loosely: at sub-second
    # durations a single-vCPU box shows +/-5% run-to-run spread that
    # paired-ratio medians cannot fully cancel.
    assert overheads["corpus"] < 5.0, (
        f"sandbox budgets cost {overheads['corpus']:.1f}% on the clean "
        f"corpus (acceptance ceiling is 5%)"
    )
    for engine in ("interp", "compiled"):
        assert overheads[engine] < 20.0, (
            f"sandbox budgets cost {overheads[engine]:.1f}% on "
            f"drive/{engine} (sanity ceiling is 20%)"
        )


def test_sim_verdict_cache_cold_vs_warm(benchmark):
    """A repeated (candidate, reference, stimulus) triple must return the
    memoized verdict without simulating at all."""
    problems = [
        CORPUS.get(pid)
        for pid in ("mux2to1", "counter4_reset", "fsm_seq101", "popcount8")
    ]
    pairs = [
        compile_source(p.reference).elaborated for p in problems
    ]
    assert all(design is not None for design in pairs)

    def run_all():
        return [
            _verdict_summary(run_differential(design, design, samples=32))
            for design in pairs
        ]

    with no_verdict_cache():
        uncached, t_uncached = _timed(run_all)

    cache = VerdictCache()
    with use_verdict_cache(cache):
        cold, t_cold = _timed(run_all)

        def warm():
            return run_all()

        benchmark.pedantic(warm, rounds=3, iterations=1)
        warm_results, t_warm = _timed(warm)

    assert warm_results == cold == uncached  # memoization is invisible
    assert cache.stats.misses == len(pairs)
    assert cache.stats.hits >= 4 * len(pairs)
    assert cache.stats.simulations_avoided >= 4 * len(pairs)

    speedup = t_cold / t_warm if t_warm else float("inf")
    stats = cache.stats.as_dict()
    benchmark.extra_info["cold_seconds"] = round(t_cold, 4)
    benchmark.extra_info["warm_seconds"] = round(t_warm, 5)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info.update(stats)
    report(
        "Sim: verdict cache cold vs warm (whole-testbench memoization)",
        render_table(
            ["designs", "cold (s)", "warm (s)", "speedup",
             "runs avoided", "hit rate"],
            [[len(pairs), f"{t_cold:.3f}", f"{t_warm:.5f}", f"{speedup:.0f}x",
              stats["simulations_avoided"], f"{stats['hit_rate']:.1%}"]],
        ),
    )
    # A verdict hit skips the entire testbench: construction, stimulus,
    # simulation and comparison.  100x is conservative.
    assert t_warm < t_cold / 100, f"verdict cache only {speedup:.0f}x faster"


def _verdict_summary(result):
    """Comparable summary of one TestbenchResult."""
    return (result.passed, result.samples, result.mismatch_count,
            result.failure_reason)


# ---------------------------------------------------------------------------
# LLM backend pool (emitted as BENCH_llm.json by scripts/bench.sh)
# ---------------------------------------------------------------------------


def test_llm_pool_routed_vs_direct(benchmark):
    """Routing every model call through the pool (header round-trip,
    limiter, ledger) must stay cheap next to a direct SimulatedLLM run
    -- and bit-identical, which is what lets reports leave it on."""
    from repro.llm.pool import RoutingSpec, use_llm_routing
    from repro.runtime import TokenCounter, use_token_counter

    dataset = build_syntax_dataset(
        CORPUS, samples_per_problem=4, seed=0, target_size=24
    )
    routing = RoutingSpec.parse("cheap=gpt-3.5-sim,strong=gpt-4-sim")
    counter = TokenCounter()

    with use_compile_cache():
        direct, t_direct = _timed(
            lambda: run_fix_experiment(dataset, RTLFixer(), repeats=2)
        )
    with use_compile_cache(), use_llm_routing(routing), \
            use_token_counter(counter):
        routed, t_routed = _timed(
            lambda: benchmark.pedantic(
                run_fix_experiment,
                args=(dataset, RTLFixer()),
                kwargs={"repeats": 2},
                rounds=1, iterations=1,
            )
        )

    assert routed.fixed_counts == direct.fixed_counts
    assert routed.iterations == direct.iterations
    trials = len(dataset) * 2
    ledger = counter.as_dict()
    overhead = (t_routed / t_direct - 1.0) * 100 if t_direct else 0.0
    benchmark.extra_info["direct_seconds"] = round(t_direct, 3)
    benchmark.extra_info["routed_seconds"] = round(t_routed, 3)
    benchmark.extra_info["overhead_pct"] = round(overhead, 1)
    benchmark.extra_info["llm_calls"] = ledger["calls"]
    benchmark.extra_info["tokens_per_trial"] = round(
        ledger["total_tokens"] / trials
    )
    benchmark.extra_info["cost_usd"] = ledger["cost_usd"]
    report(
        "LLM pool: routed vs direct (bit-identical results)",
        render_table(
            ["trials", "direct (s)", "routed (s)", "overhead",
             "calls", "tokens/trial", "est. cost"],
            [[trials, f"{t_direct:.2f}", f"{t_routed:.2f}",
              f"{overhead:+.1f}%", ledger["calls"],
              round(ledger["total_tokens"] / trials),
              f"${ledger['cost_usd']:.2f}"]],
        ),
    )
    # The pool's round-trip must never dominate the run.
    assert t_routed < t_direct * 2, f"pool overhead {overhead:+.1f}%"


def test_llm_pool_hedged_tail_latency(benchmark):
    """Hedging exists for the tail: the seeded duplicate pre-launches on
    the next rung, so when a slow primary fails its failover reply is
    already computed instead of starting from zero -- same results,
    lower wall-clock."""
    from repro.errors import LLMTimeoutError
    from repro.llm.backends import SimulatedChatClient
    from repro.llm.pool import PooledRepairModel, RoutingSpec
    from repro.runtime import TokenCounter, use_token_counter

    class _SlowFailing:
        """Backend that burns its service time and then times out."""

        def __init__(self, delay):
            self.delay = delay

        def with_seed(self, seed):
            return self

        def complete(self, messages, temperature=0.4):
            time.sleep(self.delay)
            raise LLMTimeoutError("slow backend timed out")

    class _Slow:
        """Healthy backend with a constant injected service delay."""

        def __init__(self, inner, delay):
            self.inner = inner
            self.delay = delay

        def with_seed(self, seed):
            return _Slow(self.inner.with_seed(seed), self.delay)

        def complete(self, messages, temperature=0.4):
            time.sleep(self.delay)
            return self.inner.complete(messages, temperature=temperature)

    delay = 0.02
    code = "module top(input a, input b, output y)\n  assign y = a & b;\nendmodule\n"

    def run(hedge_rate):
        # max_retries=0: one attempt per rung, so each call costs one
        # service delay per rung it visits.
        routing = RoutingSpec.parse(
            "cheap=gpt-3.5-sim,strong=gpt-4-sim",
            hedge_rate=hedge_rate, max_retries=0,
        )
        model = PooledRepairModel(
            routing, seed=3,
            clients={
                "cheap": _SlowFailing(delay),
                "strong": _Slow(SimulatedChatClient("gpt-4-sim", seed=3), delay),
            },
        )
        return RTLFixer(model=model, seed=3, max_retries=0)

    with use_compile_cache():
        plain, t_plain = _timed(lambda: run(0.0).fix(code))
    counter = TokenCounter()
    with use_compile_cache(), use_token_counter(counter):
        hedged, t_hedged = _timed(
            lambda: benchmark.pedantic(
                lambda: run(1.0).fix(code), rounds=1, iterations=1
            )
        )

    assert hedged.final_code == plain.final_code
    assert hedged.iterations == plain.iterations
    ledger = counter.as_dict()
    saved = (1.0 - t_hedged / t_plain) * 100 if t_plain else 0.0
    benchmark.extra_info["service_delay_ms"] = delay * 1000
    benchmark.extra_info["unhedged_seconds"] = round(t_plain, 3)
    benchmark.extra_info["hedged_seconds"] = round(t_hedged, 3)
    benchmark.extra_info["latency_saved_pct"] = round(saved, 1)
    benchmark.extra_info["hedges"] = ledger["hedges"]
    benchmark.extra_info["hedge_wins"] = ledger["hedge_wins"]
    report(
        "LLM pool: hedged tail latency (slow failing primary, result-neutral)",
        render_table(
            ["service delay", "unhedged (s)", "hedged (s)", "saved",
             "hedges", "hedge wins"],
            [[f"{delay * 1000:.0f}ms", f"{t_plain:.3f}", f"{t_hedged:.3f}",
              f"{saved:.0f}%", ledger["hedges"], ledger["hedge_wins"]]],
        ),
    )
    assert ledger["hedge_wins"] >= 1  # the duplicate supplied replies
    # Unhedged pays cheap-timeout + strong serially; hedged overlaps them.
    assert t_hedged < t_plain, "hedging saved no latency on a failing primary"


# ---------------------------------------------------------------------------
# Repair engine (Table-4 functional workload)
# ---------------------------------------------------------------------------


def test_repair_engine_workload(benchmark):
    """The Table-4 functional-repair workload end to end: template
    search throughput (templates simulated/sec), trace-diff
    localization latency, and the fix rate by bug class -- the
    headline numbers in BENCH_repair.json."""
    import random as _random

    from repro.dataset.mutate import force_behavior_change, mutate_logic
    from repro.dataset.problem import ProblemSet
    from repro.diagnostics import Compiler
    from repro.eval.experiments import run_table4
    from repro.repair import TraceDiffLocalizer

    problems = ProblemSet("bench-repair", list(CORPUS)[:12])

    with use_compile_cache(CompileCache()):
        # Localization latency, measured on a fresh localizer per
        # mutant so memoization cannot flatter the number.
        localizations = 0
        t_localize = 0.0
        for problem in problems:
            rng = _random.Random(f"bench-repair|{problem.id}")
            buggy = mutate_logic(problem.reference, rng)
            if buggy == problem.reference:
                buggy = force_behavior_change(problem.reference)
                if buggy is None:
                    continue
            compiler = Compiler()
            reference = compiler.compile(problem.reference).elaborated
            if reference is None:
                continue
            localizer = TraceDiffLocalizer(reference, compiler=compiler)
            _, elapsed = _timed(lambda: localizer.localize(buggy))
            localizations += 1
            t_localize += elapsed

        benchmark.pedantic(
            lambda: run_table4(problems, samples_per_problem=1, seed=1),
            rounds=1, iterations=1,
        )
        result, t_workload = _timed(
            lambda: run_table4(problems, samples_per_problem=2, seed=0)
        )

    attempted, template_fixed, llm_fixed = result.totals()
    assert attempted > 0
    assert template_fixed > 0, "template search fixed nothing"
    templates_per_sec = (
        result.templates_tried / t_workload if t_workload else 0.0
    )
    localize_ms = (t_localize / localizations * 1000) if localizations else 0.0

    benchmark.extra_info["attempted"] = attempted
    benchmark.extra_info["template_fixed"] = template_fixed
    benchmark.extra_info["llm_fixed"] = llm_fixed
    benchmark.extra_info["fix_rate"] = round(result.fix_rate, 3)
    benchmark.extra_info["fix_rate_by_class"] = {
        bug_class: round((t + l) / a, 3) if a else 0.0
        for bug_class, (a, t, l) in sorted(result.by_class.items())
    }
    benchmark.extra_info["templates_tried"] = result.templates_tried
    benchmark.extra_info["templates_tried_per_sec"] = round(templates_per_sec, 1)
    benchmark.extra_info["localization_ms"] = round(localize_ms, 2)
    benchmark.extra_info["localization_accuracy"] = round(
        result.localization_accuracy, 3
    )

    rows = [
        [bug_class, a, t, l, f"{(t + l) / a:.2f}" if a else "-"]
        for bug_class, (a, t, l) in sorted(result.by_class.items())
    ]
    rows.append(["TOTAL", attempted, template_fixed, llm_fixed,
                 f"{result.fix_rate:.2f}"])
    report(
        "Repair engine: Table-4 functional workload",
        render_table(
            ["bug class", "attempted", "template", "llm", "fix rate"],
            rows,
        )
        + f"\ntemplates simulated/sec: {templates_per_sec:,.0f}; "
        f"localization: {localize_ms:.1f} ms/design "
        f"(accuracy {result.localization_accuracy:.2f})",
    )
