"""Tests for the simulated LLM generation sampler and logic mutations."""

import random

from repro.dataset import GenerationModel, logic_rate, mutate_logic, verilogeval
from repro.dataset.generate import SYNTAX_RATE
from repro.dataset.mutate import force_behavior_change
from repro.core import rule_fix
from repro.diagnostics import compile_source
from repro.sim import run_differential

CORPUS = verilogeval()
EASY = CORPUS.get("mux2to1")
HARD = CORPUS.get("fsm_seq101")


class TestGenerationModel:
    def test_deterministic_per_seed(self):
        model = GenerationModel(seed=3)
        a = model.sample(EASY, "human", index=4)
        b = model.sample(EASY, "human", index=4)
        assert a.raw == b.raw

    def test_indices_vary(self):
        model = GenerationModel(seed=3)
        raws = {model.sample(EASY, "human", index=i).raw for i in range(10)}
        assert len(raws) > 3

    def test_sample_n(self):
        model = GenerationModel()
        samples = model.sample_n(EASY, 5)
        assert len(samples) == 5
        assert all(s.problem_id == EASY.id for s in samples)

    def test_syntax_samples_fail_compilation(self):
        model = GenerationModel(seed=1)
        checked = 0
        for i in range(60):
            sample = model.sample(HARD, "human", index=i)
            if sample.kind == "syntax":
                fixed = rule_fix(sample.raw)
                assert not compile_source(fixed.code).ok
                checked += 1
        assert checked > 5

    def test_correct_samples_compile(self):
        model = GenerationModel(seed=1)
        for i in range(40):
            sample = model.sample(EASY, "human", index=i)
            if sample.kind == "correct":
                fixed = rule_fix(sample.raw)
                assert compile_source(fixed.code).ok

    def test_hard_problems_get_more_syntax_errors(self):
        assert SYNTAX_RATE[("human", "hard")] > SYNTAX_RATE[("human", "easy")]

    def test_machine_benchmark_solves_more(self):
        assert logic_rate(HARD, "machine") > logic_rate(HARD, "human")

    def test_gpt4_tier_produces_fewer_syntax_errors(self):
        weak = GenerationModel(tier="gpt-3.5-sim", seed=2)
        strong = GenerationModel(tier="gpt-4-sim", seed=2)
        weak_syntax = sum(
            weak.sample(HARD, "human", i).kind == "syntax" for i in range(80)
        )
        strong_syntax = sum(
            strong.sample(HARD, "human", i).kind == "syntax" for i in range(80)
        )
        assert strong_syntax < weak_syntax

    def test_some_samples_dressed_in_markdown(self):
        model = GenerationModel(seed=0)
        raws = [model.sample(EASY, "human", i).raw for i in range(40)]
        assert any("```" in raw for raw in raws)
        assert any("```" not in raw for raw in raws)

    def test_degenerate_samples_exist_at_scale(self):
        model = GenerationModel(seed=0)
        kinds = [model.sample(EASY, "human", i).kind for i in range(300)]
        assert kinds.count("degenerate") >= 1


class TestMutateLogic:
    def test_mutant_compiles(self):
        rng = random.Random(0)
        for _ in range(10):
            mutated = mutate_logic(EASY.reference, rng)
            assert compile_source(mutated).ok

    def test_mutation_changes_code(self):
        rng = random.Random(0)
        results = {mutate_logic(EASY.reference, rng) for _ in range(10)}
        assert any(r != EASY.reference for r in results)

    def test_force_behavior_change_differs_functionally(self):
        mutated = force_behavior_change(EASY.reference)
        assert mutated is not None
        ref = compile_source(EASY.reference).elaborated
        mut = compile_source(mutated).elaborated
        assert not run_differential(mut, ref, samples=16).passed

    def test_force_behavior_change_none_without_assignments(self):
        assert force_behavior_change("module m; endmodule") is None

    def test_verified_mutant_actually_wrong(self):
        model = GenerationModel(seed=9)
        rng = random.Random(4)
        mutated = model._mutate_verified(EASY, rng)
        ref = compile_source(EASY.reference).elaborated
        mut = compile_source(mutated).elaborated
        assert mut is not None
        assert not run_differential(mut, ref, samples=16).passed
