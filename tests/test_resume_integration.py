"""End-to-end resume integration: SIGKILL a durable ``rtlfixer report``
subprocess mid-run, resume it, and verify the final report JSON is
byte-identical to an uninterrupted baseline.  Also prosecutes the CLI's
durable-run exit codes and the graceful-shutdown signal contract."""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.runtime import Journal

#: Tiny-but-nontrivial scale: enough work units (~200) that a kill
#: reliably lands mid-run, small enough to finish in seconds.
TINY_SCALE = [
    "--dataset-size", "3", "--dataset-samples", "2", "--repeats", "1",
    "--n-samples", "2", "--sim-samples", "4", "--simfix-samples", "1",
    "--no-gpt4",
]


def _report_cmd(run_dir: str, json_out: str, *extra: str) -> list[str]:
    """The subprocess argv for a tiny durable report run."""
    return [
        sys.executable, "-m", "repro.cli", "report",
        "--run-dir", run_dir, "--json", json_out, *TINY_SCALE, *extra,
    ]


def _env() -> dict:
    """Subprocess environment with the library importable."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _digest(path: str) -> str:
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def _wait_for_journal(journal_path: str, min_records: int, proc) -> None:
    """Poll until the journal holds ``min_records`` durable trials (the
    subprocess is mid-run) or the subprocess exits early."""
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            pytest.fail(
                f"report subprocess exited (rc={proc.returncode}) before "
                f"reaching {min_records} journaled trials"
            )
        if os.path.exists(journal_path):
            with open(journal_path, "rb") as handle:
                if handle.read().count(b"\n") >= min_records:
                    return
        time.sleep(0.05)
    pytest.fail("journal never reached the kill threshold")


@pytest.mark.slow
class TestKillResumeIdentical:
    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        """The acceptance scenario: kill -9 mid-run, resume, and the
        report JSON digest equals an uninterrupted run's."""
        env = _env()
        baseline_dir = str(tmp_path / "baseline")
        baseline_json = str(tmp_path / "baseline.json")
        result = subprocess.run(
            _report_cmd(baseline_dir, baseline_json),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert result.returncode == 0, result.stderr

        killed_dir = str(tmp_path / "killed")
        killed_json = str(tmp_path / "killed.json")
        proc = subprocess.Popen(
            _report_cmd(killed_dir, killed_json),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            _wait_for_journal(
                os.path.join(killed_dir, "journal.jsonl"), 10, proc
            )
            proc.kill()  # SIGKILL: no chance to flush or clean up
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert not os.path.exists(killed_json)  # died before the report

        journal = Journal(os.path.join(killed_dir, "journal.jsonl"))
        partial = len(journal)
        journal.close()
        assert partial >= 10

        result = subprocess.run(
            _report_cmd(killed_dir, killed_json, "--resume"),
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert result.returncode == 0, result.stderr
        # the resumed run replayed the killed run's trials...
        assert f"{partial} trial(s) replayed" in result.stderr
        # ...and its report is byte-identical to the uninterrupted one
        assert _digest(killed_json) == _digest(baseline_json)
        assert _digest(os.path.join(killed_dir, "report.json")) == _digest(
            os.path.join(baseline_dir, "report.json")
        )

    def test_sigterm_exits_resumable_with_message(self, tmp_path):
        """First SIGTERM: drain, journal, exit 128+15 with a resume hint."""
        env = _env()
        run_dir = str(tmp_path / "run")
        journal_path = os.path.join(run_dir, "journal.jsonl")
        proc = subprocess.Popen(
            _report_cmd(run_dir, str(tmp_path / "out.json")),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True,
        )
        try:
            _wait_for_journal(journal_path, 5, proc)
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 128 + signal.SIGTERM
        assert "SIGTERM received" in stderr
        assert "--resume" in stderr  # the resume hint names the flag
        # the journal survived and is a valid prefix
        journal = Journal(journal_path)
        assert len(journal) >= 5
        journal.close()


class TestReportExitCodes:
    def test_resume_requires_run_dir(self, capsys):
        assert main(["report", "--resume", *TINY_SCALE]) == 2
        assert "--run-dir" in capsys.readouterr().err

    def test_breaker_requires_collect(self, capsys):
        code = main(["report", "--breaker-threshold", "3", *TINY_SCALE])
        assert code == 2
        assert "collect" in capsys.readouterr().err

    def test_manifest_mismatch_is_exit_2(self, tmp_path, capsys):
        """Resuming with a different scale than the journaled run fails
        fast with the checkpoint-misuse exit code."""
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        with open(os.path.join(run_dir, "manifest.json"), "w") as handle:
            json.dump({"kind": "full_report", "scale": {"other": True}}, handle)
        code = main([
            "report", "--run-dir", run_dir, "--resume", *TINY_SCALE,
        ])
        assert code == 2
        assert "different configuration" in capsys.readouterr().err
