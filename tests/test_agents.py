"""Tests for the ReAct agent and the One-shot baseline."""

from repro.agents import (
    GENERATION_SYSTEM_PROMPT,
    OneShotAgent,
    ReActAgent,
    Transcript,
    render_one_shot,
)
from repro.diagnostics import Compiler, compile_source
from repro.llm import SimulatedLLM
from repro.rag import ExactTagRetriever, build_default_database

FIG5 = (
    "module top_module(input [99:0] in, output reg [99:0] out);\n"
    "always @(posedge clk) begin\n  out <= in;\nend\nendmodule\n"
)

GOOD = "module m(input a, output y);\nassign y = a;\nendmodule\n"

DB = build_default_database()


def make_react(compiler="quartus", rag=True, seed=0, max_iterations=10):
    return ReActAgent(
        model=SimulatedLLM(seed=seed),
        compiler=Compiler(flavor=compiler),
        retriever=ExactTagRetriever(DB, compiler) if rag else None,
        max_iterations=max_iterations,
    )


class TestReActAgent:
    def test_fixes_fig5(self):
        result = make_react().run(FIG5)
        assert result.success
        assert compile_source(result.final_code).ok
        assert result.iterations >= 1

    def test_already_correct_code_short_circuits(self):
        result = make_react().run(GOOD)
        assert result.success
        assert result.iterations == 0
        assert result.transcript.turns[0].action == "Finish"

    def test_transcript_structure(self):
        result = make_react().run(FIG5)
        actions = [t.action for t in result.transcript.turns]
        assert "Compiler" in actions
        assert actions[-1] == "Finish"
        # RAG action appears when a retriever is attached.
        assert "RAG" in actions

    def test_no_rag_action_without_retriever(self):
        result = make_react(rag=False).run(FIG5)
        actions = [t.action for t in result.transcript.turns]
        assert "RAG" not in actions

    def test_respects_iteration_cap(self):
        # An unfixable mess: cap must bound the loop.
        junk = "module m(input a;\nassign = ;\nbegin begin begin\nendmodule"
        agent = make_react(max_iterations=3)
        result = agent.run(junk)
        assert result.iterations <= 3

    def test_rule_fix_applied_first(self):
        raw = f"```verilog\n{GOOD}```"
        result = make_react().run(raw)
        assert result.success
        assert result.iterations == 0  # markdown stripped, code compiled

    def test_transcript_render(self):
        result = make_react().run(FIG5)
        text = result.transcript.render()
        assert "Thought 1:" in text
        assert "Action 1:" in text
        assert "Observation 1:" in text


class TestOneShotAgent:
    def make(self, compiler="quartus", rag=True, seed=0):
        return OneShotAgent(
            model=SimulatedLLM(seed=seed),
            compiler=Compiler(flavor=compiler),
            retriever=ExactTagRetriever(DB, compiler) if rag else None,
        )

    def test_single_iteration_only(self):
        result = self.make().run(FIG5)
        assert result.iterations in (0, 1)

    def test_can_fix_simple_error(self):
        fixed_any = any(
            self.make(seed=s).run(FIG5).success for s in range(5)
        )
        assert fixed_any

    def test_clean_code_passes_through(self):
        result = self.make().run(GOOD)
        assert result.success and result.iterations == 0

    def test_react_beats_oneshot_on_average(self):
        from repro.dataset import build_syntax_dataset, verilogeval

        ds = build_syntax_dataset(
            verilogeval(), samples_per_problem=4, seed=1, target_size=40
        )
        oneshot_wins = react_wins = 0
        for entry in ds:
            oneshot_wins += self.make(compiler="iverilog", rag=False).run(entry.code).success
            react_wins += make_react(compiler="iverilog", rag=False).run(entry.code).success
        assert react_wins > oneshot_wins


class TestPrompts:
    def test_one_shot_template(self):
        text = render_one_shot("desc", "module m; endmodule", "some error")
        assert GENERATION_SYSTEM_PROMPT in text
        assert "desc" in text and "some error" in text

    def test_transcript_clipping(self):
        transcript = Transcript()
        transcript.add("x" * 1000, "Compiler", "y" * 1000, "z")
        rendered = transcript.render(max_chars_per_field=50)
        assert "..." in rendered
        assert len(rendered) < 400
