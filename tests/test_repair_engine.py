"""Tests for the generic repair engine (:mod:`repro.repair`).

The load-bearing suite for the refactor: golden-transcript equivalence
between the legacy hand-rolled loops and their engine-backed rewrites,
unit tests for the trace-diff localizer and every repair template, the
service seams (deadline, on_turn) on functional repair, the Table-4
workload's determinism, and the pooled logic model's identity and
accounting.
"""

import random

import pytest

from repro.agents import ReActAgent, SimDebugAgent
from repro.dataset.corpus import verilogeval
from repro.dataset.curate import build_syntax_dataset
from repro.dataset.mutate import (
    force_behavior_change,
    mutate_logic,
    mutate_logic_labeled,
)
from repro.diagnostics import Compiler
from repro.errors import DeadlineExceededError
from repro.llm import SimulatedLLM, SimulatedLogicDebugger
from repro.llm.pool import RoutingSpec, use_llm_routing
from repro.llm.simfix import PooledLogicModel
from repro.rag import ExactTagRetriever, build_default_database
from repro.repair import (
    TEMPLATES,
    RepairEngine,
    TemplateProposer,
    TraceDiffLocalizer,
    repair_functional,
    result_digest,
    suspect_lines,
)
from repro.repair.legacy import LegacyReActAgent, LegacySimDebugAgent
from repro.repair.templates import (
    invert_condition,
    off_by_one_constant,
    swap_operator,
    swap_signals,
)
from repro.runtime import (
    CompileCache,
    TokenCounter,
    use_compile_cache,
    use_token_counter,
)
from repro.service import Deadline, use_deadline

DB = build_default_database()


def _react_pair(flavor, rag, seed):
    """A (legacy, engine) ReAct agent pair with identical configuration."""
    retriever = ExactTagRetriever(DB, flavor) if rag else None
    legacy = LegacyReActAgent(
        model=SimulatedLLM(seed=seed), compiler=Compiler(flavor=flavor),
        retriever=retriever,
    )
    modern = ReActAgent(
        model=SimulatedLLM(seed=seed), compiler=Compiler(flavor=flavor),
        retriever=ExactTagRetriever(DB, flavor) if rag else None,
    )
    return legacy, modern


class TestGoldenEquivalence:
    """Legacy and engine-backed loops must be digest-identical."""

    def test_react_corpus_equivalence(self):
        dataset = build_syntax_dataset(
            verilogeval(), samples_per_problem=2, target_size=10
        )
        assert len(dataset) > 0
        mismatches = []
        with use_compile_cache(CompileCache()):
            for flavor, rag, seed in (
                ("quartus", True, 0), ("iverilog", False, 3)
            ):
                legacy, modern = _react_pair(flavor, rag, seed)
                for entry in dataset:
                    want = result_digest(legacy.run(entry.code))
                    got = result_digest(modern.run(entry.code))
                    if want != got:
                        mismatches.append((flavor, rag, seed, entry.problem_id))
        assert mismatches == []

    def test_simfix_corpus_equivalence(self):
        problems = list(verilogeval())[:6]
        mismatches = []
        with use_compile_cache(CompileCache()):
            for seed in (0, 1):
                for problem in problems:
                    rng = random.Random(f"eq|{seed}|{problem.id}")
                    buggy = mutate_logic(problem.reference, rng)
                    if buggy == problem.reference:
                        buggy = force_behavior_change(problem.reference)
                        if buggy is None:
                            continue
                    legacy = LegacySimDebugAgent(
                        model=SimulatedLogicDebugger(seed=seed)
                    )
                    modern = SimDebugAgent(
                        model=SimulatedLogicDebugger(seed=seed)
                    )
                    want = result_digest(
                        legacy.run(buggy, problem.reference, problem.difficulty)
                    )
                    got = result_digest(
                        modern.run(buggy, problem.reference, problem.difficulty)
                    )
                    if want != got:
                        mismatches.append((seed, problem.id))
        assert mismatches == []

    def test_digest_covers_transcript(self):
        agent = ReActAgent(
            model=SimulatedLLM(seed=0), compiler=Compiler(flavor="quartus")
        )
        good = "module m(input a, output y);\nassign y = a;\nendmodule\n"
        first = agent.run(good)
        second = agent.run(good)
        assert result_digest(first) == result_digest(second)


REF_TWO_OUT = (
    "module m(input a, input b, output x, output y);\n"
    "assign x = a & b;\n"
    "assign y = a | b;\n"
    "endmodule\n"
)
#: Single seeded fault: x's AND became OR (line 2 is the culprit).
BUGGY_TWO_OUT = REF_TWO_OUT.replace("x = a & b", "x = a | b")


class TestTraceDiffLocalizer:
    def test_ranks_faulty_signal_first(self):
        loc = TraceDiffLocalizer(
            Compiler().compile(REF_TWO_OUT).elaborated
        ).localize(BUGGY_TWO_OUT)
        assert loc.suspects, "mismatching design must yield suspects"
        assert loc.suspects[0].signal == "x"
        assert loc.suspects[0].line == 2

    def test_suspect_lines_cover_the_mutated_line(self):
        loc = TraceDiffLocalizer(
            Compiler().compile(REF_TWO_OUT).elaborated
        ).localize(BUGGY_TWO_OUT)
        assert 2 in loc.suspect_lines
        # y is clean on every sample: its driver must not outrank x's.
        assert loc.suspect_lines[0] == 2

    def test_clean_candidate_localizes_to_nothing(self):
        loc = TraceDiffLocalizer(
            Compiler().compile(REF_TWO_OUT).elaborated
        ).localize(REF_TWO_OUT)
        assert loc.suspects == []

    def test_uncompilable_candidate_localizes_to_nothing(self):
        loc = TraceDiffLocalizer(
            Compiler().compile(REF_TWO_OUT).elaborated
        ).localize("module m(oops\n")
        assert loc.suspects == []

    def test_memoizes_per_candidate(self):
        localizer = TraceDiffLocalizer(
            Compiler().compile(REF_TWO_OUT).elaborated
        )
        first = localizer.localize(BUGGY_TWO_OUT)
        assert localizer.localize(BUGGY_TWO_OUT) is first

    def test_suspect_lines_helper_orders_drivers_first(self):
        code = (
            "module m(input a, output y);\n"
            "wire t;\n"
            "assign t = ~a;\n"
            "assign y = t;\n"
            "endmodule\n"
        )
        lines = suspect_lines(code, "y")
        assert lines[0] == 4          # y's driver
        assert lines[1] == 3          # one hop of fan-in (t's driver)


class TestTemplates:
    def test_invert_condition_both_directions(self):
        added = invert_condition("if (en) q = d;")
        assert [e.code for e in added] == ["if (!en) q = d;"]
        dropped = invert_condition("if (!en) q = d;")
        assert [e.code for e in dropped] == ["if (en) q = d;"]

    def test_swap_operator_flips_and_edges(self):
        edits = swap_operator("assign y = a & b;\nalways @(posedge clk)")
        codes = {e.code for e in edits}
        assert "assign y = a | b;\nalways @(posedge clk)" in codes
        assert "assign y = a & b;\nalways @(negedge clk)" in codes

    def test_off_by_one_wraps_modulo_width(self):
        edits = off_by_one_constant("assign y = 2'd3;")
        codes = {e.code for e in edits}
        assert codes == {"assign y = 2'd0;", "assign y = 2'd2;"}

    def test_swap_signals_ternary_and_operands(self):
        edits = swap_signals("assign y = s ? a : b;")
        assert any(e.code == "assign y = s ? b : a;" for e in edits)
        edits = swap_signals("assign y = a - b;")
        assert any(e.code == "assign y = b - a;" for e in edits)

    def test_swap_signals_skips_identical_pair(self):
        assert swap_signals("assign y = s ? a : a;") == []

    def test_every_template_reports_its_site_line(self):
        code = "module m;\nreg q;\nalways @(*) if (q) q = 1'd0;\nendmodule\n"
        for template in TEMPLATES:
            for edit in template(code):
                assert edit.line >= 1
                assert edit.template == template.__name__

    def test_template_session_orders_suspect_lines_first(self):
        from repro.repair.base import Localization, OracleVerdict, Suspect

        code = "assign x = a & b;\nassign y = c & d;\n"
        session = TemplateProposer().start(code, OracleVerdict(
            ok=False, score=2, feedback="", observation=""
        ))
        loc = Localization(suspects=[
            Suspect(signal="y", line=2, score=1.0),
        ])
        with use_compile_cache(CompileCache()):
            # Bare assigns never compile standalone; disable the filter
            # by enumerating directly.
            edits = session._enumerate(code, loc)
        assert edits[0].line == 2


REF_GATE = "module m(input a, input b, output y);\nassign y = a & b;\nendmodule\n"
BUGGY_GATE = REF_GATE.replace("a & b", "a | b")


class TestServiceSeams:
    """Satellite 1: functional repair honours Deadline and on_turn."""

    def test_simfix_504s_mid_run(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        now[0] = 60.0  # budget evaporates before the first iteration
        agent = SimDebugAgent(model=SimulatedLogicDebugger())
        with use_deadline(deadline):
            with pytest.raises(DeadlineExceededError) as excinfo:
                agent.run(BUGGY_GATE, REF_GATE, "easy")
        # Whichever checkpoint fires first: the simulator's own
        # mid-simulation check or the engine's per-iteration check.
        assert excinfo.value.stage in ("sim-cycle", "sim-iteration")

    def test_functional_engine_504s_mid_run(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        now[0] = 60.0
        with use_deadline(deadline):
            with pytest.raises(DeadlineExceededError) as excinfo:
                repair_functional(BUGGY_GATE, REF_GATE, difficulty="easy")
        assert excinfo.value.stage in ("sim-cycle", "sim-iteration")

    def test_engine_iteration_checkpoint_is_sim_iteration(self):
        """The engine itself (oracle held constant) checks the ambient
        deadline at the top of every iteration, at the configured
        stage."""
        from repro.agents.simfix import _SIMFIX_CONFIG
        from repro.repair.base import OracleVerdict

        class FailingOracle:
            action = "Simulator"

            def check(self, code):
                return OracleVerdict(
                    ok=False, score=5, feedback="mismatch", observation="5",
                )

        # The oracle's initial check passes (clock still fresh), then
        # the budget evaporates before iteration 1.
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])

        class ExpiringProposer:
            def start(self, code, verdict):
                now[0] = 60.0
                return self

        engine = RepairEngine(FailingOracle(), ExpiringProposer(),
                              config=_SIMFIX_CONFIG)
        with use_deadline(deadline):
            with pytest.raises(DeadlineExceededError) as excinfo:
                engine.run("module m;\nendmodule\n")
        assert excinfo.value.stage == "sim-iteration"

    def test_simfix_on_turn_observes_every_turn(self):
        observed = []
        agent = SimDebugAgent(
            model=SimulatedLogicDebugger(), on_turn=observed.append
        )
        result = agent.run(BUGGY_GATE, REF_GATE, "easy")
        assert result.transcript.turns, "run must record at least one turn"
        assert observed == list(result.transcript.turns)

    def test_simfix_on_turn_reassignable_after_construction(self):
        agent = SimDebugAgent(model=SimulatedLogicDebugger())
        observed = []
        agent.on_turn = observed.append  # the repair server does this
        result = agent.run(BUGGY_GATE, REF_GATE, "easy")
        assert observed == list(result.transcript.turns)


class TestTable4:
    def test_labeled_mutator_matches_unlabeled_draws(self):
        reference = list(verilogeval())[2].reference
        labeled_rng = random.Random("tag")
        plain_rng = random.Random("tag")
        mutated, bug_class = mutate_logic_labeled(reference, labeled_rng)
        assert mutated == mutate_logic(reference, plain_rng)
        assert isinstance(bug_class, str) and bug_class

    def test_run_table4_deterministic_and_templates_fix(self):
        from repro.dataset.problem import ProblemSet
        from repro.eval.experiments import run_table4

        problems = ProblemSet("t4", list(verilogeval())[:8])
        with use_compile_cache(CompileCache()):
            first = run_table4(problems, samples_per_problem=1, seed=0)
            second = run_table4(problems, samples_per_problem=1, seed=0)
        assert first.digest() == second.digest()
        attempted, template_fixed, _ = first.totals()
        assert attempted > 0
        assert template_fixed > 0, "template-only fix rate must be nonzero"
        assert 0.0 <= first.localization_accuracy <= 1.0

    def test_run_table4_parallel_matches_serial(self):
        from repro.dataset.problem import ProblemSet
        from repro.eval.experiments import run_table4

        problems = ProblemSet("t4p", list(verilogeval())[:4])
        with use_compile_cache(CompileCache()):
            serial = run_table4(problems, samples_per_problem=1, seed=0)
            fanned = run_table4(problems, samples_per_problem=1, seed=0, jobs=2)
        assert serial.digest() == fanned.digest()

    def test_functional_repair_fixes_seeded_gate_swap(self):
        with use_compile_cache(CompileCache()):
            outcome = repair_functional(BUGGY_GATE, REF_GATE, difficulty="easy")
        assert outcome.success
        assert outcome.fixed_by == "template"
        assert outcome.stats["templates_tried"] >= 1


class TestPooledLogicModel:
    """Satellite 2: functional repair on the pool surface."""

    def test_same_tier_pool_is_digest_identical_to_direct(self):
        routing = RoutingSpec.parse("cheap=gpt-3.5-sim")
        problem = list(verilogeval())[2]
        buggy = force_behavior_change(problem.reference)
        assert buggy is not None
        direct = SimDebugAgent(model=SimulatedLogicDebugger()).run(
            buggy, problem.reference, problem.difficulty
        )
        with use_llm_routing(routing), use_token_counter(TokenCounter()):
            pooled = SimDebugAgent().run(
                buggy, problem.reference, problem.difficulty
            )
        assert result_digest(direct) == result_digest(pooled)

    def test_pooled_steps_are_booked_against_the_counter(self):
        routing = RoutingSpec.parse("cheap=gpt-3.5-sim")
        counter = TokenCounter()
        problem = list(verilogeval())[2]
        buggy = force_behavior_change(problem.reference)
        with use_llm_routing(routing), use_token_counter(counter):
            SimDebugAgent().run(buggy, problem.reference, problem.difficulty)
        ledger = counter.as_dict()
        assert ledger["calls"] >= 1
        assert ledger["total_tokens"] > 0
        assert "cheap" in ledger["backends"]

    def test_escalation_climbs_the_ladder(self):
        routing = RoutingSpec.parse(
            "cheap=gpt-3.5-sim,strong=gpt-4-sim", escalate_after=2
        )
        model = PooledLogicModel(routing)
        session = model.start("module m;\nendmodule\n", "hard")
        assert session.member_index == 0
        for _ in range(4):
            session.observe(False)
        assert session.member_index == 1

    def test_base_index_matches_requested_tier(self):
        routing = RoutingSpec.parse("cheap=gpt-3.5-sim,strong=gpt-4-sim")
        assert PooledLogicModel(routing, tier="gpt-4-sim").base_index() == 1
        assert PooledLogicModel(routing, tier="gpt-3.5-sim").base_index() == 0
