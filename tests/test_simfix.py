"""Tests for the §5 simulation-error debugging extension: waveform
traces, feedback rendering, candidate logic edits, and the agent."""

import pytest

from repro.agents import SimDebugAgent
from repro.dataset import verilogeval
from repro.dataset.mutate import force_behavior_change
from repro.diagnostics import compile_source
from repro.llm import SimulatedLogicDebugger, enumerate_logic_edits
from repro.sim import (
    Logic,
    Simulator,
    Trace,
    make_sim_feedback,
    render_comparison,
    render_waveform,
    simulate_with_traces,
)

CORPUS = verilogeval()
MUX = CORPUS.get("mux2to1")
COUNTER = CORPUS.get("counter4_reset")


def elab(code):
    result = compile_source(code)
    assert result.ok, result.log
    return result.elaborated


class TestTrace:
    def test_record_and_read(self):
        sim = Simulator(elab(MUX.reference))
        trace = Trace(signals=["out"])
        sim.step({"a": 1, "b": 0, "sel": 0})
        trace.record(sim)
        sim.step({"sel": 1})
        trace.record(sim)
        assert trace.length == 2
        assert trace.value_at("out", 0).bits == 1
        assert trace.value_at("out", 1).bits == 0

    def test_out_of_range_reads_none(self):
        trace = Trace(signals=["x"])
        assert trace.value_at("x", 0) is None
        assert trace.value_at("ghost", 0) is None

    def test_render_waveform(self):
        trace = Trace(signals=["q"])
        for v in (0, 1, 2, 3):
            trace.append("q", Logic.from_int(v, 4))
        text = render_waveform(trace)
        assert "q" in text
        assert "3" in text

    def test_render_comparison_marks_mismatches(self):
        a = Trace(signals=["y"])
        b = Trace(signals=["y"])
        for v in (0, 1, 0):
            a.append("y", Logic.from_int(v, 1))
        for v in (0, 0, 0):
            b.append("y", Logic.from_int(v, 1))
        text = render_comparison(a, b)
        assert "1 mismatching sample(s)" in text
        assert "^" in text

    def test_x_rendering(self):
        trace = Trace(signals=["y"])
        trace.append("y", Logic.all_x(1))
        assert "x" in render_waveform(trace)


class TestSimFeedback:
    def test_matching_design_passes(self):
        feedback = make_sim_feedback(elab(MUX.reference), elab(MUX.reference))
        assert feedback.passed
        assert feedback.mismatch_count == 0

    def test_buggy_design_reports_mismatches(self):
        buggy = force_behavior_change(MUX.reference)
        feedback = make_sim_feedback(elab(buggy), elab(MUX.reference))
        assert not feedback.passed
        assert feedback.mismatch_count > 0
        assert "mismatching output sample" in feedback.text
        assert "expected" in feedback.text and "actual" in feedback.text

    def test_sequential_traces(self):
        cand, ref = simulate_with_traces(
            elab(COUNTER.reference), elab(COUNTER.reference), samples=8
        )
        assert cand.length == ref.length > 0


class TestEnumerateLogicEdits:
    def test_candidates_compile(self):
        for candidate in enumerate_logic_edits(MUX.reference):
            assert compile_source(candidate).ok

    def test_reversion_is_among_candidates(self):
        buggy = MUX.reference.replace("sel ? b : a", "sel ? a : b")
        assert MUX.reference in enumerate_logic_edits(buggy)

    def test_no_duplicates(self):
        edits = enumerate_logic_edits(COUNTER.reference)
        assert len(edits) == len(set(edits))

    def test_empty_for_trivial_code(self):
        assert enumerate_logic_edits("module m; endmodule") == []


class TestSimDebugAgent:
    def test_fixes_simple_polarity_bug(self):
        buggy = MUX.reference.replace("sel ? b : a", "sel ? a : b")
        # Capability is stochastic; try a few seeds.
        fixed = False
        for seed in range(6):
            agent = SimDebugAgent(model=SimulatedLogicDebugger(seed=seed))
            result = agent.run(buggy, MUX.reference, difficulty="easy")
            if result.success:
                fixed = True
                final = compile_source(result.final_code)
                assert final.ok
                break
        assert fixed

    def test_already_correct_passes_immediately(self):
        agent = SimDebugAgent()
        result = agent.run(MUX.reference, MUX.reference, difficulty="easy")
        assert result.success and result.iterations == 0

    def test_syntax_broken_input_fails_cleanly(self):
        agent = SimDebugAgent()
        result = agent.run("module m(input a;\nendmodule", MUX.reference)
        assert not result.success

    def test_easy_beats_hard_at_scale(self):
        easy_wins = easy_n = hard_wins = hard_n = 0
        for problem in CORPUS:
            buggy = force_behavior_change(problem.reference)
            if buggy is None:
                continue
            agent = SimDebugAgent(sim_samples=12, max_iterations=6)
            result = agent.run(buggy, problem.reference, difficulty=problem.difficulty)
            if problem.difficulty == "easy":
                easy_wins += result.success
                easy_n += 1
            else:
                hard_wins += result.success
                hard_n += 1
        assert easy_n and hard_n
        assert easy_wins / easy_n > hard_wins / hard_n

    def test_incapable_session_declares_done(self):
        model = SimulatedLogicDebugger()
        session = model.start(MUX.reference, difficulty="hard")
        session.capable = False
        step = session.step(MUX.reference, "feedback")
        assert step.declared_done
        assert step.code == MUX.reference
