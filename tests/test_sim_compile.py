"""Compiled simulation engine: lowering, two-state speculation, engine
selection, sim-lower stage caching and verdict memoization."""

import pytest

from repro.diagnostics import compile_source
from repro.errors import SimulationError
from repro.sim import (
    CompiledSimulator,
    Logic,
    Simulator,
    VerdictCache,
    get_default_sim_engine,
    make_sim_feedback,
    make_simulator,
    no_verdict_cache,
    run_differential,
    set_default_sim_engine,
    use_verdict_cache,
    verdict_key,
)
from repro.verilog.limits import DEFAULT_LIMITS, ResourceLimits
from repro.verilog.pipeline import StageCache, use_stage_cache


def elaborate(code: str):
    result = compile_source(code)
    assert result.ok, result.log
    return result.elaborated


COUNTER = (
    "module m(input clk, input reset, input [3:0] d, output reg [3:0] q);\n"
    "always @(posedge clk)\n"
    "  if (reset) q <= 0; else q <= q + d;\n"
    "endmodule\n"
)

MUXES = (
    "module m(input [7:0] a, input [7:0] b, input sel, output [7:0] y,\n"
    "         output reg [7:0] z);\n"
    "assign y = sel ? a : b;\n"
    "always @(*) begin\n"
    "  case (sel)\n"
    "    1'b0: z = a ^ b;\n"
    "    default: z = a + b;\n"
    "  endcase\n"
    "end\n"
    "endmodule\n"
)

MEMORY = (
    "module m(input clk, input we, input [1:0] addr, input [7:0] d,\n"
    "         output [7:0] q);\n"
    "reg [7:0] mem [0:3];\n"
    "integer i;\n"
    "initial for (i = 0; i < 4; i = i + 1) mem[i] = 0;\n"
    "always @(posedge clk) if (we) mem[addr] <= d;\n"
    "assign q = mem[addr];\n"
    "endmodule\n"
)

DISPLAY = (
    "module m(input clk, input [7:0] d);\n"
    "always @(posedge clk) $display(\"d=%d\", d);\n"
    "endmodule\n"
)


def run_both(code: str, stimuli: list[dict]):
    """Drive both engines with identical stimulus; return the two sims."""
    design = elaborate(code)
    interp = make_simulator(design, engine="interp")
    compiled = make_simulator(design, engine="compiled")
    for stimulus in stimuli:
        interp.step(dict(stimulus))
        compiled.step(dict(stimulus))
        assert dict(compiled.state.values) == dict(interp.state.values)
    assert compiled.state.arrays == interp.state.arrays
    assert compiled.display_log == interp.display_log
    return interp, compiled


class TestEngineEquivalence:
    def test_sequential_counter(self):
        stimuli = [{"clk": c & 1, "reset": int(c < 4), "d": (c * 3) % 16}
                   for c in range(24)]
        _, compiled = run_both(COUNTER, stimuli)
        assert compiled.fast_runs > 0

    def test_comb_mux_and_case(self):
        stimuli = [{"a": (c * 7) % 256, "b": (c * 11) % 256, "sel": c & 1}
                   for c in range(16)]
        _, compiled = run_both(MUXES, stimuli)
        assert compiled.fast_runs > 0

    def test_memory_read_write(self):
        stimuli = []
        for c in range(16):
            stimuli.append({"clk": 0, "we": c & 1, "addr": c % 4,
                            "d": (c * 5) % 256})
            stimuli.append({"clk": 1})
        run_both(MEMORY, stimuli)

    def test_display_log_identical(self):
        stimuli = []
        for c in range(6):
            stimuli.append({"clk": 0, "d": c * 10})
            stimuli.append({"clk": 1})
        interp, _ = run_both(DISPLAY, stimuli)
        assert len(interp.display_log) == 6

    def test_x_stimulus_matches(self):
        stimuli = [{"clk": 0, "reset": 0, "d": Logic.all_x(4)}, {"clk": 1},
                   {"clk": 0, "reset": 1, "d": 2}, {"clk": 1},
                   {"clk": 0, "reset": 0, "d": 3}, {"clk": 1}]
        run_both(COUNTER, stimuli)


class TestEngineSelection:
    def test_default_engine_is_compiled(self):
        assert get_default_sim_engine() == "compiled"
        sim = make_simulator(elaborate(COUNTER))
        assert isinstance(sim, CompiledSimulator)

    def test_explicit_interp(self):
        sim = make_simulator(elaborate(COUNTER), engine="interp")
        assert type(sim) is Simulator

    def test_set_default_round_trip(self):
        previous = get_default_sim_engine()
        try:
            set_default_sim_engine("interp")
            assert type(make_simulator(elaborate(COUNTER))) is Simulator
        finally:
            set_default_sim_engine(previous)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            set_default_sim_engine("verilator")
        with pytest.raises(ValueError):
            make_simulator(elaborate(COUNTER), engine="verilator")


class TestFastPath:
    def test_lowered_processes_counted(self):
        sim = make_simulator(elaborate(MUXES), engine="compiled")
        assert sim._lowered.fast_processes == sim._lowered.total_processes > 0

    def test_unlowerable_process_falls_back(self):
        # The x literal is unlowerable, so the always block runs on the
        # interpreter while the assign keeps the fast path.
        code = (
            "module m(input [3:0] d, output reg [3:0] q, output [3:0] y);\n"
            "assign y = d + 1;\n"
            "always @(*) q = (d == 4'd15) ? 4'bxxxx : d;\n"
            "endmodule\n"
        )
        design = elaborate(code)
        compiled = make_simulator(design, engine="compiled")
        assert compiled._lowered.fast_processes < compiled._lowered.total_processes
        interp = make_simulator(design, engine="interp")
        for d in (3, 15, 7):
            compiled.step({"d": d})
            interp.step({"d": d})
            assert dict(compiled.state.values) == dict(interp.state.values)

    def test_settle_limit_same_failure_both_engines(self):
        code = (
            "module m(input en, output reg q);\n"
            "initial q = 0;\n"
            "always @(*) if (en) q = ~q;\n"
            "endmodule\n"
        )
        design = elaborate(code)
        limits = ResourceLimits(max_settle_passes=16)

        def outcome(engine):
            try:
                sim = make_simulator(design, engine=engine, limits=limits)
                sim.step({"en": 1})
            except SimulationError as exc:
                return str(exc)
            return None

        interp_error = outcome("interp")
        compiled_error = outcome("compiled")
        assert interp_error is not None
        assert compiled_error == interp_error
        assert "16 passes" in interp_error


class TestSimLowerStageCache:
    def test_second_simulator_hits_cache(self):
        design = elaborate(COUNTER)
        assert design.digest is not None
        cache = StageCache()
        with use_stage_cache(cache):
            first = make_simulator(design, engine="compiled")
            second = make_simulator(design, engine="compiled")
        assert cache.stats.misses.get("sim-lower") == 1
        assert cache.stats.hits.get("sim-lower") == 1
        # The cached closure tables are shared, not re-lowered.
        assert second._lowered is first._lowered

    def test_no_digest_skips_cache(self):
        design = elaborate(COUNTER)
        design.digest = None
        cache = StageCache()
        with use_stage_cache(cache):
            make_simulator(design, engine="compiled")
        assert "sim-lower" not in cache.stats.hits
        assert "sim-lower" not in cache.stats.misses


class TestVerdictMemoization:
    def test_repeat_differential_is_a_hit(self):
        design = elaborate(COUNTER)
        cache = VerdictCache()
        with use_verdict_cache(cache):
            first = run_differential(design, design, samples=8)
            second = run_differential(design, design, samples=8)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert second is first  # the recorded verdict object itself

    def test_key_depends_on_engine_and_params(self):
        digest = ("a" * 64,)
        base = verdict_key("diff", digest, "compiled", None, 8, 0)
        assert base is not None
        assert verdict_key("diff", digest, "interp", None, 8, 0) != base
        assert verdict_key("diff", digest, "compiled", None, 16, 0) != base
        assert verdict_key(
            "diff", digest, "compiled",
            ResourceLimits(max_settle_passes=7), 8, 0,
        ) != base
        assert verdict_key(
            "diff", digest, "compiled", DEFAULT_LIMITS, 8, 0
        ) == base  # None limits normalize to the defaults

    def test_missing_digest_is_uncacheable(self):
        assert verdict_key("diff", ("a" * 64, None), "compiled", None) is None
        design = elaborate(COUNTER)
        design.digest = None
        cache = VerdictCache()
        with use_verdict_cache(cache):
            run_differential(design, design, samples=4)
            run_differential(design, design, samples=4)
        assert len(cache) == 0
        assert cache.stats.uncacheable == 2
        assert cache.stats.hits == 0

    def test_no_verdict_cache_disables_memoization(self):
        design = elaborate(COUNTER)
        cache = VerdictCache()
        with use_verdict_cache(cache), no_verdict_cache():
            run_differential(design, design, samples=4)
        assert cache.stats.lookups == 0

    def test_feedback_memoized_too(self):
        reference = elaborate(COUNTER)
        candidate = elaborate(COUNTER.replace("q + d", "q - d"))
        cache = VerdictCache()
        with use_verdict_cache(cache):
            first = make_sim_feedback(candidate, reference, samples=8)
            second = make_sim_feedback(candidate, reference, samples=8)
        assert cache.stats.hits == 1
        assert second is first
        assert not first.passed

    def test_engines_do_not_share_verdicts(self):
        design = elaborate(COUNTER)
        cache = VerdictCache()
        with use_verdict_cache(cache):
            run_differential(design, design, samples=8, engine="compiled")
            run_differential(design, design, samples=8, engine="interp")
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0
