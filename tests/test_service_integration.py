"""Service integration drills: sustained 2x-capacity overload (typed
sheds, zero crashes, every admitted job completes), a mid-load backend
outage (shed + heal, never crash), deadline expiry under queueing, and
the SIGTERM drain / ``--resume`` replay contract against a real
``rtlfixer serve`` subprocess (mirroring ``test_resume_integration``)."""

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient
from repro.service.protocol import ShedReason
from repro.service.scheduler import SchedulerConfig
from repro.service.server import RepairServer, ServerConfig

FIXABLE = (
    "module top_module(input [7:0] in, output [7:0] out);\n"
    "assign out[8] = in[0];\nendmodule\n"
)


async def _with_server(config: ServerConfig, scenario) -> tuple:
    """Run ``scenario(client, server)`` against an in-process server,
    then drain; returns (scenario result, final stats payload)."""
    server = RepairServer(config)
    serve_task = asyncio.create_task(server.serve())
    for _ in range(200):
        await asyncio.sleep(0.01)
        if server.port:
            break
    client = ServiceClient("127.0.0.1", server.port, timeout=120.0)
    try:
        result = await scenario(client, server)
        _, stats = await client.stats()
    finally:
        server.request_drain()
        await serve_task
    return result, stats


@pytest.mark.slow
class TestOverloadDrill:
    def test_2x_capacity_sheds_typed_and_never_crashes(self):
        """The acceptance drill: offered load ~2x what capacity + queue
        bounds can hold; rejections are typed 429s, every admitted job
        completes, nothing crashes."""
        config = ServerConfig(
            port=0,
            scheduler=SchedulerConfig(
                capacity=2, max_queue_per_tenant=3, max_queued=6
            ),
            work_delay=0.08,
        )

        async def scenario(client, server):
            async def one(index):
                status, result = await client.repair(
                    code=FIXABLE, tenant=f"tenant-{index % 3}", seed=index
                )
                return status, result

            # capacity 2 + 6 queue slots, 24 concurrent submissions:
            # a sustained ~2x+ overload by construction.
            return await asyncio.gather(*(one(i) for i in range(24)))

        outcomes, stats = asyncio.run(_with_server(config, scenario))
        service = stats["service"]
        admitted = [r for s, r in outcomes if s == 200]
        shed = [r for s, r in outcomes if s == 429]
        assert shed, "an overloaded server must shed"
        assert admitted, "an overloaded server must still serve"
        # Every rejection is typed with a machine-readable reason.
        for rejection in shed:
            assert rejection["status"] == "overloaded"
            assert rejection["reason"] in ShedReason.ALL
        # Every admitted job reached a terminal result; none crashed.
        for result in admitted:
            assert result["status"] in ("fixed", "not_fixed")
        assert service["crashed"] == 0
        assert service["completed"] == service["admitted"]
        assert service["total_shed"] == len(shed)

    def test_deadline_expires_while_queued_is_typed_504(self):
        """A job whose budget dies in the queue is answered
        deadline_exceeded without burning a worker slot."""
        config = ServerConfig(
            port=0,
            scheduler=SchedulerConfig(
                capacity=1, max_queue_per_tenant=8, max_queued=8
            ),
            work_delay=0.2,
        )

        async def scenario(client, server):
            async def one(index, deadline_s):
                return await client.repair(
                    code=FIXABLE, tenant="t", seed=index,
                    deadline_s=deadline_s,
                )

            # A slow head-of-line job, then tight-deadline followers
            # that cannot possibly dequeue in time.
            return await asyncio.gather(
                one(0, 30.0), one(1, 0.05), one(2, 0.05)
            )

        outcomes, stats = asyncio.run(_with_server(config, scenario))
        statuses = sorted(result["status"] for _, result in outcomes)
        assert statuses.count("deadline_exceeded") >= 1
        expired = [r for s, r in outcomes if s == 504]
        for result in expired:
            assert result["stage"] in ("queued", "simulated-work",
                                       "retry-dispatch", "react-iteration")
        assert stats["service"]["crashed"] == 0

    def test_chaos_outage_sheds_heals_and_never_crashes(self):
        """Mid-load backend outage: jobs fail as backend errors, the
        breaker trips (later submissions shed typed), and once the
        window passes a probe heals the service."""
        config = ServerConfig(
            port=0,
            scheduler=SchedulerConfig(
                capacity=1, max_queue_per_tenant=32, max_queued=32
            ),
            breaker_threshold=2,
            probe_interval=2,
            chaos_outage=(2, 4),
        )

        async def scenario(client, server):
            outcomes = []
            for index in range(20):
                status, result = await client.repair(
                    code=FIXABLE, tenant="t", seed=index
                )
                outcomes.append((status, result))
            return outcomes

        outcomes, stats = asyncio.run(_with_server(config, scenario))
        service = stats["service"]
        statuses = [result["status"] for _, result in outcomes]
        assert service["crashed"] == 0
        assert service["backend_errors"] >= 2, "outage must bite"
        assert service["shed"].get(ShedReason.BREAKER_OPEN, 0) > 0, \
            "an open breaker must shed typed"
        # Healed: jobs succeed again after the outage window.
        assert statuses[-1] == "fixed"
        assert stats["breaker"]["state"] == "closed"


def _env() -> dict:
    """Subprocess environment with the library importable."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_server(run_dir: str, resume: bool) -> tuple:
    """Spawn a journaled serve subprocess; returns (proc, port)."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0", "--capacity", "2", "--work-delay", "0.15",
        "--run-dir", run_dir,
    ]
    if resume:
        cmd.append("--resume")
    proc = subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("SERVING"):
            return proc, int(line.rsplit(":", 1)[1].strip())
        if not line and proc.poll() is not None:
            break
    proc.kill()
    pytest.fail("serve subprocess never printed its SERVING line")


@pytest.mark.slow
class TestDrainResume:
    def test_sigterm_mid_load_drains_then_resume_replays_identical(
        self, tmp_path
    ):
        """The drain acceptance scenario: SIGTERM while jobs are in
        flight; every submission gets a typed answer; exit 0; a resumed
        server replays completed jobs digest-identically."""
        run_dir = str(tmp_path / "service-run")
        proc, port = _start_server(run_dir, resume=False)

        async def fire_and_kill():
            client = ServiceClient("127.0.0.1", port, timeout=120.0)

            async def one(index):
                try:
                    status, result = await client.repair(
                        code=FIXABLE, tenant="drill", seed=index
                    )
                    return {"index": index, "http": status, **result}
                except (ConnectionError, OSError,
                        asyncio.IncompleteReadError) as exc:
                    return {"index": index, "status": "dropped",
                            "error": str(exc)}

            tasks = [asyncio.create_task(one(i)) for i in range(10)]
            await asyncio.sleep(0.4)  # let some jobs land, some queue
            proc.send_signal(signal.SIGTERM)
            return await asyncio.gather(*tasks)

        try:
            answers = asyncio.run(fire_and_kill())
            assert proc.wait(timeout=120) == 0  # clean drain exits 0
        finally:
            if proc.poll() is None:
                proc.kill()

        dropped = [a for a in answers if a["status"] == "dropped"]
        assert not dropped, f"drain dropped answers: {dropped}"
        completed = {a["index"]: a for a in answers
                     if a["status"] in ("fixed", "not_fixed")}
        for shed in (a for a in answers if a["status"] == "overloaded"):
            assert shed["reason"] in ShedReason.ALL
        assert completed, "some jobs must have completed before the drain"

        # Resume: completed jobs replay from the journal, digest-identical.
        proc2, port2 = _start_server(run_dir, resume=True)

        async def resubmit():
            client = ServiceClient("127.0.0.1", port2, timeout=120.0)
            results = {}
            for index in sorted(completed):
                _, result = await client.repair(
                    code=FIXABLE, tenant="drill", seed=index
                )
                results[index] = result
            return results

        try:
            replays = asyncio.run(resubmit())
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=120) == 0
        finally:
            if proc2.poll() is None:
                proc2.kill()

        for index, replay in replays.items():
            assert replay["replayed"] is True
            assert (replay["result_digest"]
                    == completed[index]["result_digest"])

    def test_resume_without_flag_refuses_existing_journal(self, tmp_path):
        """A journaled run directory is never silently clobbered: the
        second server must be told --resume (checkpoint-misuse exit)."""
        run_dir = str(tmp_path / "service-run")
        proc, port = _start_server(run_dir, resume=False)

        async def one_job():
            client = ServiceClient("127.0.0.1", port, timeout=120.0)
            return await client.repair(code=FIXABLE, tenant="t", seed=0)

        try:
            status, _ = asyncio.run(one_job())
            assert status == 200
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--run-dir", run_dir],
            env=_env(), capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert "--resume" in result.stderr
