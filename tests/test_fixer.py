"""Tests for the RTLFixer public API and its configuration."""

import pytest

from repro.core import RTLFixer, RTLFixerConfig
from repro.diagnostics import compile_source

BROKEN = (
    "module top_module(input [7:0] in, output [7:0] out);\n"
    "assign out[8] = in[0];\nendmodule\n"
)
GOOD = "module m(input a, output y);\nassign y = a;\nendmodule\n"


class TestConfig:
    def test_defaults_match_paper_best(self):
        config = RTLFixerConfig()
        assert config.prompting == "react"
        assert config.compiler == "quartus"
        assert config.use_rag is True
        assert config.max_iterations == 10
        assert config.temperature == 0.4

    def test_invalid_prompting(self):
        with pytest.raises(ValueError):
            RTLFixerConfig(prompting="chain")

    def test_invalid_compiler(self):
        with pytest.raises(ValueError):
            RTLFixerConfig(compiler="vcs")

    def test_simple_plus_rag_rejected(self):
        with pytest.raises(ValueError):
            RTLFixerConfig(compiler="simple", use_rag=True)

    def test_simple_without_rag_ok(self):
        assert RTLFixerConfig(compiler="simple", use_rag=False)

    def test_label(self):
        assert "react" in RTLFixerConfig().label()


class TestRTLFixer:
    def test_default_construction(self):
        fixer = RTLFixer()
        result = fixer.fix(GOOD)
        assert result.success

    def test_overrides(self):
        fixer = RTLFixer(prompting="oneshot", compiler="iverilog", use_rag=False)
        assert fixer.config.prompting == "oneshot"
        assert fixer.retriever is None

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(ValueError):
            RTLFixer(config=RTLFixerConfig(), prompting="oneshot")

    def test_fixes_index_error(self):
        wins = sum(RTLFixer(seed=s).fix(BROKEN).success for s in range(6))
        assert wins >= 1  # index arithmetic is the hard category
        for s in range(6):
            result = RTLFixer(seed=s).fix(BROKEN)
            if result.success:
                assert compile_source(result.final_code).ok

    def test_with_seed_changes_outcome_stream(self):
        base = RTLFixer()
        reseeded = base.with_seed(99)
        assert reseeded.config.seed == 99
        assert reseeded.config.prompting == base.config.prompting
        assert reseeded.database is base.database

    def test_markdown_input_handled(self):
        raw = f"Sure!\n```verilog\n{GOOD}```\n"
        assert RTLFixer().fix(raw).success

    def test_rule_fix_can_be_disabled(self):
        raw = f"Sure!\n```verilog\n{GOOD}```\n"
        fixer = RTLFixer(apply_rule_fix=False, prompting="oneshot")
        # Without extraction the prose makes the input unfixable garbage
        # for a single-shot attempt (the prose is not valid Verilog).
        result = fixer.fix(raw)
        assert result.iterations >= 1

    def test_custom_tier(self):
        fixer = RTLFixer(tier="gpt-4-sim")
        assert fixer.model.name == "gpt-4-sim"
