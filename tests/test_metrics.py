"""Tests for evaluation metrics (Eq. 1 fix rate, Eq. 2 pass@k)."""

import math

import pytest

from repro.eval import fix_rate, fix_rate_single, pass_at_k, pass_at_k_single


class TestFixRate:
    def test_single(self):
        assert fix_rate_single(5, 10) == 0.5

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            fix_rate_single(11, 10)
        with pytest.raises(ValueError):
            fix_rate_single(1, 0)

    def test_expectation_over_problems(self):
        assert fix_rate([(10, 10), (0, 10)]) == 0.5

    def test_empty(self):
        assert fix_rate([]) == 0.0


class TestPassAtK:
    def test_all_correct(self):
        assert pass_at_k_single(20, 20, 1) == 1.0

    def test_none_correct(self):
        assert pass_at_k_single(20, 0, 5) == 0.0

    def test_known_value(self):
        # n=2, c=1, k=1 -> 0.5
        assert pass_at_k_single(2, 1, 1) == pytest.approx(0.5)

    def test_unbiased_formula(self):
        # n=10, c=3, k=5: 1 - C(7,5)/C(10,5) = 1 - 21/252
        assert pass_at_k_single(10, 3, 5) == pytest.approx(1 - 21 / 252)

    def test_k_larger_than_remaining_failures(self):
        assert pass_at_k_single(10, 6, 5) == 1.0

    def test_monotone_in_k(self):
        values = [pass_at_k_single(20, 4, k) for k in range(1, 21)]
        assert values == sorted(values)

    def test_monotone_in_c(self):
        values = [pass_at_k_single(20, c, 5) for c in range(0, 21)]
        assert values == sorted(values)

    def test_pass_at_1_equals_c_over_n(self):
        for n, c in [(20, 7), (10, 3), (5, 5)]:
            assert pass_at_k_single(n, c, 1) == pytest.approx(c / n)

    def test_validation(self):
        with pytest.raises(ValueError):
            pass_at_k_single(0, 0, 1)
        with pytest.raises(ValueError):
            pass_at_k_single(10, 11, 1)
        with pytest.raises(ValueError):
            pass_at_k_single(10, 5, 11)

    def test_mean_over_problems(self):
        assert pass_at_k([(10, 10), (10, 0)], 1) == pytest.approx(0.5)

    def test_empty(self):
        assert pass_at_k([], 5) == 0.0

    def test_never_nan(self):
        for n in range(1, 15):
            for c in range(0, n + 1):
                for k in range(1, n + 1):
                    value = pass_at_k_single(n, c, k)
                    assert 0.0 <= value <= 1.0
                    assert not math.isnan(value)
