"""Tests for the error injector: every category transform must produce
code that actually fails compilation with (mostly) the intended class."""

import random

import pytest

from repro.dataset.corpus import verilogeval
from repro.dataset.inject import (
    TRANSFORMS,
    ErrorInjector,
    verify_injection,
)
from repro.dataset.rtllm import rtllm
from repro.diagnostics import ErrorCategory, compile_source

CORPUS = verilogeval()
RTLLM = rtllm()

SEQ_REF = CORPUS.get("counter4_reset").reference
COMB_LOOP_REF = CORPUS.get("vector_reverse32").reference
HIER_REF = RTLLM.get("rtllm_adder16_hier").reference


class TestIndividualTransforms:
    def test_drop_clk_port_yields_undeclared(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(SEQ_REF, ErrorCategory.UNDECLARED_ID)
        assert injection is not None
        assert ErrorCategory.UNDECLARED_ID in injection.observed

    def test_index_overflow(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(
            CORPUS.get("vector_reverse8").reference, ErrorCategory.INDEX_RANGE
        )
        assert injection is not None
        assert ErrorCategory.INDEX_RANGE in injection.observed

    def test_loop_bound_off_by_one(self):
        from repro.dataset.inject import loop_bound_off_by_one

        mutated = loop_bound_off_by_one(COMB_LOOP_REF, random.Random(0))
        assert mutated is not None
        assert ErrorCategory.INDEX_RANGE in verify_injection(mutated)

    def test_drop_output_reg(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(SEQ_REF, ErrorCategory.INVALID_LVALUE)
        assert injection is not None
        assert ErrorCategory.INVALID_LVALUE in injection.observed

    def test_missing_semicolon(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(SEQ_REF, ErrorCategory.MISSING_SEMICOLON)
        assert injection is not None
        assert injection.observed  # compiler flags *something*

    def test_unbalanced_block(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(SEQ_REF, ErrorCategory.UNBALANCED_BLOCK)
        assert injection is not None
        assert ErrorCategory.UNBALANCED_BLOCK in injection.observed

    def test_bad_literal(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(SEQ_REF, ErrorCategory.BAD_LITERAL)
        assert injection is not None
        assert ErrorCategory.BAD_LITERAL in injection.observed

    def test_port_mismatch_on_hierarchical(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(HIER_REF, ErrorCategory.PORT_MISMATCH)
        assert injection is not None
        assert ErrorCategory.PORT_MISMATCH in injection.observed

    def test_port_mismatch_not_applicable_to_flat(self):
        injector = ErrorInjector(seed=1)
        assert injector.inject(
            CORPUS.get("andgate").reference, ErrorCategory.PORT_MISMATCH
        ) is None

    def test_duplicate_declaration(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(
            CORPUS.get("edge_detect_rise").reference, ErrorCategory.DUPLICATE_DECL
        )
        assert injection is not None
        assert ErrorCategory.DUPLICATE_DECL in injection.observed

    def test_c_style(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(COMB_LOOP_REF, ErrorCategory.C_STYLE_SYNTAX)
        assert injection is not None
        assert ErrorCategory.C_STYLE_SYNTAX in injection.observed

    def test_event_expr(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(SEQ_REF, ErrorCategory.EVENT_EXPR)
        assert injection is not None
        assert injection.observed

    def test_syntax_near(self):
        injector = ErrorInjector(seed=1)
        injection = injector.inject(
            CORPUS.get("andgate").reference, ErrorCategory.SYNTAX_NEAR
        )
        assert injection is not None
        assert injection.observed


@pytest.mark.parametrize("category", list(TRANSFORMS), ids=lambda c: c.value)
def test_every_category_applicable_somewhere(category):
    injector = ErrorInjector(seed=7)
    pool = list(CORPUS) + list(RTLLM)
    hits = 0
    for problem in pool:
        injection = injector.inject(problem.reference, category)
        if injection is not None:
            hits += 1
            assert injection.observed, f"{problem.id}: injected code compiles"
    assert hits > 0, f"no corpus problem supports {category}"


class TestInjectRandom:
    def test_single_error(self):
        injector = ErrorInjector(seed=3)
        injection = injector.inject_random(SEQ_REF)
        assert injection.observed
        assert not compile_source(injection.code).ok

    def test_multiple_errors(self):
        injector = ErrorInjector(seed=3)
        injection = injector.inject_random(SEQ_REF, n_errors=2)
        assert "+" in injection.transform or injection.transform
        assert injection.observed

    def test_deterministic_with_seed(self):
        a = ErrorInjector(seed=11).inject_random(SEQ_REF)
        b = ErrorInjector(seed=11).inject_random(SEQ_REF)
        assert a.code == b.code

    def test_applicable_categories_nonempty(self):
        injector = ErrorInjector()
        cats = injector.applicable_categories(SEQ_REF)
        assert ErrorCategory.UNDECLARED_ID in cats
        assert len(cats) >= 5
