"""Unit tests for the Verilog preprocessor."""

from repro.diagnostics import ErrorCategory
from repro.verilog import SourceFile, preprocess


def pp(code: str, **kwargs):
    return preprocess(SourceFile("t.v", code), **kwargs)


class TestTimescale:
    def test_timescale_recorded_and_stripped(self):
        result = pp("`timescale 1ns/1ps\nmodule m; endmodule")
        assert result.timescale == "1ns/1ps"
        assert result.timescale_lines == [1]
        assert "`" not in result.source.text

    def test_line_numbers_preserved(self):
        result = pp("`timescale 1ns/1ps\nmodule m; endmodule")
        assert result.source.text.startswith("\n")
        assert "module" in result.source.line_text(2)

    def test_misplaced_timescale_line_tracked(self):
        result = pp("module m;\n`timescale 1ns/1ps\nendmodule")
        assert result.timescale_lines == [2]


class TestDefines:
    def test_define_and_expand(self):
        result = pp("`define W 8\nwire [`W-1:0] x;")
        assert "[8-1:0]" in result.source.text

    def test_define_without_value_defaults_to_one(self):
        result = pp("`define FLAG\n`ifdef FLAG\nwire x;\n`endif")
        assert "wire x;" in result.source.text

    def test_undef(self):
        result = pp("`define F 1\n`undef F\n`ifdef F\nwire x;\n`endif")
        assert "wire x;" not in result.source.text

    def test_external_defines(self):
        result = pp("wire [`W:0] x;", defines={"W": "7"})
        assert "[7:0]" in result.source.text

    def test_unknown_macro_reports_undeclared(self):
        result = pp("wire [`NOPE:0] x;")
        assert result.diagnostics
        assert result.diagnostics[0].category is ErrorCategory.UNDECLARED_ID
        assert result.diagnostics[0].args["name"] == "NOPE"


class TestConditionals:
    def test_ifdef_else(self):
        result = pp("`ifdef A\nwire x;\n`else\nwire y;\n`endif")
        assert "wire y;" in result.source.text
        assert "wire x;" not in result.source.text

    def test_ifndef(self):
        result = pp("`ifndef A\nwire x;\n`endif")
        assert "wire x;" in result.source.text

    def test_unterminated_ifdef_reports(self):
        result = pp("`ifdef A\nwire x;")
        assert any(
            d.category is ErrorCategory.UNBALANCED_BLOCK for d in result.diagnostics
        )

    def test_nested_conditionals(self):
        result = pp(
            "`define A 1\n`ifdef A\n`ifdef B\nwire x;\n`else\nwire y;\n`endif\n`endif"
        )
        assert "wire y;" in result.source.text


class TestInclude:
    def test_include_resolved(self):
        result = pp('`include "defs.vh"\n', include_files={"defs.vh": "wire z;"})
        assert "wire z;" in result.source.text

    def test_missing_include_reports(self):
        result = pp('`include "gone.vh"\n')
        assert result.diagnostics[0].category is ErrorCategory.UNDECLARED_ID
        assert result.diagnostics[0].args["what"] == "include file"


class TestEndToEnd:
    def test_preprocessed_code_compiles(self):
        from repro.diagnostics import compile_source

        code = (
            "`timescale 1ns/1ps\n"
            "`define WIDTH 4\n"
            "module m(input [`WIDTH-1:0] a, output [`WIDTH-1:0] y);\n"
            "assign y = ~a;\nendmodule"
        )
        assert compile_source(code).ok


class TestRecursiveDefines:
    """Regression: macro cycles must terminate with a diagnostic
    instead of hanging or blowing the stack (PR 3)."""

    def test_two_macro_cycle_terminates(self):
        result = pp("`define A `B\n`define B `A\nwire x = `A;")
        assert ErrorCategory.RESOURCE_LIMIT in {
            d.category for d in result.diagnostics
        }

    def test_self_reference_terminates(self):
        result = pp("`define X (`X)\nwire x = `X;")
        assert ErrorCategory.RESOURCE_LIMIT in {
            d.category for d in result.diagnostics
        }

    def test_cycle_diagnostic_reported_once_per_macro(self):
        result = pp("`define A `B\n`define B `A\nwire x = `A;\nwire y = `A;")
        cycle = [
            d for d in result.diagnostics
            if d.category is ErrorCategory.RESOURCE_LIMIT
        ]
        assert len(cycle) == 1

    def test_deep_but_acyclic_chain_expands(self):
        lines = ["`define D0 1"]
        for i in range(1, 10):
            lines.append(f"`define D{i} `D{i - 1}")
        lines.append("wire x = `D9;")
        result = pp("\n".join(lines))
        assert not result.diagnostics
        assert "1" in result.source.text
