"""Tests for the AST pretty-printer: round trips, idempotence, and
behavioural equivalence of re-emitted corpus modules."""

import pytest

from repro.dataset.corpus import verilogeval
from repro.dataset.rtllm import rtllm
from repro.diagnostics import compile_source
from repro.sim import run_differential
from repro.verilog import SourceFile, parse
from repro.verilog.writer import write_design, write_expr, write_module

CORPUS = verilogeval()
ALL_PROBLEMS = list(CORPUS) + list(rtllm())


def rewrite(code: str) -> str:
    design = parse(SourceFile("t.v", code))
    return write_design(design)


class TestExpressionWriting:
    def expr_text(self, text: str) -> str:
        code = (
            f"module m(input [7:0] a, input [7:0] b, input c, output [7:0] y);\n"
            f"assign y = {text};\nendmodule"
        )
        design = parse(SourceFile("t.v", code))
        from repro.verilog import ast

        assign = [i for i in design.top_module().items
                  if isinstance(i, ast.ContinuousAssign)][0]
        return write_expr(assign.rhs)

    def test_precedence_no_spurious_parens(self):
        assert self.expr_text("a + b * 2") == "a + b * 2"

    def test_precedence_preserves_required_parens(self):
        assert self.expr_text("(a + b) * 2") == "(a + b) * 2"

    def test_ternary(self):
        assert self.expr_text("c ? a : b") == "c ? a : b"

    def test_nested_ternary_parens(self):
        text = self.expr_text("(c ? a : b) + 1")
        assert text.startswith("(")

    def test_concat_and_replicate(self):
        assert self.expr_text("{a, {2{b}}}") == "{a, {2{b}}}"

    def test_reduction(self):
        assert self.expr_text("&a ^ |b") == "&a ^ |b"

    def test_selects(self):
        assert self.expr_text("a[7:4]") == "a[7:4]"
        assert self.expr_text("a[c]") == "a[c]"
        assert self.expr_text("a[0 +: 4]") == "a[0 +: 4]"

    def test_system_call(self):
        assert self.expr_text("$signed(a) >>> 1") == "$signed(a) >>> 1"


@pytest.mark.parametrize("problem", ALL_PROBLEMS, ids=lambda p: p.id)
def test_roundtrip_compiles_clean(problem):
    emitted = rewrite(problem.reference)
    result = compile_source(emitted)
    assert result.ok, f"{problem.id}: {result.log}\n{emitted}"


@pytest.mark.parametrize("problem", ALL_PROBLEMS[::4], ids=lambda p: p.id)
def test_roundtrip_behaviour_preserved(problem):
    emitted = rewrite(problem.reference)
    original = compile_source(problem.reference).elaborated
    rewritten = compile_source(emitted).elaborated
    diff = run_differential(rewritten, original, samples=24, seed=5)
    assert diff.passed, f"{problem.id}: {diff.summary()}"


@pytest.mark.parametrize("problem", ALL_PROBLEMS[::5], ids=lambda p: p.id)
def test_write_is_idempotent(problem):
    once = rewrite(problem.reference)
    twice = rewrite(once)
    assert once == twice


def test_write_module_single():
    design = parse(SourceFile("t.v", CORPUS.get("mux2to1").reference))
    text = write_module(design.top_module())
    assert text.startswith("module top_module (")
    assert text.rstrip().endswith("endmodule")
