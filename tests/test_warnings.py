"""Tests for warning-severity diagnostics (width truncation)."""

from repro.diagnostics import (
    IVERILOG_CATEGORIES,
    QUARTUS_CATEGORIES,
    ErrorCategory,
    Severity,
    compile_source,
)

TRUNC = "module m(output [3:0] y);\nassign y = 16'hBEEF;\nendmodule"


class TestWidthTruncationWarning:
    def warning_list(self, code: str, **kwargs):
        result = compile_source(code, **kwargs)
        return [d for d in result.diagnostics if d.severity is Severity.WARNING]

    def test_oversized_literal_in_assign_warns(self):
        warnings = self.warning_list(TRUNC)
        assert len(warnings) == 1
        assert warnings[0].category is ErrorCategory.WIDTH_TRUNCATION
        assert warnings[0].args["from_width"] == 16
        assert warnings[0].args["to_width"] == 4

    def test_warning_does_not_fail_compilation(self):
        assert compile_source(TRUNC).ok

    def test_procedural_literal_warns(self):
        warnings = self.warning_list(
            "module m(input clk, output reg [3:0] q);\n"
            "always @(posedge clk) q <= 8'hFF;\nendmodule"
        )
        assert len(warnings) == 1

    def test_fitting_literal_no_warning(self):
        assert self.warning_list(
            "module m(output [7:0] y);\nassign y = 8'hFF;\nendmodule"
        ) == []

    def test_unsized_literal_no_warning(self):
        assert self.warning_list(
            "module m(output [3:0] y);\nassign y = 255;\nendmodule"
        ) == []

    def test_quartus_renders_warning_line_with_errors(self):
        code = (
            "module m(input a, output [3:0] y);\n"
            "assign y = 16'hBEEF;\nassign q = a;\nendmodule"
        )
        log = compile_source(code, flavor="quartus").log
        assert "Warning (10230)" in log
        assert "1 warning" in log

    def test_iverilog_renders_warning_line_with_errors(self):
        code = (
            "module m(input a, output [3:0] y);\n"
            "assign y = 16'hBEEF;\nassign q = a;\nendmodule"
        )
        log = compile_source(code, flavor="iverilog").log
        assert "warning:" in log

    def test_ok_compile_produces_empty_log_despite_warning(self):
        assert compile_source(TRUNC, flavor="quartus").log == ""


class TestTaxonomyInvariants:
    def test_warning_category_excluded_from_taxonomy(self):
        assert ErrorCategory.WIDTH_TRUNCATION not in QUARTUS_CATEGORIES
        assert ErrorCategory.WIDTH_TRUNCATION not in IVERILOG_CATEGORIES
        assert len(QUARTUS_CATEGORIES) == 11
        assert len(IVERILOG_CATEGORIES) == 7
