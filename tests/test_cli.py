"""Tests for the rtlfixer command-line interface."""

import pytest

from repro.cli import main

GOOD = "module m(input a, output y);\nassign y = a;\nendmodule\n"
BROKEN = (
    "module top_module(input [7:0] in, output reg [7:0] out);\n"
    "always @(posedge clk) out <= in;\nendmodule\n"
)


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.v"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.v"
    path.write_text(BROKEN)
    return str(path)


class TestCompileCommand:
    def test_ok_file(self, good_file, capsys):
        assert main(["compile", good_file]) == 0
        assert "compile OK" in capsys.readouterr().out

    def test_broken_file(self, broken_file, capsys):
        assert main(["compile", broken_file]) == 1
        assert "clk" in capsys.readouterr().out

    def test_quartus_flavor(self, broken_file, capsys):
        assert main(["compile", broken_file, "--compiler", "quartus"]) == 1
        assert "Error (10161)" in capsys.readouterr().out


class TestFixCommand:
    def test_fixes_broken_file(self, broken_file, capsys):
        code = main(["fix", broken_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "fixed in" in out
        assert "endmodule" in out

    def test_transcript_flag(self, broken_file, capsys):
        main(["fix", broken_file, "--transcript"])
        out = capsys.readouterr().out
        assert "Thought 1:" in out

    def test_oneshot_mode(self, good_file):
        assert main(["fix", good_file, "--prompting", "oneshot", "--no-rag"]) == 0


class TestDatasetCommand:
    def test_builds_and_saves(self, tmp_path, capsys):
        out_path = str(tmp_path / "ds.json")
        assert main(["dataset", out_path, "--samples", "4", "--size", "20"]) == 0
        out = capsys.readouterr().out
        assert "wrote 20 entries" in out
        from repro.dataset import SyntaxDataset

        assert len(SyntaxDataset.load(out_path)) == 20


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_flavor_rejected(self, good_file):
        with pytest.raises(SystemExit):
            main(["compile", good_file, "--compiler", "vcs"])
