"""Property-based tests for the AST writer: generated expressions round
trip through write -> parse -> write unchanged."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verilog import SourceFile, parse
from repro.verilog import ast
from repro.verilog.source import dummy_span
from repro.verilog.writer import write_expr

_SPAN = dummy_span()

_identifiers = st.sampled_from(["a", "b", "c", "sel", "data"])


def _number(bits: int, width: int | None = None) -> ast.Number:
    return ast.Number(span=_SPAN, bits=bits, width=width)


_leaf = st.one_of(
    st.integers(min_value=0, max_value=255).map(lambda v: _number(v)),
    st.integers(min_value=0, max_value=15).map(lambda v: _number(v, width=4)),
    _identifiers.map(lambda n: ast.Identifier(span=_SPAN, name=n)),
)

_binops = st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "&&"])
_unops = st.sampled_from(["~", "-", "!", "&", "|"])


def _exprs(depth: int = 3):
    if depth == 0:
        return _leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        _leaf,
        st.tuples(_binops, sub, sub).map(
            lambda t: ast.Binary(span=_SPAN, op=t[0], lhs=t[1], rhs=t[2])
        ),
        st.tuples(_unops, sub).map(
            lambda t: ast.Unary(span=_SPAN, op=t[0], operand=t[1])
        ),
        st.tuples(sub, sub, sub).map(
            lambda t: ast.Ternary(span=_SPAN, cond=t[0], then=t[1], other=t[2])
        ),
        st.lists(sub, min_size=1, max_size=3).map(
            lambda parts: ast.Concat(span=_SPAN, parts=parts)
        ),
    )


def _reparse_expr(text: str) -> ast.Expr:
    code = (
        "module m(input [7:0] a, input [7:0] b, input [7:0] c,\n"
        "  input [7:0] sel, input [7:0] data, output [7:0] y);\n"
        f"assign y = {text};\nendmodule"
    )
    sink = []
    design = parse(SourceFile("t.v", code), sink)
    assert not sink, f"writer emitted unparseable text: {text!r} -> {sink}"
    assigns = [
        item for item in design.top_module().items
        if isinstance(item, ast.ContinuousAssign)
    ]
    return assigns[0].rhs


class TestWriterRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(_exprs())
    def test_write_parse_write_fixpoint(self, expr):
        once = write_expr(expr)
        reparsed = _reparse_expr(once)
        twice = write_expr(reparsed)
        assert once == twice

    @settings(max_examples=60, deadline=None)
    @given(_exprs())
    def test_written_expression_always_parses(self, expr):
        _reparse_expr(write_expr(expr))
