"""Tests for DBSCAN clustering over Jaccard distance."""

from repro.dataset import cluster_codes, dbscan, jaccard_distance, shingles
from repro.dataset.cluster import DBSCANResult, tokenize_for_similarity


class TestShingles:
    def test_tokenization(self):
        assert tokenize_for_similarity("assign y = a+b;") == [
            "assign", "y", "=", "a", "+", "b", ";",
        ]

    def test_shingle_count(self):
        s = shingles("a b c d", k=3)  # tokens: a b c d -> 2 shingles
        assert len(s) == 2

    def test_short_input(self):
        assert len(shingles("a", k=3)) == 1
        assert shingles("", k=3) == frozenset()


class TestJaccard:
    def test_identical_zero_distance(self):
        s = shingles("module m; endmodule")
        assert jaccard_distance(s, s) == 0.0

    def test_disjoint_distance_one(self):
        assert jaccard_distance(frozenset({1}), frozenset({2})) == 1.0

    def test_empty_sets(self):
        assert jaccard_distance(frozenset(), frozenset()) == 0.0

    def test_symmetry(self):
        a = shingles("assign y = a & b;")
        b = shingles("assign y = a | b;")
        assert jaccard_distance(a, b) == jaccard_distance(b, a)

    def test_bounded(self):
        a = shingles("assign y = a & b;")
        b = shingles("always @(*) y = a;")
        assert 0.0 <= jaccard_distance(a, b) <= 1.0


CODE_A1 = "module m(input a, output y);\nassign y = a;\nendmodule"
CODE_A2 = "module m(input a, output y);\nassign y = a;\nendmodule\n// extra"
CODE_B = (
    "module counter(input clk, input reset, output reg [7:0] q);\n"
    "always @(posedge clk) begin if (reset) q <= 0; else q <= q + 1; end\n"
    "endmodule"
)


class TestDBSCAN:
    def test_similar_codes_cluster_together(self):
        result = cluster_codes([CODE_A1, CODE_A2, CODE_B], eps=0.4)
        assert result.labels[0] == result.labels[1]
        assert result.labels[2] != result.labels[0]

    def test_noise_points(self):
        result = cluster_codes([CODE_A1, CODE_B], eps=0.1, min_samples=2)
        assert result.labels == [-1, -1]
        assert result.n_clusters == 0

    def test_representatives_cover_all_clusters_and_noise(self):
        result = cluster_codes([CODE_A1, CODE_A2, CODE_B], eps=0.4)
        reps = result.representatives()
        assert 0 in reps  # first of the A-cluster
        assert 2 in reps  # B, noise or own cluster
        assert 1 not in reps  # duplicate of A

    def test_min_samples_one_gives_every_point_a_cluster(self):
        result = cluster_codes([CODE_A1, CODE_B], eps=0.1, min_samples=1)
        assert -1 not in result.labels
        assert result.n_clusters == 2

    def test_empty_input(self):
        result = dbscan([], eps=0.3)
        assert result.labels == []
        assert isinstance(result, DBSCANResult)

    def test_members(self):
        result = cluster_codes([CODE_A1, CODE_A2, CODE_B], eps=0.4)
        label = result.labels[0]
        assert set(result.members(label)) == {0, 1}

    def test_transitive_chaining(self):
        # A chain a-b-c where a and c are only close through b.
        a = frozenset(range(0, 10))
        b = frozenset(range(3, 13))
        c = frozenset(range(6, 16))
        result = dbscan([a, b, c], eps=0.65, min_samples=2)
        assert result.labels[0] == result.labels[1] == result.labels[2]
