"""Corpus sanity: every reference implementation must compile cleanly
and pass its own differential testbench."""

import pytest

from repro.dataset.corpus import verilogeval
from repro.dataset.rtllm import rtllm
from repro.diagnostics import compile_source
from repro.sim import run_differential

VERILOGEVAL = verilogeval()
RTLLM = rtllm()
ALL_PROBLEMS = list(VERILOGEVAL) + list(RTLLM)


@pytest.mark.parametrize("problem", ALL_PROBLEMS, ids=lambda p: p.id)
def test_reference_compiles(problem):
    result = compile_source(problem.reference)
    assert result.ok, f"{problem.id}: {result.log}"


@pytest.mark.parametrize("problem", ALL_PROBLEMS, ids=lambda p: p.id)
def test_reference_self_differential(problem):
    elab = compile_source(problem.reference).elaborated
    result = run_differential(elab, elab, samples=24, seed=1)
    assert result.passed, f"{problem.id}: {result.summary()}"


@pytest.mark.parametrize("problem", ALL_PROBLEMS, ids=lambda p: p.id)
def test_header_matches_reference(problem):
    # The header handed to the generator must be a prefix-compatible
    # declaration of the reference's top module.
    assert problem.header.startswith("module ")
    head_name = problem.header.split()[1].strip("(")
    assert head_name in problem.reference
    assert problem.human_desc and problem.machine_desc


class TestProblemSets:
    def test_verilogeval_size_and_split(self):
        assert len(VERILOGEVAL) >= 40
        easy = VERILOGEVAL.subset("easy")
        hard = VERILOGEVAL.subset("hard")
        assert len(easy) + len(hard) == len(VERILOGEVAL)
        assert len(easy) >= 15 and len(hard) >= 15

    def test_rtllm_has_hierarchical_designs(self):
        hier = [p for p in RTLLM if p.reference.count("module ") > 1]
        assert len(hier) >= 2

    def test_unique_ids(self):
        ids = [p.id for p in ALL_PROBLEMS]
        assert len(set(ids)) == len(ids)

    def test_get_and_missing(self):
        from repro.errors import DatasetError

        assert VERILOGEVAL.get("dff").kind == "seq"
        with pytest.raises(DatasetError):
            VERILOGEVAL.get("nope")

    def test_prompt_contains_description_and_header(self):
        problem = VERILOGEVAL.get("mux2to1")
        prompt = problem.prompt("human")
        assert problem.human_desc in prompt
        assert problem.header in prompt
        assert problem.machine_desc in problem.prompt("machine")
