"""The crash-proof simulation sandbox: budgets, verdicts, telemetry.

The hostile-corpus *gate* (scripts/sandbox_gate.py) proves containment
end-to-end under production budgets; this suite pins down the unit
surface -- limit parsing/validation, per-budget overflow kinds on both
engines, the never-crash classification boundary, verdict-cache
hygiene, the mid-simulation ambient deadline, the wall-clock watchdog
(with an injectable clock) and the sandbox telemetry counters.
"""

import dataclasses

import pytest

from repro.core.config import RTLFixerConfig
from repro.diagnostics import compile_source
from repro.errors import (
    DeadlineExceededError,
    SimLimitExceeded,
    SimulationError,
)
from repro.runtime.checkpoint import config_digest
from repro.service.deadline import Deadline, use_deadline
from repro.sim.limits import (
    DEFAULT_SIM_LIMITS,
    FUZZ_SIM_LIMITS,
    UNTRACKED,
    BoundedDisplayLog,
    SimLimits,
    SimLimitTracker,
    parse_sim_limits,
    use_sim_limits,
)
from repro.sim.sandbox import (
    SandboxStats,
    SimVerdict,
    run_sandboxed,
    simulate,
    use_sandbox_stats,
)
from repro.sim.testbench import run_differential
from repro.sim.verdict import VerdictCache, no_verdict_cache, use_verdict_cache

ENGINES = ("interp", "compiled")

#: Stabilises only through case-equality, so it oscillates forever.
OSCILLATOR = (
    "module top_module(input a, output w);\n"
    "assign w = (w === 1'b0) ? 1'b1 : 1'b0;\nendmodule\n"
)

COUNTER = (
    "module top_module(input clk, output reg [7:0] q);\n"
    "always @(posedge clk) q <= q + 1;\nendmodule\n"
)

DISPLAYER = (
    "module top_module(input clk, output reg q);\n"
    "always @(posedge clk) begin q <= ~q; $display(\"t %b\", q); end\n"
    "endmodule\n"
)


def build(code: str):
    result = compile_source(code)
    assert result.ok, result.log
    return result.elaborated


# ---------------------------------------------------------------------------
# SimLimits parsing and validation
# ---------------------------------------------------------------------------


class TestLimitsParsing:
    def test_presets(self):
        assert parse_sim_limits("default") is DEFAULT_SIM_LIMITS
        assert parse_sim_limits("fuzz") is FUZZ_SIM_LIMITS

    def test_key_value_spec(self):
        limits = parse_sim_limits("cycles=100,display=7,wall=2.5")
        assert limits.max_cycles == 100
        assert limits.max_display_lines == 7
        assert limits.wall_clock_s == 2.5
        # unspecified keys keep their defaults
        assert limits.max_trace_bytes == DEFAULT_SIM_LIMITS.max_trace_bytes

    @pytest.mark.parametrize(
        "spec", ["", "bogus=1", "cycles", "cycles=ten", "wall=0x", "=5"]
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_sim_limits(spec)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_cycles", 0),
            ("max_events_per_cycle", -1),
            ("max_display_lines", True),
            ("wall_clock_s", 0),
            ("wall_clock_s", -1.0),
        ],
    )
    def test_validation_rejects(self, field, value):
        with pytest.raises(ValueError):
            SimLimits(**{field: value})

    def test_describe_roundtrips_through_parse(self):
        limits = SimLimits(max_cycles=123, wall_clock_s=1.5)
        reparsed = parse_sim_limits(
            limits.describe().replace(" ", ",")
        )
        assert reparsed == limits

    def test_default_scoping(self):
        tight = SimLimits(max_cycles=9)
        with use_sim_limits(tight) as active:
            assert active is tight
            from repro.sim.limits import get_default_sim_limits

            assert get_default_sim_limits() is tight


# ---------------------------------------------------------------------------
# Budget overflows: typed limit verdicts, identical on both engines
# ---------------------------------------------------------------------------


class TestBudgetKinds:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_oscillator_is_a_settle_limit(self, engine):
        design = build(OSCILLATOR)
        with no_verdict_cache():
            outcome = simulate(design, design, samples=4, engine=engine)
        assert outcome.verdict.category == "limit"
        assert outcome.verdict.kind == "settle passes"
        assert outcome.verdict.phase == "construct"
        assert outcome.verdict.engine == engine

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cycle_budget(self, engine):
        design = build(COUNTER)
        with no_verdict_cache():
            outcome = simulate(
                design, design, samples=100, engine=engine,
                sim_limits=SimLimits(max_cycles=8),
            )
        assert outcome.verdict.category == "limit"
        assert outcome.verdict.kind == "simulated cycles"
        assert outcome.verdict.phase == "cycle"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_display_budget(self, engine):
        design = build(DISPLAYER)
        with no_verdict_cache():
            outcome = simulate(
                design, design, samples=64, engine=engine,
                sim_limits=SimLimits(max_display_lines=4),
            )
        assert outcome.verdict.category == "limit"
        assert outcome.verdict.kind == "display lines"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_trace_budget(self, engine):
        design = build(COUNTER)
        with no_verdict_cache():
            outcome = simulate(
                design, design, mode="feedback", samples=64, engine=engine,
                sim_limits=SimLimits(max_trace_entries=4),
            )
        assert outcome.verdict.category == "limit"
        assert outcome.verdict.kind == "trace entries"
        assert outcome.verdict.phase == "trace"

    def test_engines_agree_on_every_kind(self):
        cases = [
            (OSCILLATOR, "diff", DEFAULT_SIM_LIMITS),
            (COUNTER, "diff", SimLimits(max_cycles=8)),
            (DISPLAYER, "diff", SimLimits(max_display_lines=4)),
            (COUNTER, "feedback", SimLimits(max_trace_entries=4)),
        ]
        for code, mode, limits in cases:
            design = build(code)
            with no_verdict_cache():
                verdicts = [
                    simulate(
                        design, design, mode=mode, samples=32,
                        engine=engine, sim_limits=limits,
                    ).verdict
                    for engine in ENGINES
                ]
            assert verdicts[0].category == verdicts[1].category
            assert verdicts[0].kind == verdicts[1].kind

    def test_clean_design_is_ok_under_default_budgets(self):
        design = build(COUNTER)
        with no_verdict_cache():
            outcome = simulate(design, design, samples=32)
        assert outcome.verdict.ok
        assert outcome.result.passed

    def test_untracked_sentinel_disables_tracking(self):
        design = build(COUNTER)
        with no_verdict_cache():
            result = run_differential(
                design, design, samples=16, sim_limits=UNTRACKED
            )
        assert result.passed


# ---------------------------------------------------------------------------
# The never-crash classification boundary
# ---------------------------------------------------------------------------


class TestRunSandboxed:
    def test_success_passes_result_through(self):
        result, verdict = run_sandboxed(lambda: 42, "interp")
        assert result == 42 and verdict is None

    def test_limit_overflow_becomes_limit_verdict(self):
        def body():
            raise SimLimitExceeded("sim events", 10, phase="cycle")

        result, verdict = run_sandboxed(body, "compiled")
        assert result is None
        assert verdict.category == "limit"
        assert verdict.kind == "sim events"
        assert verdict.phase == "cycle"
        assert verdict.engine == "compiled"

    def test_simulation_error_stays_fail(self):
        def body():
            raise SimulationError("no such net: 'q'")

        _, verdict = run_sandboxed(body, "interp")
        assert verdict.category == "fail"

    def test_internal_error_becomes_crashed_verdict(self):
        def body():
            raise RuntimeError("boom")

        _, verdict = run_sandboxed(body, "interp")
        assert verdict.category == "crashed"
        assert verdict.kind == "RuntimeError"
        assert not verdict.cacheable

    def test_shutdown_propagates(self):
        def body():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sandboxed(body, "interp")

    def test_cacheable_taxonomy(self):
        assert SimVerdict(category="ok").cacheable
        assert SimVerdict(category="fail").cacheable
        assert not SimVerdict(category="limit").cacheable
        assert not SimVerdict(category="crashed").cacheable
        assert not SimVerdict(category="ok", injected=True).cacheable


# ---------------------------------------------------------------------------
# Verdict-cache hygiene
# ---------------------------------------------------------------------------


class TestCacheHygiene:
    def test_sim_limits_separate_cache_keys(self):
        design = build(COUNTER)
        cache = VerdictCache()
        with use_verdict_cache(cache):
            run_differential(design, design, samples=8)
            assert len(cache) == 1
            run_differential(
                design, design, samples=8,
                sim_limits=SimLimits(max_cycles=4_999),
            )
            assert len(cache) == 2, "different budgets must never alias"

    def test_limit_verdicts_never_memoized(self):
        design = build(OSCILLATOR)
        cache = VerdictCache()
        with use_verdict_cache(cache):
            first = run_differential(design, design, samples=4)
            second = run_differential(design, design, samples=4)
        assert first.verdict.category == "limit"
        assert second.verdict.category == "limit"
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# Ambient deadline at the sim-cycle seam
# ---------------------------------------------------------------------------


class TestMidSimulationDeadline:
    def test_expired_deadline_fires_mid_simulation(self):
        design = build(COUNTER)
        deadline = Deadline(1e-6)
        with no_verdict_cache(), use_sandbox_stats() as stats:
            with use_deadline(deadline):
                with pytest.raises(DeadlineExceededError) as exc_info:
                    run_differential(design, design, samples=64)
        # typed, attributed to the sim-cycle checkpoint, and counted --
        # never converted into a crashed verdict
        assert "sim-cycle" in str(exc_info.value)
        assert stats.deadline_fires == 1
        assert stats.crashed_verdicts == 0

    def test_no_deadline_means_no_interference(self):
        design = build(COUNTER)
        with no_verdict_cache(), use_deadline(None):
            assert run_differential(design, design, samples=8).passed


# ---------------------------------------------------------------------------
# Wall-clock watchdog (injectable clock)
# ---------------------------------------------------------------------------


class TestWatchdog:
    def test_watchdog_fires_within_one_stride(self):
        now = [0.0]
        tracker = SimLimitTracker(
            SimLimits(wall_clock_s=5.0), clock=lambda: now[0]
        )
        tracker.begin_cycle()  # first cycle polls immediately: in budget
        now[0] = 99.0
        with pytest.raises(SimLimitExceeded) as exc_info:
            for _ in range(tracker.TICK_STRIDE + 1):
                tracker.begin_cycle()
        assert exc_info.value.kind == "wall clock"

    def test_stride_bounds_poll_frequency(self):
        calls = [0]

        def clock():
            calls[0] += 1
            return 0.0

        tracker = SimLimitTracker(SimLimits(), clock=clock)
        for _ in range(tracker.TICK_STRIDE * 3):
            tracker.begin_cycle()
        # one read at construction plus one per stride
        assert calls[0] <= 1 + 3


# ---------------------------------------------------------------------------
# Display log and telemetry
# ---------------------------------------------------------------------------


class TestTelemetry:
    def test_bounded_display_log_charges(self):
        tracker = SimLimitTracker(SimLimits(max_display_lines=2))
        log = BoundedDisplayLog(tracker)
        log.append("one")
        log.append("two")
        with pytest.raises(SimLimitExceeded) as exc_info:
            log.append("three")
        assert exc_info.value.kind == "display lines"
        assert list(log) == ["one", "two"]

    def test_untracked_display_log_is_a_plain_list(self):
        log = BoundedDisplayLog(None)
        for i in range(10):
            log.append(str(i))
        assert len(log) == 10

    def test_stats_count_limit_and_watchdog(self):
        stats = SandboxStats()
        stats.record(SimVerdict(category="limit", kind="sim events"))
        stats.record(SimVerdict(category="limit", kind="wall clock"))
        stats.record(SimVerdict(category="crashed", kind="RuntimeError"))
        stats.record(SimVerdict(category="crashed", injected=True))
        assert stats.limit_verdicts == 2
        assert stats.watchdog_fires == 1
        assert stats.crashed_verdicts == 1  # chaos fabrications excluded
        assert stats.as_dict()["limit_verdicts"] == 2

    def test_harness_counts_into_active_stats(self):
        design = build(OSCILLATOR)
        with no_verdict_cache(), use_sandbox_stats() as stats:
            simulate(design, design, samples=4)
        assert stats.limit_verdicts == 1


# ---------------------------------------------------------------------------
# Config integration
# ---------------------------------------------------------------------------


class TestConfigIntegration:
    def test_sim_limits_participate_in_config_digest(self):
        base = RTLFixerConfig()
        tightened = dataclasses.replace(
            base, sim_limits=SimLimits(max_cycles=7)
        )
        assert config_digest(base) != config_digest(tightened)

    def test_config_rejects_non_simlimits(self):
        with pytest.raises(ValueError):
            RTLFixerConfig(sim_limits="cycles=7")
