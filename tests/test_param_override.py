"""Tests for per-instance parameter overrides (#(.W(8)))."""

from repro.diagnostics import compile_source
from repro.sim import Simulator
from repro.verilog.elaborate import specialize_module

HIER = """
module top(input [7:0] a, output [7:0] y, output [3:0] z);
  inv #(.W(8)) wide (.in(a), .out(y));
  inv #(.W(4)) narrow (.in(a[3:0]), .out(z));
endmodule
module inv #(parameter W = 2)(input [W-1:0] in, output [W-1:0] out);
  assign out = ~in;
endmodule
"""


class TestParameterOverrides:
    def test_two_specializations_of_one_module(self):
        sim = Simulator(compile_source(HIER).elaborated)
        sim.step({"a": 0x0F})
        assert sim.get("y").bits == 0xF0
        assert sim.get("z").bits == 0x0

    def test_override_values_recorded(self):
        elab = compile_source(HIER).elaborated
        instances = elab.modules["top"].instances
        assert instances[0].param_values == {"W": 8}
        assert instances[1].param_values == {"W": 4}

    def test_specialize_module_widths(self):
        elab = compile_source(HIER).elaborated
        spec = specialize_module(elab, "inv", {"W": 16})
        assert spec.params["W"] == 16
        assert spec.ports[0].width == 16

    def test_default_used_without_override(self):
        code = (
            "module top(input [1:0] a, output [1:0] y);\n"
            "inv u (.in(a), .out(y));\nendmodule\n"
            "module inv #(parameter W = 2)(input [W-1:0] in, output [W-1:0] out);\n"
            "assign out = ~in;\nendmodule"
        )
        sim = Simulator(compile_source(code).elaborated)
        sim.step({"a": 0b01})
        assert sim.get("y").bits == 0b10

    def test_override_expression_evaluated_in_parent(self):
        code = (
            "module top(input [7:0] a, output [7:0] y);\n"
            "localparam HALF = 4;\n"
            "inv #(.W(HALF * 2)) u (.in(a), .out(y));\nendmodule\n"
            "module inv #(parameter W = 2)(input [W-1:0] in, output [W-1:0] out);\n"
            "assign out = ~in;\nendmodule"
        )
        sim = Simulator(compile_source(code).elaborated)
        sim.step({"a": 0x00})
        assert sim.get("y").bits == 0xFF

    def test_localparam_not_overridable(self):
        code = (
            "module top(output [7:0] y);\n"
            "fixed #(.N(9)) u (.out(y));\nendmodule\n"
            "module fixed #(parameter N = 3)(output [7:0] out);\n"
            "localparam M = 5;\n"
            "assign out = N + M;\nendmodule"
        )
        sim = Simulator(compile_source(code).elaborated)
        sim.step()
        assert sim.get("y").bits == 14  # N overridden to 9, M stays 5

    def test_nested_param_dependent_internal_range(self):
        code = (
            "module top(input [7:0] a, output y);\n"
            "reducer #(.W(8)) u (.in(a), .out(y));\nendmodule\n"
            "module reducer #(parameter W = 2)(input [W-1:0] in, output out);\n"
            "wire [W-1:0] inverted;\n"
            "assign inverted = ~in;\n"
            "assign out = &inverted;\nendmodule"
        )
        sim = Simulator(compile_source(code).elaborated)
        sim.step({"a": 0x00})
        assert sim.get("y").bits == 1
        sim.step({"a": 0x01})
        assert sim.get("y").bits == 0
