"""Documentation coverage: every public module, class and function in
the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports documented at their origin
        if not inspect.getdoc(obj):
            missing.append(name)
    assert not missing, f"{module_name}: missing docstrings on {missing}"


def test_public_methods_of_core_classes_documented():
    from repro.core import RTLFixer, RTLFixerConfig
    from repro.agents import ReActAgent, OneShotAgent
    from repro.sim import Simulator, Logic
    from repro.dataset import GenerationModel, ErrorInjector

    for cls in (RTLFixer, RTLFixerConfig, ReActAgent, OneShotAgent,
                Simulator, Logic, GenerationModel, ErrorInjector):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"
