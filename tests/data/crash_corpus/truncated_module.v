module trunc(input clk, input [7:0] d, output reg [7:0] q);
  always @(posedge clk) begin
    q <= d + 8'h0f + "unterminated /* also unterminated
    q <= (d << 
