`define F0 x
`define F1 `F0 `F0
`define F2 `F1 `F1
`define F3 `F2 `F2
`define F4 `F3 `F3
`define F5 `F4 `F4
`define F6 `F5 `F5
`define F7 `F6 `F6
`define F8 `F7 `F7
`define F9 `F8 `F8
`define F10 `F9 `F9
`define F11 `F10 `F10
`define F12 `F11 `F11
`define F13 `F12 `F12
`define F14 `F13 `F13
`define F15 `F14 `F14
`define F16 `F15 `F15
`define F17 `F16 `F16
`define F18 `F17 `F17
`define F19 `F18 `F18
`define F20 `F19 `F19
`define F21 `F20 `F20
`define F22 `F21 `F21
`define F23 `F22 `F22
`define CYC_A `CYC_B
`define CYC_B `CYC_A
module bomb; wire w = `F23; wire v = `CYC_A; endmodule
