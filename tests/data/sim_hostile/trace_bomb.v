// hostile: mode=feedback samples=1500 kind=trace_bytes
// Trace bomb: four 2048-bit outputs make the traced-feedback harness
// record ~2 KiB of waveform data per cycle (candidate + reference share
// one budget pool), so the trace-byte budget fires after ~500 cycles --
// far before the cycle budget would.
module top_module(input a, output [2047:0] w, output [2047:0] x,
                  output [2047:0] y, output [2047:0] z);
  assign w = {2048{a}};
  assign x = ~{2048{a}};
  assign y = {1024{2'b10}};
  assign z = {1024{a, ~a}};
endmodule
