// hostile: mode=diff samples=8 kind=display_lines
// Floods the $display capture log: ~3000 lines per clock edge, so the
// bounded display sink overflows on the first simulated cycle long
// before any other budget is touched.
module top_module(input clk, output reg out);
  reg [15:0] i;
  always @(posedge clk) begin
    for (i = 0; i < 3000; i = i + 1) begin
      $display("spam %d", i);
    end
    out = 1'b1;
  end
endmodule
