// hostile: mode=diff samples=4 kind=stmt_executions
// A procedural loop that never comes close to terminating.  Both
// engines run it on the interpreter (single loops past the fast-path
// lowering cap always bail), so the per-invocation statement budget
// trips identically.
module top_module(input clk, output reg out);
  reg [31:0] i;
  always @(posedge clk) begin
    i = 0;
    while (i < 32'hFFFF0000) begin
      i = i + 1;
    end
    out = i[0];
  end
endmodule
