// hostile: mode=diff samples=100000 kind=simulated_cycles
// A perfectly innocent counter asked to run for a hundred thousand
// samples: the lifetime cycle budget cuts the run off instead of
// letting one harness call burn minutes of wall clock.
module top_module(input clk, output reg [7:0] q);
  always @(posedge clk) q <= q + 1;
endmodule
