// hostile: mode=diff samples=8 kind=settle_passes
// A genuinely oscillating combinational net.  Plain feedback loops
// such as "assign w = ~w & a;" stabilise at X under 4-state semantics,
// so this one uses case-equality -- === returns a *known* 0/1 even for
// X operands -- to keep the net flipping between 0 and 1 forever.
module top_module(input a, output w);
  assign w = (w === 1'b0) ? 1'b1 : 1'b0;
endmodule
