"""Crash-proofing suite: resource limits, the internal-error boundary,
the crash corpus, and the deterministic fuzz harness."""

import time
from pathlib import Path

import pytest

from repro.diagnostics import (
    IVERILOG_CATEGORIES,
    QUARTUS_CATEGORIES,
    Compiler,
    ErrorCategory,
    compile_source,
)
from repro.diagnostics.codes import CATALOG
from repro.errors import ResourceLimitExceeded
from repro.runtime import CompileCache, compile_key, isolable
from repro.runtime.fuzz import (
    MUTATORS,
    SEED_CORPUS,
    SIM_MUTATORS,
    FuzzConfig,
    run_fuzz,
)
from repro.verilog.limits import (
    DEFAULT_LIMITS,
    FUZZ_LIMITS,
    LIMIT_KINDS,
    LimitTracker,
    ResourceLimits,
)

CORPUS_DIR = Path(__file__).parent / "data" / "crash_corpus"

GOOD = "module m(input a, output b);\n  assign b = a;\nendmodule\n"


class TestResourceLimits:
    def test_defaults_positive_and_kinds_complete(self):
        for kind, attr in LIMIT_KINDS.items():
            assert DEFAULT_LIMITS.limit_for(kind) > 0
            assert getattr(DEFAULT_LIMITS, attr) == DEFAULT_LIMITS.limit_for(kind)

    def test_fuzz_limits_tighter_than_defaults(self):
        for kind in LIMIT_KINDS:
            assert FUZZ_LIMITS.limit_for(kind) <= DEFAULT_LIMITS.limit_for(kind)

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            ResourceLimits(max_tokens=0)
        with pytest.raises(ValueError):
            ResourceLimits(max_source_bytes=-1)

    def test_tracker_charge_and_diagnose_once(self):
        tracker = LimitTracker(limits=ResourceLimits(max_tokens=3))
        assert tracker.charge("tokens", 3)
        assert not tracker.charge("tokens")
        assert tracker.exhausted("tokens")
        assert tracker.diagnose("tokens", None) is not None
        assert tracker.diagnose("tokens", None) is None  # one-shot

    def test_tracker_check_or_raise(self):
        tracker = LimitTracker(limits=ResourceLimits(max_parse_depth=2))
        tracker.check_or_raise("parse nesting depth", 2)
        with pytest.raises(ResourceLimitExceeded) as exc_info:
            tracker.check_or_raise("parse nesting depth", 3)
        assert exc_info.value.kind == "parse nesting depth"
        assert exc_info.value.limit == 2

    def test_unknown_kind_rejected(self):
        tracker = LimitTracker()
        with pytest.raises(KeyError):
            tracker.charge("no such budget")


class TestTaxonomyExclusion:
    """The new categories must not disturb the paper's 7/11 taxonomy."""

    def test_new_categories_out_of_taxonomy(self):
        assert ErrorCategory.RESOURCE_LIMIT not in QUARTUS_CATEGORIES
        assert ErrorCategory.INTERNAL not in QUARTUS_CATEGORIES
        assert ErrorCategory.RESOURCE_LIMIT not in IVERILOG_CATEGORIES
        assert ErrorCategory.INTERNAL not in IVERILOG_CATEGORIES
        assert not CATALOG[ErrorCategory.RESOURCE_LIMIT].in_taxonomy
        assert not CATALOG[ErrorCategory.INTERNAL].in_taxonomy

    def test_paper_counts_unchanged(self):
        assert len(IVERILOG_CATEGORIES) == 7
        assert len(QUARTUS_CATEGORIES) == 11


class TestLimitDiagnostics:
    def test_source_bytes_limit(self):
        result = compile_source(
            GOOD, limits=ResourceLimits(max_source_bytes=10)
        )
        assert not result.ok
        assert result.diagnostics[0].category is ErrorCategory.RESOURCE_LIMIT
        assert "source bytes" in result.log

    def test_token_limit(self):
        result = compile_source(
            GOOD, limits=ResourceLimits(max_tokens=5)
        )
        assert ErrorCategory.RESOURCE_LIMIT in result.categories
        assert not result.crashed

    def test_parse_depth_limit(self):
        deep = "module m(output o); assign o = " + "(" * 500 + "1" + ")" * 500 + "; endmodule"
        result = compile_source(deep, limits=ResourceLimits(max_parse_depth=50))
        assert ErrorCategory.RESOURCE_LIMIT in result.categories
        assert not result.crashed

    def test_elab_instance_limit(self):
        code = (
            "module leaf(input a, output b); assign b = a; endmodule\n"
            "module m(input a, output b);\n"
            + "\n".join(
                f"  leaf u{i}(.a(a), .b());" for i in range(20)
            )
            + "\n  assign b = a;\nendmodule\n"
        )
        result = compile_source(code, limits=ResourceLimits(max_elab_instances=5))
        assert ErrorCategory.RESOURCE_LIMIT in result.categories

    def test_both_styles_render_resource_limit(self):
        tight = ResourceLimits(max_tokens=5)
        iv = compile_source(GOOD, flavor="iverilog", limits=tight)
        qu = compile_source(GOOD, flavor="quartus", limits=tight)
        assert "sorry:" in iv.log
        assert "Error (10905)" in qu.log
        assert (iv.ok, iv.crashed) == (qu.ok, qu.crashed)

    def test_default_limits_leave_normal_code_alone(self):
        assert compile_source(GOOD).ok


class TestInternalErrorBoundary:
    def test_unexpected_exception_becomes_internal_diagnostic(self, monkeypatch):
        import repro.diagnostics.compiler as compiler_mod

        def explode(*args, **kwargs):
            raise RuntimeError("synthetic front-end defect")

        monkeypatch.setattr(compiler_mod, "_run_pipeline", explode)
        result = compile_source(GOOD)
        assert result.crashed
        assert not result.ok
        assert result.diagnostics[0].category is ErrorCategory.INTERNAL
        assert "synthetic front-end defect" in result.diagnostics[0].args["detail"]

    def test_internal_rendering_both_styles(self, monkeypatch):
        import repro.diagnostics.compiler as compiler_mod

        monkeypatch.setattr(
            compiler_mod, "_run_pipeline",
            lambda *a, **k: (_ for _ in ()).throw(ValueError("boom")),
        )
        iv = compile_source(GOOD, flavor="iverilog")
        assert "internal error" in iv.log
        assert "sorry: please report this as a compiler bug." in iv.log
        qu = compile_source(GOOD, flavor="quartus")
        assert "Error (293001)" in qu.log
        assert "internal error" in qu.log

    def test_keyboard_interrupt_not_swallowed(self, monkeypatch):
        import repro.diagnostics.compiler as compiler_mod

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt()

        monkeypatch.setattr(compiler_mod, "_run_pipeline", interrupt)
        with pytest.raises(KeyboardInterrupt):
            compile_source(GOOD)

    def test_agent_treats_crash_as_feedback(self, monkeypatch):
        from repro.agents import ReActAgent
        from repro.llm.base import RepairStep

        class _CrashingCompiler:
            flavor = "quartus"

            def __init__(self):
                self.calls = 0

            def compile(self, code):
                self.calls += 1
                import repro.diagnostics.compiler as compiler_mod

                real = compiler_mod._run_pipeline
                monkeypatch.setattr(
                    compiler_mod, "_run_pipeline",
                    lambda *a, **k: (_ for _ in ()).throw(RuntimeError("ICE")),
                )
                try:
                    return compile_source(code, flavor="quartus")
                finally:
                    monkeypatch.setattr(compiler_mod, "_run_pipeline", real)

        class _Model:
            name = "stub"

            def start(self, code, flavor, use_rag):
                return self

            def step(self, code, feedback, guidance):
                assert "internal error" in feedback
                return RepairStep(thought="hmm", code=code)

        compiler = _CrashingCompiler()
        agent = ReActAgent(
            model=_Model(), compiler=compiler, max_iterations=2,
            apply_rule_fix=False,
        )
        result = agent.run(GOOD)
        assert not result.success  # graceful degradation, no exception
        assert compiler.calls >= 2


class TestRecursiveDefines:
    """Satellite regression: `define cycles must terminate."""

    def test_two_macro_cycle_terminates_with_diagnostic(self):
        code = (
            "`define A `B\n"
            "`define B `A\n"
            "module m(output o); assign o = `A; endmodule\n"
        )
        start = time.monotonic()
        result = compile_source(code)
        assert time.monotonic() - start < 2.0
        assert ErrorCategory.RESOURCE_LIMIT in result.categories
        assert not result.crashed
        assert "recursive macro" in result.log

    def test_self_referential_define_terminates(self):
        result = compile_source(
            "`define X 1 + `X\nmodule m(output o); assign o = `X; endmodule\n"
        )
        assert ErrorCategory.RESOURCE_LIMIT in result.categories

    def test_chained_defines_still_expand(self):
        result = compile_source(
            "`define ONE 1\n`define ALSO_ONE `ONE\n"
            "module m(output o); assign o = `ALSO_ONE; endmodule\n"
        )
        assert result.ok

    def test_include_recursion_bounded(self):
        incs = {"a.vh": '`include "b.vh"', "b.vh": '`include "a.vh"'}
        result = compile_source(
            '`include "a.vh"\nmodule m; endmodule\n', include_files=incs
        )
        assert ErrorCategory.RESOURCE_LIMIT in result.categories
        assert not result.crashed

    def test_include_defines_visible_to_includer(self):
        incs = {"w.vh": "`define W 4"}
        result = compile_source(
            '`include "w.vh"\nmodule m(input [`W-1:0] d, output [`W-1:0] q);\n'
            "  assign q = d;\nendmodule\n",
            include_files=incs,
        )
        assert result.ok


class TestCrashCorpus:
    """Every corpus file must compile to diagnostics: no exception, no
    crash flag from the boundary, bounded wall time."""

    def test_corpus_is_populated(self):
        assert len(list(CORPUS_DIR.glob("*.v"))) >= 5

    @pytest.mark.parametrize(
        "path", sorted(CORPUS_DIR.glob("*.v")), ids=lambda p: p.name
    )
    def test_corpus_file_compiles_to_diagnostics(self, path):
        code = path.read_bytes().decode("utf-8", "replace")
        for flavor in ("iverilog", "quartus"):
            start = time.monotonic()
            result = compile_source(code, flavor=flavor)
            elapsed = time.monotonic() - start
            assert elapsed < 2.0, f"{path.name} took {elapsed:.2f}s"
            assert not result.ok
            assert not result.crashed, f"{path.name} crashed the front-end"
            assert isinstance(result.log, str) and result.log


class TestCacheLimitsKey:
    def test_limits_participate_in_cache_key(self):
        tight = ResourceLimits(max_tokens=5)
        assert compile_key(GOOD) != compile_key(GOOD, limits=tight)
        # None normalizes to the defaults: same entry.
        assert compile_key(GOOD) == compile_key(GOOD, limits=DEFAULT_LIMITS)

    def test_cache_separates_verdicts_by_limits(self):
        cache = CompileCache(maxsize=8)
        ok = cache.compile(GOOD)
        limited = cache.compile(GOOD, limits=ResourceLimits(max_tokens=5))
        assert ok.ok and not limited.ok
        assert cache.stats.misses == 2


class TestIsolable:
    def test_classification(self):
        assert isolable(RuntimeError("x"))
        assert isolable(ValueError("x"))
        assert not isolable(KeyboardInterrupt())
        assert not isolable(SystemExit(1))
        assert not isolable(GeneratorExit())

    def test_collect_mode_propagates_interrupt(self):
        from repro.runtime import ParallelRunner

        def boom(item):
            raise KeyboardInterrupt()

        runner = ParallelRunner(jobs=1)
        with pytest.raises(KeyboardInterrupt):
            runner.map(boom, [1, 2], on_error="collect")

    def test_collect_mode_still_isolates_ordinary_errors(self):
        from repro.runtime import ParallelRunner, WorkFailure

        def maybe(item):
            if item == 1:
                raise RuntimeError("bad unit")
            return item

        results = ParallelRunner(jobs=1).map(maybe, [0, 1, 2], on_error="collect")
        assert results[0] == 0 and results[2] == 2
        assert isinstance(results[1], WorkFailure)

    def test_experiment_collect_propagates_interrupt(self):
        from repro.core import RTLFixer
        from repro.dataset.curate import SyntaxDataset, SyntaxEntry
        from repro.eval.runner import run_fix_experiment

        dataset = SyntaxDataset(
            entries=[
                SyntaxEntry(
                    problem_id="p", benchmark="t", description="",
                    code="module m; endmodule", categories=(),
                )
            ]
        )
        fixer = RTLFixer(on_error="collect")

        class _Interrupter:
            def __init__(self, inner):
                self.inner = inner
                self.config = inner.config

            def with_seed(self, seed):
                raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            run_fix_experiment(dataset, _Interrupter(fixer), repeats=1)


class TestMacroBombTrial:
    """Acceptance: a Table-1-shaped run with a macro-bomb candidate
    completes with the trial counted as not-fixed, not a WorkFailure."""

    def test_macro_bomb_entry_counts_as_not_fixed(self):
        from repro.core import RTLFixer
        from repro.dataset.curate import SyntaxDataset, SyntaxEntry
        from repro.eval.runner import run_fix_experiment

        bomb = (CORPUS_DIR / "macro_bomb.v").read_text()
        dataset = SyntaxDataset(
            entries=[
                SyntaxEntry(
                    problem_id="bomb", benchmark="crash", description="",
                    code=bomb, categories=("resource-limit",),
                )
            ]
        )
        fixer = RTLFixer(
            max_iterations=2, on_error="collect", compile_limits=FUZZ_LIMITS
        )
        result = run_fix_experiment(dataset, fixer, repeats=2)
        assert result.failures == []  # compiler feedback, not a WorkFailure
        assert result.fixed_counts == [0]
        assert result.rate == 0.0


class TestFuzzHarness:
    def test_fuzz_smoke_holds_invariants(self):
        report = run_fuzz(FuzzConfig(seed=0, iterations=60))
        assert report.ok, report.summary()
        assert len(report.verdicts) == 60
        assert len(report.mutations) == 60

    def test_fuzz_is_deterministic(self):
        first = run_fuzz(FuzzConfig(seed=7, iterations=40))
        second = run_fuzz(FuzzConfig(seed=7, iterations=40))
        assert first.mutations == second.mutations
        assert first.verdicts == second.verdicts
        assert first.digest() == second.digest()

    def test_different_seeds_differ(self):
        a = run_fuzz(FuzzConfig(seed=1, iterations=30))
        b = run_fuzz(FuzzConfig(seed=2, iterations=30))
        assert a.digest() != b.digest()

    def test_every_mutator_exercised(self):
        report = run_fuzz(FuzzConfig(seed=0, iterations=120))
        assert set(report.mutator_counts) == set(MUTATORS) | set(SIM_MUTATORS)

    def test_corpus_compiles_standalone(self):
        for snippet in SEED_CORPUS:
            result = compile_source(snippet, limits=FUZZ_LIMITS)
            assert not result.crashed

    def test_chaos_integration_changes_inputs_not_invariants(self):
        from repro.runtime import FaultInjector, FaultSpec

        injector = FaultInjector(
            seed=0, compiler=FaultSpec(rate=0.5, kind="garbage")
        )
        report = run_fuzz(FuzzConfig(seed=0, iterations=40, injector=injector))
        assert report.ok, report.summary()
        plain = run_fuzz(FuzzConfig(seed=0, iterations=40))
        assert report.mutations == plain.mutations  # same derivation
        assert report.verdicts != plain.verdicts  # garbage changed outcomes

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FuzzConfig(iterations=-1)
        with pytest.raises(ValueError):
            FuzzConfig(per_input_budget=0)

    @pytest.mark.fuzz
    def test_fuzz_thousand_iterations_reproducible(self):
        """The ISSUE acceptance run: 1000 iterations, zero violations,
        identical mutation sequence and verdicts on repeat."""
        first = run_fuzz(FuzzConfig(seed=0, iterations=1000))
        assert first.ok, first.summary()
        second = run_fuzz(FuzzConfig(seed=0, iterations=1000))
        assert second.ok, second.summary()
        assert first.mutations == second.mutations
        assert first.verdicts == second.verdicts


class TestFuzzCLI:
    def test_cli_fuzz_runs(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--seed", "3", "--iterations", "25"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all invariants held" in out
        assert "digest:" in out

    def test_cli_fuzz_chaos_rate(self, capsys):
        from repro.cli import main

        code = main(
            ["fuzz", "--seed", "3", "--iterations", "10", "--chaos-rate", "0.5"]
        )
        assert code == 0
