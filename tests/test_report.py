"""Smoke test for the one-call reproduction report (small scale)."""

import json

import pytest

from repro.eval import ReportScale, run_full_report
from repro.eval.report import FullReport


@pytest.fixture(scope="module")
def report():
    scale = ReportScale(
        dataset_size=24, dataset_samples_per_problem=4,
        repeats=1, n_samples=4, sim_samples=12,
        include_gpt4=False, simfix_samples_per_problem=1,
    )
    stages = []
    result = run_full_report(scale=scale, progress=stages.append)
    result._stages = stages  # type: ignore[attr-defined]
    return result


class TestFullReport:
    def test_all_sections_populated(self, report):
        assert report.table1
        assert report.table2
        assert report.table3
        assert report.figure4
        assert report.figure5
        assert report.figure6
        assert report.simfix

    def test_progress_stages_reported(self, report):
        assert any("Table 1" in s for s in report._stages)
        assert any("extension" in s for s in report._stages)

    def test_table1_carries_paper_values(self, report):
        cell = report.table1[("react", "quartus", True)]
        assert cell["paper"] == 0.985
        assert 0.0 <= cell["measured"] <= 1.0

    def test_table2_structure(self, report):
        cell = report.table2["human/all"]
        assert set(cell) >= {"pass@1", "pass@1_fixed", "paper"}
        assert cell["pass@1_fixed"] >= cell["pass@1"]

    def test_figure4_compositions_sum_to_one(self, report):
        for bench_data in report.figure4.values():
            for key in ("before", "after"):
                assert sum(bench_data[key].values()) == pytest.approx(1.0)

    def test_json_serializable(self, report):
        payload = json.loads(report.to_json())
        assert "table1" in payload and "scale" in payload

    def test_markdown_rendering(self, report):
        text = report.to_markdown()
        assert text.startswith("# Reproduction report")
        assert "table1" in text

    def test_rendered_sections_nonempty(self, report):
        for name in ("table1", "table2", "table3", "figure7", "simfix"):
            assert report.rendered[name].strip(), name

    def test_is_fullreport(self, report):
        assert isinstance(report, FullReport)
