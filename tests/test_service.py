"""Unit tests for the repair service: deadlines, deadline-aware
retries, the lock-guarded circuit breaker, non-blocking quota buckets,
weighted fair admission, the wire protocol, and the stats ledger."""

import asyncio
import threading

import pytest

from repro.errors import (
    DeadlineExceededError,
    LLMTimeoutError,
    OverloadedError,
    RetryExhaustedError,
    TransientError,
)
from repro.runtime.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.runtime.limiter import TokenBucket
from repro.runtime.retry import RetryPolicy, call_with_retry
from repro.service import Deadline, current_deadline, use_deadline
from repro.service.protocol import (
    RepairRequest,
    ShedReason,
    fixed_response,
    http_status,
    result_digest,
    sse_event,
)
from repro.service.scheduler import (
    AdmissionController,
    Job,
    SchedulerConfig,
    ServiceStats,
    get_active_service_stats,
    use_service_stats,
)


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_budget_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(6.0)
        assert not deadline.expired()
        clock.advance(7.0)
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(-1.0)

    def test_check_raises_typed_error_with_stage(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("early")  # not expired: no raise
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("react-iteration")
        assert excinfo.value.stage == "react-iteration"
        assert "react-iteration" in str(excinfo.value)

    def test_allows_refuses_sleeps_past_expiry(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.allows(0.5)
        assert not deadline.allows(1.5)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_ambient_scope_nests_and_restores(self):
        assert current_deadline() is None
        outer = Deadline(10.0)
        inner = Deadline(5.0)
        with use_deadline(outer):
            assert current_deadline() is outer
            with use_deadline(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_none_scope_is_accepted(self):
        with use_deadline(None):
            assert current_deadline() is None


class TestRetryDeadlineInteraction:
    def test_expired_deadline_is_never_dispatched(self):
        """An already-expired deadline fails before the first attempt."""
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        calls = []
        with use_deadline(deadline):
            with pytest.raises(DeadlineExceededError) as excinfo:
                call_with_retry(
                    lambda: calls.append(1),
                    RetryPolicy(max_retries=3),
                    sleep=lambda s: None,
                )
        assert calls == []  # zero attempts: expired budgets are not retried
        assert excinfo.value.stage == "retry-dispatch"

    def test_backoff_that_would_outlive_deadline_is_refused(self):
        """The loop raises instead of sleeping past the deadline."""
        clock = FakeClock()
        deadline = Deadline(0.01, clock=clock)
        attempts = []

        def flaky():
            attempts.append(1)
            raise TransientError("hiccup")

        with use_deadline(deadline):
            with pytest.raises(DeadlineExceededError) as excinfo:
                call_with_retry(
                    flaky,
                    RetryPolicy(max_retries=5, base_delay=1.0, jitter=0.0),
                    sleep=lambda s: None,
                )
        assert len(attempts) == 1  # dispatched once, refused the backoff
        assert excinfo.value.stage == "retry-backoff"
        assert isinstance(excinfo.value.__cause__, TransientError)

    def test_percall_timeout_with_live_deadline_still_retries(self):
        """A per-call overrun is transient while the deadline has room:
        the next attempt dispatches (the two budgets stay distinct)."""
        clock = FakeClock()
        deadline = Deadline(100.0, clock=clock)
        outcomes = iter([2.0, 0.1])  # first call slow, second fast

        def call():
            clock.advance(next(outcomes))
            return "ok"

        with use_deadline(deadline):
            result = call_with_retry(
                call,
                RetryPolicy(max_retries=2, timeout=1.0, base_delay=0.0,
                            jitter=0.0),
                sleep=lambda s: None,
                clock=clock,
            )
        assert result == "ok"

    def test_call_that_runs_the_deadline_out_is_typed_deadline(self):
        """When a slow call exhausts the *request* budget, the outcome is
        DeadlineExceededError, not a retryable timeout."""
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)

        def slow():
            clock.advance(5.0)
            return "late"

        with use_deadline(deadline):
            with pytest.raises(DeadlineExceededError) as excinfo:
                call_with_retry(
                    slow,
                    RetryPolicy(max_retries=3, timeout=0.5),
                    sleep=lambda s: None,
                    clock=clock,
                )
        assert excinfo.value.stage == "retry-call"

    def test_no_deadline_scope_behaves_as_before(self):
        """Without an ambient deadline the loop exhausts its budget the
        classic way."""
        def flaky():
            raise TransientError("hiccup")

        with pytest.raises(RetryExhaustedError):
            call_with_retry(
                flaky, RetryPolicy(max_retries=2), sleep=lambda s: None
            )

    def test_percall_timeout_still_surfaces_as_llm_timeout(self):
        clock = FakeClock()

        def slow():
            clock.advance(2.0)
            return "late"

        with pytest.raises(RetryExhaustedError) as excinfo:
            call_with_retry(
                slow,
                RetryPolicy(max_retries=0, timeout=1.0),
                sleep=lambda s: None,
                clock=clock,
            )
        assert isinstance(excinfo.value.last_error, LLMTimeoutError)


class TestBreakerAdmit:
    def _tripped(self, probe_interval=3) -> CircuitBreaker:
        breaker = CircuitBreaker(
            failure_threshold=2, probe_interval=probe_interval
        )
        breaker.record_failure(ValueError("boom"))
        breaker.record_failure(ValueError("boom"))
        assert breaker.state == OPEN
        return breaker

    def test_closed_admits_without_probe(self):
        breaker = CircuitBreaker(failure_threshold=2)
        assert breaker.admit() == (True, False)

    def test_open_denies_then_probes_on_interval(self):
        breaker = self._tripped(probe_interval=3)
        assert breaker.admit() == (False, False)
        assert breaker.admit() == (False, False)
        allowed, is_probe = breaker.admit()  # third denial converts
        assert (allowed, is_probe) == (True, True)
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self):
        breaker = self._tripped(probe_interval=1)
        _, is_probe = breaker.admit()
        assert is_probe
        breaker.record_success(probe=True)
        assert breaker.state == CLOSED

    def test_probe_failure_reopens(self):
        breaker = self._tripped(probe_interval=1)
        breaker.admit()
        breaker.record_failure(ValueError("still down"), probe=True)
        assert breaker.state == OPEN

    def test_uncounted_transient_probe_failure_reopens_without_tally(self):
        """A probe that dies for an unrelated transient reason (e.g. its
        deadline expired in the queue) must still settle the breaker."""
        breaker = self._tripped(probe_interval=1)
        tally = breaker.consecutive_failures
        breaker.admit()
        breaker.record_failure(TransientError("probe expired"), probe=True)
        assert breaker.state == OPEN
        assert breaker.consecutive_failures == tally

    def test_concurrent_admits_grant_at_most_one_probe(self):
        """The atomicity contract: many racing admitters, one probe."""
        breaker = self._tripped(probe_interval=1)
        probes = []
        barrier = threading.Barrier(8)

        def admitter():
            barrier.wait()
            for _ in range(50):
                _, is_probe = breaker.admit()
                if is_probe:
                    probes.append(threading.get_ident())

        threads = [threading.Thread(target=admitter) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly one probe while half-open; the rest were denied.
        assert len(probes) == 1
        assert breaker.state == HALF_OPEN

    def test_concurrent_record_calls_keep_tally_consistent(self):
        breaker = CircuitBreaker(failure_threshold=10 ** 9)
        barrier = threading.Barrier(8)

        def recorder():
            barrier.wait()
            for _ in range(200):
                breaker.record_failure(ValueError("x"), probe=False)

        threads = [threading.Thread(target=recorder) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert breaker.consecutive_failures == 8 * 200


class TestTokenBucketTryAcquire:
    def test_unlimited_always_grants(self):
        bucket = TokenBucket(0.0)
        assert all(bucket.try_acquire() for _ in range(100))
        assert bucket.refusals == 0

    def test_refuses_when_empty_and_counts(self):
        clock = FakeClock()
        bucket = TokenBucket(1.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # bucket drained: refuse, no debt
        assert bucket.refusals == 1

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()


def make_job(tenant: str, seed: int = 0, deadline=None) -> Job:
    """A minimal scheduler job for admission tests."""
    request = RepairRequest(tenant=tenant, code="module m; endmodule",
                            seed=seed)
    return Job(job_id=f"{tenant}-{seed}", request=request,
               config=None, key=f"key-{tenant}-{seed}", deadline=deadline)


def drain_order(controller: AdmissionController) -> list:
    """Dequeue every job (drain mode) and return the tenant order."""
    controller.start_drain()

    async def pull():
        order = []
        while True:
            job = await controller.next_job()
            if job is None:
                return order
            order.append(job.request.tenant)

    return asyncio.run(pull())


class TestAdmissionController:
    def _controller(self, **kwargs) -> AdmissionController:
        clock = kwargs.pop("clock", FakeClock())
        config = SchedulerConfig(**kwargs)
        return AdmissionController(config, clock=clock)

    def test_admit_then_fair_drain(self):
        controller = self._controller()
        for index in range(3):
            assert controller.admit(make_job("a", index)) is None
        assert controller.queued == 3

    def test_tenant_queue_bound_sheds_typed(self):
        controller = self._controller(max_queue_per_tenant=2)
        assert controller.admit(make_job("a", 0)) is None
        assert controller.admit(make_job("a", 1)) is None
        assert controller.admit(make_job("a", 2)) == ShedReason.TENANT_QUEUE_FULL
        # Another tenant still has room: bounds are per-tenant.
        assert controller.admit(make_job("b", 0)) is None

    def test_server_queue_bound_sheds_typed(self):
        controller = self._controller(max_queue_per_tenant=8, max_queued=3)
        assert controller.admit(make_job("a", 0)) is None
        assert controller.admit(make_job("b", 0)) is None
        assert controller.admit(make_job("c", 0)) is None
        assert controller.admit(make_job("d", 0)) == ShedReason.SERVER_QUEUE_FULL

    def test_tenant_quota_sheds_typed(self):
        clock = FakeClock()
        controller = self._controller(
            tenant_rate=1.0, tenant_burst=2, clock=clock
        )
        assert controller.admit(make_job("a", 0)) is None
        assert controller.admit(make_job("a", 1)) is None
        assert controller.admit(make_job("a", 2)) == ShedReason.TENANT_QUOTA
        clock.advance(1.0)  # one token refills
        assert controller.admit(make_job("a", 3)) is None

    def test_draining_sheds_everything(self):
        controller = self._controller()
        controller.start_drain()
        assert controller.admit(make_job("a", 0)) == ShedReason.DRAINING

    def test_breaker_open_sheds_typed(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=3)
        breaker.record_failure(ValueError("down"))
        controller = AdmissionController(SchedulerConfig(), breaker=breaker)
        assert controller.admit(make_job("a", 0)) == ShedReason.BREAKER_OPEN

    def test_breaker_probe_job_is_marked_and_queued(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure(ValueError("down"))
        controller = AdmissionController(SchedulerConfig(), breaker=breaker)
        job = make_job("a", 0)
        assert controller.admit(job) is None  # denial #1 converts to probe
        assert job.probe is True
        assert controller.queued == 1

    def test_quota_checked_before_breaker_probe(self):
        """A submission the quota would shed must never consume the
        breaker's probe (the probe would be lost)."""
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure(ValueError("down"))
        clock = FakeClock()
        controller = AdmissionController(
            SchedulerConfig(tenant_rate=1.0, tenant_burst=1),
            breaker=breaker, clock=clock,
        )
        job_a = make_job("a", 0)
        assert controller.admit(job_a) is None  # takes quota + probe
        assert job_a.probe
        # Quota now empty: shed reason is quota, and the breaker was not
        # consulted (state unchanged, no extra denials tallied).
        snapshot = breaker.snapshot()
        assert controller.admit(make_job("a", 1)) == ShedReason.TENANT_QUOTA
        assert breaker.snapshot() == snapshot

    def test_weighted_fair_drain_order(self):
        """Weight 2 drains twice per weight-1 dispatch, ties by name."""
        controller = self._controller(weights={"heavy": 2.0, "light": 1.0})
        for index in range(4):
            controller.admit(make_job("heavy", index))
        for index in range(2):
            controller.admit(make_job("light", index))
        order = drain_order(controller)
        # Stride schedule (pass += 1/weight, min pass next, ties by
        # name): heavy lands at 0.5/1.0/1.5/2.0, light at 1.0/2.0 --
        # heavy gets two dispatches for every one of light's.
        assert order == ["heavy", "light", "heavy", "heavy", "light", "heavy"]
        assert order.count("heavy") == 2 * order.count("light")

    def test_equal_weights_round_robin(self):
        controller = self._controller()
        for index in range(2):
            controller.admit(make_job("a", index))
            controller.admit(make_job("b", index))
        assert drain_order(controller) == ["a", "b", "a", "b"]

    def test_idle_tenant_reenters_at_current_vtime(self):
        """A tenant that was idle while others drained does not hoard
        credit: it resumes sharing, not monopolising."""
        controller = self._controller()
        for index in range(4):
            controller.admit(make_job("busy", index))

        async def scenario():
            order = []
            for _ in range(3):  # busy drains 3 jobs while idle is absent
                job = await controller.next_job()
                order.append(job.request.tenant)
            for index in range(3):  # idle shows up late with a burst
                controller.admit(make_job("idle", index))
            controller.start_drain()
            while True:
                job = await controller.next_job()
                if job is None:
                    return order
                order.append(job.request.tenant)

        order = asyncio.run(scenario())
        # The late tenant interleaves from now on instead of draining
        # its whole burst first.
        assert order[:3] == ["busy", "busy", "busy"]
        assert order[3:5] != ["idle", "idle"]

    def test_next_job_returns_none_only_when_drained_and_empty(self):
        controller = self._controller()
        controller.admit(make_job("a", 0))
        controller.start_drain()

        async def pull_all():
            first = await controller.next_job()
            second = await controller.next_job()
            return first, second

        first, second = asyncio.run(pull_all())
        assert first is not None and first.request.tenant == "a"
        assert second is None


class TestServiceStats:
    def test_ledger_counts_by_reason_and_tenant(self):
        stats = ServiceStats()
        stats.record_submitted("a")
        stats.record_admitted("a")
        stats.record_outcome("a", "fixed")
        stats.record_submitted("b")
        stats.record_shed("b", ShedReason.TENANT_QUOTA)
        snapshot = stats.as_dict()
        assert snapshot["admitted"] == 1
        assert snapshot["fixed"] == 1
        assert snapshot["shed"] == {ShedReason.TENANT_QUOTA: 1}
        assert snapshot["total_shed"] == 1
        assert snapshot["tenants"]["a"]["admitted"] == 1
        assert snapshot["tenants"]["b"]["shed"] == 1

    def test_outcome_statuses_bucketed(self):
        stats = ServiceStats()
        for status in ("fixed", "not_fixed", "deadline_exceeded",
                       "backend_error", "error"):
            stats.record_outcome("t", status)
        snapshot = stats.as_dict()
        assert snapshot["fixed"] == 1
        assert snapshot["not_fixed"] == 1
        assert snapshot["deadline_expired"] == 1
        assert snapshot["backend_errors"] == 1
        assert snapshot["crashed"] == 1
        assert snapshot["completed"] == 5

    def test_ambient_scope(self):
        assert get_active_service_stats() is None
        stats = ServiceStats()
        with use_service_stats(stats):
            assert get_active_service_stats() is stats
        assert get_active_service_stats() is None


class TestProtocol:
    def test_round_trip_minimal_request(self):
        request = RepairRequest.from_json(
            b'{"code": "module m; endmodule"}'
        )
        assert request.tenant == "default"
        assert request.seed == 0
        assert request.deadline_s is None

    def test_unknown_field_is_rejected(self):
        with pytest.raises(ValueError, match="tennant"):
            RepairRequest.from_json(
                b'{"code": "m", "tennant": "typo"}'
            )

    def test_empty_code_rejected(self):
        with pytest.raises(ValueError, match="code"):
            RepairRequest.from_json(b'{"code": "   "}')

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError, match="JSON"):
            RepairRequest.from_json(b"not json")

    def test_bool_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            RepairRequest.from_json(b'{"code": "m", "seed": true}')

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            RepairRequest.from_json(b'{"code": "m", "deadline_s": -1}')

    def test_bad_config_combo_is_a_value_error(self):
        """An invalid config knob is a 400 at admission, not a 500 in a
        worker: from_json validates the derived config eagerly."""
        with pytest.raises(ValueError, match="prompting"):
            RepairRequest.from_json(
                b'{"code": "m", "prompting": "chain-of-thought"}'
            )

    def test_rag_is_coerced_off_for_simple_feedback(self):
        """RAG needs a compiler log to retrieve against; with 'simple'
        feedback the request's use_rag is coerced off instead of
        erroring (the Table 1 rule applied at the protocol edge)."""
        request = RepairRequest.from_json(
            b'{"code": "m", "compiler": "simple", "use_rag": true}'
        )
        assert request.to_config().use_rag is False

    def test_to_config_excludes_deadline(self):
        """The deadline is ambient, not config: journal keys must not
        depend on the request's budget."""
        import dataclasses

        with_deadline = RepairRequest(
            tenant="t", code="m", deadline_s=5.0
        ).to_config()
        without = RepairRequest(tenant="t", code="m").to_config()
        assert dataclasses.asdict(with_deadline) == dataclasses.asdict(without)

    def test_result_digest_covers_content_not_telemetry(self):
        fast = fixed_response("job-1", "t", True, 2, "module m; endmodule",
                              queue_wait_s=0.0, exec_s=0.001)
        slow = fixed_response("job-9", "t", True, 2, "module m; endmodule",
                              replayed=True, queue_wait_s=9.0, exec_s=5.0)
        assert fast["result_digest"] == slow["result_digest"]
        different = fixed_response("job-1", "t", True, 3,
                                   "module m; endmodule")
        assert different["result_digest"] != fast["result_digest"]

    def test_http_status_mapping(self):
        assert http_status({"status": "fixed"}) == 200
        assert http_status({"status": "not_fixed"}) == 200
        assert http_status({"status": "overloaded"}) == 429
        assert http_status({"status": "deadline_exceeded"}) == 504
        assert http_status({"status": "backend_error"}) == 502
        assert http_status({"status": "error"}) == 500

    def test_sse_framing(self):
        frame = sse_event("iteration", {"index": 1})
        assert frame == b'event: iteration\ndata: {"index":1}\n\n'

    def test_shed_reasons_are_exhaustive(self):
        assert set(ShedReason.ALL) == {
            "tenant_queue_full", "server_queue_full", "tenant_quota",
            "breaker_open", "draining",
        }


class TestErrorsTaxonomy:
    def test_deadline_error_is_not_transient(self):
        """The retry layer keys on this: expired deadlines never retry."""
        assert not issubclass(DeadlineExceededError, TransientError)

    def test_overloaded_error_carries_reason(self):
        error = OverloadedError("shed", reason="tenant_quota")
        assert error.reason == "tenant_quota"


class TestAgentDeadlineAndObserver:
    BROKEN = (
        "module top_module(input [7:0] in, output [7:0] out);\n"
        "assign out[8] = in[0];\nendmodule\n"
    )

    def test_react_loop_stops_mid_run_on_expired_deadline(self):
        from repro.core import RTLFixer

        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)  # expire before the first iteration
        # max_retries=0 keeps the retry wrapper out, so the deadline
        # fires at the agent's own per-iteration seam.
        fixer = RTLFixer(max_retries=0)
        with use_deadline(deadline):
            with pytest.raises(DeadlineExceededError) as excinfo:
                fixer.fix(self.BROKEN)
        assert excinfo.value.stage == "react-iteration"

    def test_retry_layer_sees_deadline_before_the_agent_does(self):
        """With the retry wrapper on (the default), an expired deadline
        is caught even earlier -- at retry dispatch."""
        from repro.core import RTLFixer

        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        fixer = RTLFixer()
        with use_deadline(deadline):
            with pytest.raises(DeadlineExceededError) as excinfo:
                fixer.fix(self.BROKEN)
        assert excinfo.value.stage == "retry-dispatch"

    def test_on_turn_observer_sees_every_transcript_turn(self):
        from repro.core import RTLFixer

        fixer = RTLFixer()
        seen = []
        fixer.agent.on_turn = seen.append
        result = fixer.fix(self.BROKEN)
        assert result.success
        assert len(seen) == len(result.transcript.turns)
        assert [turn.index for turn in seen] == [
            turn.index for turn in result.transcript.turns
        ]

    def test_config_deadline_scopes_ambient_deadline(self):
        from repro.core import RTLFixer

        fixer = RTLFixer(deadline_s=3600.0)
        result = fixer.fix(self.BROKEN)
        assert result.success  # an ample budget changes nothing

    def test_batch_runs_have_no_deadline(self):
        from repro.core import RTLFixer

        fixer = RTLFixer()
        result = fixer.fix(self.BROKEN)
        assert result.success


class TestServiceLine:
    def test_service_line_renders_ledger(self):
        from repro.cli import _service_line

        stats = ServiceStats()
        stats.record_submitted("a")
        stats.record_admitted("a")
        stats.record_outcome("a", "fixed")
        stats.record_submitted("b")
        stats.record_shed("b", ShedReason.BREAKER_OPEN)
        line = _service_line(stats.as_dict())
        assert line.startswith("# service: ")
        assert "admitted=1" in line
        assert "breaker_open=1" in line
        assert "a:1/0" in line and "b:0/1" in line

    def test_report_surfaces_ambient_service_stats(self):
        """``report.service`` mirrors the scoped ledger (whitelisted out
        of to_json like the other telemetry blocks)."""
        from repro.eval.report import FullReport, ReportScale

        report = FullReport(scale=ReportScale())
        assert report.service == {}
        report.service = {"admitted": 3}
        assert '"admitted"' not in report.to_json()
