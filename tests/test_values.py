"""Unit tests for 4-state Logic values and operator semantics."""

import pytest

from repro.sim import Logic
from repro.sim import ops


def L(value: int, width: int = 8, signed: bool = False) -> Logic:
    return Logic.from_int(value, width, signed)


class TestLogicBasics:
    def test_masking_on_construction(self):
        assert Logic(4, 0xFF).bits == 0xF

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            Logic(0, 0)

    def test_all_x(self):
        v = Logic.all_x(4)
        assert v.has_x and v.xmask == 0xF

    def test_to_signed_int(self):
        assert L(0xFF, 8, signed=True).to_signed_int() == -1
        assert L(0x7F, 8, signed=True).to_signed_int() == 127

    def test_resize_truncates(self):
        assert L(0xAB, 8).resize(4).bits == 0xB

    def test_resize_zero_extends_unsigned(self):
        assert L(0x8, 4).resize(8).bits == 0x08

    def test_resize_sign_extends_signed(self):
        assert L(0x8, 4, signed=True).resize(8).bits == 0xF8

    def test_resize_x_extends(self):
        v = Logic(4, 0, xmask=0x8).resize(8)
        assert v.xmask == 0xF8

    def test_bit_access(self):
        assert L(0b1010, 4).bit(1).bits == 1
        assert L(0b1010, 4).bit(0).bits == 0

    def test_bit_out_of_range_is_x(self):
        assert L(0, 4).bit(7).has_x

    def test_slice(self):
        assert L(0xAB, 8).slice(7, 4).bits == 0xA

    def test_slice_partially_out_of_range(self):
        v = L(0xF, 4).slice(5, 2)
        assert v.xmask == 0b1100
        assert v.bits == 0b0011

    def test_set_bit_and_slice(self):
        assert L(0, 4).set_bit(2, Logic(1, 1)).bits == 0b0100
        assert L(0, 8).set_slice(7, 4, L(0xA, 4)).bits == 0xA0

    def test_str_known(self):
        assert str(L(0xFF, 8)) == "8'hff"

    def test_str_with_x(self):
        assert "x" in str(Logic(4, 0, xmask=0x1))

    def test_same_as_width_extension(self):
        assert L(5, 4).same_as(L(5, 8))
        assert not L(5, 4).same_as(L(6, 8))


class TestArithmetic:
    def test_add(self):
        assert ops.binary("+", L(3), L(4)).bits == 7

    def test_add_wraps(self):
        assert ops.binary("+", L(0xFF), L(1)).bits == 0

    def test_sub_negative_wraps(self):
        assert ops.binary("-", L(0), L(1)).bits == 0xFF

    def test_mul(self):
        assert ops.binary("*", L(7), L(6)).bits == 42

    def test_div_and_mod(self):
        assert ops.binary("/", L(17), L(5)).bits == 3
        assert ops.binary("%", L(17), L(5)).bits == 2

    def test_div_by_zero_is_x(self):
        assert ops.binary("/", L(1), L(0)).has_x

    def test_signed_arith(self):
        a = L(0xFE, 8, signed=True)  # -2
        b = L(3, 8, signed=True)
        assert ops.binary("+", a, b).to_signed_int() == 1

    def test_x_poisons_arith(self):
        assert ops.binary("+", Logic.all_x(8), L(1)).has_x

    def test_power(self):
        assert ops.binary("**", L(2), L(10), ).bits == 0x00  # 1024 wraps in 8 bits
        assert ops.binary("**", L(2, 16), L(10, 16)).bits == 1024

    def test_width_is_max_of_operands(self):
        assert ops.binary("+", L(1, 4), L(1, 16)).width == 16


class TestBitwise:
    def test_and_or_xor(self):
        assert ops.binary("&", L(0b1100), L(0b1010)).bits == 0b1000
        assert ops.binary("|", L(0b1100), L(0b1010)).bits == 0b1110
        assert ops.binary("^", L(0b1100), L(0b1010)).bits == 0b0110

    def test_and_with_x_short_circuit(self):
        # 0 & x = 0 even though x is unknown
        x = Logic(8, 0, xmask=0xFF)
        out = ops.binary("&", L(0), x)
        assert out.bits == 0 and out.xmask == 0

    def test_or_with_x_short_circuit(self):
        x = Logic(8, 0, xmask=0xFF)
        out = ops.binary("|", L(0xFF), x)
        assert out.bits == 0xFF and out.xmask == 0

    def test_xor_with_x_is_x(self):
        x = Logic(8, 0, xmask=0x0F)
        assert ops.binary("^", L(0), x).xmask == 0x0F

    def test_xnor(self):
        assert ops.binary("~^", L(0b1100), L(0b1010)).bits == 0b11111001


class TestCompareAndLogical:
    def test_eq_ne(self):
        assert ops.binary("==", L(5), L(5)).bits == 1
        assert ops.binary("!=", L(5), L(6)).bits == 1

    def test_eq_with_x_is_x(self):
        assert ops.binary("==", Logic.all_x(8), L(5)).has_x

    def test_case_eq_compares_x(self):
        x = Logic(8, 0, xmask=0xFF)
        assert ops.binary("===", x, Logic(8, 0, xmask=0xFF)).bits == 1
        assert ops.binary("!==", x, L(0)).bits == 1

    def test_relational_signed(self):
        a = L(0xFF, 8, signed=True)  # -1
        b = L(1, 8, signed=True)
        assert ops.binary("<", a, b).bits == 1

    def test_relational_unsigned(self):
        assert ops.binary("<", L(0xFF), L(1)).bits == 0

    def test_logical_and_or(self):
        assert ops.binary("&&", L(2), L(3)).bits == 1
        assert ops.binary("&&", L(0), L(3)).bits == 0
        assert ops.binary("||", L(0), L(0)).bits == 0

    def test_logical_short_circuit_with_x(self):
        x = Logic.all_x(1)
        assert ops.binary("&&", Logic(1, 0), x).bits == 0
        assert ops.binary("||", Logic(1, 1), x).bits == 1


class TestShifts:
    def test_logical_shifts(self):
        assert ops.binary("<<", L(1), L(3)).bits == 8
        assert ops.binary(">>", L(0x80), L(3)).bits == 0x10

    def test_shift_out(self):
        assert ops.binary("<<", L(0xFF), L(8)).bits == 0

    def test_arithmetic_right_shift_signed(self):
        a = L(0x80, 8, signed=True)
        assert ops.binary(">>>", a, L(3)).bits == 0xF0

    def test_arithmetic_right_shift_unsigned_is_logical(self):
        assert ops.binary(">>>", L(0x80), L(3)).bits == 0x10


class TestUnaryAndReduction:
    def test_not(self):
        assert ops.unary("!", L(0)).bits == 1
        assert ops.unary("!", L(7)).bits == 0

    def test_invert(self):
        assert ops.unary("~", L(0b1010, 4)).bits == 0b0101

    def test_negate(self):
        assert ops.unary("-", L(1)).bits == 0xFF

    def test_reduction_and(self):
        assert ops.unary("&", L(0xFF)).bits == 1
        assert ops.unary("&", L(0xFE)).bits == 0

    def test_reduction_or_nor(self):
        assert ops.unary("|", L(0)).bits == 0
        assert ops.unary("~|", L(0)).bits == 1

    def test_reduction_xor_parity(self):
        assert ops.unary("^", L(0b0111, 4)).bits == 1
        assert ops.unary("^", L(0b0110, 4)).bits == 0

    def test_reduction_and_with_known_zero_bit(self):
        v = Logic(4, 0b0000, xmask=0b1110)  # bit0 known 0
        assert ops.unary("&", v).bits == 0 and not ops.unary("&", v).has_x


class TestConcatTernary:
    def test_concat_order(self):
        out = ops.concat([L(0xA, 4), L(0xB, 4)])
        assert out.width == 8 and out.bits == 0xAB

    def test_replicate(self):
        out = ops.replicate(3, L(0b10, 2))
        assert out.width == 6 and out.bits == 0b101010

    def test_ternary_known(self):
        assert ops.ternary(Logic(1, 1), L(1), L(2)).bits == 1
        assert ops.ternary(Logic(1, 0), L(1), L(2)).bits == 2

    def test_ternary_unknown_merges(self):
        out = ops.ternary(Logic.all_x(1), L(0b1100), L(0b1010))
        assert out.bits & 0b1000  # agreeing MSB stays known 1
        assert out.xmask == 0b0110  # disagreeing bits unknown
