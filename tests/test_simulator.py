"""Integration tests: compile + simulate small designs."""

import pytest

from repro.diagnostics import compile_source
from repro.errors import SimulationError
from repro.sim import Logic, Simulator


def build(code: str) -> Simulator:
    result = compile_source(code)
    assert result.ok, result.log
    return Simulator(result.elaborated)


class TestCombinational:
    def test_passthrough(self):
        sim = build("module m(input [7:0] a, output [7:0] y);\nassign y = a;\nendmodule")
        sim.step({"a": 0x5A})
        assert sim.get("y").bits == 0x5A

    def test_invert(self):
        sim = build("module m(input [3:0] a, output [3:0] y);\nassign y = ~a;\nendmodule")
        sim.step({"a": 0b1010})
        assert sim.get("y").bits == 0b0101

    def test_adder_with_carry(self):
        sim = build(
            "module m(input [7:0] a, input [7:0] b, output [8:0] s);\n"
            "assign s = a + b;\nendmodule"
        )
        sim.step({"a": 200, "b": 100})
        assert sim.get("s").bits == 300

    def test_mux_ternary(self):
        sim = build(
            "module m(input sel, input [3:0] a, input [3:0] b, output [3:0] y);\n"
            "assign y = sel ? a : b;\nendmodule"
        )
        sim.step({"sel": 1, "a": 3, "b": 9})
        assert sim.get("y").bits == 3
        sim.step({"sel": 0})
        assert sim.get("y").bits == 9

    def test_bit_reversal_via_concat(self):
        sim = build(
            "module m(input [3:0] a, output [3:0] y);\n"
            "assign y = {a[0], a[1], a[2], a[3]};\nendmodule"
        )
        sim.step({"a": 0b0001})
        assert sim.get("y").bits == 0b1000

    def test_chained_assigns_settle(self):
        sim = build(
            "module m(input a, output y);\nwire t1, t2;\n"
            "assign t1 = ~a;\nassign t2 = ~t1;\nassign y = ~t2;\nendmodule"
        )
        sim.step({"a": 1})
        assert sim.get("y").bits == 0

    def test_comb_always_with_case(self):
        sim = build(
            "module m(input [1:0] s, output reg [3:0] y);\n"
            "always @(*) case (s)\n"
            "  2'd0: y = 4'd1;\n  2'd1: y = 4'd2;\n"
            "  2'd2: y = 4'd4;\n  default: y = 4'd8;\nendcase\nendmodule"
        )
        for s, expected in [(0, 1), (1, 2), (2, 4), (3, 8)]:
            sim.step({"s": s})
            assert sim.get("y").bits == expected

    def test_comb_for_loop_reversal(self):
        sim = build(
            "module m(input [7:0] in, output reg [7:0] out);\n"
            "integer i;\n"
            "always @(*) for (i = 0; i < 8; i = i + 1) out[i] = in[7 - i];\n"
            "endmodule"
        )
        sim.step({"in": 0b1000_0001})
        assert sim.get("out").bits == 0b1000_0001
        sim.step({"in": 0b1100_0000})
        assert sim.get("out").bits == 0b0000_0011

    def test_reduction_popcount_function(self):
        sim = build(
            "module m(input [7:0] a, output [3:0] n);\n"
            "function [3:0] popcount(input [7:0] v);\n"
            "  integer i;\n"
            "  begin\n"
            "    popcount = 0;\n"
            "    for (i = 0; i < 8; i = i + 1) popcount = popcount + v[i];\n"
            "  end\nendfunction\n"
            "assign n = popcount(a);\nendmodule"
        )
        sim.step({"a": 0b1011_0110})
        assert sim.get("n").bits == 5

    def test_signed_comparison(self):
        sim = build(
            "module m(input signed [7:0] a, output lt);\n"
            "assign lt = a < 0;\nendmodule"
        )
        sim.step({"a": 0xFF})
        assert sim.get("lt").bits == 1
        sim.step({"a": 0x01})
        assert sim.get("lt").bits == 0

    def test_descending_range_decl(self):
        sim = build(
            "module m(input [0:3] a, output y);\nassign y = a[0];\nendmodule"
        )
        sim.step({"a": 0b1000})  # a[0] is the MSB for [0:3]
        assert sim.get("y").bits == 1


class TestSequential:
    def test_dff(self):
        sim = build(
            "module m(input clk, input d, output reg q);\n"
            "always @(posedge clk) q <= d;\nendmodule"
        )
        sim.step({"clk": 0, "d": 1})
        assert sim.get("q").has_x  # not clocked yet
        sim.step({"clk": 1})
        assert sim.get("q").bits == 1
        sim.step({"clk": 0, "d": 0})
        assert sim.get("q").bits == 1  # holds until next edge
        sim.step({"clk": 1})
        assert sim.get("q").bits == 0

    def test_counter_with_sync_reset(self):
        sim = build(
            "module m(input clk, input reset, output reg [3:0] q);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 0;\n  else q <= q + 1;\nend\nendmodule"
        )
        sim.step({"clk": 0, "reset": 1})
        sim.step({"clk": 1})
        assert sim.get("q").bits == 0
        for expected in (1, 2, 3):
            sim.step({"clk": 0, "reset": 0})
            sim.step({"clk": 1})
            assert sim.get("q").bits == expected

    def test_async_reset(self):
        sim = build(
            "module m(input clk, input areset, input d, output reg q);\n"
            "always @(posedge clk or posedge areset) begin\n"
            "  if (areset) q <= 0;\n  else q <= d;\nend\nendmodule"
        )
        sim.step({"clk": 0, "areset": 0, "d": 1})
        sim.step({"areset": 1})  # async reset without clock edge
        assert sim.get("q").bits == 0

    def test_nba_swap(self):
        # The classic: nonblocking swap must use old values.
        sim = build(
            "module m(input clk, input load, input [3:0] x, output reg [3:0] a, output reg [3:0] b);\n"
            "always @(posedge clk) begin\n"
            "  if (load) begin a <= x; b <= x + 1; end\n"
            "  else begin a <= b; b <= a; end\nend\nendmodule"
        )
        sim.step({"clk": 0, "load": 1, "x": 5})
        sim.step({"clk": 1})
        assert (sim.get("a").bits, sim.get("b").bits) == (5, 6)
        sim.step({"clk": 0, "load": 0})
        sim.step({"clk": 1})
        assert (sim.get("a").bits, sim.get("b").bits) == (6, 5)

    def test_negedge(self):
        sim = build(
            "module m(input clk, input d, output reg q);\n"
            "always @(negedge clk) q <= d;\nendmodule"
        )
        sim.step({"clk": 1, "d": 1})
        sim.step({"clk": 0})
        assert sim.get("q").bits == 1

    def test_shift_register(self):
        sim = build(
            "module m(input clk, input din, output reg [3:0] q);\n"
            "always @(posedge clk) q <= {q[2:0], din};\nendmodule"
        )
        sim.step({"clk": 0, "din": 1})
        sim.step({"clk": 1})
        sim.step({"clk": 0, "din": 0})
        sim.step({"clk": 1})
        sim.step({"clk": 0, "din": 1})
        sim.step({"clk": 1})
        # q is X-seeded; low 3 bits are known: 101
        assert sim.get("q").slice(2, 0).bits == 0b101

    def test_initial_block_seeds_state(self):
        sim = build(
            "module m(input clk, output reg [3:0] q);\n"
            "initial q = 4'd7;\n"
            "always @(posedge clk) q <= q + 1;\nendmodule"
        )
        assert sim.get("q").bits == 7
        sim.step({"clk": 0})
        sim.step({"clk": 1})
        assert sim.get("q").bits == 8

    def test_memory_write_read(self):
        sim = build(
            "module m(input clk, input we, input [1:0] addr, input [7:0] d, output [7:0] q);\n"
            "reg [7:0] mem [0:3];\n"
            "always @(posedge clk) if (we) mem[addr] <= d;\n"
            "assign q = mem[addr];\nendmodule"
        )
        sim.step({"clk": 0, "we": 1, "addr": 2, "d": 0xAB})
        sim.step({"clk": 1})
        assert sim.get("q").bits == 0xAB


class TestHierarchy:
    def test_instance_passthrough(self):
        sim = build(
            "module top(input [3:0] a, output [3:0] y);\n"
            "sub u1 (.in(a), .out(y));\nendmodule\n"
            "module sub(input [3:0] in, output [3:0] out);\n"
            "assign out = in + 1;\nendmodule"
        )
        sim.step({"a": 4})
        assert sim.get("y").bits == 5

    def test_two_instances_chained(self):
        sim = build(
            "module top(input [3:0] a, output [3:0] y);\nwire [3:0] t;\n"
            "inc u1 (.in(a), .out(t));\n"
            "inc u2 (.in(t), .out(y));\nendmodule\n"
            "module inc(input [3:0] in, output [3:0] out);\n"
            "assign out = in + 1;\nendmodule"
        )
        sim.step({"a": 0})
        assert sim.get("y").bits == 2

    def test_positional_connection(self):
        sim = build(
            "module top(input a, output y);\nnot_gate u (a, y);\nendmodule\n"
            "module not_gate(input i, output o);\nassign o = ~i;\nendmodule"
        )
        sim.step({"a": 1})
        assert sim.get("y").bits == 0

    def test_sequential_child(self):
        sim = build(
            "module top(input clk, input d, output q);\n"
            "dff u (.clk(clk), .d(d), .q(q));\nendmodule\n"
            "module dff(input clk, input d, output reg q);\n"
            "always @(posedge clk) q <= d;\nendmodule"
        )
        sim.step({"clk": 0, "d": 1})
        sim.step({"clk": 1})
        assert sim.get("q").bits == 1


class TestErrorHandling:
    def test_combinational_loop_detected(self):
        # A loop seeded with a *known* value oscillates forever; X-seeded
        # loops settle at X instead, which is legal.
        result = compile_source(
            "module m(input a, output y);\nreg t;\ninitial t = 0;\n"
            "always @(*) t = ~t;\nassign y = t ^ a;\nendmodule"
        )
        assert result.ok
        with pytest.raises(SimulationError):
            Simulator(result.elaborated).step({"a": 0})

    def test_x_seeded_feedback_settles_at_x(self):
        result = compile_source(
            "module m(input a, output y);\nwire t;\n"
            "assign t = ~t;\nassign y = t ^ a;\nendmodule"
        )
        assert result.ok
        sim = Simulator(result.elaborated)
        sim.step({"a": 0})
        assert sim.get("y").has_x

    def test_unknown_input_rejected(self):
        sim = build("module m(input a, output y);\nassign y = a;\nendmodule")
        with pytest.raises(SimulationError):
            sim.set_input("nope", 1)

    def test_unknown_net_rejected(self):
        sim = build("module m(input a, output y);\nassign y = a;\nendmodule")
        with pytest.raises(SimulationError):
            sim.get("ghost")

    def test_runaway_while_loop(self):
        result = compile_source(
            "module m(input a, output reg y);\n"
            "always @(*) begin\n  y = a;\n  while (1) y = ~y;\nend\nendmodule"
        )
        assert result.ok
        with pytest.raises(SimulationError):
            Simulator(result.elaborated).step({"a": 0})

    def test_logic_input_port_values(self):
        sim = build("module m(input [3:0] a, output [3:0] y);\nassign y = a;\nendmodule")
        sim.step({"a": Logic.from_int(9, 4)})
        assert sim.get("y").bits == 9
