"""Tests for the RAG database and retrievers."""

import pytest

from repro.diagnostics import ErrorCategory, compile_source
from repro.errors import RetrievalError
from repro.rag import (
    ExactTagRetriever,
    FuzzyRetriever,
    GuidanceDatabase,
    GuidanceEntry,
    JaccardRetriever,
    TfIdfRetriever,
    build_default_database,
    make_retriever,
)

DB = build_default_database()

UNDECLARED_CODE = (
    "module top_module(input [7:0] in, output reg [7:0] out);\n"
    "always @(posedge clk) out <= in;\nendmodule"
)


def log_for(code: str, flavor: str) -> str:
    return compile_source(code, flavor=flavor).log


class TestDatabase:
    def test_paper_scale_iverilog(self):
        # Paper §3.3: 7 categories, 30 entries for iverilog.
        entries = DB.for_compiler("iverilog")
        assert len(entries) == 30
        assert len(DB.categories("iverilog")) == 7

    def test_paper_scale_quartus(self):
        # Paper §3.3: 11 categories, 45 entries for Quartus.
        entries = DB.for_compiler("quartus")
        assert len(entries) == 45
        assert len(DB.categories("quartus")) == 11

    def test_unknown_compiler_rejected(self):
        with pytest.raises(RetrievalError):
            DB.for_compiler("vcs")

    def test_json_roundtrip(self):
        loaded = GuidanceDatabase.from_json(DB.to_json())
        assert len(loaded) == len(DB)
        assert loaded.entries[0] == DB.entries[0]

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "db.json")
        DB.save(path)
        assert len(GuidanceDatabase.load(path)) == len(DB)

    def test_extensible(self):
        db = GuidanceDatabase()
        db.add(GuidanceEntry(
            category=ErrorCategory.UNDECLARED_ID, compiler="quartus",
            log_pattern="x", guidance="declare it",
        ))
        assert len(db) == 1


class TestExactTagRetriever:
    def test_quartus_tag_lookup(self):
        retriever = ExactTagRetriever(DB, "quartus")
        log = log_for(UNDECLARED_CODE, "quartus")
        hits = retriever.retrieve(log)
        assert hits
        assert all(h.entry.category is ErrorCategory.UNDECLARED_ID for h in hits)

    def test_iverilog_fragment_lookup(self):
        retriever = ExactTagRetriever(DB, "iverilog")
        log = log_for(UNDECLARED_CODE, "iverilog")
        hits = retriever.retrieve(log)
        assert hits
        assert hits[0].entry.category is ErrorCategory.UNDECLARED_ID

    def test_iverilog_ambiguous_syntax_maps_to_syntax_near(self):
        code = "module m(output reg [3:0] q);\ninteger i;\ninitial for (i=0;i<4;i++) q[i]=0;\nendmodule"
        retriever = ExactTagRetriever(DB, "iverilog")
        hits = retriever.retrieve(log_for(code, "iverilog"))
        # iverilog renders C-style errors as bare syntax errors, so
        # exact-tag retrieval can only find the generic guidance.
        assert hits
        assert hits[0].entry.category is ErrorCategory.SYNTAX_NEAR

    def test_quartus_distinguishes_the_same_case(self):
        code = "module m(output reg [3:0] q);\ninteger i;\ninitial for (i=0;i<4;i++) q[i]=0;\nendmodule"
        retriever = ExactTagRetriever(DB, "quartus")
        hits = retriever.retrieve(log_for(code, "quartus"))
        assert any(h.entry.category is ErrorCategory.C_STYLE_SYNTAX for h in hits)

    def test_empty_log(self):
        retriever = ExactTagRetriever(DB, "quartus")
        assert retriever.retrieve("") == []


@pytest.mark.parametrize("cls", [FuzzyRetriever, JaccardRetriever, TfIdfRetriever])
class TestSimilarityRetrievers:
    def test_finds_relevant_guidance(self, cls):
        retriever = cls(DB, "quartus")
        log = log_for(UNDECLARED_CODE, "quartus")
        hits = retriever.retrieve(log, k=5)
        assert hits
        assert any(
            h.entry.category is ErrorCategory.UNDECLARED_ID for h in hits
        )

    def test_scores_sorted_descending(self, cls):
        retriever = cls(DB, "quartus")
        hits = retriever.retrieve(log_for(UNDECLARED_CODE, "quartus"), k=5)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_results(self, cls):
        retriever = cls(DB, "quartus")
        assert len(retriever.retrieve(log_for(UNDECLARED_CODE, "quartus"), k=2)) <= 2


class TestFactory:
    def test_all_kinds_constructible(self):
        for kind in ("exact", "fuzzy", "jaccard", "tfidf"):
            assert make_retriever(kind, DB, "quartus") is not None

    def test_unknown_kind(self):
        with pytest.raises(RetrievalError):
            make_retriever("embedding", DB, "quartus")
