"""Unit tests for the Verilog lexer."""

from repro.diagnostics import ErrorCategory
from repro.verilog import SourceFile, tokenize
from repro.verilog.tokens import TokenKind


def lex(code: str):
    sink = []
    tokens = tokenize(SourceFile("t.v", code), sink)
    return tokens, sink


def kinds(code: str):
    tokens, _ = lex(code)
    return [t.kind for t in tokens[:-1]]  # drop EOF


def values(code: str):
    tokens, _ = lex(code)
    return [t.value for t in tokens[:-1]]


class TestBasics:
    def test_empty_input_is_just_eof(self):
        tokens, sink = lex("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF
        assert sink == []

    def test_identifiers_and_keywords(self):
        tokens, _ = lex("module foo endmodule")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[1].value == "foo"
        assert tokens[2].kind is TokenKind.KEYWORD

    def test_identifier_with_dollar_and_digits(self):
        assert values("a1_$x") == ["a1_$x"]

    def test_escaped_identifier(self):
        tokens, sink = lex("\\my+sig  rest")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "my+sig"
        assert sink == []

    def test_system_identifier(self):
        tokens, _ = lex("$display")
        assert tokens[0].kind is TokenKind.SYSTEM_IDENT
        assert tokens[0].value == "$display"

    def test_string_literal(self):
        tokens, sink = lex('"hello world"')
        assert tokens[0].kind is TokenKind.STRING
        assert sink == []

    def test_unterminated_string_reports(self):
        _, sink = lex('"oops')
        assert sink
        assert sink[0].category is ErrorCategory.SYNTAX_NEAR


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a // comment here\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_consumes_rest(self):
        assert values("a /* never closed") == ["a"]


class TestNumbers:
    def test_plain_decimal(self):
        tokens, _ = lex("42")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].value == "42"

    def test_sized_hex(self):
        tokens, sink = lex("8'hFF")
        assert tokens[0].value == "8'hFF"
        assert sink == []

    def test_sized_binary_with_x(self):
        _, sink = lex("4'b10x1")
        assert sink == []

    def test_underscores_allowed(self):
        tokens, sink = lex("16'b1010_1010_1111_0000")
        assert sink == []
        assert tokens[0].kind is TokenKind.NUMBER

    def test_signed_literal(self):
        _, sink = lex("8'sd12")
        assert sink == []

    def test_real_number(self):
        tokens, _ = lex("3.14")
        assert tokens[0].kind is TokenKind.REAL

    def test_invalid_binary_digit_flags_bad_literal(self):
        _, sink = lex("4'b1021")
        assert [d.category for d in sink] == [ErrorCategory.BAD_LITERAL]

    def test_invalid_hex_digit_flags_bad_literal(self):
        _, sink = lex("8'hGG")
        assert [d.category for d in sink] == [ErrorCategory.BAD_LITERAL]

    def test_missing_digits_flags_bad_literal(self):
        _, sink = lex("4'b;")
        assert [d.category for d in sink] == [ErrorCategory.BAD_LITERAL]

    def test_bad_base_char_flags_bad_literal(self):
        _, sink = lex("4'q1010")
        assert sink[0].category is ErrorCategory.BAD_LITERAL

    def test_bad_literal_recovers_with_zero_token(self):
        tokens, _ = lex("4'b1021 + 1")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].value == "0"
        assert tokens[1].value == "+"


class TestOperators:
    def test_multi_char_operators_greedy(self):
        assert values("a <= b") == ["a", "<=", "b"]
        assert values("a <<< 2") == ["a", "<<<", "2"]
        assert values("a === b") == ["a", "===", "b"]

    def test_c_style_tokens_lexed(self):
        # The lexer passes these through; the *parser* flags them.
        assert values("i++") == ["i", "++"]
        assert values("i += 2") == ["i", "+=", "2"]

    def test_at_star(self):
        assert values("@*") == ["@*"]

    def test_part_select_operators(self):
        assert values("a[3 +: 4]") == ["a", "[", "3", "+:", "4", "]"]

    def test_unknown_character_reports_syntax(self):
        _, sink = lex("a \x01 b")
        assert sink
        assert sink[0].category is ErrorCategory.SYNTAX_NEAR


class TestSpans:
    def test_token_spans_point_into_source(self):
        code = "module foo;\nendmodule"
        tokens, _ = lex(code)
        assert tokens[0].span.line == 1
        assert tokens[0].span.text == "module"
        assert tokens[3].span.line == 2

    def test_line_col_resolution(self):
        src = SourceFile("x.v", "ab\ncd\nef")
        assert src.line_col(0) == (1, 1)
        assert src.line_col(3) == (2, 1)
        assert src.line_col(7) == (3, 2)
        assert src.line_text(2) == "cd"
