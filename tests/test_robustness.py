"""Failure-injection and robustness tests for the agent stack."""

import pytest

from repro.agents import OneShotAgent, ReActAgent
from repro.core import RTLFixer
from repro.diagnostics import Compiler, compile_source
from repro.llm.base import RepairStep
from repro.rag import ExactTagRetriever, GuidanceDatabase, build_default_database

BROKEN = (
    "module top_module(input [7:0] in, output reg [7:0] out);\n"
    "always @(posedge clk) out <= in;\nendmodule\n"
)


class _StubbornModel:
    """Model that always returns the code unchanged."""

    name = "stubborn"

    def start(self, code, flavor, use_rag):
        return self

    def step(self, code, feedback, guidance):
        return RepairStep(thought="looks fine to me", code=code)


class _VandalModel:
    """Model that replaces the code with garbage every turn."""

    name = "vandal"

    def start(self, code, flavor, use_rag):
        return self

    def step(self, code, feedback, guidance):
        return RepairStep(thought="rewriting...", code="@@@ not verilog @@@")


class _GiveUpModel:
    """Model that immediately declares success without fixing anything."""

    name = "quitter"

    def start(self, code, flavor, use_rag):
        return self

    def step(self, code, feedback, guidance):
        return RepairStep(thought="done!", code=code, declared_done=True)


class TestAgentRobustness:
    def test_stubborn_model_terminates(self):
        agent = ReActAgent(
            model=_StubbornModel(), compiler=Compiler("quartus"), max_iterations=5
        )
        result = agent.run(BROKEN)
        assert not result.success
        assert result.iterations <= 5

    def test_vandal_model_terminates_without_crash(self):
        agent = ReActAgent(
            model=_VandalModel(), compiler=Compiler("iverilog"), max_iterations=4
        )
        result = agent.run(BROKEN)
        assert not result.success
        assert result.iterations == 4

    def test_quitter_stops_after_one_round(self):
        agent = ReActAgent(
            model=_GiveUpModel(), compiler=Compiler("quartus"), max_iterations=10
        )
        result = agent.run(BROKEN)
        assert not result.success
        assert result.iterations == 1

    def test_oneshot_with_vandal(self):
        agent = OneShotAgent(model=_VandalModel(), compiler=Compiler("quartus"))
        result = agent.run(BROKEN)
        assert not result.success

    def test_empty_input(self):
        result = RTLFixer(max_iterations=2).fix("")
        assert not result.success

    def test_whitespace_only_input(self):
        result = RTLFixer(max_iterations=2).fix("   \n\t\n")
        assert not result.success

    def test_huge_garbage_input_bounded(self):
        junk = "xyzzy " * 5000
        result = RTLFixer(max_iterations=2).fix(junk)
        assert not result.success

    def test_unicode_input_survives(self):
        result = RTLFixer(max_iterations=2).fix(
            "module m(output y);\nassign y = 1'b0; // ←⚡\nendmodule"
        )
        assert result.success  # non-ASCII comment stripped by rule-fix


class TestRetrieverRobustness:
    def test_wrong_flavor_log_yields_no_hits(self):
        retriever = ExactTagRetriever(build_default_database(), "quartus")
        iverilog_log = compile_source(BROKEN, flavor="iverilog").log
        # Quartus-tag retrieval over an iverilog log: no numeric tags.
        assert retriever.retrieve(iverilog_log) == []

    def test_agent_works_with_empty_retrieval(self):
        # Database with entries for quartus only, agent on iverilog...
        db = GuidanceDatabase(
            entries=[e for e in build_default_database() if e.compiler == "iverilog"]
        )
        fixer = RTLFixer(compiler="iverilog", database=db)
        result = fixer.fix(BROKEN)
        assert result.final_code  # no crash; usually fixed
