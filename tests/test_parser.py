"""Unit tests for the Verilog parser."""

from repro.diagnostics import ErrorCategory
from repro.verilog import SourceFile, parse
from repro.verilog import ast


def parse_ok(code: str):
    sink = []
    design = parse(SourceFile("t.v", code), sink)
    assert sink == [], f"unexpected diagnostics: {[str(d) for d in sink]}"
    return design


def parse_err(code: str):
    sink = []
    design = parse(SourceFile("t.v", code), sink)
    return design, [d.category for d in sink]


TOP = """
module top_module (
    input [7:0] in,
    output [7:0] out
);
assign out = in;
endmodule
"""


class TestModuleStructure:
    def test_simple_module(self):
        design = parse_ok(TOP)
        mod = design.top_module()
        assert mod.name == "top_module"
        assert [p.name for p in mod.ports] == ["in", "out"]
        assert mod.ports[0].direction == "input"
        assert len(mod.items) == 1

    def test_ansi_ports_with_reg(self):
        design = parse_ok(
            "module m(input clk, output reg [3:0] q);\nendmodule"
        )
        ports = design.top_module().ports
        assert ports[1].net_kind == "reg"
        assert ports[1].range is not None

    def test_non_ansi_ports(self):
        design = parse_ok(
            "module m(a, b);\ninput [1:0] a;\noutput b;\nendmodule"
        )
        mod = design.top_module()
        assert mod.port_order == ["a", "b"]
        assert {p.name for p in mod.ports} == {"a", "b"}

    def test_parameter_port_list(self):
        design = parse_ok(
            "module m #(parameter W = 8)(input [W-1:0] d);\nendmodule"
        )
        params = [i for i in design.top_module().items if isinstance(i, ast.ParamDecl)]
        assert params and params[0].name == "W"

    def test_two_modules(self):
        design = parse_ok(
            "module a; endmodule\nmodule b; endmodule"
        )
        assert set(design.modules) == {"a", "b"}
        assert design.top == "a"

    def test_missing_endmodule_reports_unbalanced(self):
        _, cats = parse_err("module m(input a);\nassign x = a;\n")
        assert ErrorCategory.UNBALANCED_BLOCK in cats


class TestDeclarations:
    def test_wire_and_reg_decls(self):
        design = parse_ok(
            "module m;\nwire [7:0] a, b;\nreg signed [3:0] c;\nendmodule"
        )
        items = design.top_module().items
        decls = [i for i in items if isinstance(i, ast.NetDecl)]
        assert decls[0].name == "a"
        assert decls[0].__dict__["_siblings"][0].name == "b"
        assert decls[1].signed is True

    def test_memory_decl(self):
        design = parse_ok("module m;\nreg [7:0] mem [0:255];\nendmodule")
        decl = design.top_module().items[0]
        assert decl.array_range is not None

    def test_wire_with_init(self):
        design = parse_ok("module m;\nwire x = 1'b1;\nendmodule")
        assert design.top_module().items[0].init is not None

    def test_localparam(self):
        design = parse_ok("module m;\nlocalparam N = 4, M = 2;\nendmodule")
        decl = design.top_module().items[0]
        assert decl.local is True
        assert decl.__dict__["_siblings"][0].name == "M"


class TestStatements:
    def test_always_ff_with_nonblocking(self):
        design = parse_ok(
            "module m(input clk, input d, output reg q);\n"
            "always @(posedge clk) q <= d;\nendmodule"
        )
        always = design.top_module().items[0]
        assert always.sensitivity.items[0].edge == "posedge"
        assert isinstance(always.body, ast.ProcAssign)
        assert always.body.blocking is False

    def test_always_star(self):
        design = parse_ok(
            "module m(input a, output reg y);\nalways @(*) y = a;\nendmodule"
        )
        assert design.top_module().items[0].sensitivity.star is True

    def test_sensitivity_or_list(self):
        design = parse_ok(
            "module m(input a, input b, output reg y);\n"
            "always @(a or b) y = a & b;\nendmodule"
        )
        sens = design.top_module().items[0].sensitivity
        assert len(sens.items) == 2

    def test_if_else_chain(self):
        design = parse_ok(
            "module m(input [1:0] s, output reg y);\n"
            "always @(*) begin\n"
            "  if (s == 2'd0) y = 0;\n"
            "  else if (s == 2'd1) y = 1;\n"
            "  else y = 0;\n"
            "end\nendmodule"
        )
        block = design.top_module().items[0].body
        assert isinstance(block.stmts[0], ast.If)
        assert isinstance(block.stmts[0].other, ast.If)

    def test_case_with_default(self):
        design = parse_ok(
            "module m(input [1:0] s, output reg [1:0] y);\n"
            "always @(*) case (s)\n"
            "  2'd0: y = 2'd3;\n"
            "  2'd1, 2'd2: y = 2'd1;\n"
            "  default: y = 2'd0;\n"
            "endcase\nendmodule"
        )
        case = design.top_module().items[0].body
        assert isinstance(case, ast.Case)
        assert len(case.items) == 3
        assert case.items[1].labels and len(case.items[1].labels) == 2
        assert case.items[2].labels == []

    def test_for_loop(self):
        design = parse_ok(
            "module m(input [7:0] in, output reg [7:0] out);\n"
            "integer i;\n"
            "always @(*) for (i = 0; i < 8; i = i + 1) out[i] = in[7 - i];\n"
            "endmodule"
        )
        always = [i for i in design.top_module().items if isinstance(i, ast.AlwaysBlock)][0]
        assert isinstance(always.body, ast.For)

    def test_sv_for_with_int_decl(self):
        design = parse_ok(
            "module m(input [7:0] in, output reg [7:0] out);\n"
            "always @(*) for (int i = 0; i < 8; i = i + 1) out[i] = in[i];\n"
            "endmodule"
        )
        loop = design.top_module().items[0].body
        assert loop.inline_decl == "i"

    def test_named_block(self):
        design = parse_ok(
            "module m(output reg q);\ninitial begin : blk\nq = 0;\nend\nendmodule"
        )
        assert design.top_module().items[0].body.name == "blk"

    def test_system_task_call(self):
        design = parse_ok(
            'module m;\ninitial $display("hi", 1);\nendmodule'
        )
        task = design.top_module().items[0].body
        assert isinstance(task, ast.TaskCall)
        assert task.name == "$display"


class TestExpressions:
    def expr_of(self, text: str):
        design = parse_ok(
            f"module m(input [7:0] a, input [7:0] b, input c, output [7:0] y);\n"
            f"assign y = {text};\nendmodule"
        )
        items = [i for i in design.top_module().items if isinstance(i, ast.ContinuousAssign)]
        return items[0].rhs

    def test_precedence_mul_over_add(self):
        expr = self.expr_of("a + b * 2")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_ternary(self):
        expr = self.expr_of("c ? a : b")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary_right_assoc(self):
        expr = self.expr_of("c ? a : c ? b : a")
        assert isinstance(expr.other, ast.Ternary)

    def test_concat_and_replicate(self):
        expr = self.expr_of("{a[3:0], {2{b[1:0]}}}")
        assert isinstance(expr, ast.Concat)
        assert isinstance(expr.parts[1], ast.Replicate)

    def test_reduction_unary(self):
        expr = self.expr_of("&a ^ |b")
        assert isinstance(expr, ast.Binary) and expr.op == "^"
        assert isinstance(expr.lhs, ast.Unary) and expr.lhs.op == "&"

    def test_part_selects(self):
        assert isinstance(self.expr_of("a[7:4]"), ast.RangeSelect)
        assert isinstance(self.expr_of("a[c]"), ast.Select)
        idx = self.expr_of("a[0 +: 4]")
        assert isinstance(idx, ast.IndexedSelect) and idx.ascending

    def test_system_call_expr(self):
        expr = self.expr_of("$signed(a) >>> 1")
        assert isinstance(expr, ast.Binary)
        assert isinstance(expr.lhs, ast.SystemCall)

    def test_power_right_assoc(self):
        expr = self.expr_of("2 ** 3 ** 2")
        assert expr.op == "**"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "**"


class TestErrorDetection:
    def test_missing_semicolon(self):
        _, cats = parse_err(
            "module m(input a, output b);\nassign b = a\nendmodule"
        )
        assert cats == [ErrorCategory.MISSING_SEMICOLON]

    def test_unbalanced_begin_end(self):
        _, cats = parse_err(
            "module m(input a, output reg b);\n"
            "always @(*) begin\nb = a;\nendmodule"
        )
        assert ErrorCategory.UNBALANCED_BLOCK in cats

    def test_missing_endcase(self):
        _, cats = parse_err(
            "module m(input a, output reg b);\n"
            "always @(*) case (a) 1'b0: b = 0; \nendmodule"
        )
        assert ErrorCategory.UNBALANCED_BLOCK in cats

    def test_c_style_increment(self):
        _, cats = parse_err(
            "module m(output reg [7:0] q);\ninteger i;\n"
            "initial for (i = 0; i < 8; i++) q[i] = 0;\nendmodule"
        )
        assert cats == [ErrorCategory.C_STYLE_SYNTAX]

    def test_c_style_compound_assign(self):
        _, cats = parse_err(
            "module m(output reg [7:0] q);\ninitial q += 1;\nendmodule"
        )
        assert cats == [ErrorCategory.C_STYLE_SYNTAX]

    def test_c_style_recovers_to_equivalent_assign(self):
        design, _ = parse_err(
            "module m(output reg [7:0] q);\ninteger i;\n"
            "initial for (i = 0; i < 8; i++) q[i] = 0;\nendmodule"
        )
        loop = design.top_module().items[-1].body
        assert isinstance(loop.step, ast.ProcAssign)
        assert isinstance(loop.step.rhs, ast.Binary)

    def test_empty_event_control(self):
        _, cats = parse_err(
            "module m(output reg q);\nalways @() q = 0;\nendmodule"
        )
        assert ErrorCategory.EVENT_EXPR in cats

    def test_posedge_without_signal(self):
        _, cats = parse_err(
            "module m(input clk, output reg q);\nalways @(posedge) q = 0;\nendmodule"
        )
        assert ErrorCategory.EVENT_EXPR in cats

    def test_always_without_event_control(self):
        _, cats = parse_err(
            "module m(output reg q);\nalways q = 0;\nendmodule"
        )
        assert ErrorCategory.EVENT_EXPR in cats

    def test_garbage_reports_syntax_near(self):
        _, cats = parse_err("module m(input a); ??? endmodule")
        assert ErrorCategory.SYNTAX_NEAR in cats

    def test_multiple_independent_errors_reported(self):
        _, cats = parse_err(
            "module m(input a, output b, output reg c);\n"
            "assign b = a\n"
            "initial c += 1;\n"
            "endmodule"
        )
        assert ErrorCategory.MISSING_SEMICOLON in cats
        assert ErrorCategory.C_STYLE_SYNTAX in cats


class TestInstantiation:
    def test_named_connections(self):
        design = parse_ok(
            "module top(input a, output y);\n"
            "sub u1 (.in(a), .out(y));\nendmodule\n"
            "module sub(input in, output out);\nassign out = in;\nendmodule"
        )
        inst = design.modules["top"].items[0]
        assert isinstance(inst, ast.Instantiation)
        assert inst.connections[0].name == "in"

    def test_positional_connections(self):
        design = parse_ok(
            "module top(input a, output y);\nsub u1 (a, y);\nendmodule\n"
            "module sub(input i, output o);\nendmodule"
        )
        inst = design.modules["top"].items[0]
        assert inst.connections[0].name is None

    def test_parameter_override(self):
        design = parse_ok(
            "module top(output [7:0] y);\nsub #(.W(8)) u1 (.out(y));\nendmodule\n"
            "module sub #(parameter W = 4)(output [W-1:0] out);\nendmodule"
        )
        inst = design.modules["top"].items[0]
        assert inst.param_overrides[0].name == "W"


class TestFunctions:
    def test_function_decl_and_call(self):
        design = parse_ok(
            "module m(input [7:0] a, output [7:0] y);\n"
            "function [7:0] double(input [7:0] x);\n"
            "  double = x << 1;\n"
            "endfunction\n"
            "assign y = double(a);\nendmodule"
        )
        items = design.top_module().items
        fn = [i for i in items if isinstance(i, ast.FunctionDecl)][0]
        assert fn.name == "double"
        assert len(fn.inputs) == 1

    def test_generate_for(self):
        design = parse_ok(
            "module m(input [3:0] a, output [3:0] y);\n"
            "genvar g;\n"
            "generate for (g = 0; g < 4; g = g + 1) begin : blk\n"
            "  assign y[g] = ~a[g];\n"
            "end endgenerate\nendmodule"
        )
        gen = [i for i in design.top_module().items if isinstance(i, ast.GenerateFor)]
        assert gen and gen[0].genvar == "g"
        assert len(gen[0].items) == 1
