"""Tests for the durable-run subsystem: the crash-safe trial journal,
content-addressed checkpoints and resume, the circuit breaker, graceful
shutdown, atomic writes, and compile-cache single-flight coalescing."""

import json
import os
import signal
import threading
import zlib

import pytest

from repro.core.config import RTLFixerConfig
from repro.core.fixer import RTLFixer
from repro.dataset import build_syntax_dataset, verilogeval
from repro.errors import (
    CheckpointError,
    RetryExhaustedError,
    RunInterrupted,
    TransientError,
)
from repro.eval.runner import run_fix_experiment
from repro.runtime import (
    CircuitBreaker,
    CompileCache,
    GracefulShutdown,
    Journal,
    ParallelRunner,
    RunContext,
    RunState,
    WorkFailure,
    atomic_write_json,
    atomic_write_text,
    config_digest,
    content_digest,
    decode_payload,
    encode_payload,
    unit_key,
)
from repro.runtime.journal import decode_line, encode_record


@pytest.fixture(scope="module")
def tiny_dataset():
    """A 6-entry dataset shared by the durable run_fix_experiment tests."""
    return build_syntax_dataset(
        verilogeval(), samples_per_problem=2, seed=0, target_size=6
    )


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


class TestJournal:
    def test_append_and_reopen(self, tmp_path):
        """Appended records come back verbatim on reopen."""
        path = tmp_path / "j.jsonl"
        with Journal(str(path)) as journal:
            journal.append({"key": "a", "result": 1})
            journal.append({"key": "b", "result": [1, 2]})
            assert len(journal) == 2
        with Journal(str(path)) as journal:
            assert [r["key"] for r in journal] == ["a", "b"]
            assert journal.recovery.truncated_bytes == 0

    def test_record_roundtrip(self):
        """encode_record/decode_line invert each other (the journal
        strips the line terminator before decoding)."""
        record = {"key": "k", "result": {"x": [1, 2.5, None, True]}}
        assert decode_line(encode_record(record).rstrip(b"\n")) == record

    def test_crc_rejects_corruption(self):
        """A flipped byte in the body invalidates the record."""
        line = bytearray(encode_record({"key": "k"}).rstrip(b"\n"))
        assert decode_line(bytes(line)) is not None
        line[12] ^= 0xFF
        assert decode_line(bytes(line)) is None

    def test_torn_tail_truncated_on_open(self, tmp_path):
        """A partial final line (crash mid-append) is truncated away and
        the valid prefix survives."""
        path = tmp_path / "j.jsonl"
        with Journal(str(path)) as journal:
            journal.append({"key": "a"})
            journal.append({"key": "b"})
        whole = path.read_bytes()
        path.write_bytes(whole[:-7])  # tear the last record
        with Journal(str(path)) as journal:
            assert [r["key"] for r in journal] == ["a"]
            assert journal.recovery.truncated_bytes > 0
            assert journal.recovery.reason == "torn-tail"
            # and the file itself was repaired: appends go after "a"
            journal.append({"key": "c"})
        with Journal(str(path)) as journal:
            assert [r["key"] for r in journal] == ["a", "c"]

    def test_corrupt_middle_record_truncates_suffix(self, tmp_path):
        """Bit-rot in an *interior* record drops it and everything after
        (suffix records are unreachable without a trusted predecessor)."""
        path = tmp_path / "j.jsonl"
        with Journal(str(path)) as journal:
            journal.append({"key": "a"})
            journal.append({"key": "b"})
            journal.append({"key": "c"})
        lines = path.read_bytes().splitlines(keepends=True)
        second = bytearray(lines[1])
        second[4] = ord(b"0") if second[4] != ord(b"0") else ord(b"1")
        path.write_bytes(lines[0] + bytes(second) + lines[2])
        with Journal(str(path)) as journal:
            assert [r["key"] for r in journal] == ["a"]
            assert journal.recovery.reason == "corrupt-record"

    def test_crc_is_crc32_of_body(self):
        """The leading 8 hex chars are exactly crc32 of the JSON body."""
        line = encode_record({"key": "a"})
        crc_hex, _, body = line.partition(b" ")
        assert int(crc_hex, 16) == zlib.crc32(body.rstrip(b"\n"))


# ---------------------------------------------------------------------------
# Atomic writes
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_text_roundtrip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "one")
        atomic_write_text(str(path), "two")
        assert path.read_text() == "two"

    def test_no_temp_litter(self, tmp_path):
        atomic_write_text(str(tmp_path / "out.txt"), "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_json_sorted_and_newline_terminated(self, tmp_path):
        path = tmp_path / "o.json"
        atomic_write_json(str(path), {"b": 1, "a": 2})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')


# ---------------------------------------------------------------------------
# Payload codec / keys
# ---------------------------------------------------------------------------


class TestCodecAndKeys:
    def test_primitives_and_tuples_roundtrip(self):
        value = (True, 3, 2.5, "s", None, [1, (2, 3)], {"k": (4,)})
        assert decode_payload(encode_payload(value)) == value
        assert isinstance(decode_payload(encode_payload(value)), tuple)

    def test_dataclass_roundtrip(self):
        failure = WorkFailure(index=3, error_type="RuntimeError", message="boom")
        restored = decode_payload(encode_payload(failure))
        assert restored == failure
        assert isinstance(restored, WorkFailure)

    def test_non_repro_dataclass_refused(self):
        payload = {"__dataclass__": "os:stat_result", "fields": {}}
        with pytest.raises(CheckpointError):
            decode_payload(payload)

    def test_unencodable_type_refused(self):
        with pytest.raises(CheckpointError):
            encode_payload(object())

    def test_config_digest_ignores_execution_fields(self):
        """jobs/on_error/run_dir/breaker_threshold never change results,
        so a resume with different values must address the same trials."""
        base = RTLFixerConfig()
        tweaked = RTLFixerConfig(
            jobs=8, on_error="collect", run_dir="/tmp/x", breaker_threshold=3
        )
        assert config_digest(base) == config_digest(tweaked)
        assert config_digest(base) != config_digest(RTLFixerConfig(seed=1))

    def test_unit_key_separates_stages_and_parts(self):
        assert unit_key("a", x=1) != unit_key("b", x=1)
        assert unit_key("a", x=1) != unit_key("a", x=2)
        assert unit_key("a", x=1) == unit_key("a", x=1)


# ---------------------------------------------------------------------------
# RunState / manifest
# ---------------------------------------------------------------------------


class TestRunState:
    def test_record_and_replay(self, tmp_path):
        key = unit_key("t", x=1)
        with RunState(str(tmp_path / "run")) as state:
            assert not state.completed(key)
            state.record(key, (True, 4), stage="t")
            assert state.completed(key)
        with RunState(str(tmp_path / "run")) as state:
            assert state.completed(key)
            assert state.result(key) == (True, 4)

    def test_skipped_records_not_replayed(self, tmp_path):
        """SKIPPED (breaker-denied) trials are journaled for the record
        but must re-execute on resume."""
        key = unit_key("t", x=1)
        skipped = WorkFailure.skipped_unit(0, "item")
        with RunState(str(tmp_path / "run")) as state:
            state.record(key, skipped, stage="t", skipped=True)
        with RunState(str(tmp_path / "run")) as state:
            assert not state.completed(key)

    def test_manifest_mismatch_fails_fast(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunState(run_dir) as state:
            state.ensure_manifest({"scale": 1})
        with RunState(run_dir) as state:
            with pytest.raises(CheckpointError, match="different configuration"):
                state.ensure_manifest({"scale": 2}, resume=True)

    def test_refuses_to_clobber_without_resume(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunState(run_dir) as state:
            state.ensure_manifest({"scale": 1})
            state.record(unit_key("t", x=1), 1)
        with RunState(run_dir) as state:
            with pytest.raises(CheckpointError, match="--resume"):
                state.ensure_manifest({"scale": 1}, resume=False)
            state.ensure_manifest({"scale": 1}, resume=True)  # ok


# ---------------------------------------------------------------------------
# Durable map (RunContext)
# ---------------------------------------------------------------------------


class TestDurableMap:
    def test_resume_skips_completed(self, tmp_path):
        """Second run over the same keys replays the journal and calls
        the work function zero times."""
        runner = ParallelRunner(jobs=1)
        items = list(range(5))
        keys = [unit_key("sq", x=i) for i in items]
        calls = []

        def square(x):
            calls.append(x)
            return x * x

        with RunState(str(tmp_path / "run")) as state:
            ctx = RunContext(state=state)
            first = ctx.map(runner, square, items, keys=keys, stage="sq")
        assert first == [0, 1, 4, 9, 16]
        assert len(calls) == 5

        with RunState(str(tmp_path / "run")) as state:
            ctx = RunContext(state=state)
            second = ctx.map(runner, square, items, keys=keys, stage="sq")
        assert second == first
        assert len(calls) == 5  # nothing re-executed
        assert ctx.replayed == 5 and ctx.executed == 0

    def test_partial_journal_executes_remainder(self, tmp_path):
        """With only some keys journaled, exactly the rest dispatches."""
        items = list(range(6))
        keys = [unit_key("sq", x=i) for i in items]
        with RunState(str(tmp_path / "run")) as state:
            for i in (0, 2, 4):
                state.record(keys[i], i * i, stage="sq")
        calls = []

        def square(x):
            calls.append(x)
            return x * x

        with RunState(str(tmp_path / "run")) as state:
            ctx = RunContext(state=state)
            results = ctx.map(
                ParallelRunner(jobs=1), square, items, keys=keys, stage="sq"
            )
        assert results == [i * i for i in items]
        assert sorted(calls) == [1, 3, 5]
        assert ctx.replayed == 3 and ctx.executed == 3

    def test_collected_failures_reindexed_globally(self, tmp_path):
        """A WorkFailure produced in the todo-subset map carries its
        *global* submission index, both in results and in the journal."""
        items = list(range(4))
        keys = [unit_key("f", x=i) for i in items]
        with RunState(str(tmp_path / "run")) as state:
            state.record(keys[0], 0, stage="f")  # index 0 already done

        def sometimes(x):
            if x == 2:
                raise RuntimeError("boom")
            return x

        with RunState(str(tmp_path / "run")) as state:
            ctx = RunContext(state=state)
            results = ctx.map(
                ParallelRunner(jobs=1), sometimes, items, keys=keys,
                stage="f", on_error="collect",
            )
        failure = results[2]
        assert isinstance(failure, WorkFailure)
        assert failure.index == 2  # not its todo-local index (1)

    def test_failed_trials_reexecute_on_resume(self, tmp_path):
        """A journaled real failure (e.g. retries exhausted against a
        temporary outage) is not a completed trial: resume retries it,
        so a run that limped through an outage heals."""
        items = list(range(3))
        keys = [unit_key("f", x=i) for i in items]
        healthy = {"ok": False}

        def flaky(x):
            if x == 1 and not healthy["ok"]:
                raise RetryExhaustedError("backend outage", attempts=3)
            return x * 10

        with RunState(str(tmp_path / "run")) as state:
            ctx = RunContext(state=state)
            first = ctx.map(
                ParallelRunner(jobs=1), flaky, items, keys=keys,
                stage="f", on_error="collect",
            )
        assert isinstance(first[1], WorkFailure)

        healthy["ok"] = True  # the outage clears before the resume
        with RunState(str(tmp_path / "run")) as state:
            assert state.replayed_trials == 2  # the failure is not "done"
            assert not state.completed(keys[1])
            ctx = RunContext(state=state)
            resumed = ctx.map(
                ParallelRunner(jobs=1), flaky, items, keys=keys,
                stage="f", on_error="collect",
            )
        assert resumed == [0, 10, 20]
        assert ctx.replayed == 2 and ctx.executed == 1

    def test_failure_then_success_replays_success(self, tmp_path):
        """After a failed trial is retried successfully, a further
        resume replays the success (latest record wins the index)."""
        items = [0]
        keys = [unit_key("f", x=0)]
        with RunState(str(tmp_path / "run")) as state:
            state.record(
                keys[0],
                WorkFailure(index=0, error_type="RetryExhaustedError",
                            message="outage"),
                stage="f",
            )
            state.record(keys[0], 42, stage="f")
        with RunState(str(tmp_path / "run")) as state:
            assert state.completed(keys[0])
            assert state.result(keys[0]) == 42

    def test_interrupt_then_resume_is_identical(self, tmp_path):
        """Kill (via should_stop) mid-map, resume, and the merged result
        equals an uninterrupted run."""
        items = list(range(8))
        keys = [unit_key("sq", x=i) for i in items]
        flag = {"stop": False}

        def square(x):
            if x == 3:
                flag["stop"] = True  # request shutdown mid-run
            return x * x

        with RunState(str(tmp_path / "run")) as state:
            ctx = RunContext(state=state, should_stop=lambda: flag["stop"])
            with pytest.raises(RunInterrupted):
                ctx.map(ParallelRunner(jobs=1), square, items, keys=keys)

        with RunState(str(tmp_path / "run")) as state:
            assert 0 < state.replayed_trials < len(items)
            ctx = RunContext(state=state)
            results = ctx.map(ParallelRunner(jobs=1), square, items, keys=keys)
        assert results == [i * i for i in items]

    def test_stateless_context_is_plain_map(self):
        ctx = RunContext()
        results = ctx.map(
            ParallelRunner(jobs=1), lambda x: x + 1, [1, 2, 3]
        )
        assert results == [2, 3, 4]
        assert ctx.executed == 3 and ctx.replayed == 0

    def test_key_count_mismatch_rejected(self, tmp_path):
        with RunState(str(tmp_path / "run")) as state:
            ctx = RunContext(state=state)
            with pytest.raises(CheckpointError, match="one key per item"):
                ctx.map(ParallelRunner(jobs=1), str, [1, 2], keys=["only-one"])


# ---------------------------------------------------------------------------
# Durable run_fix_experiment (driver-level resume)
# ---------------------------------------------------------------------------


class TestDurableFixExperiment:
    def test_run_dir_resume_matches_fresh(self, tiny_dataset, tmp_path):
        """A journaled run_fix_experiment replays to the same result."""
        run_dir = str(tmp_path / "run")
        fixer = RTLFixer(max_iterations=2)
        first = run_fix_experiment(
            tiny_dataset, RTLFixer(max_iterations=2, run_dir=run_dir), repeats=2
        )
        journal = Journal(os.path.join(run_dir, "journal.jsonl"))
        assert len(journal) == len(tiny_dataset) * 2
        journal.close()
        resumed = run_fix_experiment(
            tiny_dataset, RTLFixer(max_iterations=2, run_dir=run_dir), repeats=2
        )
        fresh = run_fix_experiment(tiny_dataset, fixer, repeats=2)
        assert resumed.fixed_counts == fresh.fixed_counts == first.fixed_counts
        assert resumed.iterations == fresh.iterations

    def test_changed_config_same_run_dir_fails_fast(self, tiny_dataset, tmp_path):
        """The standalone durable path pins a manifest: reusing a run
        directory with a changed result-relevant config raises instead
        of silently appending mismatched trials to the same journal."""
        run_dir = str(tmp_path / "run")
        run_fix_experiment(
            tiny_dataset, RTLFixer(max_iterations=2, run_dir=run_dir), repeats=1
        )
        journal = Journal(os.path.join(run_dir, "journal.jsonl"))
        before = len(journal)
        journal.close()
        with pytest.raises(CheckpointError, match="different configuration"):
            run_fix_experiment(
                tiny_dataset,
                RTLFixer(max_iterations=3, run_dir=run_dir),
                repeats=1,
            )
        journal = Journal(os.path.join(run_dir, "journal.jsonl"))
        assert len(journal) == before  # nothing was appended
        journal.close()

    def test_standalone_run_dir_writes_manifest(self, tiny_dataset, tmp_path):
        """run_dir-on-config gets the same manifest protection as the
        CLI path (config digest + stage pinned in manifest.json)."""
        run_dir = str(tmp_path / "run")
        fixer = RTLFixer(max_iterations=2, run_dir=run_dir)
        run_fix_experiment(tiny_dataset, fixer, repeats=1)
        with open(os.path.join(run_dir, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["kind"] == "fix_experiment"
        assert manifest["stage"] == "fix"
        assert manifest["config"] == config_digest(fixer.config)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure(RuntimeError("x"))
        assert breaker.state == "closed"
        breaker.record_failure(RuntimeError("x"))
        assert breaker.state == "open" and breaker.tripped

    def test_success_resets_tally(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(RuntimeError("x"))
        breaker.record_success()
        breaker.record_failure(RuntimeError("x"))
        assert breaker.state == "closed"

    def test_bare_transient_not_counted(self):
        """Transients belong to the retry layer; only exhausted retries
        (RetryExhaustedError, not transient) count toward a trip."""
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(TransientError("hiccup"))
        assert breaker.state == "closed"
        breaker.record_failure(RetryExhaustedError("gave up", attempts=3))
        assert breaker.state == "open"

    def test_half_open_probe_recovers(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=2)
        breaker.record_failure(RuntimeError("x"))
        assert not breaker.allow()  # denial 1
        assert breaker.allow()  # denial 2 converts to a half-open probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure(RuntimeError("x"))
        assert breaker.allow()  # immediate probe
        breaker.record_failure(RuntimeError("still down"))
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_no_probe_when_disabled(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=None)
        breaker.record_failure(RuntimeError("x"))
        assert not any(breaker.allow() for _ in range(100))

    def test_executor_skips_fail_fast(self):
        """Once tripped, remaining units become SKIPPED slots without
        running."""
        breaker = CircuitBreaker(failure_threshold=2, probe_interval=None)
        calls = []

        def failing(x):
            calls.append(x)
            raise RuntimeError("down")

        results = ParallelRunner(jobs=1).map(
            failing, list(range(6)), on_error="collect", breaker=breaker
        )
        assert len(calls) == 2  # threshold reached, rest skipped
        assert all(isinstance(r, WorkFailure) for r in results)
        assert [r.skipped for r in results] == [False, False, True, True, True, True]
        assert results[2].error_type == "CircuitOpenError"
        assert "skipped" in results[2].describe()

    def test_breaker_requires_collect(self):
        with pytest.raises(ValueError, match="collect"):
            ParallelRunner(jobs=1).map(
                str, [1], on_error="raise", breaker=CircuitBreaker()
            )

    def test_snapshot_shape(self):
        snapshot = CircuitBreaker(failure_threshold=2).snapshot()
        assert snapshot["state"] == "closed"
        assert set(snapshot) >= {"state", "trips", "skipped"}

    def test_transient_probe_failure_settles_half_open(self):
        """A bare-transient probe failure must re-open the breaker, not
        leave it wedged half-open forever (which starves dispatch)."""
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure(RuntimeError("x"))
        assert breaker.allow()  # immediate probe
        assert breaker.probing
        breaker.record_failure(TransientError("hiccup"))
        assert breaker.state == "open"  # settled, not stuck half_open
        assert breaker.consecutive_failures == 1  # transient not tallied
        assert breaker.allow()  # probing resumes on the next interval

    def test_non_probe_failure_while_probing_only_tallies(self):
        """While a half-open probe is in flight, a counted failure from
        another already-in-flight unit must not trip the breaker or
        discard the probe's pending outcome."""
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure(RuntimeError("x"))
        assert breaker.allow()  # probe dispatched
        trips = breaker.trips
        breaker.record_failure(RuntimeError("straggler"), probe=False)
        assert breaker.state == "half_open"
        assert breaker.trips == trips  # telemetry not inflated
        breaker.record_success(probe=True)  # the probe's own outcome
        assert breaker.state == "closed"

    def test_non_probe_success_leaves_probe_to_settle(self):
        """A straggler success while half-open resets the tally but does
        not close the breaker; the probe still settles the state."""
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure(RuntimeError("x"))
        assert breaker.allow()
        breaker.record_success(probe=False)
        assert breaker.state == "half_open" and breaker.probing
        assert breaker.consecutive_failures == 0
        breaker.record_failure(RuntimeError("still down"), probe=True)
        assert breaker.state == "open"

    def test_serial_run_survives_transient_probe_failures(self):
        """End-to-end serial regression: once tripped, transient probe
        failures keep the probe cadence going instead of silently
        skipping every remaining trial."""
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=2)

        def failing(x):
            if x == 0:
                raise RuntimeError("down")  # trips the breaker
            raise TransientError("hiccup")  # every probe stays transient

        results = ParallelRunner(jobs=1).map(
            failing, list(range(6)), on_error="collect", breaker=breaker
        )
        assert all(isinstance(r, WorkFailure) for r in results)
        # denial, probe, denial, probe, ... -- probes keep executing
        assert [r.skipped for r in results] == [
            False, True, False, True, False, True
        ]

    def test_pool_probe_transient_failure_fills_every_slot(self):
        """Pool-backend regression: a transient probe failure must not
        wedge the breaker half-open and leave undispatched units as
        silent None slots in the result list."""
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)

        def failing(x):
            if x == 0:
                raise RuntimeError("down")
            raise TransientError("hiccup")

        results = ParallelRunner(jobs=4, backend="thread").map(
            failing, list(range(12)), on_error="collect", breaker=breaker
        )
        assert len(results) == 12
        assert all(isinstance(r, WorkFailure) for r in results)  # no Nones


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------


class TestGracefulShutdown:
    def test_first_signal_sets_flag(self):
        notices = []
        shutdown = GracefulShutdown(notify=notices.append, hard_exit=lambda c: None)
        assert not shutdown.requested()
        shutdown.handler(signal.SIGINT)
        assert shutdown.requested()
        assert shutdown.signum == signal.SIGINT
        assert "resumable" in notices[0]

    def test_second_signal_hard_exits(self):
        codes = []
        shutdown = GracefulShutdown(notify=lambda m: None, hard_exit=codes.append)
        shutdown.handler(signal.SIGTERM)
        shutdown.handler(signal.SIGTERM)
        assert codes == [128 + signal.SIGTERM]

    def test_handlers_installed_and_restored(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulShutdown() as shutdown:
            assert signal.getsignal(signal.SIGINT) == shutdown.handler
        assert signal.getsignal(signal.SIGINT) == before

    def test_map_drains_then_raises(self):
        """should_stop mid-run stops dispatch and raises RunInterrupted
        with progress attached."""
        shutdown = GracefulShutdown(notify=lambda m: None, hard_exit=lambda c: None)
        seen = []

        def work(x):
            seen.append(x)
            if x == 1:
                shutdown.handler(signal.SIGINT)
            return x

        with pytest.raises(RunInterrupted) as info:
            ParallelRunner(jobs=1).map(
                work, list(range(5)), should_stop=shutdown.requested
            )
        assert seen == [0, 1]
        assert info.value.done == 2 and info.value.total == 5


# ---------------------------------------------------------------------------
# Compile-cache single-flight coalescing
# ---------------------------------------------------------------------------

GOOD = "module m(input a, output y);\nassign y = a;\nendmodule\n"


class TestCacheCoalescing:
    def test_concurrent_misses_compile_once(self, monkeypatch):
        """N threads racing on a cold key produce one compile and N-1
        coalesced waits."""
        import repro.diagnostics.compiler as compiler_mod

        real = compiler_mod.compile_source
        started = threading.Event()
        release = threading.Event()
        compiles = []

        def slow_compile(code, **kwargs):
            compiles.append(code)
            started.set()
            release.wait(timeout=10)
            return real(code, **kwargs)

        monkeypatch.setattr(compiler_mod, "compile_source", slow_compile)
        cache = CompileCache()
        results = []

        def lookup():
            results.append(cache.compile(GOOD))

        leader = threading.Thread(target=lookup)
        leader.start()
        assert started.wait(timeout=10)
        waiters = [threading.Thread(target=lookup) for _ in range(3)]
        for thread in waiters:
            thread.start()
        # give the waiters time to reach event.wait()
        deadline = 100
        while cache.stats.coalesced < 3 and deadline:
            deadline -= 1
            threading.Event().wait(0.01)
        release.set()
        leader.join(timeout=10)
        for thread in waiters:
            thread.join(timeout=10)
        assert len(compiles) == 1  # exactly one real compile
        assert cache.stats.misses == 1
        assert cache.stats.coalesced == 3
        assert cache.stats.hits == 3  # waiters re-read the fresh entry
        assert len({id(r) for r in results}) == 1  # all the same object

    def test_coalesced_in_stats_dict(self):
        assert CompileCache().stats.as_dict()["coalesced_waits"] == 0

    def test_leader_failure_releases_waiters(self, monkeypatch):
        """If the leader's compile raises, waiters do not deadlock: one
        becomes the next leader."""
        import repro.diagnostics.compiler as compiler_mod

        real = compiler_mod.compile_source
        attempts = []

        def flaky(code, **kwargs):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("injected leader crash")
            return real(code, **kwargs)

        monkeypatch.setattr(compiler_mod, "compile_source", flaky)
        cache = CompileCache()
        with pytest.raises(RuntimeError):
            cache.compile(GOOD)
        assert cache.compile(GOOD).ok  # retried cleanly, no stuck event
        assert len(attempts) == 2
