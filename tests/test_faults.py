"""Fault-injection (chaos) suite: retry/backoff, deterministic fault
injection, failure-isolating parallel runs, and regression tests for the
seed-cloning / executor-shutdown / rule-fix-accounting bugfixes.

Everything here is marked ``chaos`` so ``scripts/bench.sh`` (and
``pytest -m chaos``) can run the fault paths as a selectable suite.
"""

import time

import pytest

from repro.agents.react import ReActAgent
from repro.core import RTLFixer, RTLFixerConfig
from repro.dataset import build_syntax_dataset, verilogeval
from repro.diagnostics import Compiler
from repro.errors import (
    InjectedFault,
    LLMTimeoutError,
    RetryExhaustedError,
    TransientError,
)
from repro.eval.runner import run_fix_experiment
from repro.llm import SimulatedLLM
from repro.llm.base import RepairStep
from repro.llm.base import ChatMessage
from repro.rag.guidance_data import build_default_database
from repro.runtime import (
    GARBAGE_CODE,
    ChaosCompiler,
    ChaosLLMClient,
    ChaosRepairModel,
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    ParallelRunner,
    RetryingCompiler,
    RetryingLLMClient,
    RetryingRepairModel,
    RetryPolicy,
    WorkFailure,
    call_with_retry,
    guidance_key,
    messages_key,
    partition_failures,
    use_sim_chaos,
)

pytestmark = pytest.mark.chaos

BROKEN = (
    "module top_module(input [7:0] in, output reg [7:0] out);\n"
    "always @(posedge clk) out <= in;\nendmodule\n"
)
GOOD = "module m(input a, output y);\nassign y = a;\nendmodule\n"


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_syntax_dataset(
        verilogeval(), samples_per_problem=3, seed=0, target_size=12
    )


class _FlakyModel:
    """RepairModel whose ``step`` raises transiently N times, then
    delegates to a SimulatedLLM."""

    def __init__(self, failures: int, seed: int = 0):
        self.failures = failures
        self.remaining = failures
        self.inner = SimulatedLLM(seed=seed)
        self.seed = seed

    name = "flaky"

    def with_seed(self, seed):
        return _FlakyModel(self.failures, seed=seed)

    def start(self, code, flavor, use_rag):
        self.session = self.inner.start(code, flavor, use_rag)
        return self

    def step(self, code, feedback, guidance):
        if self.remaining > 0:
            self.remaining -= 1
            raise InjectedFault("flaky step")
        return self.session.step(code, feedback, guidance)


# ---------------------------------------------------------------------------
# RetryPolicy / call_with_retry
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_deterministic_at_fixed_seed(self):
        policy = RetryPolicy(max_retries=5, seed=42)
        assert list(policy.delays("k")) == list(policy.delays("k"))

    def test_backoff_varies_with_seed_and_key(self):
        a = list(RetryPolicy(max_retries=5, seed=1).delays("k"))
        b = list(RetryPolicy(max_retries=5, seed=2).delays("k"))
        c = list(RetryPolicy(max_retries=5, seed=1).delays("other"))
        assert a != b and a != c

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_retries=8, base_delay=0.1, max_delay=1.0, jitter=0.0, seed=0
        )
        delays = list(policy.delays())
        assert delays[:4] == pytest.approx([0.1, 0.2, 0.4, 0.8])
        assert all(d <= 1.0 for d in delays)

    def test_jitter_bounds(self):
        policy = RetryPolicy(max_retries=20, base_delay=1.0, max_delay=1.0, jitter=0.5)
        for delay in policy.delays("j"):
            assert 0.75 <= delay <= 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)


class TestCallWithRetry:
    def test_happy_path_never_sleeps(self):
        sleeps = []
        result = call_with_retry(
            lambda: 7, RetryPolicy(max_retries=3), sleep=sleeps.append
        )
        assert result == 7 and sleeps == []

    def test_retry_then_succeed(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise InjectedFault("transient")
            return "ok"

        sleeps = []
        policy = RetryPolicy(max_retries=3, seed=9)
        assert call_with_retry(flaky, policy, key="x", sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert sleeps == list(policy.delays("x"))[:2]  # the exact schedule

    def test_retry_exhaustion(self):
        def always_fail():
            raise InjectedFault("permanent")

        policy = RetryPolicy(max_retries=2)
        with pytest.raises(RetryExhaustedError) as info:
            call_with_retry(always_fail, policy, sleep=lambda _: None)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, InjectedFault)
        assert isinstance(info.value.__cause__, TransientError)

    def test_non_transient_errors_propagate_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("a real bug")

        with pytest.raises(ValueError):
            call_with_retry(broken, RetryPolicy(max_retries=5), sleep=lambda _: None)
        assert calls["n"] == 1  # never retried

    def test_timeout_budget_counts_as_transient(self):
        ticks = iter([0.0, 10.0, 10.0, 10.1])  # 1st call takes 10s, 2nd 0.1s
        policy = RetryPolicy(max_retries=2, timeout=1.0)
        result = call_with_retry(
            lambda: "slow-then-fast", policy,
            sleep=lambda _: None, clock=lambda: next(ticks),
        )
        assert result == "slow-then-fast"

    def test_timeout_exhaustion(self):
        clock = iter(float(i * 10) for i in range(100))
        policy = RetryPolicy(max_retries=1, timeout=1.0)
        with pytest.raises(RetryExhaustedError) as info:
            call_with_retry(
                lambda: "never fast enough", policy,
                sleep=lambda _: None, clock=lambda: next(clock),
            )
        assert isinstance(info.value.last_error, LLMTimeoutError)


class TestRetryingWrappers:
    def test_retrying_model_recovers_flaky_steps(self):
        model = RetryingRepairModel(
            _FlakyModel(failures=2), RetryPolicy(max_retries=2, seed=0),
            sleep=lambda _: None,
        )
        agent = ReActAgent(model=model, compiler=Compiler("quartus"))
        result = agent.run(BROKEN)
        assert result.success  # the two transient faults were retried away

    def test_retrying_model_exhausts_on_permanent_fault(self):
        injector = FaultInjector(seed=0, llm=FaultSpec(rate=1.0, kind="exception"))
        model = RetryingRepairModel(
            ChaosRepairModel(SimulatedLLM(), injector),
            RetryPolicy(max_retries=1, seed=0),
            sleep=lambda _: None,
        )
        agent = ReActAgent(model=model, compiler=Compiler("quartus"))
        with pytest.raises(RetryExhaustedError):
            agent.run(BROKEN)

    def test_retrying_model_is_transparent_on_happy_path(self):
        plain = RTLFixer(max_retries=0).fix(BROKEN)
        wrapped = RTLFixer(max_retries=3).fix(BROKEN)
        assert wrapped.success == plain.success
        assert wrapped.final_code == plain.final_code
        assert wrapped.iterations == plain.iterations

    def test_retrying_model_with_seed_reseeds_inner(self):
        model = RetryingRepairModel(SimulatedLLM(seed=0), RetryPolicy(seed=0))
        reseeded = model.with_seed(5)
        assert reseeded.inner.seed == 5
        assert reseeded.policy.seed == 5
        assert reseeded.name == model.name

    def test_retrying_compiler_retries_injected_faults(self):
        injector = FaultInjector(
            seed=3, compiler=FaultSpec(rate=1.0, transient_failures=1)
        )
        compiler = RetryingCompiler(
            ChaosCompiler(Compiler("quartus"), injector),
            RetryPolicy(max_retries=2, seed=0),
            sleep=lambda _: None,
        )
        assert compiler.flavor == "quartus"
        assert compiler.compile(GOOD).ok  # one fault, one retry, success


# ---------------------------------------------------------------------------
# FaultInjector / chaos wrappers
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_decisions_deterministic(self):
        a = FaultInjector(seed=11, llm=FaultSpec(rate=0.5))
        b = FaultInjector(seed=11, llm=FaultSpec(rate=0.5))
        keys = [f"unit-{i}" for i in range(50)]
        assert [a.decide("llm.step", k) for k in keys] == [
            b.decide("llm.step", k) for k in keys
        ]

    def test_rate_extremes(self):
        never = FaultInjector(seed=0, llm=FaultSpec(rate=0.0))
        always = FaultInjector(seed=0, llm=FaultSpec(rate=1.0))
        assert all(never.decide("llm.step", f"k{i}") is None for i in range(20))
        assert all(
            always.decide("llm.step", f"k{i}") == "exception" for i in range(20)
        )

    def test_transient_faults_clear_after_n(self):
        injector = FaultInjector(
            seed=0, llm=FaultSpec(rate=1.0, transient_failures=2)
        )
        decisions = [injector.decide("llm.step", "same-key") for _ in range(4)]
        assert decisions == ["exception", "exception", None, None]

    def test_unconfigured_site_never_faults(self):
        injector = FaultInjector(seed=0, llm=FaultSpec(rate=1.0))
        assert injector.decide("compiler.compile", "k") is None

    def test_fire_raises_by_kind(self):
        boom = FaultInjector(seed=0, llm=FaultSpec(rate=1.0, kind="exception"))
        slow = FaultInjector(seed=0, llm=FaultSpec(rate=1.0, kind="timeout"))
        with pytest.raises(InjectedFault):
            boom.fire("llm.step", "k")
        with pytest.raises(LLMTimeoutError):
            slow.fire("llm.step", "k")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(rate=0.5, kind="gremlins")


class TestChaosWrappers:
    def test_garbage_steps_survived_by_agent_loop(self):
        injector = FaultInjector(seed=0, llm=FaultSpec(rate=1.0, kind="garbage"))
        model = ChaosRepairModel(SimulatedLLM(), injector)
        agent = ReActAgent(model=model, compiler=Compiler("quartus"), max_iterations=3)
        result = agent.run(BROKEN)
        assert not result.success  # garbage can't fix anything...
        assert result.iterations == 3  # ...but the loop stays bounded and alive

    def test_chaos_client_garbles_or_passes_through(self):
        class _Echo:
            def complete(self, messages, temperature=0.4):
                return "echo"

        garbled = ChaosLLMClient(
            _Echo(), FaultInjector(seed=0, client=FaultSpec(rate=1.0, kind="garbage"))
        )
        clean = ChaosLLMClient(_Echo(), FaultInjector(seed=0))
        assert garbled.complete([]) == GARBAGE_CODE
        assert clean.complete([]) == "echo"

    def test_chaos_compiler_poisons_feedback(self):
        injector = FaultInjector(
            seed=0, compiler=FaultSpec(rate=1.0, kind="garbage")
        )
        chaos = ChaosCompiler(Compiler("quartus"), injector)
        assert not chaos.compile(GOOD).ok  # clean code, poisoned diagnostics

    def test_chaos_model_name_marks_wrapper(self):
        model = ChaosRepairModel(SimulatedLLM(), FaultInjector(seed=0))
        assert model.name == "chaos(gpt-3.5-sim)"


# ---------------------------------------------------------------------------
# Failure-isolating executor
# ---------------------------------------------------------------------------


class TestCollectMode:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_collect_isolates_worker_crashes(self, backend):
        runner = ParallelRunner(jobs=3, backend=backend)
        results = runner.map(_fail_on_multiples_of_three, list(range(10)),
                             on_error="collect")
        values, failures = partition_failures(results)
        assert [f.index for f in failures] == [0, 3, 6, 9]
        assert all(f.error_type == "RuntimeError" for f in failures)
        assert all("unit 3 poisoned" in f.message for f in failures[1:2])
        assert [v for v in values if v is not None] == [
            i * i for i in range(10) if i % 3
        ]

    def test_collect_reports_progress_for_failures_too(self):
        events = []
        runner = ParallelRunner(jobs=2, backend="thread")
        runner.map(
            _fail_on_multiples_of_three, list(range(6)),
            progress=lambda d, t, item: events.append((d, t)),
            on_error="collect",
        )
        assert [d for d, _ in events] == list(range(1, 7))

    def test_collect_failures_carry_diagnostics(self):
        runner = ParallelRunner(jobs=1, backend="serial")
        [failure] = runner.map(_fail_on_multiples_of_three, [3], on_error="collect")
        assert isinstance(failure, WorkFailure)
        assert "RuntimeError" in failure.describe()
        assert "unit 3 poisoned" in failure.traceback
        assert failure.item_repr == "3"

    def test_unknown_on_error_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1).map(_square, [1], on_error="ignore")

    def test_raise_mode_unchanged(self):
        with pytest.raises(RuntimeError):
            ParallelRunner(jobs=2, backend="thread").map(
                _fail_on_multiples_of_three, [3, 1, 2]
            )


class TestPromptAbort:
    """Regression: on_error='raise' must cancel pending units instead of
    draining the whole queue before surfacing the failure."""

    def test_failure_aborts_without_draining_queue(self):
        runner = ParallelRunner(jobs=2, backend="thread")
        items = [("fail", 0.0)] + [("sleep", 0.2)] * 20
        started = time.monotonic()
        with pytest.raises(RuntimeError):
            runner.map(_fail_or_sleep, items)
        elapsed = time.monotonic() - started
        # Draining would cost ~20*0.2/2 = 2s; cancellation leaves only
        # the in-flight units (<= 2 workers * 0.2s) plus overhead.
        assert elapsed < 1.5

    def test_success_path_still_bit_identical(self):
        runner = ParallelRunner(jobs=3, backend="thread")
        assert runner.map(_square, range(20)) == [i * i for i in range(20)]


# ---------------------------------------------------------------------------
# Regression: seed-cloning must carry an injected model
# ---------------------------------------------------------------------------


class TestWithSeedCarriesModel:
    def test_injected_model_survives_with_seed(self):
        chaos = ChaosRepairModel(
            SimulatedLLM(), FaultInjector(seed=7, llm=FaultSpec(rate=1.0))
        )
        fixer = RTLFixer(model=chaos, max_retries=0)
        reseeded = fixer.with_seed(3)
        assert isinstance(reseeded.injected_model, ChaosRepairModel)
        assert reseeded.injected_model.inner.seed == 3
        # The regression: the chaos model used to be silently replaced
        # by a fresh SimulatedLLM, so faults vanished on repeated trials.
        with pytest.raises(InjectedFault):
            reseeded.fix(BROKEN)

    def test_model_without_with_seed_is_reused(self):
        class _Static:
            """Model with no reseeding hook."""

            name = "static"

            def start(self, code, flavor, use_rag):
                return self

            def step(self, code, feedback, guidance):
                return RepairStep(thought="noop", code=code, declared_done=True)

        model = _Static()
        fixer = RTLFixer(model=model)
        assert fixer.with_seed(9).injected_model is model

    def test_default_model_still_rebuilt_from_config(self):
        fixer = RTLFixer()
        reseeded = fixer.with_seed(4)
        assert reseeded.injected_model is None
        assert reseeded.model.seed == 4


# ---------------------------------------------------------------------------
# Regression: rule-fix repairs must appear in the transcript
# ---------------------------------------------------------------------------


class TestRuleFixAccounting:
    def test_rule_fix_recorded_as_transcript_step(self):
        raw = f"Sure!\n```verilog\n{GOOD}```\n"
        result = RTLFixer().fix(raw)
        assert result.success and result.iterations == 0
        assert result.rule_fixed
        actions = [t.action for t in result.transcript.turns]
        assert actions == ["RuleFix", "Finish"]
        assert "rule-based" in result.transcript.turns[-1].thought.lower()

    def test_clean_input_has_no_rule_fix_step(self):
        result = RTLFixer().fix(GOOD)
        assert result.success and not result.rule_fixed
        assert [t.action for t in result.transcript.turns] == ["Finish"]

    def test_oneshot_records_rule_fix_too(self):
        raw = f"```verilog\n{GOOD}```"
        result = RTLFixer(prompting="oneshot").fix(raw)
        assert result.rule_fixed
        assert [t.action for t in result.transcript.turns] == ["RuleFix"]


# ---------------------------------------------------------------------------
# Acceptance: Table-1-shaped chaos run with failure isolation
# ---------------------------------------------------------------------------


class TestChaosExperimentRun:
    """An LLM injected to hard-fail on a fraction of trials must not
    sink the experiment: failures are isolated, named exactly, and the
    surviving units are bit-identical to a serial run at any job count."""

    def _chaos_fixer(self) -> RTLFixer:
        chaos = ChaosRepairModel(
            SimulatedLLM(),
            FaultInjector(seed=13, llm=FaultSpec(rate=0.3, kind="exception")),
        )
        return RTLFixer(
            config=RTLFixerConfig(max_retries=0, on_error="collect"), model=chaos
        )

    def test_chaos_run_completes_and_is_deterministic(self, tiny_dataset):
        fixer = self._chaos_fixer()
        first = run_fix_experiment(tiny_dataset, fixer, repeats=2)
        second = run_fix_experiment(tiny_dataset, fixer, repeats=2)
        assert first.failures, "fault rate 0.3 must fail some trials"
        assert first.failures == second.failures
        assert first.fixed_counts == second.fixed_counts
        assert all(
            f.error_type in ("InjectedFault", "RetryExhaustedError")
            for f in first.failures
        )

    @pytest.mark.parametrize("backend,jobs", [("thread", 3), ("process", 4)])
    def test_parallel_chaos_matches_serial(self, tiny_dataset, backend, jobs):
        fixer = self._chaos_fixer()
        serial = run_fix_experiment(tiny_dataset, fixer, repeats=2)
        parallel = run_fix_experiment(
            tiny_dataset, fixer, repeats=2,
            runner=ParallelRunner(jobs=jobs, backend=backend),
        )
        assert parallel.failures == serial.failures  # exactly the same units
        assert parallel.fixed_counts == serial.fixed_counts
        assert parallel.iterations == serial.iterations
        assert parallel.rate == serial.rate

    def test_retries_heal_transient_chaos(self, tiny_dataset):
        flaky = ChaosRepairModel(
            SimulatedLLM(),
            FaultInjector(
                seed=13, llm=FaultSpec(rate=0.3, kind="exception",
                                       transient_failures=1),
            ),
        )
        fixer = RTLFixer(
            config=RTLFixerConfig(max_retries=2, on_error="collect"), model=flaky
        )
        run = run_fix_experiment(tiny_dataset, fixer, repeats=1)
        assert run.failures == []  # every transient fault retried away

    def test_raise_mode_aborts_chaos_run(self, tiny_dataset):
        fixer = self._chaos_fixer()
        with pytest.raises(InjectedFault):
            run_fix_experiment(tiny_dataset, fixer, repeats=2, on_error="raise")


class TestVerdictChaosTransparency:
    """Verdict memoization must be invisible to chaos engineering: fault
    injection perturbs the source text, hence the design digest, hence
    the verdict key -- garbled and clean designs can never alias."""

    CLEAN = (
        "module m(input clk, input [3:0] d, output reg [3:0] q);\n"
        "always @(posedge clk) q <= q ^ d;\nendmodule\n"
    )

    def test_chaos_garbled_design_cannot_alias_clean_verdicts(self):
        from repro.sim import verdict_key

        injector = FaultInjector(
            seed=1, compiler=FaultSpec(rate=1.0, kind="garbage")
        )
        chaos = ChaosCompiler(Compiler("quartus"), injector)
        clean = Compiler("quartus").compile(self.CLEAN)
        garbled = chaos.compile(self.CLEAN)
        assert clean.ok and clean.elaborated.digest is not None
        # Garbage never compiles clean, so the garbled design has no
        # content digest and its verdicts are uncacheable -- it cannot
        # hit (or poison) a clean design's cache entry.
        assert not garbled.ok
        assert garbled.elaborated is None or garbled.elaborated.digest is None
        assert verdict_key("diff", (None, None), "compiled", None, 8, 0) is None
        # And any *textual* perturbation that does compile re-keys: the
        # digest tracks the preprocessed source.
        tweaked = Compiler("quartus").compile(self.CLEAN.replace("^", "&"))
        assert tweaked.ok
        assert tweaked.elaborated.digest != clean.elaborated.digest
        clean_key = verdict_key(
            "diff", (clean.elaborated.digest,) * 2, "compiled", None, 8, 0
        )
        tweaked_key = verdict_key(
            "diff", (tweaked.elaborated.digest,) * 2, "compiled", None, 8, 0
        )
        assert None not in (clean_key, tweaked_key)
        assert clean_key != tweaked_key

    def test_chaos_run_deterministic_with_shared_verdict_cache(self, tiny_dataset):
        from repro.sim import VerdictCache, no_verdict_cache, use_verdict_cache

        chaos = ChaosRepairModel(
            SimulatedLLM(),
            FaultInjector(seed=13, llm=FaultSpec(rate=0.3, kind="exception")),
        )
        fixer = RTLFixer(
            config=RTLFixerConfig(max_retries=0, on_error="collect"), model=chaos
        )
        with no_verdict_cache():
            baseline = run_fix_experiment(tiny_dataset, fixer, repeats=2)
        cache = VerdictCache()
        with use_verdict_cache(cache):
            cold = run_fix_experiment(tiny_dataset, fixer, repeats=2)
            warm = run_fix_experiment(tiny_dataset, fixer, repeats=2)
        # Memoized verdicts change nothing observable, faults included.
        for run in (cold, warm):
            assert run.failures == baseline.failures
            assert run.fixed_counts == baseline.fixed_counts
            assert run.iterations == baseline.iterations


class TestSandboxChaos:
    """Chaos at the simulator seam (``sim.diff`` / ``sim.feedback``):
    injected faults are transient, isolated per trial, invisible to the
    verdict cache, and never counted by the circuit breaker."""

    PAIR = (
        "module m(input [3:0] a, output [3:0] y);\n"
        "assign y = a;\nendmodule\n"
    )

    @pytest.fixture(scope="class")
    def design(self):
        result = Compiler("quartus").compile(self.PAIR)
        assert result.ok
        return result.elaborated

    def test_transient_sim_fault_clears_on_retry(self, design):
        from repro.sim import no_verdict_cache
        from repro.sim.testbench import run_differential

        injector = FaultInjector(
            seed=0,
            sim=FaultSpec(rate=1.0, kind="exception", transient_failures=1),
        )
        with no_verdict_cache(), use_sim_chaos(injector):
            with pytest.raises(InjectedFault):
                run_differential(design, design, samples=8)
            # Same work unit, same injector: the transient has cleared.
            assert run_differential(design, design, samples=8).passed

    def test_sim_faults_isolated_per_trial_under_collect(self, design):
        from repro.sim import no_verdict_cache
        from repro.sim.testbench import run_differential

        injector = FaultInjector(seed=3, sim=FaultSpec(rate=0.4))
        runner = ParallelRunner(jobs=1, backend="serial")

        def trial(seed: int) -> bool:
            return run_differential(design, design, samples=8, seed=seed).passed

        with no_verdict_cache(), use_sim_chaos(injector):
            results = runner.map(trial, list(range(12)), on_error="collect")
        values, failures = partition_failures(results)
        # Deterministic at this seed: some trials fault, the rest finish.
        assert failures and len(failures) < 12
        assert all(f.error_type == "InjectedFault" for f in failures)
        assert all(v for v in values if v is not None)

    def test_garbage_sim_verdict_never_cached(self, design):
        from repro.sim import VerdictCache, use_verdict_cache
        from repro.sim.testbench import run_differential

        injector = FaultInjector(seed=1, sim=FaultSpec(rate=1.0, kind="garbage"))
        cache = VerdictCache()
        with use_verdict_cache(cache):
            with use_sim_chaos(injector):
                garbled = run_differential(design, design, samples=8)
            assert garbled.verdict.injected and not garbled.passed
            assert len(cache) == 0, "fabricated verdicts must not be memoized"
            # The chaos scope is gone: the same triple now records (and
            # replays) the genuine verdict.
            assert run_differential(design, design, samples=8).passed
            assert len(cache) == 1
            assert run_differential(design, design, samples=8).passed

    def test_transient_sim_faults_never_breaker_counted(self, design):
        from repro.sim import no_verdict_cache
        from repro.sim.testbench import run_differential

        breaker = CircuitBreaker(failure_threshold=2)
        injector = FaultInjector(seed=0, sim=FaultSpec(rate=1.0))
        with no_verdict_cache(), use_sim_chaos(injector):
            for seed in range(4):
                try:
                    run_differential(design, design, samples=8, seed=seed)
                except InjectedFault as exc:
                    breaker.record_failure(exc)
        # Four consecutive transient sim faults: the retry layer's job,
        # not consecutive-failure evidence.
        assert breaker.trips == 0
        assert breaker.consecutive_failures == 0

    def test_chaos_faults_counted_in_sandbox_stats(self, design):
        from repro.sim import no_verdict_cache
        from repro.sim.sandbox import use_sandbox_stats
        from repro.sim.testbench import run_differential

        injector = FaultInjector(seed=0, sim=FaultSpec(rate=1.0))
        with no_verdict_cache(), use_sandbox_stats() as stats:
            with use_sim_chaos(injector):
                with pytest.raises(InjectedFault):
                    run_differential(design, design, samples=8)
        assert stats.chaos_faults == 1
        assert stats.crashed_verdicts == 0, "chaos is not a sandbox crash"

    def test_both_engines_draw_the_same_fault(self, design):
        from repro.sim import no_verdict_cache
        from repro.sim.testbench import run_differential

        outcomes: dict[str, list[str]] = {"interp": [], "compiled": []}
        for engine in outcomes:
            for seed in range(8):
                injector = FaultInjector(seed=7, sim=FaultSpec(rate=0.5))
                with no_verdict_cache(), use_sim_chaos(injector):
                    try:
                        run_differential(
                            design, design, samples=4, seed=seed, engine=engine
                        )
                        outcomes[engine].append("ok")
                    except InjectedFault:
                        outcomes[engine].append("fault")
        # The fault key excludes the engine, so the decision sequence is
        # engine-independent (the fuzz sandbox-differential relies on it)
        # -- and at rate 0.5 both outcomes actually occur.
        assert outcomes["interp"] == outcomes["compiled"]
        assert set(outcomes["interp"]) == {"ok", "fault"}


def _square(x: int) -> int:
    """Square (top-level so process-pool workers can pickle it)."""
    return x * x


def _fail_on_multiples_of_three(x: int) -> int:
    """Worker that crashes on multiples of three."""
    if x % 3 == 0:
        raise RuntimeError("unit 3 poisoned" if x == 3 else f"unit {x} poisoned")
    return x * x


def _fail_or_sleep(item: tuple) -> str:
    """Worker that either fails immediately or sleeps (for abort timing)."""
    kind, duration = item
    if kind == "fail":
        raise RuntimeError("fast failure")
    time.sleep(duration)
    return kind


# ---------------------------------------------------------------------------
# Content-key regressions: role / boundary / temperature / guidance
# ---------------------------------------------------------------------------


class TestContentKeying:
    """Regressions for the aliasable chaos/retry keys.

    The old keys joined message *contents* only, so a swapped role, a
    moved message boundary, or a changed temperature collapsed onto one
    key -- sharing one fault decision, one transient-recovery budget and
    one backoff schedule across genuinely different calls."""

    ROLE_A = [ChatMessage("system", "a"), ChatMessage("user", "b")]
    ROLE_B = [ChatMessage("user", "a"), ChatMessage("system", "b")]
    JOINED = [ChatMessage("user", "a|b")]
    SPLIT = [ChatMessage("user", "a"), ChatMessage("user", "b")]

    def test_messages_key_sees_roles(self):
        assert messages_key(self.ROLE_A, 0.4) != messages_key(self.ROLE_B, 0.4)

    def test_messages_key_sees_boundaries(self):
        assert messages_key(self.JOINED, 0.4) != messages_key(self.SPLIT, 0.4)
        glued = [ChatMessage("user", "ab")]
        assert messages_key(glued, 0.4) != messages_key(self.SPLIT, 0.4)

    def test_messages_key_sees_temperature(self):
        assert messages_key(self.ROLE_A, 0.4) != messages_key(self.ROLE_A, 0.9)

    def test_messages_key_is_stable(self):
        assert messages_key(self.ROLE_A, 0.4) == messages_key(
            [ChatMessage("system", "a"), ChatMessage("user", "b")], 0.4
        )

    def test_guidance_key_sees_entries_and_order(self):
        entries = build_default_database().for_compiler("quartus")[:2]
        assert guidance_key([]) != guidance_key(entries[:1])
        assert guidance_key(entries[:1]) != guidance_key(entries[1:2])
        assert guidance_key(entries) != guidance_key(list(reversed(entries)))
        assert guidance_key(entries) == guidance_key(list(entries))

    def test_chaos_client_budgets_are_per_call_shape(self):
        # transient_failures=1: each distinct key faults exactly once.
        # If any two of these calls aliased onto one key, the second
        # would ride the first's spent budget and never fault -- so the
        # retry wrapper would log fewer raised faults than call shapes.
        class _Echo:
            def complete(self, messages, temperature=0.4):
                return "echo"

        injector = FaultInjector(
            seed=0,
            client=FaultSpec(rate=1.0, kind="exception", transient_failures=1),
        )
        client = RetryingLLMClient(
            ChaosLLMClient(_Echo(), injector),
            RetryPolicy(max_retries=2, seed=0),
            sleep=lambda _s: None,
        )
        calls = [
            (self.ROLE_A, 0.4),
            (self.ROLE_B, 0.4),  # role swap
            (self.JOINED, 0.4),
            (self.SPLIT, 0.4),  # boundary alias
            (self.ROLE_A, 0.9),  # temperature change
        ]
        for messages, temperature in calls:
            assert client.complete(messages, temperature=temperature) == "echo"
        # Every call shape drew (and healed) its own independent fault.
        assert len(injector._raised) == len(calls)
        assert all(count == 1 for count in injector._raised.values())

    def test_chaos_session_budgets_are_per_guidance(self):
        entries = build_default_database().for_compiler("quartus")[:2]
        injector = FaultInjector(
            seed=0,
            llm=FaultSpec(rate=1.0, kind="exception", transient_failures=1),
        )
        model = ChaosRepairModel(SimulatedLLM(), injector)
        with pytest.raises(InjectedFault):
            model.start(BROKEN, "quartus", True)  # start faults once too
        session = model.start(BROKEN, "quartus", True)
        variants = [[], entries[:1], entries[1:2], entries]
        for guidance in variants:
            with pytest.raises(InjectedFault):
                session.step(BROKEN, "", list(guidance))
            # Same turn retried: the budget for *this* key is spent.
            step = session.step(BROKEN, "", list(guidance))
            assert step.code
        llm_keys = [k for k in injector._raised if k[0] == "llm.step"]
        assert len(llm_keys) == len(variants)

    def test_backoff_schedules_differ_per_key(self):
        policy = RetryPolicy(max_retries=4, jitter=0.5, seed=0)
        role_a = list(policy.delays("complete|" + messages_key(self.ROLE_A, 0.4)))
        role_b = list(policy.delays("complete|" + messages_key(self.ROLE_B, 0.4)))
        assert role_a != role_b
        # ...but the schedule for one key is reproducible.
        assert role_a == list(
            policy.delays("complete|" + messages_key(self.ROLE_A, 0.4))
        )
