"""LLM backend pool suite: limiter/accounting primitives, spec parsing,
the simulated round trip, tier routing, escalation-after-K, hedging,
failover under chaos outages, and the determinism contract (pooled ==
direct, bit-identical at any job count).

The chaos-marked classes double as the ``scripts/ci.sh`` pool-chaos
stage: an outage of each tier, with the circuit breaker armed for the
no-rung-left case.
"""

import dataclasses
import pickle
import threading

import pytest

from repro.core import RTLFixer, RTLFixerConfig
from repro.dataset import build_syntax_dataset, verilogeval
from repro.errors import LLMError, RetryExhaustedError
from repro.eval.runner import run_fix_experiment
from repro.llm import SimulatedLLM
from repro.llm.backends import (
    OpenAIChatClient,
    SimulatedChatClient,
    build_pool_messages,
    parse_pool_reply,
    render_repair_reply,
)
from repro.llm.base import ChatMessage, RepairStep
from repro.llm.pool import (
    BackendSpec,
    PooledRepairModel,
    RoutingSpec,
    routing_from_config,
    use_llm_routing,
)
from repro.rag.guidance_data import build_default_database
from repro.runtime import (
    ConcurrencyGate,
    FaultSpec,
    ParallelRunner,
    TokenBucket,
    TokenCounter,
    estimate_tokens,
    get_active_token_counter,
    use_token_counter,
)
from repro.runtime.checkpoint import config_digest

BROKEN = (
    "module top_module(input [7:0] in, output reg [7:0] out);\n"
    "always @(posedge clk) out <= in;\nendmodule\n"
)

#: A sample the simulated model keeps failing on: every ReAct round
#: recompiles dirty, which is what drives escalation and many calls.
HARD = "module top(input a, input b, output y)\n  assign y = a & b;\nendmodule\n"

POOL = "cheap=gpt-3.5-sim,strong=gpt-4-sim"


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_syntax_dataset(
        verilogeval(), samples_per_problem=3, seed=0, target_size=12
    )


class _FakeClock:
    """Injectable clock+sleep pair: sleeping advances the clock."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(round(seconds, 9))
        self.now += seconds


class TestTokenBucket:
    def test_unlimited_never_waits(self):
        fake = _FakeClock()
        bucket = TokenBucket(0.0, clock=fake.clock, sleep=fake.sleep)
        assert [bucket.acquire() for _ in range(5)] == [0.0] * 5
        assert bucket.acquires == 5 and bucket.waited == 0.0

    def test_admission_schedule_is_exact_arithmetic(self):
        fake = _FakeClock()
        bucket = TokenBucket(2.0, burst=1, clock=fake.clock, sleep=fake.sleep)
        waits = [round(bucket.acquire(), 9) for _ in range(4)]
        # First call spends the burst token; every later call owes
        # exactly one refill period (1/rate = 0.5 s).
        assert waits == [0.0, 0.5, 0.5, 0.5]
        assert fake.sleeps == [0.5, 0.5, 0.5]
        assert bucket.waited == pytest.approx(1.5)

    def test_burst_admits_back_to_back(self):
        fake = _FakeClock()
        bucket = TokenBucket(2.0, burst=3, clock=fake.clock, sleep=fake.sleep)
        waits = [round(bucket.acquire(), 9) for _ in range(5)]
        assert waits == [0.0, 0.0, 0.0, 0.5, 0.5]

    def test_idle_time_refills_up_to_burst(self):
        fake = _FakeClock()
        bucket = TokenBucket(1.0, burst=2, clock=fake.clock, sleep=fake.sleep)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        fake.now += 100.0  # long idle: refills to burst, not beyond
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert round(bucket.acquire(), 9) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0)

    def test_pickle_resets_transient_state(self):
        bucket = TokenBucket(3.0, burst=2)
        bucket.acquire()
        clone = pickle.loads(pickle.dumps(bucket))
        assert clone.rate == 3.0 and clone.burst == 2
        assert clone.acquires == 0 and clone.waited == 0.0


class TestConcurrencyGate:
    def test_caps_in_flight_and_tracks_peak(self):
        gate = ConcurrencyGate(2)
        observed = []
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()
            with gate:
                observed.append(gate.peak)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gate.peak <= 2

    def test_unlimited_gate_is_transparent(self):
        gate = ConcurrencyGate(0)
        with gate:
            assert gate.peak == 1
        with pytest.raises(ValueError):
            ConcurrencyGate(-1)


class TestTokenCounter:
    def test_ledger_rolls_up_across_backends(self):
        counter = TokenCounter()
        counter.record_call("cheap", 100, 20, 0.001)
        counter.record_call("strong", 50, 10, 0.01, failover=True, escalated=True)
        counter.record_throttle("cheap", 0.25)
        counter.record_hedge("strong")
        counter.record_hedge_win("strong")
        counter.record_failure("cheap")
        ledger = counter.as_dict()
        assert ledger["calls"] == 2
        assert ledger["total_tokens"] == 180
        assert ledger["cost_usd"] == pytest.approx(0.011)
        assert ledger["backends"]["cheap"]["throttled"] == 1
        assert ledger["backends"]["cheap"]["wait_seconds"] == pytest.approx(0.25)
        assert ledger["backends"]["strong"]["failovers"] == 1
        assert ledger["backends"]["strong"]["escalations"] == 1
        assert ledger["backends"]["strong"]["hedge_wins"] == 1
        assert ledger["failures"] == 1

    def test_zero_wait_throttle_not_counted(self):
        counter = TokenCounter()
        counter.record_throttle("cheap", 0.0)
        assert counter.usage("cheap").throttled == 0

    def test_use_token_counter_scopes_the_active_ledger(self):
        outer = get_active_token_counter()
        scoped = TokenCounter()
        with use_token_counter(scoped):
            assert get_active_token_counter() is scoped
        assert get_active_token_counter() is outer

    def test_estimate_tokens(self):
        assert estimate_tokens("") == 0
        assert estimate_tokens("abcd") == 1
        assert estimate_tokens("abcde") == 2


class TestRoutingSpec:
    def test_parse_named_ladder(self):
        routing = RoutingSpec.parse(POOL, escalate_after=3, hedge_rate=0.5)
        assert [m.name for m in routing.members] == ["cheap", "strong"]
        assert [m.tier for m in routing.members] == ["gpt-3.5-sim", "gpt-4-sim"]
        assert routing.escalate_after == 3 and routing.hedge_rate == 0.5

    def test_parse_bare_tier_names_member_after_itself(self):
        routing = RoutingSpec.parse("gpt-3.5-sim")
        assert routing.members[0].name == "gpt-3.5-sim"
        assert routing.members[0].tier == "gpt-3.5-sim"

    def test_prices_by_tier_family(self):
        cheap, strong = RoutingSpec.parse(POOL).members
        assert cheap.prices == (0.0005, 0.0015)
        assert strong.prices == (0.03, 0.06)

    def test_describe_mentions_ladder_and_policy(self):
        text = RoutingSpec.parse(POOL, escalate_after=2).describe()
        assert "cheap=gpt-3.5-sim -> strong=gpt-4-sim" in text
        assert "escalate_after=2" in text

    def test_validation(self):
        with pytest.raises(LLMError):
            RoutingSpec.parse("")
        with pytest.raises(LLMError):
            RoutingSpec.parse("a=gpt-3.5-sim,a=gpt-4-sim")  # duplicate name
        with pytest.raises(LLMError):
            RoutingSpec.parse(POOL, hedge_rate=1.5)
        with pytest.raises(LLMError):
            RoutingSpec.parse(POOL, escalate_after=-1)
        with pytest.raises(LLMError):
            BackendSpec(name="bad name", tier="gpt-3.5-sim")

    def test_routing_from_config_prefers_config_pool(self):
        config = RTLFixerConfig(llm_pool=POOL, llm_escalate_after=2)
        routing = routing_from_config(config)
        assert routing.escalate_after == 2
        assert len(routing.members) == 2
        assert routing_from_config(RTLFixerConfig()) is None


class TestSimulatedRoundTrip:
    """The adapter must reconstruct the simulated session's exact
    inputs from message text: pooled steps == direct steps, bitwise."""

    def _steps(self, session, guidance):
        feedbacks = ["", "syntax error near 'endmodule'\n", "error: giberish"]
        return [
            session.step(BROKEN, feedback, list(guidance))
            for feedback in feedbacks
        ]

    def test_pooled_steps_equal_direct_steps(self):
        guidance = build_default_database().for_compiler("quartus")[:2]
        direct = SimulatedLLM(seed=7).start(BROKEN, "quartus", True)
        pooled_model = PooledRepairModel(
            RoutingSpec.parse("cheap=gpt-3.5-sim"), seed=7
        )
        pooled = pooled_model.start(BROKEN, "quartus", True)
        for mine, theirs in zip(
            self._steps(pooled, guidance),
            self._steps(direct, guidance),
        ):
            assert mine == theirs  # thought, code, declared_done, used_guidance

    def test_feedback_round_trip_preserves_trailing_newline(self):
        for feedback in ("log line", "log line\n", ""):
            for guidance in ([], build_default_database().for_compiler("quartus")[:1]):
                messages = build_pool_messages(
                    BROKEN, feedback, guidance,
                    session="t", flavor="quartus", use_rag=True,
                )
                client = SimulatedChatClient(seed=0)
                # Parse with the client's own regexes via a tiny probe:
                # stepping twice with identical input must hit the same
                # live session (state advances), proving the token and
                # payload survived the trip.
                reply = client.complete(messages)
                assert reply.startswith("Thought: ")

    def test_reply_render_parse_round_trip(self):
        guidance = build_default_database().for_compiler("iverilog")[:3]
        step = RepairStep(
            thought="Fix the missing semicolon.",
            code="module m();\nendmodule\n",
            declared_done=True,
            used_guidance=tuple(guidance[:2]),
        )
        parsed = parse_pool_reply(render_repair_reply(step), list(guidance))
        assert parsed == step

    def test_garbled_reply_becomes_the_step_code(self):
        parsed = parse_pool_reply("@@@ chaos: garbled model reply @@@", [])
        assert parsed.code == "@@@ chaos: garbled model reply @@@"
        assert not parsed.declared_done

    def test_adapter_rejects_non_pool_messages(self):
        client = SimulatedChatClient()
        with pytest.raises(ValueError):
            client.complete([ChatMessage(role="user", content="hi")])

    def test_sessions_are_per_start_not_per_code(self):
        # Two conversations about the same code must not share live
        # session state (the direct path starts fresh every fix()).
        model = PooledRepairModel(RoutingSpec.parse("cheap=gpt-3.5-sim"), seed=7)
        first = model.start(BROKEN, "quartus", False)
        second = model.start(BROKEN, "quartus", False)
        assert first.token != second.token
        assert first.step(BROKEN, "", []) == second.step(BROKEN, "", [])


class TestRoutingPolicy:
    def test_base_index_matches_requested_tier(self):
        pool = PooledRepairModel(RoutingSpec.parse(POOL), tier="gpt-4-sim").pool
        assert pool.base_index("gpt-3.5-sim") == 0
        assert pool.base_index("gpt-4-sim") == 1
        assert pool.base_index("gpt-4-turbo-sim") == 1  # family fallback
        assert pool.base_index("unknown-tier") == 0

    def test_escalation_climbs_after_k_failures(self):
        routing = RoutingSpec.parse(POOL, escalate_after=2)
        session = PooledRepairModel(routing, seed=1).start(BROKEN, "quartus", False)
        assert session.member_index == 0
        session.observe(False)
        assert session.member_index == 0
        session.observe(False)
        assert session.member_index == 1  # climbed after K=2 failures
        for _ in range(10):
            session.observe(False)
        assert session.member_index == 1  # clamped at the top rung

    def test_no_escalation_when_disabled(self):
        routing = RoutingSpec.parse(POOL)  # escalate_after=0
        session = PooledRepairModel(routing, seed=1).start(BROKEN, "quartus", False)
        for _ in range(10):
            session.observe(False)
        assert session.member_index == 0

    def test_escalated_run_reaches_strong_backend(self):
        counter = TokenCounter()
        routing = RoutingSpec.parse(POOL, escalate_after=2)
        with use_llm_routing(routing), use_token_counter(counter):
            RTLFixer(seed=3).fix(HARD)
        ledger = counter.as_dict()
        # K=2 on a never-healing sample: exactly two cheap rounds, then
        # every remaining round lands on the strong rung.
        assert ledger["backends"]["cheap"]["calls"] == 2
        assert ledger["backends"]["strong"]["calls"] == 8
        assert ledger["escalations"] == 8
        assert ledger["backends"]["strong"]["calls"] == ledger["escalations"]

    def test_observe_signal_survives_retry_wrapper(self):
        # RTLFixer wraps the pooled model in RetryingRepairModel by
        # default; the escalation signal must pass through it.
        routing = RoutingSpec.parse(POOL, escalate_after=1)
        counter = TokenCounter()
        with use_llm_routing(routing), use_token_counter(counter):
            fixer = RTLFixer(seed=3, max_retries=2)
            assert type(fixer.agent.model).__name__ == "RetryingRepairModel"
            fixer.fix(HARD)
        assert counter.as_dict()["escalations"] >= 1


class TestPooledDeterminism:
    def test_pooled_equals_direct_fix(self):
        direct = RTLFixer(seed=5).fix(BROKEN)
        with use_llm_routing(RoutingSpec.parse(POOL)):
            pooled = RTLFixer(seed=5).fix(BROKEN)
        assert pooled.success == direct.success
        assert pooled.iterations == direct.iterations
        assert pooled.final_code == direct.final_code
        assert pooled.transcript.render() == direct.transcript.render()

    def test_pooled_experiment_matches_direct(self, tiny_dataset):
        direct = run_fix_experiment(tiny_dataset, RTLFixer(), repeats=1)
        with use_llm_routing(RoutingSpec.parse(POOL)):
            pooled = run_fix_experiment(tiny_dataset, RTLFixer(), repeats=1)
        assert pooled.fixed_counts == direct.fixed_counts
        assert pooled.iterations == direct.iterations

    @pytest.mark.parametrize("backend,jobs", [("thread", 2), ("process", 2)])
    def test_pooled_parallel_matches_serial(self, tiny_dataset, backend, jobs):
        with use_llm_routing(RoutingSpec.parse(POOL, escalate_after=2)):
            serial = run_fix_experiment(tiny_dataset, RTLFixer(), repeats=1)
            parallel = run_fix_experiment(
                tiny_dataset, RTLFixer(), repeats=1,
                runner=ParallelRunner(jobs=jobs, backend=backend),
            )
        assert parallel.fixed_counts == serial.fixed_counts
        assert parallel.iterations == serial.iterations

    def test_rate_limit_and_concurrency_do_not_change_results(self, tiny_dataset):
        with use_llm_routing(RoutingSpec.parse(POOL)):
            plain = run_fix_experiment(tiny_dataset, RTLFixer(), repeats=1)
        limited = RoutingSpec.parse(POOL, rate=500.0, concurrency=2)
        counter = TokenCounter()
        with use_llm_routing(limited), use_token_counter(counter):
            shaped = run_fix_experiment(tiny_dataset, RTLFixer(), repeats=1)
        assert shaped.fixed_counts == plain.fixed_counts
        assert shaped.iterations == plain.iterations

    def test_pooled_model_pickles_by_config(self):
        model = PooledRepairModel(
            RoutingSpec.parse(POOL, escalate_after=2), seed=9
        )
        clone = pickle.loads(pickle.dumps(model))
        assert clone.routing == model.routing
        assert clone.seed == 9
        assert clone.start(BROKEN, "quartus", False).step(BROKEN, "", []) == \
            model.start(BROKEN, "quartus", False).step(BROKEN, "", [])

    def test_config_digest_treats_pool_knobs_correctly(self):
        base = RTLFixerConfig()
        # Timing-only knobs: excluded from the trial-key digest.
        assert config_digest(base) == config_digest(
            RTLFixerConfig(llm_hedge=0.5, llm_rate=10.0, llm_concurrency=4)
        )
        # Result-relevant knobs: included.
        assert config_digest(base) != config_digest(RTLFixerConfig(llm_pool=POOL))
        assert config_digest(RTLFixerConfig(llm_pool=POOL)) != config_digest(
            RTLFixerConfig(llm_pool=POOL, llm_escalate_after=2)
        )


class TestHedging:
    def test_hedging_never_changes_results(self):
        with use_llm_routing(RoutingSpec.parse(POOL)):
            plain = RTLFixer(seed=3).fix(HARD)
        counter = TokenCounter()
        with use_llm_routing(RoutingSpec.parse(POOL, hedge_rate=1.0)), \
                use_token_counter(counter):
            hedged = RTLFixer(seed=3).fix(HARD)
        assert hedged.final_code == plain.final_code
        assert hedged.iterations == plain.iterations
        ledger = counter.as_dict()
        assert ledger["hedges"] >= 1
        assert ledger["hedge_wins"] == 0  # healthy primary always wins

    def test_hedge_coin_is_seeded_per_call(self):
        # At a fractional rate the same run hedges the same calls twice.
        first = TokenCounter()
        with use_llm_routing(RoutingSpec.parse(POOL, hedge_rate=0.5)), \
                use_token_counter(first):
            RTLFixer(seed=3).fix(HARD)
        second = TokenCounter()
        with use_llm_routing(RoutingSpec.parse(POOL, hedge_rate=0.5)), \
                use_token_counter(second):
            RTLFixer(seed=3).fix(HARD)
        assert first.as_dict()["hedges"] == second.as_dict()["hedges"]


@pytest.mark.chaos
class TestPoolChaos:
    """Offline outage drills (the ci.sh pool-chaos stage)."""

    def _outage(self, member: str, escalate_after: int = 0) -> RoutingSpec:
        return dataclasses.replace(
            RoutingSpec.parse(POOL, escalate_after=escalate_after),
            chaos={member: FaultSpec(rate=1.0, kind="exception")},
        )

    def test_cheap_outage_fails_over_to_strong(self):
        counter = TokenCounter()
        with use_llm_routing(self._outage("cheap")), use_token_counter(counter):
            result = RTLFixer(seed=3).fix(BROKEN)
        ledger = counter.as_dict()
        assert result.iterations >= 1  # the run completed via failover
        assert ledger["backends"]["cheap"]["failures"] >= 1
        assert ledger["failovers"] >= 1
        assert ledger["backends"]["strong"]["calls"] == ledger["failovers"]

    def test_cheap_outage_run_isolates_no_failures(self, tiny_dataset):
        counter = TokenCounter()
        with use_llm_routing(self._outage("cheap")), use_token_counter(counter):
            run = run_fix_experiment(
                tiny_dataset, RTLFixer(on_error="collect"), repeats=1
            )
        assert run.failures == []  # failover healed every trial
        assert counter.as_dict()["failovers"] >= 1

    def test_hedge_wins_when_primary_is_down(self):
        routing = dataclasses.replace(
            RoutingSpec.parse(POOL, hedge_rate=1.0),
            chaos={"cheap": FaultSpec(rate=1.0, kind="exception")},
        )
        counter = TokenCounter()
        with use_llm_routing(routing), use_token_counter(counter):
            result = RTLFixer(seed=3).fix(BROKEN)
        ledger = counter.as_dict()
        assert result.iterations >= 1
        assert ledger["hedge_wins"] >= 1  # the duplicate supplied the reply

    def test_whole_ladder_outage_raises_last_error(self):
        routing = dataclasses.replace(
            RoutingSpec.parse(POOL),
            chaos={
                "cheap": FaultSpec(rate=1.0, kind="exception"),
                "strong": FaultSpec(rate=1.0, kind="exception"),
            },
        )
        with use_llm_routing(routing):
            model = RTLFixer(seed=3, max_retries=1).agent.model
            session = model.start(BROKEN, "quartus", False)
            with pytest.raises(RetryExhaustedError):
                session.step(BROKEN, "", [])

    def test_strong_tier_outage_trips_breaker(self, tiny_dataset):
        # A gpt-4 run whose only rung is down: no failover possible, so
        # the breaker must trip and skip the rest of the run fail-fast.
        routing = dataclasses.replace(
            RoutingSpec.parse(POOL),
            chaos={"strong": FaultSpec(rate=1.0, kind="exception")},
        )
        with use_llm_routing(routing):
            fixer = RTLFixer(
                tier="gpt-4-sim", on_error="collect", breaker_threshold=3,
                max_retries=1,
            )
            run = run_fix_experiment(tiny_dataset, fixer, repeats=1)
        assert run.failures, "strong-tier outage must fail trials"
        skipped = [f for f in run.failures if f.error_type == "CircuitOpenError"]
        assert skipped, "the breaker must skip trials fail-fast"

    def test_transient_outage_healed_by_member_retry(self):
        routing = dataclasses.replace(
            RoutingSpec.parse(POOL),
            chaos={
                "cheap": FaultSpec(
                    rate=1.0, kind="exception", transient_failures=1
                )
            },
        )
        counter = TokenCounter()
        with use_llm_routing(routing), use_token_counter(counter):
            result = RTLFixer(seed=3).fix(BROKEN)
        ledger = counter.as_dict()
        assert result.iterations >= 1
        # Every fault cleared inside the member's retry wrapper: the
        # strong rung never answered for the cheap one.
        assert ledger["failovers"] == 0
        assert ledger["backends"]["cheap"]["failures"] == 0


class TestOpenAIAdapter:
    def test_offline_guard_fails_fast_without_key(self, monkeypatch):
        monkeypatch.delenv("OPENAI_API_KEY", raising=False)
        client = OpenAIChatClient(model="gpt-4")
        with pytest.raises(LLMError, match="no API key"):
            client.complete([ChatMessage(role="user", content="hi")])

    def test_real_tier_in_pool_fails_over_to_simulated(self, monkeypatch):
        # A misconfigured real backend degrades into failover, not a
        # crashed run: the simulated rung answers.
        monkeypatch.delenv("OPENAI_API_KEY", raising=False)
        routing = RoutingSpec.parse("real=gpt-3.5-turbo,fallback=gpt-3.5-sim")
        counter = TokenCounter()
        with use_llm_routing(routing), use_token_counter(counter):
            result = RTLFixer(seed=3, tier="gpt-3.5-turbo").fix(BROKEN)
        assert result.iterations >= 1
        ledger = counter.as_dict()
        assert ledger["backends"]["real"]["failures"] >= 1
        assert ledger["backends"]["fallback"]["calls"] >= 1
