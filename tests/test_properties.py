"""Property-based tests (hypothesis) on core data structures and
invariants: 4-state Logic algebra, literal parsing, front-end crash
safety, clustering metrics, and pass@k."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.cluster import jaccard_distance, shingles
from repro.diagnostics import compile_source
from repro.eval import pass_at_k_single
from repro.sim import Logic
from repro.sim import ops
from repro.verilog import SourceFile, parse_literal, tokenize
from repro.verilog.tokens import TokenKind

widths = st.integers(min_value=1, max_value=64)


@st.composite
def logic_values(draw, width=None):
    w = draw(widths) if width is None else width
    bits = draw(st.integers(min_value=0, max_value=(1 << w) - 1))
    xmask = draw(st.integers(min_value=0, max_value=(1 << w) - 1))
    signed = draw(st.booleans())
    return Logic(w, bits, xmask, signed)


class TestLogicProperties:
    @given(logic_values())
    def test_bits_and_xmask_stay_in_width(self, v):
        assert v.bits < (1 << v.width)
        assert v.xmask < (1 << v.width)

    @given(logic_values())
    def test_resize_roundtrip_preserves_value(self, v):
        wider = v.resize(v.width + 8)
        back = wider.resize(v.width)
        assert back.bits == v.bits and back.xmask == v.xmask

    @given(logic_values())
    def test_double_negation(self, v):
        # Z bits legitimately collapse to X through operators, so compare
        # known bits and unknown positions rather than exact encoding.
        out = ops.unary("~", ops.unary("~", v))
        assert out.xmask == v.xmask
        mask = (1 << v.width) - 1
        known = ~v.xmask & mask
        assert out.bits & known == v.bits & known

    @given(logic_values(), logic_values())
    def test_and_commutes(self, a, b):
        assert ops.binary("&", a, b).same_as(ops.binary("&", b, a))

    @given(logic_values(), logic_values())
    def test_or_commutes(self, a, b):
        assert ops.binary("|", a, b).same_as(ops.binary("|", b, a))

    @given(logic_values(), logic_values())
    def test_add_commutes(self, a, b):
        assert ops.binary("+", a, b).same_as(ops.binary("+", b, a))

    @given(logic_values())
    def test_xor_self_is_zero_when_known(self, v):
        out = ops.binary("^", v, v)
        if v.is_fully_known:
            assert out.bits == 0 and out.xmask == 0

    @given(logic_values())
    def test_and_with_zero_is_zero(self, v):
        zero = Logic.from_int(0, v.width)
        out = ops.binary("&", v, zero)
        assert out.bits == 0 and out.xmask == 0

    @given(logic_values())
    def test_known_ops_never_produce_x(self, v):
        if not v.is_fully_known:
            return
        other = Logic.from_int(3, v.width)
        for op in ("+", "-", "*", "&", "|", "^", "<<", ">>"):
            assert ops.binary(op, v, other).xmask == 0

    @given(logic_values(), st.integers(min_value=0, max_value=70))
    def test_bit_read_in_or_out_of_range(self, v, index):
        bit = v.bit(index)
        assert bit.width == 1
        if index >= v.width:
            assert bit.has_x

    @given(logic_values())
    def test_concat_slice_roundtrip(self, v):
        doubled = ops.concat([v, v])
        assert doubled.slice(v.width - 1, 0).same_as(v)
        assert doubled.slice(2 * v.width - 1, v.width).same_as(v)

    @given(logic_values(), logic_values(), st.booleans())
    def test_ternary_known_condition_selects(self, a, b, cond):
        out = ops.ternary(Logic(1, int(cond)), a, b)
        expected = a if cond else b
        assert out.same_as(expected.resize(max(a.width, b.width)))


class TestLiteralProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=32))
    def test_hex_literal_roundtrip(self, value, width):
        value &= (1 << width) - 1
        text = f"{width}'h{value:x}"
        lit = parse_literal(text)
        assert lit.width == width
        assert lit.bits == value
        assert lit.xmask == 0

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_binary_literal_roundtrip(self, value):
        text = f"16'b{value:016b}"
        lit = parse_literal(text)
        assert lit.bits == value

    @given(st.text(alphabet="0123456789'bdhsxz_", max_size=12))
    def test_parse_literal_never_crashes(self, text):
        lit = parse_literal(text)
        assert lit.bits >= 0 and lit.xmask >= 0


class TestFrontEndRobustness:
    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=300))
    def test_compile_never_crashes_on_arbitrary_text(self, text):
        result = compile_source(text)
        assert result.diagnostics is not None

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="modulewirebeginend ()[];=<+*@{}&|^~!?:#'0123456789abq\n", max_size=400))
    def test_compile_never_crashes_on_verilogish_soup(self, text):
        result = compile_source(text)
        # And rendering both flavours never crashes either.
        _ = result.log
        _ = compile_source(text, flavor="quartus").log

    @settings(max_examples=80, deadline=None)
    @given(st.text(max_size=200))
    def test_lexer_terminates_with_eof(self, text):
        tokens = tokenize(SourceFile("t.v", text))
        assert tokens[-1].kind is TokenKind.EOF


class TestJaccardProperties:
    @given(st.text(max_size=80), st.text(max_size=80))
    def test_symmetric_and_bounded(self, a, b):
        dist = jaccard_distance(shingles(a), shingles(b))
        assert 0.0 <= dist <= 1.0
        assert dist == jaccard_distance(shingles(b), shingles(a))

    @given(st.text(max_size=80))
    def test_identity(self, a):
        assert jaccard_distance(shingles(a), shingles(a)) == 0.0

    @given(st.text(max_size=40), st.text(max_size=40), st.text(max_size=40))
    def test_triangle_inequality(self, a, b, c):
        sa, sb, sc = shingles(a), shingles(b), shingles(c)
        assert jaccard_distance(sa, sc) <= (
            jaccard_distance(sa, sb) + jaccard_distance(sb, sc) + 1e-9
        )


class TestPassAtKProperties:
    @given(st.integers(1, 50), st.data())
    def test_bounded_and_monotone(self, n, data):
        c = data.draw(st.integers(0, n))
        k = data.draw(st.integers(1, n))
        value = pass_at_k_single(n, c, k)
        assert 0.0 <= value <= 1.0
        if k < n:
            assert pass_at_k_single(n, c, k + 1) >= value - 1e-12
