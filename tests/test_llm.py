"""Tests for the LLM layer: feedback parsing, repair strategies, and the
simulated model."""

import random

import pytest

from repro.diagnostics import ErrorCategory, compile_source
from repro.errors import LLMError
from repro.llm import (
    OpenAIRepairModel,
    ParsedError,
    SimulatedLLM,
    apply_strategy,
    build_repair_messages,
    detect_flavor,
    parse_feedback,
    parse_repair_reply,
)
from repro.llm.repair.strategies import declared_names

FIG5 = (
    "module top_module(input [99:0] in, output reg [99:0] out);\n"
    "always @(posedge clk) out <= in;\nendmodule"
)


class TestDetectFlavor:
    def test_quartus(self):
        log = compile_source(FIG5, flavor="quartus").log
        assert detect_flavor(log) == "quartus"

    def test_iverilog(self):
        log = compile_source(FIG5, flavor="iverilog").log
        assert detect_flavor(log) == "iverilog"

    def test_simple(self):
        assert detect_flavor("Correct the syntax error in the code.") == "simple"


class TestParseFeedback:
    def test_quartus_categories_and_details(self):
        log = compile_source(FIG5, flavor="quartus").log
        errors = parse_feedback(log)
        assert errors[0].category is ErrorCategory.UNDECLARED_ID
        assert errors[0].details["name"] == "clk"
        assert errors[0].line == 2

    def test_quartus_index_details(self):
        code = "module m(input [7:0] a, output y);\nassign y = a[12];\nendmodule"
        errors = parse_feedback(compile_source(code, flavor="quartus").log)
        assert errors[0].category is ErrorCategory.INDEX_RANGE
        assert errors[0].details["index"] == 12
        assert errors[0].details["range"] == "[7:0]"

    def test_iverilog_specific(self):
        log = compile_source(FIG5, flavor="iverilog").log
        errors = parse_feedback(log)
        assert errors[0].category is ErrorCategory.UNDECLARED_ID
        assert errors[0].details["name"] == "clk"

    def test_iverilog_ambiguous_has_no_category(self):
        code = "module m(input a, output y);\nassign y = a\nendmodule"
        errors = parse_feedback(compile_source(code, flavor="iverilog").log)
        assert errors
        assert errors[0].category is None  # bare "syntax error"

    def test_simple_feedback_yields_nothing(self):
        assert parse_feedback("Correct the syntax error in the code.") == []


def fixed_ok(code: str, category: ErrorCategory, **details) -> bool:
    """Apply the correct strategy and check the result compiles."""
    result = compile_source(code)
    diag = next(d for d in result.errors if d.category is category)
    error = ParsedError(category=category, line=diag.line, details=dict(diag.args))
    fixed = apply_strategy(code, error, random.Random(0))
    return fixed is not None and compile_source(fixed).ok


class TestStrategies:
    def test_fix_undeclared_clk_adds_port(self):
        assert fixed_ok(FIG5, ErrorCategory.UNDECLARED_ID)

    def test_fix_misspelled_signal(self):
        code = (
            "module m(input a, output y);\nwire stage;\n"
            "assign stage = a;\nassign y = stagee;\nendmodule"
        )
        assert fixed_ok(code, ErrorCategory.UNDECLARED_ID)

    def test_fix_index_overflow(self):
        code = "module m(input [7:0] a, output [7:0] y);\nassign y[8] = a[0];\nendmodule"
        assert fixed_ok(code, ErrorCategory.INDEX_RANGE)

    def test_fix_loop_bound(self):
        code = (
            "module m(input [7:0] a, output reg [7:0] y);\ninteger i;\n"
            "always @(*) for (i = 0; i <= 8; i = i + 1) y[i] = a[i];\nendmodule"
        )
        assert fixed_ok(code, ErrorCategory.INDEX_RANGE)

    def test_fix_output_reg(self):
        code = "module m(input a, output y);\nalways @(*) y = a;\nendmodule"
        assert fixed_ok(code, ErrorCategory.INVALID_LVALUE)

    def test_fix_assign_to_input(self):
        code = (
            "module m(input a, input b, output y);\n"
            "assign y = a;\nassign b = a;\nendmodule"
        )
        assert fixed_ok(code, ErrorCategory.INVALID_LVALUE)

    def test_fix_missing_semicolon(self):
        code = "module m(input a, output y);\nassign y = a\nendmodule"
        result = compile_source(code)
        diag = result.errors[0]
        error = ParsedError(category=diag.category, line=diag.line, details=dict(diag.args))
        fixed = apply_strategy(code, error, random.Random(0))
        assert fixed is not None and compile_source(fixed).ok

    def test_fix_unbalanced(self):
        code = (
            "module m(input a, output reg y);\n"
            "always @(*) begin\ny = a;\nendmodule"
        )
        assert fixed_ok(code, ErrorCategory.UNBALANCED_BLOCK)

    def test_fix_bad_literal(self):
        code = "module m(output [3:0] y);\nassign y = 4'b0021;\nendmodule"
        assert fixed_ok(code, ErrorCategory.BAD_LITERAL)

    def test_fix_port_mismatch(self):
        code = (
            "module top(input a, output y);\nsub u1 (.inp(a), .out(y));\nendmodule\n"
            "module sub(input in, output out);\nassign out = in;\nendmodule"
        )
        assert fixed_ok(code, ErrorCategory.PORT_MISMATCH)

    def test_fix_duplicate(self):
        code = (
            "module m(input a, output y);\nwire t;\nwire t;\n"
            "assign t = a;\nassign y = t;\nendmodule"
        )
        assert fixed_ok(code, ErrorCategory.DUPLICATE_DECL)

    def test_fix_c_style(self):
        code = (
            "module m(output reg [3:0] q);\ninteger i;\n"
            "initial for (i = 0; i < 4; i++) q[i] = 0;\nendmodule"
        )
        assert fixed_ok(code, ErrorCategory.C_STYLE_SYNTAX)

    def test_fix_event_expr(self):
        code = "module m(input clk, input d, output reg q);\nalways @(posedge) q <= d;\nendmodule"
        assert fixed_ok(code, ErrorCategory.EVENT_EXPR)

    def test_fix_misspelled_assign(self):
        code = "module m(input a, output y);\nasign y = a;\nendmodule"
        result = compile_source(code)
        error = ParsedError(
            category=ErrorCategory.SYNTAX_NEAR,
            line=result.errors[0].line,
            details=dict(result.errors[0].args),
        )
        fixed = apply_strategy(code, error, random.Random(0))
        assert fixed is not None and compile_source(fixed).ok

    def test_botch_path_differs_from_correct(self):
        error = ParsedError(
            category=ErrorCategory.UNDECLARED_ID, line=2, details={"name": "clk"}
        )
        correct = apply_strategy(FIG5, error, random.Random(0), botch=False)
        botched = apply_strategy(FIG5, error, random.Random(0), botch=True)
        assert correct != botched
        # The botch (reg clk) compiles but is functionally dead.
        assert compile_source(botched).ok

    def test_declared_names_scrapes_ports_and_nets(self):
        names = declared_names(
            "module m(input a, output [3:0] y);\nwire t;\nreg [1:0] s;\nendmodule"
        )
        assert {"a", "y", "t", "s"} <= set(names)


class TestSimulatedLLM:
    def test_deterministic_sessions(self):
        llm = SimulatedLLM(seed=1)
        code = FIG5
        log = compile_source(code, flavor="quartus").log
        a = llm.start(code, "quartus", True).step(code, log, [])
        b = llm.start(code, "quartus", True).step(code, log, [])
        assert a.code == b.code
        assert a.thought == b.thought

    def test_thought_mentions_error(self):
        llm = SimulatedLLM(seed=1)
        log = compile_source(FIG5, flavor="quartus").log
        step = llm.start(FIG5, "quartus", True).step(FIG5, log, [])
        assert "undeclared" in step.thought or "clk" in step.thought

    def test_gpt4_fixes_more_than_gpt35(self):
        from repro.dataset import build_syntax_dataset, verilogeval
        ds = build_syntax_dataset(verilogeval(), samples_per_problem=4, seed=2, target_size=40)
        from repro.core import RTLFixer

        weak = RTLFixer(prompting="oneshot", compiler="quartus", use_rag=False)
        strong = RTLFixer(prompting="oneshot", compiler="quartus", use_rag=False, tier="gpt-4-sim")
        weak_wins = sum(weak.fix(e.code).success for e in ds)
        strong_wins = sum(strong.fix(e.code).success for e in ds)
        assert strong_wins > weak_wins

    def test_capability_coin_stable(self):
        llm = SimulatedLLM(seed=0)
        a = llm.start(FIG5, "quartus", False)
        b = llm.start(FIG5, "quartus", False)
        assert a.capable == b.capable


class TestOpenAIStub:
    def test_refuses_without_client(self):
        model = OpenAIRepairModel()
        with pytest.raises(LLMError):
            model.start("module m; endmodule", "quartus", True)

    def test_prompt_contains_code_and_feedback(self):
        messages = build_repair_messages("module m; endmodule", "some error", [])
        assert any("module m" in m.content for m in messages)
        assert any("some error" in m.content for m in messages)

    def test_reply_parsing(self):
        reply = "Thought 1: fix it\n```verilog\nmodule m; endmodule\n```"
        step = parse_repair_reply(reply, fallback_code="x")
        assert step.thought == "fix it"
        assert "module m" in step.code

    def test_reply_parsing_fallback(self):
        step = parse_repair_reply("no code here", fallback_code="fallback")
        assert step.code == "fallback"
