"""Tests for the VCD writer and the figure/report helpers."""

from repro.eval import bar_chart, composition_figure, histogram_figure
from repro.sim import Logic, Trace, VcdWriter, dump_comparison_vcd, dump_vcd


def make_trace() -> Trace:
    trace = Trace(signals=["q", "en"])
    for v in (0, 1, 2, 2, 3):
        trace.append("q", Logic.from_int(v, 4))
    for v in (1, 1, 0, 0, 1):
        trace.append("en", Logic.from_int(v, 1))
    return trace


class TestVcdWriter:
    def test_header_sections(self):
        writer = VcdWriter()
        writer.add_trace(make_trace())
        text = writer.render()
        assert "$timescale 1ns $end" in text
        assert "$scope module top $end" in text
        assert "$enddefinitions $end" in text

    def test_var_declarations(self):
        writer = VcdWriter()
        writer.add_trace(make_trace())
        text = writer.render()
        assert "$var wire 4 ! q $end" in text
        assert '$var wire 1 " en $end' in text

    def test_value_changes_deduplicated(self):
        writer = VcdWriter()
        writer.add_trace(make_trace())
        text = writer.render()
        # q changes at steps 0,1,2,4 (value 2 repeats at step 3).
        assert "#0" in text and "#1" in text and "#4" in text
        changes = [l for l in text.split("\n") if l.endswith("!") and l.startswith("b")]
        assert len(changes) == 4

    def test_scalar_values_rendered_without_b_prefix(self):
        writer = VcdWriter()
        writer.add_trace(make_trace())
        text = writer.render()
        assert '1"' in text and '0"' in text

    def test_x_bits_rendered(self):
        trace = Trace(signals=["y"])
        trace.append("y", Logic.all_x(4))
        writer = VcdWriter()
        writer.add_trace(trace)
        assert "bxxxx" in writer.render()

    def test_dump_and_comparison(self, tmp_path):
        path = str(tmp_path / "wave.vcd")
        dump_vcd(make_trace(), path)
        with open(path) as f:
            assert "$var" in f.read()
        cmp_path = str(tmp_path / "cmp.vcd")
        dump_comparison_vcd(make_trace(), make_trace(), cmp_path)
        with open(cmp_path) as f:
            text = f.read()
        assert "expected_q" in text and "actual_q" in text

    def test_many_signals_get_unique_ids(self):
        writer = VcdWriter()
        trace = Trace(signals=[f"s{i}" for i in range(80)])
        for name in trace.signals:
            trace.append(name, Logic.from_int(1, 1))
        writer.add_trace(trace)
        ids = [s.identifier for s in writer._signals]
        assert len(set(ids)) == len(ids)


class TestFigureHelpers:
    def test_bar_chart_scales_to_peak(self):
        text = bar_chart({"a": 0.9, "b": 0.45}, width=20)
        lines = text.split("\n")
        assert lines[0].count("#") == 20
        assert 8 <= lines[1].count("#") <= 12

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_composition_figure(self):
        text = composition_figure(
            {"pass": 0.3, "syntax": 0.4, "sim": 0.3},
            {"pass": 0.6, "syntax": 0.05, "sim": 0.35},
            "human",
        )
        assert "before fixing" in text and "after fixing" in text

    def test_histogram_figure(self):
        text = histogram_figure({1: 90, 2: 10})
        assert "1 iter" in text and "90.0%" in text
