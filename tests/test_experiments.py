"""Scaled-down smoke tests for the experiment drivers (the benchmarks
run them at full scale)."""

import pytest

from repro.dataset import ProblemSet, build_syntax_dataset, rtllm, verilogeval
from repro.eval import (
    FIG6_CODE,
    default_dataset,
    figure5_logs,
    figure6_failure_case,
    run_figure7,
    run_table1,
    run_table2,
    run_table3,
)
from repro.eval.runner import evaluate_sample


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_syntax_dataset(
        verilogeval(), samples_per_problem=4, seed=0, target_size=24
    )


@pytest.fixture(scope="module")
def tiny_problems():
    full = verilogeval()
    picked = [
        full.get(pid)
        for pid in ("mux2to1", "counter4_reset", "fsm_seq101", "popcount8")
    ]
    return ProblemSet(name="tiny", problems=picked)


class TestTable1Driver:
    def test_structure_and_ordering(self, tiny_dataset):
        result = run_table1(tiny_dataset, repeats=1, include_gpt4=False)
        rates = result.rates
        assert len(rates) == 10
        assert rates[("react", "quartus", True)] >= rates[("oneshot", "quartus", False)]
        rendered = result.render()
        assert "Table 1" in rendered
        assert "paper" in rendered

    def test_gpt4_rows_included_when_asked(self, tiny_dataset):
        result = run_table1(tiny_dataset, repeats=1, include_gpt4=True)
        assert ("react-gpt4", "quartus", True) in result.rates


class TestTable2Driver:
    def test_outcomes_and_uplift(self, tiny_problems):
        result = run_table2(tiny_problems, n_samples=6, sim_samples=12)
        assert set(result.outcomes) == {"human", "machine"}
        for outcomes in result.outcomes.values():
            assert len(outcomes) == len(tiny_problems)
            for o in outcomes:
                assert (
                    o.correct_original + o.syntax_original + o.sim_original == o.n
                )
                assert (
                    o.correct_fixed + o.syntax_fixed + o.sim_fixed == o.n
                )
                assert o.correct_fixed >= o.correct_original
        assert result.pass_at("human", "all", 1, True) >= result.pass_at(
            "human", "all", 1, False
        )
        assert "Table 2" in result.render()

    def test_error_composition_sums_to_one(self, tiny_problems):
        result = run_table2(tiny_problems, n_samples=6, sim_samples=12)
        for bench in ("human", "machine"):
            for fixed in (False, True):
                comp = result.error_composition(bench, fixed)
                assert sum(comp.values()) == pytest.approx(1.0)

    def test_easy_split_threshold(self, tiny_problems):
        result = run_table2(tiny_problems, n_samples=6, sim_samples=12)
        easy = result.easy_ids()
        for outcome in result.outcomes["human"]:
            if outcome.correct_original / outcome.n > 0.1:
                assert outcome.problem_id in easy


class TestTable3Driver:
    def test_rtllm_improvement(self):
        problems = rtllm()
        result = run_table3(problems, n_samples=4, sim_samples=12)
        assert 0.0 <= result.syntax_before <= result.syntax_after <= 1.0
        assert result.pass1_after >= result.pass1_before
        assert "Table 3" in result.render()


class TestFigureDrivers:
    def test_figure7(self, tiny_dataset):
        result = run_figure7(tiny_dataset, repeats=1)
        assert result.total > 0
        assert abs(sum(result.fraction(k) for k in result.histogram) - 1.0) < 1e-9
        assert "Figure 7" in result.render()

    def test_figure5_logs(self):
        logs = figure5_logs()
        assert "Unable to bind" in logs["iverilog"]
        assert "Error (10161)" in logs["quartus"]

    def test_figure6(self):
        result = figure6_failure_case(repeats=2)
        assert "index -17" in result["log"]
        assert 0.0 <= result["fix_rate"] <= 1.0

    def test_fig6_code_fails_compile(self):
        from repro.diagnostics import compile_source

        assert not compile_source(FIG6_CODE).ok


class TestRunnerHelpers:
    def test_evaluate_sample_verdicts(self, tiny_problems):
        problem = tiny_problems.get("mux2to1")
        assert evaluate_sample(problem.reference, problem, samples=12) == "pass"
        broken = problem.reference.replace("assign", "asign")
        assert evaluate_sample(broken, problem, samples=12) == "syntax"
        wrong = problem.reference.replace("sel ? b : a", "sel ? a : b")
        assert evaluate_sample(wrong, problem, samples=12) == "sim"

    def test_default_dataset_helper(self):
        ds = default_dataset(samples_per_problem=4, target_size=20)
        assert len(ds) == 20
