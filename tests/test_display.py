"""Tests for $display/$write capture in the simulator."""

from repro.diagnostics import compile_source
from repro.sim import Simulator


def build(code: str) -> Simulator:
    result = compile_source(code)
    assert result.ok, result.log
    return Simulator(result.elaborated)


class TestDisplayCapture:
    def test_initial_display_with_format(self):
        sim = build(
            'module m;\ninitial $display("value=%d hex=%h bin=%b", 10, 10, 2);\nendmodule'
        )
        assert sim.display_log == ["value=10 hex=a bin=10"]

    def test_display_without_format_string(self):
        sim = build("module m;\ninitial $display(42);\nendmodule")
        assert sim.display_log == ["42"]

    def test_percent_escape(self):
        sim = build('module m;\ninitial $display("100%%");\nendmodule')
        assert sim.display_log == ["100%"]

    def test_display_signal_values(self):
        sim = build(
            "module m(input clk, output reg [3:0] q);\n"
            "initial q = 4'd5;\n"
            'always @(posedge clk) begin\n  q <= q + 1;\n  $display("q=%d", q);\nend\n'
            "endmodule"
        )
        sim.step({"clk": 0})
        sim.step({"clk": 1})
        assert sim.display_log == ["q=5"]

    def test_x_values_render_as_x(self):
        sim = build(
            "module m;\nreg [3:0] u;\ninitial $display(\"%d\", u);\nendmodule"
        )
        assert sim.display_log == ["x"]

    def test_excess_specifiers_left_verbatim(self):
        sim = build('module m;\ninitial $display("a=%d b=%d", 1);\nendmodule')
        assert sim.display_log == ["a=1 b=%d"]

    def test_monitor_like_tasks_ignored(self):
        sim = build("module m;\ninitial $finish;\nendmodule")
        assert sim.display_log == []

    def test_signed_rendering(self):
        sim = build(
            "module m;\nreg signed [7:0] s;\n"
            'initial begin\n  s = -2;\n  $display("%d", s);\nend\nendmodule'
        )
        assert sim.display_log == ["-2"]
