"""Tests for the golden-model differential testbench."""

from repro.diagnostics import compile_source
from repro.sim import check_interface, run_differential

REF_COMB = (
    "module top_module(input [7:0] in, output [7:0] out);\n"
    "assign out = {in[0],in[1],in[2],in[3],in[4],in[5],in[6],in[7]};\nendmodule"
)

REF_SEQ = (
    "module top_module(input clk, input reset, output reg [3:0] q);\n"
    "always @(posedge clk) begin\n"
    "  if (reset) q <= 0; else q <= q + 1;\nend\nendmodule"
)


def elab(code: str):
    result = compile_source(code)
    assert result.ok, result.log
    return result.elaborated


class TestCombinationalDiff:
    def test_identical_passes(self):
        result = run_differential(elab(REF_COMB), elab(REF_COMB), samples=16)
        assert result.passed
        assert result.samples == 16
        assert result.mismatch_count == 0

    def test_equivalent_different_style_passes(self):
        candidate = (
            "module top_module(input [7:0] in, output reg [7:0] out);\n"
            "integer i;\n"
            "always @(*) for (i = 0; i < 8; i = i + 1) out[i] = in[7 - i];\n"
            "endmodule"
        )
        result = run_differential(elab(candidate), elab(REF_COMB), samples=16)
        assert result.passed

    def test_logic_bug_detected(self):
        candidate = (
            "module top_module(input [7:0] in, output [7:0] out);\n"
            "assign out = in;\nendmodule"  # forgot to reverse
        )
        result = run_differential(elab(candidate), elab(REF_COMB), samples=16)
        assert not result.passed
        assert result.mismatch_count > 0
        assert result.mismatches[0].output == "out"

    def test_deterministic_given_seed(self):
        a = run_differential(elab(REF_COMB), elab(REF_COMB), samples=8, seed=3)
        b = run_differential(elab(REF_COMB), elab(REF_COMB), samples=8, seed=3)
        assert a.samples == b.samples and a.mismatch_count == b.mismatch_count


class TestSequentialDiff:
    def test_identical_counter_passes(self):
        result = run_differential(elab(REF_SEQ), elab(REF_SEQ), samples=32)
        assert result.passed

    def test_wrong_step_detected(self):
        candidate = (
            "module top_module(input clk, input reset, output reg [3:0] q);\n"
            "always @(posedge clk) begin\n"
            "  if (reset) q <= 0; else q <= q + 2;\nend\nendmodule"
        )
        result = run_differential(elab(candidate), elab(REF_SEQ), samples=32)
        assert not result.passed

    def test_wrong_reset_polarity_detected(self):
        candidate = (
            "module top_module(input clk, input reset, output reg [3:0] q);\n"
            "always @(posedge clk) begin\n"
            "  if (!reset) q <= 0; else q <= q + 1;\nend\nendmodule"
        )
        result = run_differential(elab(candidate), elab(REF_SEQ), samples=32)
        assert not result.passed


class TestInterfaceChecks:
    def test_missing_port(self):
        candidate = "module top_module(input [7:0] in);\nendmodule"
        result = run_differential(elab(candidate), elab(REF_COMB))
        assert not result.passed
        assert "missing port" in result.failure_reason

    def test_wrong_width(self):
        candidate = (
            "module top_module(input [7:0] in, output [3:0] out);\n"
            "assign out = in[3:0];\nendmodule"
        )
        result = run_differential(elab(candidate), elab(REF_COMB))
        assert not result.passed
        assert "width" in result.failure_reason

    def test_extra_port(self):
        candidate = (
            "module top_module(input [7:0] in, input clk, output [7:0] out);\n"
            "assign out = in;\nendmodule"
        )
        result = run_differential(elab(candidate), elab(REF_COMB))
        assert not result.passed
        assert "extra ports" in result.failure_reason

    def test_check_interface_direct(self):
        assert check_interface(elab(REF_COMB), elab(REF_COMB)) == ""

    def test_simulation_error_becomes_failure_reason(self):
        candidate = (
            "module top_module(input [7:0] in, output reg [7:0] out);\n"
            "initial out = 0;\n"
            "always @(*) out = out + 1;\nendmodule"  # oscillates
        )
        result = run_differential(elab(candidate), elab(REF_COMB))
        assert not result.passed
        assert result.failure_reason
