"""Unit tests for semantic elaboration and its checks."""

from repro.diagnostics import ErrorCategory, compile_source


def cats(code: str) -> list[ErrorCategory]:
    return [d.category for d in compile_source(code).errors]


def compile_ok(code: str):
    result = compile_source(code)
    assert result.ok, result.log
    return result


class TestSymbolResolution:
    def test_clean_module_has_no_errors(self):
        compile_ok(
            "module top_module(input [7:0] in, output [7:0] out);\n"
            "assign out = in;\nendmodule"
        )

    def test_undeclared_in_rhs(self):
        assert cats(
            "module m(output y);\nassign y = nothere;\nendmodule"
        ) == [ErrorCategory.UNDECLARED_ID]

    def test_undeclared_lvalue(self):
        assert ErrorCategory.UNDECLARED_ID in cats(
            "module m(input a);\nassign ghost = a;\nendmodule"
        )

    def test_undeclared_clk_in_sensitivity(self):
        # Fig. 5 of the paper: posedge of an undeclared clock.
        result = compile_source(
            "module top_module(input [99:0] in, output reg [99:0] out);\n"
            "always @(posedge clk) out <= in;\nendmodule"
        )
        assert not result.ok
        assert result.errors[0].category is ErrorCategory.UNDECLARED_ID
        assert result.errors[0].args["name"] == "clk"

    def test_parameter_usable_in_range(self):
        compile_ok(
            "module m #(parameter W = 8)(input [W-1:0] d, output [W-1:0] q);\n"
            "assign q = d;\nendmodule"
        )

    def test_localparam_in_expression(self):
        compile_ok(
            "module m(output [7:0] y);\nlocalparam V = 42;\n"
            "assign y = V;\nendmodule"
        )

    def test_function_locals_scoped(self):
        compile_ok(
            "module m(input [7:0] a, output [7:0] y);\n"
            "function [7:0] inc(input [7:0] x);\n"
            "  integer t;\n"
            "  begin t = x; inc = t + 1; end\n"
            "endfunction\n"
            "assign y = inc(a);\nendmodule"
        )

    def test_genvar_loop_expansion(self):
        compile_ok(
            "module m(input [3:0] a, output [3:0] y);\n"
            "genvar g;\n"
            "generate for (g = 0; g < 4; g = g + 1) begin : blk\n"
            "  assign y[g] = ~a[g];\n"
            "end endgenerate\nendmodule"
        )

    def test_generate_index_out_of_range_caught(self):
        assert ErrorCategory.INDEX_RANGE in cats(
            "module m(input [3:0] a, output [3:0] y);\n"
            "genvar g;\n"
            "generate for (g = 0; g < 5; g = g + 1) begin : blk\n"
            "  assign y[g] = ~a[g];\n"
            "end endgenerate\nendmodule"
        )


class TestIndexRange:
    def test_constant_index_out_of_range(self):
        # Fig. 2a of the paper: out[8] on an 8-bit vector.
        result = compile_source(
            "module top_module(input [7:0] in, output [7:0] out);\n"
            "assign {out[0],out[1],out[2],out[3],out[4],out[5],out[6],out[8]} = in;\n"
            "endmodule"
        )
        assert [d.category for d in result.errors] == [ErrorCategory.INDEX_RANGE]
        assert result.errors[0].args["index"] == 8

    def test_part_select_out_of_range(self):
        assert ErrorCategory.INDEX_RANGE in cats(
            "module m(input [7:0] a, output [7:0] y);\nassign y = a[9:2];\nendmodule"
        )

    def test_in_range_constant_ok(self):
        compile_ok(
            "module m(input [7:0] a, output y);\nassign y = a[7];\nendmodule"
        )

    def test_dynamic_index_not_flagged(self):
        compile_ok(
            "module m(input [7:0] a, input [2:0] s, output y);\n"
            "assign y = a[s];\nendmodule"
        )

    def test_unrolled_for_loop_negative_index(self):
        # Fig. 6 of the paper: the loop's first iteration indexes q[-17].
        result = compile_source(
            "module m(input [255:0] q, output reg [255:0] next);\n"
            "integer i, j;\n"
            "always @(*) begin\n"
            "  for (i = 0; i < 16; i = i + 1)\n"
            "    for (j = 0; j < 16; j = j + 1)\n"
            "      next[i*16 + j] = q[(i-1)*16 + (j-1)];\n"
            "end\nendmodule"
        )
        assert any(
            d.category is ErrorCategory.INDEX_RANGE and d.args["index"] == -17
            for d in result.errors
        )

    def test_unrolled_for_loop_in_range_ok(self):
        compile_ok(
            "module m(input [7:0] a, output reg [7:0] y);\n"
            "integer i;\n"
            "always @(*) for (i = 0; i < 8; i = i + 1) y[i] = a[7 - i];\n"
            "endmodule"
        )

    def test_memory_word_index_checked(self):
        assert ErrorCategory.INDEX_RANGE in cats(
            "module m(output reg [7:0] y);\n"
            "reg [7:0] mem [0:15];\n"
            "always @(*) y = mem[16];\nendmodule"
        )


class TestLValues:
    def test_procedural_assign_to_wire(self):
        result = compile_source(
            "module m(input a, output out);\n"
            "always @(*) out = a;\nendmodule"
        )
        assert [d.category for d in result.errors] == [ErrorCategory.INVALID_LVALUE]
        assert result.errors[0].args["name"] == "out"

    def test_procedural_assign_to_reg_ok(self):
        compile_ok(
            "module m(input a, output reg out);\nalways @(*) out = a;\nendmodule"
        )

    def test_assign_to_input(self):
        assert ErrorCategory.INVALID_LVALUE in cats(
            "module m(input a, input b, output y);\n"
            "assign a = b;\nassign y = a;\nendmodule"
        )

    def test_continuous_assign_to_reg(self):
        assert ErrorCategory.INVALID_LVALUE in cats(
            "module m(input a, output reg y);\nassign y = a;\nendmodule"
        )

    def test_nonansi_output_then_reg_is_legal(self):
        compile_ok(
            "module m(a, q);\ninput a;\noutput q;\nreg q;\n"
            "always @(*) q = a;\nendmodule"
        )

    def test_concat_lvalue_checked_per_part(self):
        assert ErrorCategory.INVALID_LVALUE in cats(
            "module m(input [1:0] a, output reg x, output y);\n"
            "always @(*) {x, y} = a;\nendmodule"
        )


class TestDuplicates:
    def test_duplicate_net(self):
        assert ErrorCategory.DUPLICATE_DECL in cats(
            "module m(input a);\nwire t;\nwire t;\nendmodule"
        )

    def test_duplicate_port(self):
        assert ErrorCategory.DUPLICATE_DECL in cats(
            "module m(input a, input a);\nendmodule"
        )

    def test_port_conflicting_redeclaration(self):
        assert ErrorCategory.DUPLICATE_DECL in cats(
            "module m(input a, output reg q);\nreg q;\n"
            "always @(*) q = a;\nendmodule"
        )


class TestInstances:
    def test_unknown_module(self):
        assert ErrorCategory.UNDECLARED_ID in cats(
            "module top(input a, output y);\nmystery u1 (.x(a), .y(y));\nendmodule"
        )

    def test_bad_port_name(self):
        result = compile_source(
            "module top(input a, output y);\nsub u1 (.nope(a), .out(y));\nendmodule\n"
            "module sub(input in, output out);\nassign out = in;\nendmodule"
        )
        assert any(d.category is ErrorCategory.PORT_MISMATCH for d in result.errors)
        bad = [d for d in result.errors if d.category is ErrorCategory.PORT_MISMATCH][0]
        assert bad.args["port"] == "nope"

    def test_too_many_positional(self):
        assert ErrorCategory.PORT_MISMATCH in cats(
            "module top(input a, input b, output y);\nsub u1 (a, b, y);\nendmodule\n"
            "module sub(input i, output o);\nassign o = i;\nendmodule"
        )

    def test_good_instance_ok(self):
        result = compile_ok(
            "module top(input a, output y);\nsub u1 (.in(a), .out(y));\nendmodule\n"
            "module sub(input in, output out);\nassign out = in;\nendmodule"
        )
        inst = result.elaborated.modules["top"].instances[0]
        assert set(inst.port_map) == {"in", "out"}


class TestConstEval:
    def test_arithmetic(self):
        from repro.verilog import SourceFile, const_eval, parse

        design = parse(SourceFile("t.v", "module m; localparam X = (3 + 4) * 2 ** 2; endmodule"))
        item = design.top_module().items[0]
        assert const_eval(item.value) == 28

    def test_clog2(self):
        from repro.verilog import SourceFile, const_eval, parse

        design = parse(SourceFile("t.v", "module m; localparam X = $clog2(256); endmodule"))
        assert const_eval(design.top_module().items[0].value) == 8

    def test_nonconstant_returns_none(self):
        from repro.verilog import SourceFile, const_eval, parse

        design = parse(SourceFile("t.v", "module m; localparam X = y + 1; endmodule"))
        assert const_eval(design.top_module().items[0].value) is None
