"""Tests for the rule-based pre-fixer (markdown extraction, timescale
hoisting, module validation)."""

from repro.core import extract_code, rule_fix, validate_module_text

MOD = "module m(input a, output y);\nassign y = a;\nendmodule"


class TestExtractCode:
    def test_plain_code_unchanged(self):
        code, was_md = extract_code(MOD)
        assert code == MOD
        assert was_md is False

    def test_fenced_block(self):
        code, was_md = extract_code(f"Sure! Here it is:\n\n```verilog\n{MOD}\n```\n")
        assert code.strip() == MOD
        assert was_md is True

    def test_fence_without_language(self):
        code, was_md = extract_code(f"```\n{MOD}\n```")
        assert code.strip() == MOD
        assert was_md

    def test_prose_around_bare_code(self):
        raw = f"The module below reverses bits.\n{MOD}\nHope this helps!"
        code, was_md = extract_code(raw)
        assert code.strip() == MOD
        assert not was_md

    def test_prefers_fence_containing_module(self):
        raw = f"```\nnot verilog at all\n```\n```verilog\n{MOD}\n```"
        code, _ = extract_code(raw)
        assert "top" not in code and "assign y" in code

    def test_no_module_returns_input(self):
        code, _ = extract_code("I cannot help with that.")
        assert "cannot help" in code


class TestRuleFix:
    def test_has_module_flag(self):
        assert rule_fix(MOD).has_module
        assert not rule_fix("no verilog here").has_module

    def test_timescale_before_module_kept(self):
        result = rule_fix(f"`timescale 1ns/1ps\n{MOD}")
        assert result.moved_timescale is False
        assert result.code.startswith("`timescale")

    def test_timescale_inside_module_hoisted(self):
        broken = MOD.replace(
            "assign y = a;", "`timescale 1ns/1ps\nassign y = a;"
        )
        result = rule_fix(broken)
        assert result.moved_timescale is True
        assert result.code.lstrip().startswith("`timescale")
        # And the result actually compiles.
        from repro.diagnostics import compile_source

        assert compile_source(result.code).ok

    def test_strips_non_ascii(self):
        result = rule_fix(MOD.replace("assign", "assign⁠"))
        assert "⁠" not in result.code

    def test_trailing_newline_ensured(self):
        assert rule_fix(MOD).code.endswith("\n")

    def test_markdown_flag_surfaces(self):
        assert rule_fix(f"```verilog\n{MOD}\n```").extracted_from_markdown


class TestValidateModuleText:
    def test_valid(self):
        assert validate_module_text(MOD)

    def test_empty_body_rejected(self):
        assert not validate_module_text("module m(input a);\nendmodule")
        assert not validate_module_text("module m(input a);\n\n  \nendmodule")

    def test_missing_endmodule_rejected(self):
        assert not validate_module_text("module m(input a);\nassign x = a;")

    def test_prose_rejected(self):
        assert not validate_module_text("this module is great")
