"""Tests for the §3.4 dataset curation pipeline."""

import pytest

from repro.dataset import (
    PAPER_DATASET_SIZE,
    SyntaxDataset,
    SyntaxEntry,
    build_syntax_dataset,
    verilogeval,
)
from repro.diagnostics import compile_source


@pytest.fixture(scope="module")
def small_dataset():
    return build_syntax_dataset(
        verilogeval(), samples_per_problem=6, seed=0, target_size=60
    )


class TestBuildSyntaxDataset:
    def test_target_size_hit(self, small_dataset):
        assert len(small_dataset) == 60

    def test_default_target_is_paper_size(self):
        assert PAPER_DATASET_SIZE == 212

    def test_every_entry_fails_compilation(self, small_dataset):
        for entry in small_dataset:
            assert not compile_source(entry.code).ok, entry.problem_id

    def test_entries_have_module_text(self, small_dataset):
        for entry in small_dataset:
            assert "module" in entry.code
            assert entry.description

    def test_categories_recorded(self, small_dataset):
        for entry in small_dataset:
            assert entry.categories
            assert entry.error_categories()  # round-trips through enum

    def test_category_diversity(self, small_dataset):
        hist = small_dataset.category_histogram()
        assert len(hist) >= 6  # many error classes represented

    def test_multiple_problems_represented(self, small_dataset):
        assert len({e.problem_id for e in small_dataset}) >= 15

    def test_stats_populated(self, small_dataset):
        stats = small_dataset.stats
        assert stats.sampled > 0
        assert stats.failing_kept > 0
        assert stats.clusters > 0
        assert stats.final == 60
        assert stats.compiled_ok > 0  # most samples compile

    def test_deterministic(self):
        a = build_syntax_dataset(verilogeval(), samples_per_problem=4, seed=5, target_size=30)
        b = build_syntax_dataset(verilogeval(), samples_per_problem=4, seed=5, target_size=30)
        assert [e.code for e in a] == [e.code for e in b]

    def test_different_seed_differs(self):
        a = build_syntax_dataset(verilogeval(), samples_per_problem=4, seed=5, target_size=30)
        b = build_syntax_dataset(verilogeval(), samples_per_problem=4, seed=6, target_size=30)
        assert [e.code for e in a] != [e.code for e in b]


class TestPersistence:
    def test_json_roundtrip(self, small_dataset):
        text = small_dataset.to_json()
        loaded = SyntaxDataset.from_json(text)
        assert len(loaded) == len(small_dataset)
        assert loaded.entries[0] == small_dataset.entries[0]

    def test_save_load(self, small_dataset, tmp_path):
        path = str(tmp_path / "ds.json")
        small_dataset.save(path)
        loaded = SyntaxDataset.load(path)
        assert [e.code for e in loaded] == [e.code for e in small_dataset]

    def test_entry_fields(self):
        entry = SyntaxEntry(
            problem_id="p", benchmark="human", description="d",
            code="module m; endmodule", categories=("missing-semicolon",),
        )
        assert entry.error_categories()[0].value == "missing-semicolon"
