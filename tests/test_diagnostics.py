"""Tests for diagnostic rendering in both compiler flavours."""

import pytest

from repro.diagnostics import (
    CATALOG,
    IVERILOG_CATEGORIES,
    QUARTUS_CATEGORIES,
    QUARTUS_TAG_TO_CATEGORY,
    SIMPLE_FEEDBACK,
    Compiler,
    ErrorCategory,
    compile_source,
    quartus_tag,
)

FIG5_CODE = (
    "module top_module(input [99:0] in, output reg [99:0] out);\n"
    "always @(posedge clk) begin\n"
    "  out <= in;\n"
    "end\nendmodule"
)


class TestCatalog:
    def test_seven_iverilog_categories(self):
        # Paper §3.3: 7 common error categories for iverilog.
        assert len(IVERILOG_CATEGORIES) == 7

    def test_eleven_quartus_categories(self):
        # Paper §3.3: 11 common error categories for Quartus.
        assert len(QUARTUS_CATEGORIES) == 11

    def test_tags_unique(self):
        tags = [quartus_tag(c) for c in QUARTUS_CATEGORIES]
        assert len(set(tags)) == len(tags)

    def test_tag_roundtrip(self):
        for category in QUARTUS_CATEGORIES:
            assert QUARTUS_TAG_TO_CATEGORY[quartus_tag(category)] is category

    def test_known_real_quartus_tags(self):
        assert quartus_tag(ErrorCategory.UNDECLARED_ID) == 10161
        assert quartus_tag(ErrorCategory.INDEX_RANGE) == 10232
        assert quartus_tag(ErrorCategory.SYNTAX_NEAR) == 10170


class TestIverilogStyle:
    def test_undeclared_clk_matches_fig5(self):
        log = compile_source(FIG5_CODE, flavor="iverilog").log
        assert "Unable to bind wire/reg/memory `clk'" in log
        assert "Failed to evaluate event expression." in log

    def test_index_out_of_range_message(self):
        log = compile_source(
            "module m(input [7:0] a, output [7:0] out);\n"
            "assign out[8] = a[0];\nendmodule",
            flavor="iverilog",
        ).log
        assert "Index out[8] is out of range." in log

    def test_lvalue_message(self):
        log = compile_source(
            "module m(input a, output out);\nalways @(*) out = a;\nendmodule",
            flavor="iverilog",
        ).log
        assert "out is not a valid l-value" in log

    def test_terse_categories_collapse_to_syntax_error(self):
        log = compile_source(
            "module m(output reg [3:0] q);\ninteger i;\n"
            "initial for (i = 0; i < 4; i++) q[i] = 0;\nendmodule",
            flavor="iverilog",
        ).log
        assert "syntax error" in log
        assert "++" not in log  # no hint about what went wrong

    def test_i_give_up_on_unbalanced(self):
        log = compile_source(
            "module m(input a, output reg b);\nalways @(*) begin\nb = a;\nendmodule",
            flavor="iverilog",
        ).log
        assert "I give up." in log

    def test_elaboration_error_count_line(self):
        log = compile_source(FIG5_CODE, flavor="iverilog").log
        assert "error(s) during elaboration." in log

    def test_location_prefix(self):
        log = compile_source(FIG5_CODE, flavor="iverilog").log
        assert log.startswith("main.v:2:")


class TestQuartusStyle:
    def test_undeclared_clk_matches_fig5(self):
        log = compile_source(FIG5_CODE, flavor="quartus").log
        assert 'Error (10161): Verilog HDL error at main.v(2): object "clk" is not declared.' in log
        assert "declare the object" in log
        assert "Quartus Prime Analysis & Synthesis was unsuccessful" in log

    def test_index_range_message_matches_fig6(self):
        log = compile_source(
            "module m(input [255:0] q, output y);\nassign y = q[300];\nendmodule",
            flavor="quartus",
        ).log
        assert "Error (10232)" in log
        assert "index 300 cannot fall outside the declared range [255:0]" in log

    def test_c_style_gets_specific_hint(self):
        log = compile_source(
            "module m(output reg [3:0] q);\ninteger i;\n"
            "initial for (i = 0; i < 4; i++) q[i] = 0;\nendmodule",
            flavor="quartus",
        ).log
        assert "Error (10173)" in log
        assert "i = i + 1" in log

    def test_missing_semicolon_distinct(self):
        log = compile_source(
            "module m(input a, output y);\nassign y = a\nendmodule",
            flavor="quartus",
        ).log
        assert "Error (10201)" in log
        assert 'missing ";"' in log

    def test_error_and_warning_counts_in_footer(self):
        log = compile_source(FIG5_CODE, flavor="quartus").log
        assert "1 error, 0 warnings" in log


class TestCompilerFacade:
    def test_ok_result_has_empty_log(self):
        result = compile_source("module m(input a, output y);\nassign y = a;\nendmodule")
        assert result.ok
        assert result.log == ""

    def test_simple_flavor_returns_fixed_instruction(self):
        result = compile_source(FIG5_CODE, flavor="simple")
        assert not result.ok
        assert result.log == SIMPLE_FEEDBACK

    def test_categories_property_ordered_and_deduped(self):
        result = compile_source(
            "module m(input a, output y);\n"
            "assign y = ghost1;\nassign y = ghost2;\nassign q = a\nendmodule"
        )
        cats = result.categories
        assert cats[0] is ErrorCategory.UNDECLARED_ID
        assert len([c for c in cats if c is ErrorCategory.UNDECLARED_ID]) == 1

    def test_compiler_class_flavor_validation(self):
        with pytest.raises(ValueError):
            Compiler(flavor="vcs")  # type: ignore[arg-type]

    def test_compiler_class_reusable(self):
        compiler = Compiler(flavor="quartus")
        assert compiler.compile("module m; endmodule").ok
        assert not compiler.compile("module m; assign x = 1; endmodule").ok

    def test_empty_input_not_ok(self):
        assert not compile_source("").ok

    def test_catalog_labels_nonempty(self):
        for info in CATALOG.values():
            assert info.label
