"""Tests for the runtime subsystem: the content-addressed compile cache
and the deterministic parallel experiment executor."""

import os

import pytest

from repro.core.fixer import RTLFixer
from repro.dataset import ProblemSet, build_syntax_dataset, verilogeval
from repro.eval import run_table2
from repro.eval.runner import run_fix_experiment
from repro.runtime import (
    CompileCache,
    ParallelRunner,
    cached_compile,
    compile_key,
    get_active_cache,
    no_compile_cache,
    resolve_jobs,
    set_active_cache,
    use_compile_cache,
)

GOOD = "module m(input a, output y);\nassign y = a;\nendmodule\n"
BROKEN = (
    "module top_module(input [7:0] in, output reg [7:0] out);\n"
    "always @(posedge clk) out <= in;\nendmodule\n"
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_syntax_dataset(
        verilogeval(), samples_per_problem=3, seed=0, target_size=12
    )


@pytest.fixture(scope="module")
def tiny_problems():
    full = verilogeval()
    picked = [full.get(pid) for pid in ("mux2to1", "counter4_reset", "popcount8")]
    return ProblemSet(name="tiny", problems=picked)


class TestCompileKey:
    def test_flavors_do_not_collide(self):
        """iverilog and quartus renderings of the same source must be
        distinct cache entries (the rendered feedback differs)."""
        assert compile_key(BROKEN, flavor="iverilog") != compile_key(
            BROKEN, flavor="quartus"
        )

    def test_name_and_includes_participate(self):
        assert compile_key(GOOD, name="a.v") != compile_key(GOOD, name="b.v")
        assert compile_key(GOOD) != compile_key(
            GOOD, include_files={"inc.vh": "`define X 1\n"}
        )

    def test_stable_for_identical_inputs(self):
        assert compile_key(GOOD) == compile_key(GOOD)


class TestCompileCache:
    def test_hit_miss_accounting(self):
        cache = CompileCache()
        first = cache.compile(GOOD)
        second = cache.compile(GOOD)
        assert first is second
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.compiles_avoided == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_flavor_distinguishes_results(self):
        cache = CompileCache()
        iv = cache.compile(BROKEN, flavor="iverilog")
        qu = cache.compile(BROKEN, flavor="quartus")
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert iv.flavor == "iverilog" and qu.flavor == "quartus"
        assert iv.log != qu.log
        assert "Error (10161)" in qu.log  # Quartus tag, iverilog has none
        # Each flavor now hits its own entry.
        assert cache.compile(BROKEN, flavor="quartus") is qu
        assert cache.compile(BROKEN, flavor="iverilog") is iv

    def test_lru_eviction(self):
        cache = CompileCache(maxsize=2)
        sources = [f"module m{i}; endmodule\n" for i in range(3)]
        for source in sources:
            cache.compile(source)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert not cache.contains(sources[0])  # oldest entry evicted
        cache.compile(sources[0])
        assert cache.misses_for(sources[0]) == 2  # recompiled after eviction

    def test_lru_recency_order(self):
        cache = CompileCache(maxsize=2)
        a, b, c = (f"module r{i}; endmodule\n" for i in range(3))
        cache.compile(a)
        cache.compile(b)
        cache.compile(a)  # refresh a; b is now the LRU entry
        cache.compile(c)
        assert cache.contains(a) and cache.contains(c) and not cache.contains(b)

    def test_clear_resets(self):
        cache = CompileCache()
        cache.compile(GOOD)
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0

    def test_rejects_silly_maxsize(self):
        with pytest.raises(ValueError):
            CompileCache(maxsize=0)


class TestActiveCachePlumbing:
    def test_default_cache_active(self):
        assert get_active_cache() is not None

    def test_use_compile_cache_scopes_and_restores(self):
        before = get_active_cache()
        with use_compile_cache() as cache:
            assert get_active_cache() is cache
            cached_compile(GOOD)
            assert cache.stats.misses == 1
        assert get_active_cache() is before

    def test_no_compile_cache_disables(self):
        with no_compile_cache():
            assert get_active_cache() is None
            result = cached_compile(GOOD)  # falls through, still compiles
            assert result.ok

    def test_set_active_cache_returns_previous(self):
        fresh = CompileCache()
        previous = set_active_cache(fresh)
        try:
            assert get_active_cache() is fresh
        finally:
            set_active_cache(previous)


class TestParallelRunner:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_auto_backend_selection(self):
        assert ParallelRunner(jobs=1).is_serial
        runner = ParallelRunner(jobs=4)
        assert runner.backend == "process" and not runner.is_serial

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=2, backend="fibers")

    def test_map_preserves_submission_order(self):
        for backend in ("serial", "thread", "process"):
            runner = ParallelRunner(jobs=3, backend=backend)
            assert runner.map(_square, range(20)) == [i * i for i in range(20)]

    def test_progress_reports_every_unit(self):
        events = []
        runner = ParallelRunner(jobs=2, backend="thread")
        runner.map(_square, range(7), progress=lambda d, t, item: events.append((d, t)))
        assert [d for d, _ in events] == list(range(1, 8))
        assert all(t == 7 for _, t in events)

    def test_worker_exceptions_propagate(self):
        runner = ParallelRunner(jobs=2, backend="thread")
        with pytest.raises(ZeroDivisionError):
            runner.map(_reciprocal, [1, 0, 2])


class TestDeterminism:
    """Parallel execution must be bit-identical to serial at equal seed."""

    def test_fix_experiment_parallel_matches_serial(self, tiny_dataset):
        fixer = RTLFixer()
        serial = run_fix_experiment(tiny_dataset, fixer, repeats=2)
        parallel = run_fix_experiment(
            tiny_dataset, fixer, repeats=2,
            runner=ParallelRunner(jobs=4, backend="process"),
        )
        assert parallel.fixed_counts == serial.fixed_counts
        assert parallel.iterations == serial.iterations
        assert parallel.rate == serial.rate
        assert parallel.label == serial.label and parallel.trials == serial.trials

    def test_fix_experiment_thread_backend_matches_serial(self, tiny_dataset):
        fixer = RTLFixer(prompting="oneshot", compiler="iverilog", use_rag=False)
        serial = run_fix_experiment(tiny_dataset, fixer, repeats=2)
        threaded = run_fix_experiment(
            tiny_dataset, fixer, repeats=2,
            runner=ParallelRunner(jobs=3, backend="thread"),
        )
        assert threaded.fixed_counts == serial.fixed_counts
        assert threaded.iterations == serial.iterations

    def test_table2_parallel_matches_serial(self, tiny_problems):
        serial = run_table2(tiny_problems, n_samples=4, sim_samples=8)
        parallel = run_table2(tiny_problems, n_samples=4, sim_samples=8, jobs=4)
        for benchmark in serial.outcomes:
            assert [vars(o) for o in parallel.outcomes[benchmark]] == [
                vars(o) for o in serial.outcomes[benchmark]
            ]

    def test_jobs_zero_means_all_cpus(self, tiny_dataset):
        fixer = RTLFixer()
        serial = run_fix_experiment(tiny_dataset, fixer, repeats=1)
        auto = run_fix_experiment(tiny_dataset, fixer, repeats=1, jobs=0)
        assert auto.fixed_counts == serial.fixed_counts


class TestPerTrialProgress:
    def test_serial_progress_is_per_trial(self, tiny_dataset):
        events = []
        fixer = RTLFixer()
        run_fix_experiment(
            tiny_dataset, fixer, repeats=2,
            progress=lambda done, total: events.append((done, total)),
        )
        total = len(tiny_dataset) * 2
        assert len(events) == total
        assert events == [(i + 1, total) for i in range(total)]

    def test_parallel_progress_is_per_trial(self, tiny_dataset):
        events = []
        fixer = RTLFixer()
        run_fix_experiment(
            tiny_dataset, fixer, repeats=2,
            runner=ParallelRunner(jobs=4, backend="process"),
            progress=lambda done, total: events.append((done, total)),
        )
        total = len(tiny_dataset) * 2
        assert [d for d, _ in events] == list(range(1, total + 1))


class TestReferenceCompilationCaching:
    def test_table2_compiles_each_reference_once(self, tiny_problems):
        with use_compile_cache() as cache:
            run_table2(tiny_problems, n_samples=4, sim_samples=8)
            for problem in tiny_problems:
                assert cache.misses_for(problem.reference) == 1, problem.id

    def test_warm_table2_rerun_has_zero_redundant_compiles(self, tiny_problems):
        with use_compile_cache() as cache:
            run_table2(tiny_problems, n_samples=4, sim_samples=8)
            cold_misses = cache.stats.misses
            run_table2(tiny_problems, n_samples=4, sim_samples=8)
            assert cache.stats.misses == cold_misses
            assert cache.stats.hits > cold_misses


def _square(x: int) -> int:
    """Square (top-level so process-pool workers can pickle it)."""
    return x * x


def _reciprocal(x: int) -> float:
    """1/x, used to exercise worker-exception propagation."""
    return 1 / x
