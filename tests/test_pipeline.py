"""Tests for the staged compile pipeline, incremental sessions and the
unified DiagnosticEngine (bit-identical warm/cold equivalence, per-stage
artifact reuse, escalation provenance, wrapper interaction)."""

import pickle

import pytest

from repro.diagnostics import Compiler, ErrorCategory, compile_source
from repro.diagnostics.engine import DiagnosticEngine
from repro.runtime import (
    ChaosCompiler,
    FaultInjector,
    FaultSpec,
    RetryingCompiler,
    RetryPolicy,
    no_compile_cache,
)
from repro.verilog import ResourceLimits
from repro.verilog.pipeline import (
    Artifact,
    CompileSession,
    StageCache,
    get_active_stage_cache,
    no_stage_cache,
    result_fingerprint,
    set_active_stage_cache,
    use_stage_cache,
)

MODULE_A = (
    "module a(input clk, input [3:0] x, output reg [3:0] y);\n"
    "  always @(posedge clk) y <= x + 1;\n"
    "endmodule\n"
)
MODULE_B = (
    "module b(input [3:0] p, output [3:0] q);\n"
    "  assign q = p ^ 4'b1010;\n"
    "endmodule\n"
)
MODULE_B_EDITED = (
    "module b(input [3:0] p, output [3:0] q);\n"
    "  assign q = p & 4'b0101;\n"
    "endmodule\n"
)
BROKEN = "module bad(input a;\n  assign = ;\nendmodule\n"


def assert_warm_equals_cold(session, code, flavor="iverilog", **kw):
    """The tentpole contract: a warm session compile fingerprints
    identically to a cold compile_source run of the same input."""
    warm = session.compile(code, flavor=flavor, **kw)
    cold = compile_source(code, name=session.name, flavor=flavor,
                          limits=session.limits, **kw)
    assert result_fingerprint(warm) == result_fingerprint(cold)
    return warm


class TestSessionEquivalence:
    def test_clean_source_all_flavors(self):
        with use_stage_cache():
            session = CompileSession()
            for flavor in ("simple", "iverilog", "quartus"):
                result = assert_warm_equals_cold(
                    session, MODULE_A + MODULE_B, flavor=flavor
                )
                assert result.ok

    def test_broken_source_all_flavors(self):
        with use_stage_cache():
            session = CompileSession()
            for flavor in ("simple", "iverilog", "quartus"):
                result = assert_warm_equals_cold(session, BROKEN, flavor=flavor)
                assert not result.ok

    def test_edit_sequence_stays_identical(self):
        with use_stage_cache():
            session = CompileSession()
            for code in (
                MODULE_A + MODULE_B,
                MODULE_A + MODULE_B_EDITED,
                MODULE_A + BROKEN,
                "",
                MODULE_A + MODULE_A,  # duplicate module
            ):
                assert_warm_equals_cold(session, code)

    def test_include_files(self):
        with use_stage_cache():
            session = CompileSession()
            code = '`include "lib.vh"\n' + MODULE_A
            includes = {"lib.vh": "`define WIDTH 4\n"}
            assert_warm_equals_cold(session, code, include_files=includes)
            # Changing only the include content must miss the cache and
            # still match cold.
            assert_warm_equals_cold(
                session, code, include_files={"lib.vh": "`define WIDTH 8\n"}
            )

    def test_session_without_any_cache(self):
        with no_stage_cache():
            session = CompileSession()
            assert_warm_equals_cold(session, MODULE_A + MODULE_B)
            assert_warm_equals_cold(session, MODULE_A + MODULE_B_EDITED)


class TestIncrementalReuse:
    def test_editing_module_b_reuses_module_a_segment(self):
        cache = StageCache()
        with use_stage_cache(cache):
            session = CompileSession()
            session.compile(MODULE_A + MODULE_B)
            before = cache.stats.segments_reused
            assert_warm_equals_cold(session, MODULE_A + MODULE_B_EDITED)
            # Module A's parse segment came back from the cache even
            # though the overall text (and so every whole-stage key)
            # changed.
            assert cache.stats.segments_reused > before

    def test_late_edit_resumes_the_lexer(self):
        cache = StageCache()
        with use_stage_cache(cache):
            session = CompileSession()
            session.compile(MODULE_A + MODULE_B)
            assert cache.stats.incremental_lexes == 0
            assert_warm_equals_cold(session, MODULE_A + MODULE_B_EDITED)
            assert cache.stats.incremental_lexes == 1
            # At least module A's tokens were kept verbatim.
            assert cache.stats.tokens_reused > 10

    def test_flavor_switch_hits_every_analysis_stage(self):
        cache = StageCache()
        with use_stage_cache(cache):
            session = CompileSession()
            session.compile(MODULE_A + BROKEN, flavor="iverilog")
            hits_before = dict(cache.stats.hits)
            result = assert_warm_equals_cold(
                session, MODULE_A + BROKEN, flavor="quartus"
            )
            assert not result.ok
            for stage in ("preprocess", "lex", "parse"):
                assert cache.stats.hits.get(stage, 0) > hits_before.get(stage, 0)
                # No stage re-computed: pure re-render of cached artifacts.
                assert cache.stats.misses.get(stage, 0) == 1

    def test_identical_recompile_is_all_hits(self):
        cache = StageCache()
        with use_stage_cache(cache):
            session = CompileSession()
            session.compile(MODULE_A + MODULE_B)
            misses = dict(cache.stats.misses)
            session.compile(MODULE_A + MODULE_B)
            assert dict(cache.stats.misses) == misses

    def test_reset_disables_incremental_lex(self):
        cache = StageCache()
        with use_stage_cache(cache):
            session = CompileSession()
            session.compile(MODULE_A + MODULE_B)
            session.reset()
            cache.clear()  # force a lex miss too
            assert_warm_equals_cold(session, MODULE_A + MODULE_B_EDITED)
            assert cache.stats.incremental_lexes == 0

    def test_sessions_share_segments_through_the_cache(self):
        cache = StageCache()
        with use_stage_cache(cache):
            CompileSession().compile(MODULE_A + MODULE_B)
            before = cache.stats.segments_reused
            fresh = CompileSession()
            assert_warm_equals_cold(fresh, MODULE_A + MODULE_B_EDITED)
            assert cache.stats.segments_reused > before


class TestStageCache:
    def test_lru_eviction(self):
        cache = StageCache(maxsize=2)
        for i in range(3):
            cache.put(Artifact("lex", f"k{i}", (i,)))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("lex", "k0") is None  # oldest evicted
        assert cache.get("lex", "k2").payload == (2,)

    def test_get_counts_hits_and_misses(self):
        cache = StageCache()
        cache.put(Artifact("parse", "k", (None,)))
        cache.get("parse", "k")
        cache.get("parse", "absent")
        assert cache.stats.hits == {"parse": 1}
        assert cache.stats.misses == {"parse": 1}
        assert cache.stats.hit_rate == 0.5

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            StageCache(maxsize=0)

    def test_scoping_restores_previous_cache(self):
        outer = get_active_stage_cache()
        mine = StageCache()
        with use_stage_cache(mine):
            assert get_active_stage_cache() is mine
            with no_stage_cache():
                assert get_active_stage_cache() is None
            assert get_active_stage_cache() is mine
        assert get_active_stage_cache() is outer

    def test_set_active_returns_previous(self):
        previous = set_active_stage_cache(None)
        try:
            assert get_active_stage_cache() is None
        finally:
            set_active_stage_cache(previous)

    def test_clear_resets_stats(self):
        cache = StageCache()
        cache.put(Artifact("lex", "k", (1,)))
        cache.get("lex", "k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_as_dict_shape(self):
        cache = StageCache()
        with use_stage_cache(cache):
            CompileSession().compile(MODULE_A)
        snapshot = cache.stats.as_dict()
        for key in (
            "compiles", "stage_hits", "stage_misses", "stage_seconds",
            "evictions", "hit_rate", "incremental_lexes", "tokens_reused",
            "segments_reused", "segments_parsed",
        ):
            assert key in snapshot
        assert snapshot["compiles"] == 1


class TestDiagnosticEngine:
    def test_provenance_and_ordering(self):
        engine = DiagnosticEngine()
        from repro.diagnostics import Diagnostic

        first = Diagnostic(ErrorCategory.SYNTAX_NEAR, None, {"near": "x"})
        second = Diagnostic(ErrorCategory.UNDECLARED_ID, None, {"name": "y"})
        engine.sink("lex").append(first)
        engine.emit("elaborate", second)
        assert [stage for stage, _ in engine.records] == ["lex", "elaborate"]
        assert engine.diagnostics() == [first, second]
        assert engine.stages_for(ErrorCategory.SYNTAX_NEAR) == ["lex"]
        assert not engine.empty

    def test_deduplication_keeps_first_occurrence(self):
        engine = DiagnosticEngine()
        from repro.diagnostics import Diagnostic

        diag = Diagnostic(ErrorCategory.SYNTAX_NEAR, None, {"near": "x"})
        engine.emit("lex", diag)
        engine.emit("parse", Diagnostic(ErrorCategory.SYNTAX_NEAR, None,
                                        {"near": "x"}))
        assert engine.diagnostics() == [diag]
        # Provenance still shows both reporters.
        assert engine.stages_for(ErrorCategory.SYNTAX_NEAR) == ["lex", "parse"]

    def test_stage_timings_accumulate(self):
        engine = DiagnosticEngine()
        with engine.stage("parse"):
            pass
        with engine.stage("parse"):
            pass
        assert engine.timings["parse"] >= 0.0
        assert engine.current_stage == "driver"

    def test_failed_stage_survives_unwind(self):
        engine = DiagnosticEngine()
        with pytest.raises(RuntimeError):
            with engine.stage("elaborate"):
                raise RuntimeError("boom")
        assert engine.failed_stage == "elaborate"
        engine.internal_error(RuntimeError("boom"), None)
        assert engine.crashed
        assert engine.stages_for(ErrorCategory.INTERNAL) == ["elaborate"]


class TestEscalation:
    def test_limit_escalation_matches_cold(self):
        limits = ResourceLimits(max_tokens=8)
        with use_stage_cache():
            session = CompileSession(limits=limits)
            result = assert_warm_equals_cold(session, MODULE_A + MODULE_B)
            assert ErrorCategory.RESOURCE_LIMIT in result.categories
            assert not result.crashed

    def test_elab_limit_escalation_matches_cold(self):
        limits = ResourceLimits(max_elab_statements=1)
        many_statements = (
            "module m(input clk, input [3:0] x, output reg [3:0] y);\n"
            "  always @(posedge clk) begin\n"
            "    y <= x;\n    y <= x + 1;\n    y <= x + 2;\n"
            "  end\nendmodule\n"
        )
        with use_stage_cache():
            session = CompileSession(limits=limits)
            result = assert_warm_equals_cold(session, many_statements)
            assert ErrorCategory.RESOURCE_LIMIT in result.categories

    def test_source_bytes_limit_matches_cold(self):
        limits = ResourceLimits(max_source_bytes=16)
        with use_stage_cache():
            session = CompileSession(limits=limits)
            result = assert_warm_equals_cold(session, MODULE_A)
            assert ErrorCategory.RESOURCE_LIMIT in result.categories

    def test_crash_escalation_sets_crashed_and_drops_memo(self, monkeypatch):
        with use_stage_cache():
            session = CompileSession()
            session.compile(MODULE_A)
            assert session._memo is not None

            import repro.verilog.pipeline as pipeline_mod

            def explode(*args, **kwargs):
                raise RuntimeError("injected elaborator crash")

            monkeypatch.setattr(pipeline_mod, "elaborate", explode)
            result = session.compile(MODULE_A + MODULE_B)
            assert result.crashed
            assert not result.ok
            assert ErrorCategory.INTERNAL in result.categories
            assert "injected elaborator crash" in result.log
            # A failed pipeline leaves nothing trustworthy to resume from.
            assert session._memo is None
            monkeypatch.undo()
            # The session recovers cleanly on the next compile.
            assert session.compile(MODULE_A).ok


class TestCompilerFacade:
    def test_facade_routes_through_session(self):
        with no_compile_cache(), use_stage_cache() as cache:
            compiler = Compiler()
            compiler.compile(MODULE_A + MODULE_B)
            compiler.compile(MODULE_A + MODULE_B_EDITED)
            assert cache.stats.compiles == 2
            assert cache.stats.segments_reused > 0

    def test_facade_matches_compile_source(self):
        with no_compile_cache(), use_stage_cache():
            compiler = Compiler(flavor="quartus")
            for code in (MODULE_A, BROKEN, MODULE_A + MODULE_B):
                warm = compiler.compile(code)
                cold = compile_source(code, flavor="quartus")
                assert result_fingerprint(warm) == result_fingerprint(cold)

    def test_facade_pickles_without_session(self):
        compiler = Compiler()
        compiler.compile(MODULE_A)  # materialize the session (holds a lock)
        clone = pickle.loads(pickle.dumps(compiler))
        assert clone._session is None
        assert clone.compile(MODULE_A).ok

    def test_wrapped_by_retrying_compiler(self):
        with no_compile_cache(), use_stage_cache() as cache:
            compiler = RetryingCompiler(Compiler(), RetryPolicy(max_retries=2))
            assert compiler.compile(MODULE_A + MODULE_B).ok
            assert compiler.compile(MODULE_A + MODULE_B_EDITED).ok
            assert cache.stats.segments_reused > 0

    def test_wrapped_by_chaos_compiler(self):
        injector = FaultInjector(seed=3, compiler=FaultSpec(rate=1.0,
                                                            kind="garbage"))
        with no_compile_cache(), use_stage_cache():
            compiler = ChaosCompiler(Compiler(), injector)
            # A poisoned compile goes through the same session and stays
            # a well-formed (failing) result, never an exception.
            result = compiler.compile(MODULE_A)
            assert not result.ok
            assert not result.crashed


class TestReportIntegration:
    def test_pipeline_stats_excluded_from_json(self):
        from repro.eval.report import FullReport, ReportScale

        report = FullReport(scale=ReportScale())
        report.pipeline = {"compiles": 7}
        assert "pipeline" not in report.to_json()

    def test_pipeline_stats_rendered_in_markdown(self):
        from repro.eval.report import FullReport, ReportScale

        report = FullReport(scale=ReportScale())
        report.rendered["pipeline"] = "compiles: 7"
        assert "## pipeline" in report.to_markdown()


class TestFingerprint:
    def test_fingerprint_distinguishes_flavors(self):
        a = compile_source(BROKEN, flavor="iverilog")
        b = compile_source(BROKEN, flavor="quartus")
        assert result_fingerprint(a) != result_fingerprint(b)

    def test_fingerprint_covers_log_and_spans(self):
        result = compile_source(BROKEN)
        fp = result_fingerprint(result)
        assert result.log in fp
        assert any(
            isinstance(part, tuple) and part for part in fp[6]
        )  # at least one diagnostic with a span/args projection
