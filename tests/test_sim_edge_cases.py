"""Simulator edge cases not exercised by the main integration tests."""

import pytest

from repro.diagnostics import compile_source
from repro.errors import SimulationError
from repro.sim import Logic, Simulator, make_simulator


def build(code: str) -> Simulator:
    result = compile_source(code)
    assert result.ok, result.log
    return Simulator(result.elaborated)


def build_pair(code: str) -> tuple[Simulator, Simulator]:
    """(interp, compiled) simulators over the same elaborated design."""
    result = compile_source(code)
    assert result.ok, result.log
    return (
        make_simulator(result.elaborated, engine="interp"),
        make_simulator(result.elaborated, engine="compiled"),
    )


class TestLvalueForms:
    def test_indexed_select_write(self):
        sim = build(
            "module m(input [1:0] sel, input [3:0] d, output reg [15:0] q);\n"
            "always @(*) begin\n  q = 0;\n  q[sel * 4 +: 4] = d;\nend\nendmodule"
        )
        sim.step({"sel": 2, "d": 0xF})
        assert sim.get("q").bits == 0x0F00

    def test_range_select_write(self):
        sim = build(
            "module m(input [3:0] d, output reg [7:0] q);\n"
            "always @(*) begin\n  q = 8'h00;\n  q[7:4] = d;\nend\nendmodule"
        )
        sim.step({"d": 0xA})
        assert sim.get("q").bits == 0xA0

    def test_concat_lvalue_split(self):
        sim = build(
            "module m(input [7:0] d, output reg [3:0] hi, output reg [3:0] lo);\n"
            "always @(*) {hi, lo} = d;\nendmodule"
        )
        sim.step({"d": 0xAB})
        assert sim.get("hi").bits == 0xA
        assert sim.get("lo").bits == 0xB

    def test_memory_write_with_x_address_is_lost(self):
        sim = build(
            "module m(input clk, input [7:0] d, output [7:0] q);\n"
            "reg [1:0] addr;\n"  # never driven: stays X
            "reg [7:0] mem [0:3];\n"
            "always @(posedge clk) mem[addr] <= d;\n"
            "assign q = mem[0];\nendmodule"
        )
        sim.step({"clk": 0, "d": 0x55})
        sim.step({"clk": 1})
        assert sim.get("q").has_x  # nothing written anywhere


class TestControlFlow:
    def test_while_loop(self):
        sim = build(
            "module m(input [3:0] n, output reg [7:0] total);\n"
            "reg [3:0] i;\n"
            "always @(*) begin\n"
            "  total = 0;\n  i = 0;\n"
            "  while (i < n) begin\n    total = total + i;\n    i = i + 1;\n  end\n"
            "end\nendmodule"
        )
        sim.step({"n": 5})
        assert sim.get("total").bits == 0 + 1 + 2 + 3 + 4

    def test_repeat_loop(self):
        sim = build(
            "module m(output reg [7:0] q);\n"
            "initial begin\n  q = 1;\n  repeat (3) q = q * 2;\nend\nendmodule"
        )
        assert sim.get("q").bits == 8

    def test_casez_wildcards(self):
        sim = build(
            "module m(input [3:0] in, output reg [1:0] y);\n"
            "always @(*) casez (in)\n"
            "  4'b1zzz: y = 2'd3;\n"
            "  4'b01zz: y = 2'd2;\n"
            "  4'b001z: y = 2'd1;\n"
            "  default: y = 2'd0;\n"
            "endcase\nendmodule"
        )
        for value, expected in [(0b1000, 3), (0b0101, 2), (0b0010, 1), (0b0001, 0)]:
            sim.step({"in": value})
            assert sim.get("y").bits == expected, bin(value)

    def test_nested_function_calls(self):
        sim = build(
            "module m(input [7:0] a, output [7:0] y);\n"
            "function [7:0] double(input [7:0] v);\n  double = v << 1;\nendfunction\n"
            "function [7:0] quad(input [7:0] v);\n  quad = double(double(v));\nendfunction\n"
            "assign y = quad(a);\nendmodule"
        )
        sim.step({"a": 3})
        assert sim.get("y").bits == 12

    def test_for_with_negative_step(self):
        sim = build(
            "module m(input [7:0] in, output reg [7:0] out);\n"
            "integer i;\n"
            "always @(*) begin\n"
            "  out = 0;\n"
            "  for (i = 7; i >= 0; i = i - 1) out[7 - i] = in[i];\n"
            "end\nendmodule"
        )
        sim.step({"in": 0b1100_0000})
        assert sim.get("out").bits == 0b0000_0011


class TestParameters:
    def test_parameterized_width(self):
        sim = build(
            "module m #(parameter W = 12)(input [W-1:0] a, output [W-1:0] y);\n"
            "assign y = ~a;\nendmodule"
        )
        sim.step({"a": 0})
        assert sim.get("y").bits == 0xFFF

    def test_localparam_constant(self):
        sim = build(
            "module m(output [7:0] y);\nlocalparam MAGIC = 8'h5A;\n"
            "assign y = MAGIC;\nendmodule"
        )
        assert sim.get("y").bits == 0x5A

    def test_clog2_parameter(self):
        sim = build(
            "module m(output [7:0] y);\nlocalparam AW = $clog2(64);\n"
            "assign y = AW;\nendmodule"
        )
        assert sim.get("y").bits == 6


class TestMisc:
    def test_descending_unpacked_range(self):
        sim = build(
            "module m(input [1:0] a, output y);\nwire [0:3] v;\n"
            "assign v = 4'b1000;\nassign y = v[0];\nendmodule"
        )
        sim.step({"a": 0})
        assert sim.get("y").bits == 1

    def test_replicate_in_expression(self):
        sim = build(
            "module m(input b, output [7:0] y);\nassign y = {8{b}};\nendmodule"
        )
        sim.step({"b": 1})
        assert sim.get("y").bits == 0xFF

    def test_step_without_inputs(self):
        sim = build("module m(input a, output y);\nassign y = a;\nendmodule")
        sim.step()  # no stimulus: stays X, no crash
        assert sim.get("y").has_x

    def test_multiple_independent_always_blocks(self):
        sim = build(
            "module m(input clk, output reg [3:0] a, output reg [3:0] b);\n"
            "initial begin a = 0; b = 8; end\n"
            "always @(posedge clk) a <= a + 1;\n"
            "always @(posedge clk) b <= b - 1;\nendmodule"
        )
        sim.step({"clk": 0})
        sim.step({"clk": 1})
        assert (sim.get("a").bits, sim.get("b").bits) == (1, 7)

    def test_top_selection_by_name(self):
        code = (
            "module helper(input x, output y);\nassign y = ~x;\nendmodule\n"
            "module main_mod(input x, output y);\nassign y = x;\nendmodule"
        )
        elab = compile_source(code).elaborated
        sim = Simulator(elab, top="main_mod")
        sim.step({"x": 1})
        assert sim.get("y").bits == 1

    def test_unknown_top_falls_back(self):
        elab = compile_source("module only_one(input a, output y);\nassign y = a;\nendmodule").elaborated
        sim = Simulator(elab, top="missing")
        assert sim.top.name == "only_one"


class TestTwoStateDemotion:
    """X/Z arriving mid-run must demote the compiled fast path for that
    invocation only -- traces stay bit-identical to the interpreter and
    the fast path recovers once the values are known again."""

    def _lockstep(self, interp, compiled, stimuli):
        for stimulus in stimuli:
            interp.step(dict(stimulus))
            compiled.step(dict(stimulus))
            assert dict(compiled.state.values) == dict(interp.state.values)

    def test_x_on_reset_recovers_fast_path(self):
        # Registers are all-X until the reset pulse: the seq process and
        # the assign reading q bail (demote) during the X window, then
        # speculate successfully for the rest of the run.
        code = (
            "module m(input clk, input reset, input [3:0] d,\n"
            "         output reg [3:0] q, output [3:0] y);\n"
            "assign y = q ^ d;\n"
            "always @(posedge clk)\n"
            "  if (reset) q <= 0; else q <= q + d;\n"
            "endmodule"
        )
        interp, compiled = build_pair(code)
        stimuli = []
        for cycle in range(12):
            stimuli.append({"clk": 0, "reset": int(1 <= cycle <= 2),
                            "d": (cycle * 3) % 16})
            stimuli.append({"clk": 1})
        self._lockstep(interp, compiled, stimuli)
        assert compiled.demotions > 0  # the X window really bailed
        assert compiled.fast_runs > compiled.demotions  # ...and recovered
        assert not compiled.get("q").has_x

    def test_x_on_undriven_port_mid_run(self):
        # A data port going all-X mid-run (undriven for one cycle)
        # demotes exactly that window, not the rest of the run.
        code = (
            "module m(input [7:0] a, input [7:0] b, output [7:0] y);\n"
            "assign y = a + b;\nendmodule"
        )
        interp, compiled = build_pair(code)
        stimuli = [
            {"a": 3, "b": 4},
            {"a": Logic.all_x(8), "b": 5},
            {"a": 9, "b": 6},
        ]
        self._lockstep(interp, compiled, stimuli)
        before = compiled.demotions
        assert before > 0
        assert compiled.get("y").bits == 15
        compiled.step({"a": 1, "b": 1})
        interp.step({"a": 1, "b": 1})
        assert dict(compiled.state.values) == dict(interp.state.values)
        assert compiled.demotions == before  # fully recovered

    def test_x_through_case_subject(self):
        # An X case subject must fall back to the interpreter's 4-state
        # matching (no label matches, default wins there).
        code = (
            "module m(input [1:0] sel, input [3:0] d, output reg [3:0] q);\n"
            "always @(*) begin\n"
            "  case (sel)\n"
            "    2'd0: q = d;\n"
            "    2'd1: q = ~d;\n"
            "    default: q = 4'h5;\n"
            "  endcase\n"
            "end\nendmodule"
        )
        interp, compiled = build_pair(code)
        stimuli = [
            {"sel": 0, "d": 7},
            {"sel": Logic.all_x(2), "d": 7},
            {"sel": 1, "d": 7},
        ]
        self._lockstep(interp, compiled, stimuli)
        assert compiled.demotions > 0
        assert compiled.get("q").bits == 0x8  # ~7 on the recovered path
