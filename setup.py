# Kept alongside pyproject.toml so `python setup.py develop` works on
# fully offline machines that lack the `wheel` package (PEP 660 editable
# installs need it).
from setuptools import setup

setup()
