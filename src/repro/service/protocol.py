"""The repair service's HTTP/JSON + SSE wire protocol.

One module owns every byte that crosses the wire, so the server, the
client, the load generator and the tests agree by construction:

* :class:`RepairRequest` -- the ``POST /repair`` body, parsed and
  validated into a typed object, with :meth:`RepairRequest.to_config`
  mapping the request's knobs onto an
  :class:`~repro.core.config.RTLFixerConfig`;
* response builders (:func:`fixed_response`, :func:`shed_response`,
  :func:`deadline_response`, :func:`error_response`) -- every terminal
  answer is a JSON object with a machine-readable ``status``; overload
  rejections are **typed** (``status="overloaded"`` plus a
  :class:`ShedReason`), never bare 500s, so clients can distinguish
  "back off and retry" from "your request is broken";
* :func:`result_digest` -- the canonical content digest of a repair
  result, used to prove that a drained-and-resumed server answers
  byte-identically to an uninterrupted one;
* :func:`sse_event` -- Server-Sent-Events framing for streaming
  per-ReAct-iteration progress.

HTTP status mapping: 200 terminal results, 429 ``overloaded`` (with
``Retry-After``), 504 ``deadline_exceeded``, 502 ``backend_error``,
500 ``error`` (unexpected crash -- counted, never silent), 400 bad
requests, 404 unknown paths.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional

from ..core.config import RTLFixerConfig

#: Protocol version, echoed in /healthz (bump on breaking changes).
PROTOCOL_VERSION = 1

#: Maximum accepted request body (bytes) -- oversized sources are a
#: resource-exhaustion vector, shed them at the front door.
MAX_BODY_BYTES = 1 << 20


class ShedReason:
    """Machine-readable load-shedding reasons (the ``reason`` field of
    an ``overloaded`` response).  Constants, not an enum, so they JSON-
    serialize as plain strings."""

    #: This tenant's bounded queue is full.
    TENANT_QUEUE_FULL = "tenant_queue_full"
    #: The server-wide queued-job bound is reached.
    SERVER_QUEUE_FULL = "server_queue_full"
    #: The tenant's token-bucket admission quota is exhausted.
    TENANT_QUOTA = "tenant_quota"
    #: The circuit breaker is open: the repair backend is down, so new
    #: work is shed early instead of queued into a dead backend.
    BREAKER_OPEN = "breaker_open"
    #: The server is draining (SIGTERM): no new admissions.
    DRAINING = "draining"

    ALL = (
        TENANT_QUEUE_FULL,
        SERVER_QUEUE_FULL,
        TENANT_QUOTA,
        BREAKER_OPEN,
        DRAINING,
    )


#: Request fields accepted by ``POST /repair`` (anything else is a 400:
#: typos like ``"tennant"`` must fail loudly, not silently default).
_REQUEST_FIELDS = frozenset(
    {
        "tenant",
        "code",
        "seed",
        "deadline_s",
        "stream",
        "prompting",
        "compiler",
        "use_rag",
        "tier",
        "max_iterations",
    }
)


@dataclass(frozen=True)
class RepairRequest:
    """One parsed, validated repair job submission."""

    tenant: str
    code: str
    seed: int = 0
    #: Client-requested deadline in seconds (None = use the server's
    #: default deadline).
    deadline_s: Optional[float] = None
    #: Stream per-iteration SSE progress events instead of a single
    #: JSON response.
    stream: bool = False
    prompting: str = "react"
    compiler: str = "quartus"
    use_rag: bool = True
    tier: str = "gpt-3.5-sim"
    max_iterations: int = 10

    @staticmethod
    def from_json(body: bytes) -> "RepairRequest":
        """Parse and validate a request body; raises ValueError with a
        client-presentable message on any malformed input."""
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        unknown = set(data) - _REQUEST_FIELDS
        if unknown:
            raise ValueError(f"unknown request field(s): {sorted(unknown)}")
        code = data.get("code")
        if not isinstance(code, str) or not code.strip():
            raise ValueError("'code' must be a non-empty string")
        tenant = data.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ValueError("'tenant' must be a non-empty string")
        deadline_s = data.get("deadline_s")
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
                raise ValueError("'deadline_s' must be a positive number")
            deadline_s = float(deadline_s)
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError("'seed' must be an integer")
        max_iterations = data.get("max_iterations", 10)
        if not isinstance(max_iterations, int) or max_iterations < 1:
            raise ValueError("'max_iterations' must be a positive integer")
        request = RepairRequest(
            tenant=tenant,
            code=code,
            seed=seed,
            deadline_s=deadline_s,
            stream=bool(data.get("stream", False)),
            prompting=data.get("prompting", "react"),
            compiler=data.get("compiler", "quartus"),
            use_rag=bool(data.get("use_rag", True)),
            tier=data.get("tier", "gpt-3.5-sim"),
            max_iterations=max_iterations,
        )
        # Config validation (prompting/compiler/RAG combinations) is
        # RTLFixerConfig's job -- run it now so a bad combination is a
        # 400 at admission, not a 500 in a worker.
        try:
            request.to_config()
        except ValueError as exc:
            raise ValueError(str(exc))
        return request

    def to_config(self, **overrides: Any) -> RTLFixerConfig:
        """The fixer configuration this request asks for.

        The request's deadline is deliberately **not** part of the
        config: the server scopes it ambiently per job, so journal keys
        (which hash the config digest) stay deadline-free and a
        resubmitted job replays regardless of its new budget.
        ``overrides`` lets the server apply its own execution knobs
        (retry budget, pool spec) without the client controlling them.
        """
        use_rag = self.use_rag and self.compiler != "simple"
        return RTLFixerConfig(
            prompting=self.prompting,
            compiler=self.compiler,
            use_rag=use_rag,
            tier=self.tier,
            seed=self.seed,
            max_iterations=self.max_iterations,
            **overrides,
        )


def result_digest(result: dict) -> str:
    """Canonical digest of a repair result's *content* fields.

    Covers exactly the fields that must be reproducible across a drain
    and resume (success, iterations, final code); excludes execution
    telemetry (queue wait, execution time, replay provenance) which
    legitimately differs between a fresh run and a journal replay.
    """
    content = {
        "status": result.get("status"),
        "iterations": result.get("iterations"),
        "final_code": result.get("final_code"),
    }
    canonical = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def fixed_response(
    job_id: str,
    tenant: str,
    success: bool,
    iterations: int,
    final_code: str,
    replayed: bool = False,
    queue_wait_s: float = 0.0,
    exec_s: float = 0.0,
) -> dict:
    """A terminal repair result (``status`` fixed / not_fixed)."""
    result = {
        "status": "fixed" if success else "not_fixed",
        "job_id": job_id,
        "tenant": tenant,
        "iterations": iterations,
        "final_code": final_code,
        "replayed": replayed,
        "queue_wait_s": round(queue_wait_s, 6),
        "exec_s": round(exec_s, 6),
    }
    result["result_digest"] = result_digest(result)
    return result


def shed_response(tenant: str, reason: str, retry_after_s: float = 1.0) -> dict:
    """A typed overload rejection (HTTP 429)."""
    return {
        "status": "overloaded",
        "tenant": tenant,
        "reason": reason,
        "retry_after_s": retry_after_s,
    }


def deadline_response(job_id: str, tenant: str, stage: str) -> dict:
    """A typed deadline expiry (HTTP 504); ``stage`` says where the
    budget ran out (``queued``, ``react-iteration``, ...)."""
    return {
        "status": "deadline_exceeded",
        "job_id": job_id,
        "tenant": tenant,
        "stage": stage,
    }


def error_response(
    job_id: str, tenant: str, error_type: str, message: str, crashed: bool = False
) -> dict:
    """A typed failure: ``backend_error`` for exhausted retries against
    a broken backend (HTTP 502), ``error`` with ``crashed=True`` for
    anything unexpected (HTTP 500) -- crashes are counted, never
    silently swallowed."""
    return {
        "status": "error" if crashed else "backend_error",
        "job_id": job_id,
        "tenant": tenant,
        "error_type": error_type,
        "message": message,
        "crashed": crashed,
    }


def http_status(result: dict) -> int:
    """The HTTP status code a protocol result dict travels under."""
    return {
        "fixed": 200,
        "not_fixed": 200,
        "overloaded": 429,
        "deadline_exceeded": 504,
        "backend_error": 502,
        "error": 500,
    }.get(result.get("status", ""), 200)


def sse_event(event: str, data: dict) -> bytes:
    """One Server-Sent-Events frame (``event:`` + ``data:`` lines)."""
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {payload}\n\n".encode()


def turn_event(turn) -> dict:
    """The SSE payload for one ReAct transcript turn (progress event)."""
    return {
        "index": turn.index,
        "thought": turn.thought,
        "action": turn.action,
        "observation_head": turn.observation.split("\n")[0][:200],
    }
