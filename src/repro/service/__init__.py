"""Repair-as-a-service: the overload-safe async front-end.

The batch layers (:mod:`repro.eval`) reproduce the paper's tables; this
package serves the same repair capability interactively, the way MEIC /
VeriPilot frame LLM-driven RTL repair.  Its defining property is that
it **degrades gracefully instead of falling over**:

* :mod:`repro.service.deadline` -- per-request :class:`Deadline`
  budgets propagated ambiently into the ReAct loop and the retry layer;
* :mod:`repro.service.protocol` -- the HTTP/JSON + SSE wire protocol
  (typed ``overloaded`` / ``deadline_exceeded`` responses included);
* :mod:`repro.service.scheduler` -- admission control: bounded
  per-tenant queues, explicit load shedding, weighted fair scheduling,
  per-tenant token-bucket quotas, circuit-breaker integration;
* :mod:`repro.service.server` -- the asyncio server (``rtlfixer
  serve``) with streaming per-iteration progress, durable-run
  journaling, and two-stage graceful drain on SIGTERM;
* :mod:`repro.service.client` -- the minimal asyncio client used by
  the load generator, the CI smoke stage and the tests.

Only the deadline primitives are imported eagerly: they are the one
piece the *runtime* layers depend on (``repro.runtime.retry`` checks
the ambient deadline), so this module must stay import-light to avoid
cycles.  Everything else loads on first attribute access.
"""

from __future__ import annotations

from .deadline import Deadline, current_deadline, use_deadline

#: Lazily-resolved public names -> defining submodule.  The server and
#: scheduler import the runtime/core layers, which themselves import
#: ``repro.service.deadline``; deferring them keeps this package
#: importable from anywhere in the stack.
_LAZY = {
    "RepairServer": "server",
    "ServerConfig": "server",
    "AdmissionController": "scheduler",
    "SchedulerConfig": "scheduler",
    "ServiceStats": "scheduler",
    "get_active_service_stats": "scheduler",
    "use_service_stats": "scheduler",
    "RepairRequest": "protocol",
    "ShedReason": "protocol",
    "ServiceClient": "client",
}

__all__ = [
    "Deadline",
    "current_deadline",
    "use_deadline",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    """Resolve the lazily-exported server/scheduler/protocol names."""
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
