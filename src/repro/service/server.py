"""The asyncio repair server (``rtlfixer serve``).

A small, dependency-free HTTP/1.1 front-end over
:class:`asyncio.start_server` that turns the RTLFixer core into a
long-running, overload-safe service:

* ``POST /repair`` -- submit one repair job (JSON body, see
  :class:`~.protocol.RepairRequest`).  With ``"stream": true`` the
  response is a Server-Sent-Events stream with one ``iteration`` event
  per ReAct turn, then a ``result`` event;
* ``GET /healthz`` -- liveness + drain state;
* ``GET /stats`` -- the full service ledger (admission counters,
  per-tenant quotas, breaker state).

Degradation story, end to end: requests pass the
:class:`~.scheduler.AdmissionController` (bounded queues, per-tenant
quotas, weighted fairness, breaker gate) and are either queued or shed
with a typed 429.  Admitted jobs execute on a bounded worker pool; each
runs under its request :class:`~.deadline.Deadline`, scoped ambiently
*inside the worker thread* (contextvars do not cross
``run_in_executor``, so the deadline travels explicitly with the job
and is re-established in the thread).  A backend outage exhausts
retries, trips the :class:`~repro.runtime.breaker.CircuitBreaker`, and
subsequent submissions shed fast (``breaker_open``) until a half-open
probe heals it -- the probe is claimed atomically at admission and
settled by exactly one ``record_*`` call here, on every path a job can
take (success, backend error, crash, even expiry while queued).

Durability: with a run directory, every terminal ``fixed``/``not_fixed``
result is journaled under a content-addressed key (code digest + config
digest + seed -- deliberately deadline-free) the moment it completes.
A SIGTERM drains in two stages (stop admitting, finish and journal the
backlog, exit 0); a killed-and-restarted server replays resubmitted
jobs from the journal with digest-identical results.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Optional

from ..errors import (
    DeadlineExceededError,
    RetryExhaustedError,
    SimulationError,
    TransientError,
)
from ..runtime.breaker import CircuitBreaker
from ..runtime.checkpoint import RunState, config_digest, content_digest, unit_key
from ..runtime.shutdown import GracefulShutdown
from .deadline import Deadline, use_deadline
from .protocol import (
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    RepairRequest,
    deadline_response,
    error_response,
    fixed_response,
    http_status,
    sse_event,
    shed_response,
    turn_event,
)
from .scheduler import AdmissionController, Job, SchedulerConfig, ServiceStats


@dataclass(frozen=True)
class ServerConfig:
    """Everything one ``rtlfixer serve`` instance needs."""

    host: str = "127.0.0.1"
    port: int = 8357
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Consecutive backend failures that trip the breaker (0 disables).
    breaker_threshold: int = 5
    #: Every Nth breaker denial converts into a half-open heal probe.
    probe_interval: int = 3
    #: Durable-run directory for journaled results (None = stateless).
    run_dir: Optional[str] = None
    #: Continue an existing run directory (replay its journal).
    resume: bool = False
    #: Retry budget applied to every job's fixer.
    max_retries: int = 2
    #: Per-model-call timeout applied to every job's fixer.
    step_timeout: Optional[float] = None
    #: LLM backend pool spec forwarded to every job's fixer.
    llm_pool: Optional[str] = None
    #: Artificial per-job work (seconds) -- makes overload and drain
    #: drills deterministic when real repairs are too fast to queue.
    work_delay: float = 0.0
    #: Deterministic backend-outage window ``(first_job, job_count)``:
    #: dispatched jobs in the window fail as exhausted retries, which
    #: trips the breaker; the chaos drill asserts the service sheds and
    #: then heals.  None disables.
    chaos_outage: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0 (0 disables)")
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if self.work_delay < 0:
            raise ValueError("work_delay must be >= 0")
        if self.chaos_outage is not None:
            start, count = self.chaos_outage
            if start < 0 or count < 1:
                raise ValueError(
                    "chaos_outage must be (first_job >= 0, job_count >= 1)"
                )


class RepairServer:
    """The repair-as-a-service front-end.

    Construct, then either :meth:`run` (blocking; installs signal
    handlers, serves until drained) or ``await`` :meth:`serve` inside an
    existing event loop (tests drive drain via :meth:`request_drain`).
    """

    def __init__(self, config: ServerConfig):
        """Build the admission plane; no sockets are opened yet."""
        self.config = config
        self.stats = ServiceStats()
        self.breaker: Optional[CircuitBreaker] = None
        if config.breaker_threshold > 0:
            self.breaker = CircuitBreaker(
                failure_threshold=config.breaker_threshold,
                probe_interval=config.probe_interval,
            )
        self.admission = AdmissionController(
            config.scheduler, breaker=self.breaker, stats=self.stats
        )
        self.run_state: Optional[RunState] = None
        if config.run_dir is not None:
            self.run_state = RunState(config.run_dir)
            self.run_state.ensure_manifest(
                {"kind": "service", "protocol": PROTOCOL_VERSION},
                resume=config.resume,
            )
        # One guidance database shared by every job's fixer: it is
        # immutable after construction and by far the most expensive
        # part of building an RTLFixer.
        from ..rag.guidance_data import build_default_database

        self._database = build_default_database()
        #: The bound port (updates to the real one when port 0 is used).
        self.port = config.port
        self._job_counter = 0
        self._dispatched = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._workers: list[asyncio.Task] = []
        self._handlers: set[asyncio.Task] = set()
        self._drain_requested: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Serve until drained (SIGTERM/SIGINT); returns the exit code.

        First signal: two-stage drain -- stop admitting (new work sheds
        with reason ``draining``), finish and journal every admitted
        job, answer every open connection, exit 0.  Second signal:
        :class:`~repro.runtime.shutdown.GracefulShutdown` hard-exits.
        """
        return asyncio.run(self._run_with_signals())

    async def _run_with_signals(self) -> int:
        """Install the drain handlers around :meth:`serve`."""
        loop = asyncio.get_running_loop()
        shutdown = GracefulShutdown(
            on_request=lambda signum: loop.call_soon_threadsafe(
                self.request_drain
            )
        )
        with shutdown:
            await self.serve()
        return 0

    async def serve(self) -> None:
        """Open the listener, run workers, and block until drained."""
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.port = port
        self._workers = [
            asyncio.create_task(self._worker())
            for _ in range(self.config.scheduler.capacity)
        ]
        # The readiness line scripts and tests wait for before loading.
        print(f"SERVING http://{host}:{port}", flush=True)
        await self._drain_requested.wait()
        await self._drain()

    def request_drain(self) -> None:
        """Begin the graceful drain (idempotent; loop-thread only)."""
        self.admission.start_drain()
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def _drain(self) -> None:
        """Finish the backlog, answer open connections, release ports."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Workers hand out the whole backlog before observing the drain,
        # so every admitted job resolves its future (and is journaled).
        await asyncio.gather(*self._workers, return_exceptions=True)
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self.run_state is not None:
            self.run_state.close()
        print(f"# service: {self.summary_line()}", file=sys.stderr, flush=True)

    def summary_line(self) -> str:
        """The one-line drain summary (mirrors ``report.service``)."""
        snapshot = self.stats.as_dict()
        shed = ",".join(
            f"{reason}={count}" for reason, count in snapshot["shed"].items()
        ) or "none"
        return (
            f"admitted={snapshot['admitted']} completed={snapshot['completed']} "
            f"shed={snapshot['total_shed']}[{shed}] "
            f"deadline_expired={snapshot['deadline_expired']} "
            f"backend_errors={snapshot['backend_errors']} "
            f"crashed={snapshot['crashed']} replayed={snapshot['replayed']}"
        )

    # -- job execution -----------------------------------------------------

    def _job_key(self, request: RepairRequest, config) -> str:
        """Content-addressed journal key for one submission.

        Deliberately excludes the deadline (ambient, not config) so a
        resubmitted job replays from the journal regardless of the new
        request's budget.
        """
        return unit_key(
            "service",
            code=content_digest(request.code),
            config=config_digest(config),
            seed=request.seed,
        )

    def _execute(self, job: Job, in_outage: bool) -> dict:
        """Run one repair in a worker thread; returns the raw outcome.

        The job's deadline is scoped ambiently *here*, inside the
        thread, because contextvars set on the event loop do not
        propagate through ``run_in_executor``.
        """
        from ..core.fixer import RTLFixer

        scope = (
            use_deadline(job.deadline)
            if job.deadline is not None
            else _null_scope()
        )
        with scope:
            if self.config.work_delay > 0:
                self._simulated_work(job)
            if in_outage:
                raise RetryExhaustedError(
                    "chaos drill: repair backend unreachable "
                    "(retries exhausted)",
                    attempts=self.config.max_retries + 1,
                )
            fixer = RTLFixer(config=job.config, database=self._database)
            if job.events is not None and hasattr(fixer.agent, "on_turn"):
                loop, events = self._loop, job.events
                fixer.agent.on_turn = lambda turn: loop.call_soon_threadsafe(
                    events.put_nowait, ("iteration", turn_event(turn))
                )
            result = fixer.fix(job.request.code)
        return {
            "success": result.success,
            "iterations": result.iterations,
            "final_code": result.final_code,
        }

    def _simulated_work(self, job: Job) -> None:
        """Burn ``work_delay`` seconds in deadline-aware slices."""
        remaining = self.config.work_delay
        while remaining > 0:
            if job.deadline is not None:
                job.deadline.check(stage="simulated-work")
            step = min(remaining, 0.01)
            time.sleep(step)
            remaining -= step

    async def _worker(self) -> None:
        """One worker slot: claim jobs in fair order until drained."""
        loop = asyncio.get_running_loop()
        while True:
            job = await self.admission.next_job()
            if job is None:
                return
            tenant = job.request.tenant
            if job.deadline is not None and job.deadline.expired():
                # The budget died in the queue.  A probe job never
                # touched the backend, so settle it as an *uncounted*
                # transient: the breaker re-opens without tallying.
                if job.probe and self.breaker is not None:
                    self.breaker.record_failure(
                        TransientError("probe expired while queued"),
                        probe=True,
                    )
                self._finish(job, deadline_response(job.job_id, tenant, "queued"))
                continue
            in_outage = False
            if self.config.chaos_outage is not None:
                start, count = self.config.chaos_outage
                in_outage = start <= self._dispatched < start + count
            self._dispatched += 1
            started = time.monotonic()
            try:
                outcome = await loop.run_in_executor(
                    None, self._execute, job, in_outage
                )
            except DeadlineExceededError as exc:
                if job.probe and self.breaker is not None:
                    self.breaker.record_failure(
                        TransientError("probe deadline expired"), probe=True
                    )
                self._finish(
                    job, deadline_response(job.job_id, tenant, exc.stage)
                )
                continue
            except RetryExhaustedError as exc:
                if self.breaker is not None:
                    self.breaker.record_failure(exc, probe=job.probe)
                self._finish(
                    job,
                    error_response(
                        job.job_id, tenant, type(exc).__name__, str(exc)
                    ),
                )
                continue
            except SimulationError as exc:
                # Sandbox outcomes that escape the repair flow (budget
                # overflow, settle divergence) are *typed* errors, not
                # crashes: the client gets the classification, and the
                # breaker counts it like any other backend failure.
                if self.breaker is not None:
                    self.breaker.record_failure(exc, probe=job.probe)
                self._finish(
                    job,
                    error_response(
                        job.job_id, tenant, type(exc).__name__, str(exc)
                    ),
                )
                continue
            except Exception as exc:  # crash boundary: counted, never silent
                if self.breaker is not None:
                    self.breaker.record_failure(exc, probe=job.probe)
                self._finish(
                    job,
                    error_response(
                        job.job_id, tenant, type(exc).__name__, str(exc),
                        crashed=True,
                    ),
                )
                continue
            if self.breaker is not None:
                self.breaker.record_success(probe=job.probe)
            response = fixed_response(
                job.job_id,
                tenant,
                success=outcome["success"],
                iterations=outcome["iterations"],
                final_code=outcome["final_code"],
                queue_wait_s=job.dequeued_at - job.enqueued_at,
                exec_s=time.monotonic() - started,
            )
            if self.run_state is not None:
                self.run_state.record(job.key, outcome, stage="service")
            self._finish(job, response)

    def _finish(self, job: Job, response: dict) -> None:
        """Deliver one terminal response to the waiting handler."""
        self.stats.record_outcome(
            job.request.tenant,
            response["status"],
            replayed=bool(response.get("replayed")),
        )
        if job.events is not None:
            job.events.put_nowait(("result", response))
        if job.future is not None and not job.future.done():
            job.future.set_result(response)

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: parse, route, answer, close."""
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            await self._serve_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Parse one HTTP/1.1 request and dispatch it to a route."""
        request_line = await reader.readline()
        if not request_line:
            return
        try:
            method, path, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._send_json(writer, 400, {"status": "bad_request",
                                                "message": "malformed request line"})
            return
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, self._health())
            return
        if method == "GET" and path == "/stats":
            await self._send_json(writer, 200, self._stats_payload())
            return
        if method == "POST" and path == "/repair":
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                length = -1
            if length <= 0:
                await self._send_json(
                    writer, 400,
                    {"status": "bad_request",
                     "message": "a JSON body with Content-Length is required"},
                )
                return
            if length > MAX_BODY_BYTES:
                await self._send_json(
                    writer, 413,
                    {"status": "bad_request",
                     "message": f"body exceeds {MAX_BODY_BYTES} bytes"},
                )
                return
            body = await reader.readexactly(length)
            await self._handle_repair(writer, body)
            return
        await self._send_json(
            writer, 404, {"status": "not_found", "path": path}
        )

    def _health(self) -> dict:
        """The /healthz payload."""
        return {
            "status": "draining" if self.admission.draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "queued": self.admission.queued,
            "breaker": self.breaker.state if self.breaker else None,
        }

    def _stats_payload(self) -> dict:
        """The /stats payload: ledger + quotas + breaker + caches."""
        from ..runtime.cache import get_active_cache

        cache = get_active_cache()
        return {
            "service": self.stats.as_dict(),
            "quotas": self.admission.quotas(),
            "breaker": self.breaker.snapshot() if self.breaker else None,
            "draining": self.admission.draining,
            # Jobs share the process-wide compile cache: repeated error
            # patterns across tenants hit it, and clients can watch the
            # rate here.
            "compile_cache": cache.stats.as_dict() if cache else None,
        }

    async def _handle_repair(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        """Admit (or shed, or replay) one ``POST /repair`` submission."""
        try:
            request = RepairRequest.from_json(body)
        except ValueError as exc:
            await self._send_json(
                writer, 400, {"status": "bad_request", "message": str(exc)}
            )
            return
        config = request.to_config(
            max_retries=self.config.max_retries,
            step_timeout=self.config.step_timeout,
            llm_pool=self.config.llm_pool,
        )
        self._job_counter += 1
        job_id = f"job-{self._job_counter:06d}"
        key = self._job_key(request, config)
        if self.run_state is not None and self.run_state.completed(key):
            # Journal replay: a previously-completed submission answers
            # from the journal -- digest-identical, no queue slot spent.
            cached = self.run_state.result(key)
            self.stats.record_submitted(request.tenant)
            response = fixed_response(
                job_id,
                request.tenant,
                success=cached["success"],
                iterations=cached["iterations"],
                final_code=cached["final_code"],
                replayed=True,
            )
            self.stats.record_outcome(request.tenant, response["status"],
                                      replayed=True)
            if request.stream:
                replay_events: asyncio.Queue = asyncio.Queue()
                replay_events.put_nowait(("result", response))
                await self._stream(writer, job_id, request, replay_events)
            else:
                await self._send_json(writer, http_status(response), response)
            return
        deadline_s = request.deadline_s
        if deadline_s is None:
            deadline_s = self.config.scheduler.default_deadline_s
        loop = asyncio.get_running_loop()
        job = Job(
            job_id=job_id,
            request=request,
            config=config,
            key=key,
            deadline=Deadline(deadline_s) if deadline_s is not None else None,
            future=loop.create_future(),
            events=asyncio.Queue() if request.stream else None,
        )
        reason = self.admission.admit(job)
        if reason is not None:
            await self._send_json(
                writer, 429, shed_response(request.tenant, reason)
            )
            return
        if job.events is not None:
            await self._stream(writer, job.job_id, request, job.events)
        else:
            response = await job.future
            await self._send_json(writer, http_status(response), response)

    async def _stream(
        self,
        writer: asyncio.StreamWriter,
        job_id: str,
        request: RepairRequest,
        events: asyncio.Queue,
    ) -> None:
        """Answer one streaming submission with SSE frames: ``accepted``,
        one ``iteration`` per ReAct turn, then the terminal ``result``."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write(
            sse_event("accepted", {"job_id": job_id, "tenant": request.tenant})
        )
        await writer.drain()
        while True:
            kind, payload = await events.get()
            writer.write(sse_event(kind, payload))
            await writer.drain()
            if kind == "result":
                return

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        """Write one complete JSON response and flush it."""
        body = json.dumps(payload, sort_keys=True).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large", 429: "Too Many Requests",
                  500: "Internal Server Error", 502: "Bad Gateway",
                  504: "Gateway Timeout"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if status == 429:
            retry_after = payload.get("retry_after_s", 1.0)
            head += f"Retry-After: {max(1, int(retry_after))}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode() + body)
        await writer.drain()


class _null_scope:
    """A no-op context manager (jobs without a deadline)."""

    def __enter__(self) -> None:
        """Nothing to scope."""
        return None

    def __exit__(self, *exc_info) -> None:
        """Nothing to restore."""
        return None
