"""Admission control and weighted fair scheduling for the repair server.

The server's overload posture is decided here, in one place:

* **bounded queues** -- each tenant owns a bounded FIFO; a server-wide
  bound caps total queued work.  Nothing in the service ever queues
  unboundedly, so memory under overload is a constant, not a function
  of offered load;
* **explicit load shedding** -- a job that cannot be admitted is
  *refused immediately* with a typed :class:`~.protocol.ShedReason`
  (queue full, quota, breaker open, draining).  Shedding at the front
  door keeps p99 latency of *admitted* jobs bounded: the alternative --
  admit everything and let queues grow -- turns overload into unbounded
  latency for everyone;
* **per-tenant quotas** -- a :class:`~repro.runtime.limiter.TokenBucket`
  per tenant (non-blocking :meth:`~repro.runtime.limiter.TokenBucket.try_acquire`)
  caps each tenant's admission rate, so one chatty tenant cannot starve
  the rest even before fairness kicks in;
* **weighted fair scheduling** -- dispatch order across tenants uses
  stride scheduling over a virtual clock: each tenant carries a *pass*
  value advanced by ``1/weight`` per dispatched job, and the scheduler
  always picks the backlogged tenant with the smallest pass (ties by
  name, so the order is deterministic).  A tenant with weight 2 drains
  twice as fast as a tenant with weight 1; an idle tenant re-enters at
  the current virtual time instead of hoarding credit;
* **circuit-breaker integration** -- when the breaker is open the
  controller sheds *before* queueing (``breaker_open``), so a dead
  backend fails fast instead of filling queues with doomed work; the
  breaker's half-open probe is claimed atomically at admission
  (:meth:`~repro.runtime.breaker.CircuitBreaker.admit`) and settled by
  the worker that runs the probe job.

Everything here runs on the asyncio event loop (admission from request
handlers, dispatch from worker tasks), so the state machine itself
needs no locks -- the breaker and the token buckets carry their own,
because job *execution* happens in worker threads.

:class:`ServiceStats` is the service's telemetry ledger; it can be
installed ambiently (:func:`use_service_stats`) so the report layer
(``report.service``) picks it up the way ``report.llm`` picks up the
token counter.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from ..runtime.breaker import CircuitBreaker
from ..runtime.limiter import TokenBucket
from .deadline import Deadline
from .protocol import RepairRequest, ShedReason


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission/fairness knobs for one server instance."""

    #: Concurrent executing jobs (worker slots).
    capacity: int = 2
    #: Bounded per-tenant queue depth.
    max_queue_per_tenant: int = 8
    #: Server-wide bound on total queued jobs.
    max_queued: int = 64
    #: Per-tenant admission quota in jobs/second (0 = unlimited).
    tenant_rate: float = 0.0
    #: Per-tenant quota burst (bucket capacity).
    tenant_burst: int = 8
    #: Tenant name -> scheduling weight (default 1.0; higher = more
    #: dispatch share under contention).
    weights: dict = field(default_factory=dict)
    #: Default deadline (seconds) for requests that do not set one
    #: (None = no deadline unless the client asks for one).
    default_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.max_queue_per_tenant < 1:
            raise ValueError("max_queue_per_tenant must be >= 1")
        if self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")
        if self.tenant_rate < 0:
            raise ValueError("tenant_rate must be >= 0 (0 = unlimited)")
        if self.tenant_burst < 1:
            raise ValueError("tenant_burst must be >= 1")
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(
                    f"weight for tenant {tenant!r} must be > 0, got {weight}"
                )


@dataclass
class Job:
    """One admitted repair job travelling through the scheduler."""

    job_id: str
    request: RepairRequest
    config: Any  # RTLFixerConfig (kept untyped here: avoids a core import)
    key: str  # content-addressed journal key
    deadline: Optional[Deadline] = None
    #: Resolved with the protocol result dict.
    future: Optional[asyncio.Future] = None
    #: SSE progress queue (None for non-streaming requests).
    events: Optional[asyncio.Queue] = None
    enqueued_at: float = 0.0
    dequeued_at: float = 0.0
    #: This job carries the circuit breaker's half-open probe: exactly
    #: one ``record_*(probe=True)`` call must settle it.
    probe: bool = False


class ServiceStats:
    """The service telemetry ledger (admission, shedding, outcomes).

    Mutated only from the event loop; snapshotted via :meth:`as_dict`
    for ``GET /stats``, the ``# service:`` stderr line, and the report
    layer's ``report.service`` block.
    """

    def __init__(self) -> None:
        """Start an all-zero ledger."""
        self.submitted = 0
        self.admitted = 0
        self.shed: dict[str, int] = {}
        self.deadline_expired = 0
        self.completed = 0
        self.fixed = 0
        self.not_fixed = 0
        self.backend_errors = 0
        self.crashed = 0
        self.replayed = 0
        self.tenants: dict[str, dict[str, int]] = {}

    def _tenant(self, tenant: str) -> dict[str, int]:
        """The per-tenant counter row, created on first use."""
        return self.tenants.setdefault(
            tenant, {"admitted": 0, "shed": 0, "completed": 0}
        )

    def record_submitted(self, tenant: str) -> None:
        """A request reached admission."""
        self.submitted += 1
        self._tenant(tenant)

    def record_admitted(self, tenant: str) -> None:
        """A job was admitted into a queue."""
        self.admitted += 1
        self._tenant(tenant)["admitted"] += 1

    def record_shed(self, tenant: str, reason: str) -> None:
        """A request was refused with a typed reason."""
        self.shed[reason] = self.shed.get(reason, 0) + 1
        self._tenant(tenant)["shed"] += 1

    def record_outcome(self, tenant: str, status: str, replayed: bool = False) -> None:
        """A terminal response was produced for an admitted job."""
        self.completed += 1
        self._tenant(tenant)["completed"] += 1
        if status == "fixed":
            self.fixed += 1
        elif status == "not_fixed":
            self.not_fixed += 1
        elif status == "deadline_exceeded":
            self.deadline_expired += 1
        elif status == "backend_error":
            self.backend_errors += 1
        elif status == "error":
            self.crashed += 1
        if replayed:
            self.replayed += 1

    @property
    def total_shed(self) -> int:
        """Requests refused across all reasons."""
        return sum(self.shed.values())

    def as_dict(self) -> dict:
        """JSON-friendly snapshot for /stats and ``report.service``."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed": dict(sorted(self.shed.items())),
            "total_shed": self.total_shed,
            "deadline_expired": self.deadline_expired,
            "completed": self.completed,
            "fixed": self.fixed,
            "not_fixed": self.not_fixed,
            "backend_errors": self.backend_errors,
            "crashed": self.crashed,
            "replayed": self.replayed,
            "tenants": {name: dict(row) for name, row in sorted(self.tenants.items())},
        }


#: The process-wide ambient stats ledger (None = no service active).
_ACTIVE_STATS: Optional[ServiceStats] = None


def get_active_service_stats() -> Optional[ServiceStats]:
    """The ambient service-stats ledger, if a service scoped one."""
    return _ACTIVE_STATS


def set_active_service_stats(stats: Optional[ServiceStats]) -> Optional[ServiceStats]:
    """Install ``stats`` ambiently; returns the previous ledger."""
    global _ACTIVE_STATS
    previous = _ACTIVE_STATS
    _ACTIVE_STATS = stats
    return previous


@contextmanager
def use_service_stats(stats: ServiceStats) -> Iterator[ServiceStats]:
    """Scope ``stats`` as the ambient ledger (restores the previous one),
    so ``run_full_report`` executed under a service surfaces a
    ``report.service`` block the way ``report.llm`` works."""
    previous = set_active_service_stats(stats)
    try:
        yield stats
    finally:
        set_active_service_stats(previous)


class _TenantState:
    """Scheduler-internal per-tenant bookkeeping."""

    def __init__(self, name: str, weight: float, quota: TokenBucket):
        """A tenant's queue, quota bucket and fair-share pass value."""
        self.name = name
        self.weight = weight
        self.quota = quota
        self.queue: deque[Job] = deque()
        #: Stride-scheduling pass value: the tenant's position on the
        #: virtual clock; smallest backlogged pass dispatches next.
        self.vpass = 0.0


class AdmissionController:
    """Bounded, fair, breaker-aware admission for the repair server.

    The server calls :meth:`admit` from request handlers and
    :meth:`next_job` from its worker tasks; :meth:`start_drain` flips
    the controller into drain mode (shed all new work, hand out the
    backlog, then release the workers with ``None``).
    """

    def __init__(
        self,
        config: SchedulerConfig,
        breaker: Optional[CircuitBreaker] = None,
        stats: Optional[ServiceStats] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        """``breaker`` enables shed-on-outage; ``clock`` is injectable
        for deterministic quota tests."""
        self.config = config
        self.breaker = breaker
        self.stats = stats if stats is not None else ServiceStats()
        self._clock = clock
        self._tenants: dict[str, _TenantState] = {}
        self._queued = 0
        self._vtime = 0.0
        self._draining = False
        self._wakeup = asyncio.Event()

    # -- tenant bookkeeping ------------------------------------------------

    def _tenant(self, name: str) -> _TenantState:
        """Fetch or create a tenant's scheduling state."""
        state = self._tenants.get(name)
        if state is None:
            weight = float(self.config.weights.get(name, 1.0))
            quota = TokenBucket(
                self.config.tenant_rate,
                burst=self.config.tenant_burst,
                clock=self._clock,
            )
            state = _TenantState(name, weight, quota)
            self._tenants[name] = state
        return state

    @property
    def queued(self) -> int:
        """Jobs admitted but not yet dispatched."""
        return self._queued

    @property
    def draining(self) -> bool:
        """Whether the controller has stopped admitting."""
        return self._draining

    def quotas(self) -> dict:
        """Per-tenant quota telemetry (tokens available, refusals)."""
        return {
            name: {
                "weight": state.weight,
                "rate": state.quota.rate,
                "available": round(state.quota.available, 3),
                "refusals": state.quota.refusals,
                "queued": len(state.queue),
            }
            for name, state in sorted(self._tenants.items())
        }

    # -- admission ---------------------------------------------------------

    def admit(self, job: Job) -> Optional[str]:
        """Try to admit ``job``; returns a :class:`~.protocol.ShedReason`
        string when shed, None when queued.

        Check order matters: every *refusable* condition (draining,
        quota, queue bounds) is evaluated before the breaker is
        consulted, because a granted half-open probe cannot be handed
        back -- the breaker check is last, so an admitted probe is
        always actually queued.
        """
        tenant = self._tenant(job.request.tenant)
        self.stats.record_submitted(job.request.tenant)
        reason = self._shed_reason(tenant)
        if reason is None and self.breaker is not None:
            allowed, is_probe = self.breaker.admit()
            if not allowed:
                reason = ShedReason.BREAKER_OPEN
            else:
                job.probe = is_probe
        if reason is not None:
            self.stats.record_shed(job.request.tenant, reason)
            return reason
        job.enqueued_at = self._clock()
        was_empty = not tenant.queue
        tenant.queue.append(job)
        self._queued += 1
        if was_empty:
            # An idle tenant re-enters at the current virtual time: it
            # competes fairly from now on instead of cashing in credit
            # accumulated while it had nothing to run.
            tenant.vpass = max(tenant.vpass, self._vtime)
        self.stats.record_admitted(job.request.tenant)
        self._wakeup.set()
        return None

    def _shed_reason(self, tenant: _TenantState) -> Optional[str]:
        """The pre-breaker shed decision for one submission."""
        if self._draining:
            return ShedReason.DRAINING
        if len(tenant.queue) >= self.config.max_queue_per_tenant:
            return ShedReason.TENANT_QUEUE_FULL
        if self._queued >= self.config.max_queued:
            return ShedReason.SERVER_QUEUE_FULL
        if not tenant.quota.try_acquire():
            return ShedReason.TENANT_QUOTA
        return None

    # -- dispatch ----------------------------------------------------------

    def _pick(self) -> Optional[Job]:
        """Dequeue the next job by stride scheduling (None = no backlog)."""
        best: Optional[_TenantState] = None
        for state in self._tenants.values():
            if not state.queue:
                continue
            if best is None or (state.vpass, state.name) < (best.vpass, best.name):
                best = state
        if best is None:
            return None
        job = best.queue.popleft()
        self._queued -= 1
        self._vtime = best.vpass
        best.vpass += 1.0 / best.weight
        job.dequeued_at = self._clock()
        return job

    async def next_job(self) -> Optional[Job]:
        """Wait for (and claim) the next job in fair order.

        Returns ``None`` exactly when the controller is draining *and*
        the backlog is empty -- the worker's signal to exit.  Admitted
        jobs are always handed out, drain or not: shutdown must finish
        what it accepted.
        """
        while True:
            job = self._pick()
            if job is not None:
                return job
            if self._draining:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

    def start_drain(self) -> None:
        """Stop admitting; wake every waiting worker so idle ones can
        observe the drain and exit once the backlog is gone."""
        self._draining = True
        self._wakeup.set()
