"""A minimal asyncio client for the repair service.

Speaks exactly the protocol :mod:`repro.service.protocol` defines --
one HTTP/1.1 request per connection, JSON responses, optional SSE
streaming -- with nothing beyond the standard library.  Used by the
load generator (``scripts/loadgen.py``), the CI smoke drill, and the
integration tests; applications are free to use any HTTP client.

>>> client = ServiceClient("127.0.0.1", 8357)
>>> status, result = await client.repair(code="module m; endmodule")
>>> status, stats = await client.stats()
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Optional


class ServiceClient:
    """One repair-service endpoint (host + port)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8357,
                 timeout: float = 30.0):
        """``timeout`` bounds every whole-request round trip."""
        self.host = host
        self.port = port
        self.timeout = timeout

    async def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, dict]:
        """One request/response round trip; returns (status, payload)."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        try:
            await self._send(writer, method, path, body)
            status, _headers, raw = await asyncio.wait_for(
                self._read_response(reader), self.timeout
            )
            return status, json.loads(raw) if raw else {}
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: Optional[dict],
    ) -> None:
        """Write one HTTP/1.1 request."""
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader) -> tuple[int, dict]:
        """Parse the status line and headers."""
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2:
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict, bytes]:
        """Read one complete (non-streaming) response."""
        status, headers = await self._read_head(reader)
        length = headers.get("content-length")
        if length is not None:
            body = await reader.readexactly(int(length))
        else:
            body = await reader.read()
        return status, headers, body

    # -- public API --------------------------------------------------------

    async def repair(self, **fields: Any) -> tuple[int, dict]:
        """Submit one repair job; returns ``(http_status, result_dict)``.

        ``fields`` are :class:`~repro.service.protocol.RepairRequest`
        fields (``code=...`` is required).
        """
        return await self._request("POST", "/repair", fields)

    async def repair_stream(self, **fields: Any) -> AsyncIterator[tuple[str, dict]]:
        """Submit a streaming repair; yields ``(event, payload)`` pairs.

        Yields the ``accepted`` event, one ``iteration`` per ReAct turn,
        and finally the terminal ``result`` (after which the stream
        ends).  A shed or invalid submission yields a single synthetic
        ``("error", payload)`` pair instead.
        """
        fields = dict(fields, stream=True)
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        try:
            await self._send(writer, "POST", "/repair", fields)
            status, headers = await asyncio.wait_for(
                self._read_head(reader), self.timeout
            )
            if "text/event-stream" not in headers.get("content-type", ""):
                length = int(headers.get("content-length", "0"))
                body = await reader.readexactly(length) if length else b"{}"
                yield "error", json.loads(body)
                return
            async for event, payload in self._read_sse(reader):
                yield event, payload
                if event == "result":
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_sse(
        reader: asyncio.StreamReader,
    ) -> AsyncIterator[tuple[str, dict]]:
        """Parse Server-Sent-Events frames until EOF."""
        event, data_lines = "", []
        while True:
            line = await reader.readline()
            if not line:
                return
            text = line.decode("utf-8").rstrip("\r\n")
            if not text:
                if event and data_lines:
                    yield event, json.loads("\n".join(data_lines))
                event, data_lines = "", []
                continue
            if text.startswith("event:"):
                event = text[len("event:"):].strip()
            elif text.startswith("data:"):
                data_lines.append(text[len("data:"):].strip())

    async def stats(self) -> tuple[int, dict]:
        """Fetch ``GET /stats``."""
        return await self._request("GET", "/stats")

    async def health(self) -> tuple[int, dict]:
        """Fetch ``GET /healthz``."""
        return await self._request("GET", "/healthz")
