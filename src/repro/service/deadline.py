"""Per-request deadlines, propagated ambiently into the agent loop.

A repair *service* cannot afford the batch runner's "let every trial run
to completion" stance: a client that asked for an answer within 30
seconds gains nothing from a repair that arrives at second 90, and the
worker slot it occupies is stolen from jobs that could still make their
deadlines.  :class:`Deadline` is the one object that carries a
request's remaining time budget through every layer:

* the **admission queue** checks it at dequeue, so a job whose budget
  evaporated while queued is answered ``deadline_exceeded`` without
  burning a worker slot;
* the **ReAct loop** (:class:`repro.agents.react.ReActAgent`) checks it
  at the top of every Thought-Action-Observation iteration, so work
  stops *mid-repair* instead of discovering the overrun post-hoc;
* the **retry layer** (:func:`repro.runtime.retry.call_with_retry`)
  checks it before every attempt and before every backoff sleep, and
  never retries an already-expired deadline -- an expired budget
  surfaces as :class:`~repro.errors.DeadlineExceededError`, which is
  deliberately *not* transient.

Propagation is ambient via a :class:`contextvars.ContextVar`
(:func:`use_deadline` / :func:`current_deadline`), mirroring the
runtime's cache-injection idiom: the deep call stack between the server
handler and an individual model call never threads a deadline parameter
through its signatures.  Worker threads entering a job re-establish the
scope explicitly (context variables do not cross
``run_in_executor``).

The clock is injectable (monotonic by default) so tests can drive
expiry deterministically.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from ..errors import DeadlineExceededError

ClockFn = Callable[[], float]

#: The ambient deadline of the request being served (None = no deadline,
#: the batch default).
_CURRENT_DEADLINE: ContextVar[Optional["Deadline"]] = ContextVar(
    "repro_deadline", default=None
)


class Deadline:
    """A wall-clock budget that starts ticking the moment it is created.

    >>> deadline = Deadline(30.0)     # 30 seconds from now
    >>> deadline.remaining()          # seconds left (may be negative)
    >>> deadline.expired()            # True once the budget is gone
    >>> deadline.check("react-iteration")  # raises DeadlineExceededError
    """

    def __init__(self, budget_s: float, clock: ClockFn = time.monotonic):
        """``budget_s`` seconds from *now* on ``clock`` (monotonic by
        default; injectable for deterministic tests)."""
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0 seconds, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._expires_at = clock() + self.budget_s

    @property
    def expires_at(self) -> float:
        """Absolute expiry instant on the deadline's own clock."""
        return self._expires_at

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.remaining() <= 0.0

    def check(self, stage: str = "") -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if expired.

        ``stage`` names the checkpoint for the error message (and the
        service's typed response), e.g. ``"queued"`` or
        ``"react-iteration"``.
        """
        overdue = -self.remaining()
        if overdue >= 0.0:
            where = f" at {stage}" if stage else ""
            raise DeadlineExceededError(
                f"deadline exceeded{where}: {self.budget_s:.3f}s budget, "
                f"{overdue:.3f}s overdue",
                stage=stage,
            )

    def allows(self, duration_s: float) -> bool:
        """Whether ``duration_s`` more seconds fit inside the budget
        (used by the retry layer to refuse a backoff sleep that would
        end past the deadline)."""
        return self.remaining() > duration_s

    def __repr__(self) -> str:
        """Debug rendering with the live remaining budget."""
        return f"Deadline(budget={self.budget_s:.3f}s, remaining={self.remaining():.3f}s)"


def current_deadline() -> Optional[Deadline]:
    """The ambient deadline of the request being served (None outside a
    :func:`use_deadline` scope -- the batch default)."""
    return _CURRENT_DEADLINE.get()


@contextmanager
def use_deadline(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Scope ``deadline`` as the ambient request deadline.

    ``None`` is accepted and simply scopes "no deadline", so callers can
    write ``with use_deadline(maybe_deadline):`` unconditionally.
    """
    token = _CURRENT_DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT_DEADLINE.reset(token)
