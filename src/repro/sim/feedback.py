"""Simulation-error feedback generation (paper §5).

Runs the differential testbench while tracing outputs, then formats the
result the way the paper describes: a summary of the output error count
plus a text-formatted waveform-like comparison of the erroneous module's
outputs against the golden solution's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..verilog.elaborate import ElabDesign
from ..verilog.limits import ResourceLimits
from .engine import get_default_sim_engine, make_simulator
from .testbench import CLOCK_NAMES, RESET_NAMES, _random_vector
from .trace import Trace, render_comparison
from .values import Logic
from .verdict import get_active_verdict_cache, verdict_key


@dataclass
class SimFeedback:
    """Structured simulation feedback for the debugging agent."""

    mismatch_count: int
    samples: int
    text: str

    @property
    def passed(self) -> bool:
        return self.mismatch_count == 0


def simulate_with_traces(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int = 16,
    seed: int = 0,
    engine: Optional[str] = None,
    limits: Optional[ResourceLimits] = None,
) -> tuple[Trace, Trace]:
    """Run both designs on identical stimulus, tracing every output."""
    cand_sim = make_simulator(candidate, engine=engine, limits=limits)
    ref_sim = make_simulator(reference, engine=engine, limits=limits)
    rng = random.Random(seed)

    inputs = ref_sim.inputs
    clock = next((p.name for p in inputs if p.name in CLOCK_NAMES), None)
    resets = [p.name for p in inputs if p.name in RESET_NAMES]
    data = [p for p in inputs if p.name != clock and p.name not in resets]
    outputs = [p.name for p in ref_sim.outputs]

    cand_trace = Trace(signals=list(outputs))
    ref_trace = Trace(signals=list(outputs))

    for cycle in range(samples):
        stimulus: dict[str, Logic | int] = {}
        in_reset = bool(resets) and cycle < 2
        for name in resets:
            active = 1 if not name.endswith("n") else 0
            stimulus[name] = active if in_reset else active ^ 1
        for port in data:
            stimulus[port.name] = _random_vector(rng, port.width)
        if clock is None:
            cand_sim.step(dict(stimulus))
            ref_sim.step(dict(stimulus))
        else:
            stimulus[clock] = 0
            cand_sim.step(dict(stimulus))
            ref_sim.step(dict(stimulus))
            cand_sim.step({clock: 1})
            ref_sim.step({clock: 1})
        if not in_reset:
            cand_trace.record(cand_sim)
            ref_trace.record(ref_sim)
    return cand_trace, ref_trace


def make_sim_feedback(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int = 16,
    seed: int = 0,
    max_shown: int = 16,
    engine: Optional[str] = None,
    limits: Optional[ResourceLimits] = None,
) -> SimFeedback:
    """The feedback message described in §5: error count summary plus the
    waveform-style expected-vs-actual comparison.

    Memoized in the active :class:`~repro.sim.verdict.VerdictCache` the
    same way :func:`~repro.sim.testbench.run_differential` verdicts are:
    feedback is a pure function of the design digests and the stimulus
    parameters."""
    effective_engine = engine if engine is not None else get_default_sim_engine()
    cache = get_active_verdict_cache()
    key = None
    if cache is not None:
        key = verdict_key(
            "feedback",
            (getattr(candidate, "digest", None), getattr(reference, "digest", None)),
            effective_engine,
            limits,
            samples, seed, max_shown,
        )
        cached = cache.get(key)
        if cached is not None:
            return cached
    feedback = _make_sim_feedback_uncached(
        candidate, reference, samples, seed, max_shown, effective_engine, limits
    )
    if cache is not None:
        cache.put(key, feedback)
    return feedback


def _make_sim_feedback_uncached(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int,
    seed: int,
    max_shown: int,
    engine: str,
    limits: Optional[ResourceLimits],
) -> SimFeedback:
    try:
        cand_trace, ref_trace = simulate_with_traces(
            candidate, reference, samples=samples, seed=seed,
            engine=engine, limits=limits,
        )
    except Exception as exc:  # simulation blow-ups are feedback too
        return SimFeedback(
            mismatch_count=samples, samples=samples,
            text=f"Simulation failed to run: {exc}",
        )

    mismatches = 0
    for name in ref_trace.signals:
        for i in range(ref_trace.length):
            exp = ref_trace.value_at(name, i)
            act = cand_trace.value_at(name, i)
            if exp is None or act is None or not exp.same_as(act):
                mismatches += 1

    comparison = render_comparison(
        cand_trace, ref_trace, max_samples=max_shown
    )
    text = (
        f"Simulation produced {mismatches} mismatching output sample(s) "
        f"out of {ref_trace.length * max(len(ref_trace.signals), 1)}.\n"
        f"{comparison}"
    )
    return SimFeedback(
        mismatch_count=mismatches,
        samples=ref_trace.length * max(len(ref_trace.signals), 1),
        text=text,
    )
