"""Simulation-error feedback generation (paper §5).

Runs the differential testbench while tracing outputs, then formats the
result the way the paper describes: a summary of the output error count
plus a text-formatted waveform-like comparison of the erroneous module's
outputs against the golden solution's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..verilog.elaborate import ElabDesign
from ..verilog.limits import ResourceLimits
from .engine import get_default_sim_engine, make_simulator
from .limits import (
    UNTRACKED,
    SimLimits,
    SimLimitTracker,
    get_default_sim_limits,
)
from .sandbox import SimVerdict, run_sandboxed
from .testbench import CLOCK_NAMES, RESET_NAMES, _chaos_verdict, _random_vector
from .trace import Trace, render_comparison
from .values import Logic
from .verdict import get_active_verdict_cache, verdict_key


@dataclass
class SimFeedback:
    """Structured simulation feedback for the debugging agent."""

    mismatch_count: int
    samples: int
    text: str
    #: Sandbox classification of the underlying run; ``limit``/``crashed``
    #: feedback is still feedback (the agent sees the reason as text) but
    #: is never memoized.
    verdict: Optional[SimVerdict] = None

    @property
    def passed(self) -> bool:
        return self.mismatch_count == 0


def simulate_with_traces(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int = 16,
    seed: int = 0,
    engine: Optional[str] = None,
    limits: Optional[ResourceLimits] = None,
    sim_limits: Optional[SimLimits] = None,
    sim_tracker: Optional[SimLimitTracker] = None,
) -> tuple[Trace, Trace]:
    """Run both designs on identical stimulus, tracing every output.

    Both simulators and both traces share one
    :class:`~repro.sim.limits.SimLimitTracker` budget pool (pass
    ``sim_tracker`` to supply it), so trace bombs are stopped by the
    trace-entry/byte budgets rather than by memory exhaustion.
    """
    effective_sim = sim_limits if sim_limits is not None else get_default_sim_limits()
    tracker = sim_tracker
    if tracker is None and effective_sim is not UNTRACKED:
        tracker = SimLimitTracker(effective_sim)
    cand_sim = make_simulator(
        candidate, engine=engine, limits=limits,
        sim_limits=effective_sim, sim_tracker=tracker,
    )
    ref_sim = make_simulator(
        reference, engine=engine, limits=limits,
        sim_limits=effective_sim, sim_tracker=tracker,
    )
    rng = random.Random(seed)

    # Lazy: the service package sits above the sim package.
    from ..service.deadline import current_deadline

    deadline = current_deadline()

    inputs = ref_sim.inputs
    clock = next((p.name for p in inputs if p.name in CLOCK_NAMES), None)
    resets = [p.name for p in inputs if p.name in RESET_NAMES]
    data = [p for p in inputs if p.name != clock and p.name not in resets]
    outputs = [p.name for p in ref_sim.outputs]

    cand_trace = Trace(signals=list(outputs), tracker=tracker)
    ref_trace = Trace(signals=list(outputs), tracker=tracker)

    for cycle in range(samples):
        if deadline is not None:
            deadline.check(stage="sim-cycle")
        stimulus: dict[str, Logic | int] = {}
        in_reset = bool(resets) and cycle < 2
        for name in resets:
            active = 1 if not name.endswith("n") else 0
            stimulus[name] = active if in_reset else active ^ 1
        for port in data:
            stimulus[port.name] = _random_vector(rng, port.width)
        if clock is None:
            cand_sim.step(dict(stimulus))
            ref_sim.step(dict(stimulus))
        else:
            stimulus[clock] = 0
            cand_sim.step(dict(stimulus))
            ref_sim.step(dict(stimulus))
            cand_sim.step({clock: 1})
            ref_sim.step({clock: 1})
        if not in_reset:
            if tracker is not None:
                tracker.phase = "trace"
            cand_trace.record(cand_sim)
            ref_trace.record(ref_sim)
            if tracker is not None:
                tracker.phase = "cycle"
    return cand_trace, ref_trace


def make_sim_feedback(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int = 16,
    seed: int = 0,
    max_shown: int = 16,
    engine: Optional[str] = None,
    limits: Optional[ResourceLimits] = None,
    sim_limits: Optional[SimLimits] = None,
) -> SimFeedback:
    """The feedback message described in §5: error count summary plus the
    waveform-style expected-vs-actual comparison.

    Memoized in the active :class:`~repro.sim.verdict.VerdictCache` the
    same way :func:`~repro.sim.testbench.run_differential` verdicts are:
    feedback is a pure function of the design digests and the stimulus
    parameters.  The sandbox budgets join the key, and only ``ok``/
    ``fail`` outcomes are memoized -- a budget overflow or crash report
    is environment-dependent feedback, not a content-addressed fact."""
    effective_engine = engine if engine is not None else get_default_sim_engine()
    effective_sim = sim_limits if sim_limits is not None else get_default_sim_limits()

    chaos = _chaos_verdict(
        "sim.feedback",
        f"{getattr(candidate, 'digest', None)}|"
        f"{getattr(reference, 'digest', None)}|{samples}|{seed}",
        effective_engine,
    )
    if chaos is not None:
        return SimFeedback(
            mismatch_count=samples, samples=samples,
            text=f"Simulation failed to run: {chaos.detail}",
            verdict=chaos,
        )

    cache = get_active_verdict_cache()
    key = None
    if cache is not None:
        key = verdict_key(
            "feedback",
            (getattr(candidate, "digest", None), getattr(reference, "digest", None)),
            effective_engine,
            limits,
            samples, seed, max_shown, repr(effective_sim),
        )
        cached = cache.get(key)
        if cached is not None:
            return cached
    feedback = _make_sim_feedback_uncached(
        candidate, reference, samples, seed, max_shown,
        effective_engine, limits, effective_sim,
    )
    if cache is not None and feedback.verdict is not None and feedback.verdict.cacheable:
        cache.put(key, feedback)
    return feedback


def _make_sim_feedback_uncached(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int,
    seed: int,
    max_shown: int,
    engine: str,
    limits: Optional[ResourceLimits],
    sim_limits: SimLimits,
) -> SimFeedback:
    traces, verdict = run_sandboxed(
        lambda: simulate_with_traces(
            candidate, reference, samples=samples, seed=seed,
            engine=engine, limits=limits, sim_limits=sim_limits,
        ),
        engine,
    )
    if verdict is not None:  # simulation blow-ups are feedback too
        return SimFeedback(
            mismatch_count=samples, samples=samples,
            text=f"Simulation failed to run: {verdict.detail}",
            verdict=verdict,
        )
    cand_trace, ref_trace = traces

    mismatches = 0
    for name in ref_trace.signals:
        for i in range(ref_trace.length):
            exp = ref_trace.value_at(name, i)
            act = cand_trace.value_at(name, i)
            if exp is None or act is None or not exp.same_as(act):
                mismatches += 1

    comparison = render_comparison(
        cand_trace, ref_trace, max_samples=max_shown
    )
    text = (
        f"Simulation produced {mismatches} mismatching output sample(s) "
        f"out of {ref_trace.length * max(len(ref_trace.signals), 1)}.\n"
        f"{comparison}"
    )
    return SimFeedback(
        mismatch_count=mismatches,
        samples=ref_trace.length * max(len(ref_trace.signals), 1),
        text=text,
        verdict=SimVerdict(
            category="ok" if mismatches == 0 else "fail", engine=engine
        ),
    )
