"""Golden-model differential testbench.

Functional correctness is judged the way VerilogEval does it: simulate
the candidate implementation and the reference implementation on the
same stimulus and compare outputs.  The stimulus generator understands
the corpus conventions: a ``clk`` input gets a clock, ``reset`` /
``areset`` / ``rst`` inputs get a reset pulse, everything else is driven
with seeded random vectors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..errors import TransientError
from ..verilog.elaborate import ElabDesign
from ..verilog.limits import ResourceLimits
from .engine import get_default_sim_engine, make_simulator
from .limits import (
    UNTRACKED,
    SimLimits,
    SimLimitTracker,
    get_default_sim_limits,
)
from .sandbox import SimVerdict, get_active_sandbox_stats, run_sandboxed
from .simulator import Simulator
from .values import Logic
from .verdict import get_active_verdict_cache, verdict_key

CLOCK_NAMES = ("clk", "clock")
RESET_NAMES = ("reset", "rst", "areset", "arst", "resetn", "rst_n")


@dataclass
class Mismatch:
    sample: int
    output: str
    expected: str
    actual: str


@dataclass
class TestbenchResult:
    """Outcome of one differential run."""

    passed: bool
    samples: int = 0
    mismatch_count: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    #: Non-empty when the candidate could not be simulated at all
    #: (port interface mismatch, runaway loop, unsupported construct).
    failure_reason: str = ""
    #: Sandbox classification of the run (``ok``/``fail``/``limit``/
    #: ``crashed``); ``limit``/``crashed`` results are never memoized.
    verdict: Optional[SimVerdict] = None

    def summary(self) -> str:
        if self.passed:
            return f"PASS ({self.samples} samples)"
        if self.failure_reason:
            return f"FAIL ({self.failure_reason})"
        return f"FAIL ({self.mismatch_count}/{self.samples} samples mismatched)"


def check_interface(candidate: ElabDesign, reference: ElabDesign) -> str:
    """Return an error string if the candidate's ports do not match the
    reference module's ports (name, direction, width); '' when fine."""
    ref_top = reference.top_module()
    cand_top = candidate.top_module()
    if cand_top is None:
        return "candidate has no modules"
    ref_ports = {p.name: p for p in ref_top.ports}
    cand_ports = {p.name: p for p in cand_top.ports}
    for name, ref_port in ref_ports.items():
        cand_port = cand_ports.get(name)
        if cand_port is None:
            return f"missing port {name!r}"
        if cand_port.direction != ref_port.direction:
            return f"port {name!r} direction mismatch"
        if cand_port.width != ref_port.width:
            return f"port {name!r} width {cand_port.width} != {ref_port.width}"
    extra = set(cand_ports) - set(ref_ports)
    if extra:
        return f"unexpected extra ports: {sorted(extra)}"
    return ""


def _chaos_verdict(site: str, chaos_key: str, engine: str) -> Optional[SimVerdict]:
    """Consult the ambient simulation fault injector, if any.

    Returns ``None`` (no fault), a fabricated ``injected`` verdict for
    ``garbage`` faults, or re-raises the injector's raising kinds after
    counting them.  The chaos key deliberately excludes the engine so
    both engines draw the same fault for the same work.
    """
    # Lazy: repro.runtime transitively imports this package.
    from ..runtime.faults import get_active_sim_injector

    injector = get_active_sim_injector()
    if injector is None:
        return None
    stats = get_active_sandbox_stats()
    try:
        kind = injector.fire(site, chaos_key)
    except TransientError:
        if stats is not None:
            stats.chaos_faults += 1
        raise
    if kind != "garbage":
        return None
    if stats is not None:
        stats.chaos_faults += 1
    return SimVerdict(
        category="crashed",
        engine=engine,
        phase="chaos",
        detail="chaos: garbled simulation verdict",
        injected=True,
    )


def run_differential(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int = 64,
    seed: int = 0,
    max_mismatches_recorded: int = 4,
    engine: Optional[str] = None,
    limits: Optional[ResourceLimits] = None,
    sim_limits: Optional[SimLimits] = None,
) -> TestbenchResult:
    """Drive both designs with identical stimulus and compare outputs.

    ``samples`` is the number of random input vectors (combinational) or
    clock cycles (sequential).  The whole verdict is memoized in the
    active :class:`~repro.sim.verdict.VerdictCache` keyed by the design
    digests and every stimulus parameter -- simulation is deterministic,
    so a repeated (candidate, reference, stimulus) triple returns the
    recorded verdict without simulating.  The sandbox budgets join the
    key (runs under different ``sim_limits`` never alias), and only
    ``ok``/``fail`` verdicts are memoized -- ``limit``/``crashed``
    outcomes depend on budgets and environment, not just content.
    """
    effective_engine = engine if engine is not None else get_default_sim_engine()
    effective_sim = sim_limits if sim_limits is not None else get_default_sim_limits()

    chaos = _chaos_verdict(
        "sim.diff",
        f"{getattr(candidate, 'digest', None)}|"
        f"{getattr(reference, 'digest', None)}|{samples}|{seed}",
        effective_engine,
    )
    if chaos is not None:
        return TestbenchResult(
            passed=False, failure_reason=chaos.detail, verdict=chaos
        )

    cache = get_active_verdict_cache()
    key = None
    if cache is not None:
        key = verdict_key(
            "diff",
            (getattr(candidate, "digest", None), getattr(reference, "digest", None)),
            effective_engine,
            limits,
            samples, seed, max_mismatches_recorded, repr(effective_sim),
        )
        cached = cache.get(key)
        if cached is not None:
            return cached

    result = _run_differential_uncached(
        candidate, reference, samples, seed, max_mismatches_recorded,
        effective_engine, limits, effective_sim,
    )
    if cache is not None and result.verdict is not None and result.verdict.cacheable:
        cache.put(key, result)
    return result


def _run_differential_uncached(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int,
    seed: int,
    max_mismatches_recorded: int,
    engine: str,
    limits: Optional[ResourceLimits],
    sim_limits: SimLimits,
) -> TestbenchResult:
    interface_error = check_interface(candidate, reference)
    if interface_error:
        return TestbenchResult(
            passed=False,
            failure_reason=interface_error,
            verdict=SimVerdict(
                category="fail", engine=engine,
                phase="interface", detail=interface_error,
            ),
        )

    # Lazy: the service package sits above the sim package.
    from ..service.deadline import current_deadline

    deadline = current_deadline()
    # One budget pool for the whole harness invocation: candidate and
    # reference share a tracker, so the pair cannot take more than one
    # run's worth of resources between them.
    tracker = None if sim_limits is UNTRACKED else SimLimitTracker(sim_limits)

    def body() -> TestbenchResult:
        cand_sim = make_simulator(
            candidate, engine=engine, limits=limits,
            sim_limits=sim_limits, sim_tracker=tracker,
        )
        ref_sim = make_simulator(
            reference, engine=engine, limits=limits,
            sim_limits=sim_limits, sim_tracker=tracker,
        )

        rng = random.Random(seed)
        ref_inputs = ref_sim.inputs
        clock = next((p.name for p in ref_inputs if p.name in CLOCK_NAMES), None)
        resets = [p.name for p in ref_inputs if p.name in RESET_NAMES]
        data_inputs = [
            p for p in ref_inputs if p.name != clock and p.name not in resets
        ]
        outputs = [p.name for p in ref_sim.outputs]

        result = TestbenchResult(passed=True)
        if clock is None:
            _run_combinational(
                cand_sim, ref_sim, data_inputs, resets, outputs,
                samples, rng, result, max_mismatches_recorded, deadline,
            )
        else:
            _run_sequential(
                cand_sim, ref_sim, clock, data_inputs, resets, outputs,
                samples, rng, result, max_mismatches_recorded, deadline,
            )
        return result

    result, verdict = run_sandboxed(body, engine)
    if verdict is not None:
        return TestbenchResult(
            passed=False, failure_reason=verdict.detail, verdict=verdict
        )
    result.passed = result.mismatch_count == 0 and not result.failure_reason
    result.verdict = SimVerdict(
        category="ok" if result.passed else "fail", engine=engine
    )
    return result


def _random_vector(rng: random.Random, width: int) -> int:
    # Mix uniform randomness with corner values so narrow comparisons
    # (all-zeros, all-ones) are exercised early.
    choice = rng.random()
    if choice < 0.1:
        return 0
    if choice < 0.2:
        return (1 << width) - 1
    return rng.getrandbits(width)


def _compare(
    cand_sim: Simulator,
    ref_sim: Simulator,
    outputs: list[str],
    sample: int,
    result: TestbenchResult,
    limit: int,
) -> None:
    result.samples += 1
    for name in outputs:
        expected = ref_sim.get(name)
        actual = cand_sim.get(name)
        if not expected.same_as(actual):
            result.mismatch_count += 1
            if len(result.mismatches) < limit:
                result.mismatches.append(
                    Mismatch(
                        sample=sample, output=name,
                        expected=str(expected), actual=str(actual),
                    )
                )
            break  # one mismatch per sample is enough


def _run_combinational(
    cand_sim, ref_sim, data_inputs, resets, outputs,
    samples, rng, result, limit, deadline=None,
) -> None:
    for sample in range(samples):
        if deadline is not None:
            deadline.check(stage="sim-cycle")
        stimulus: dict[str, Logic | int] = {}
        for port in data_inputs:
            stimulus[port.name] = _random_vector(rng, port.width)
        for name in resets:
            stimulus[name] = 0 if not name.endswith("n") else 1
        cand_sim.step(dict(stimulus))
        ref_sim.step(dict(stimulus))
        _compare(cand_sim, ref_sim, outputs, sample, result, limit)


def _run_sequential(
    cand_sim, ref_sim, clock, data_inputs, resets, outputs,
    samples, rng, result, limit, deadline=None,
) -> None:
    reset_cycles = 2 if resets else 0
    for cycle in range(samples):
        if deadline is not None:
            deadline.check(stage="sim-cycle")
        stimulus: dict[str, Logic | int] = {}
        in_reset = cycle < reset_cycles
        for name in resets:
            active = 1 if not name.endswith("n") else 0
            stimulus[name] = active if in_reset else active ^ 1
        for port in data_inputs:
            stimulus[port.name] = _random_vector(rng, port.width)
        stimulus[clock] = 0
        cand_sim.step(dict(stimulus))
        ref_sim.step(dict(stimulus))
        cand_sim.step({clock: 1})
        ref_sim.step({clock: 1})
        if not in_reset:
            _compare(cand_sim, ref_sim, outputs, cycle, result, limit)
