"""Golden-model differential testbench.

Functional correctness is judged the way VerilogEval does it: simulate
the candidate implementation and the reference implementation on the
same stimulus and compare outputs.  The stimulus generator understands
the corpus conventions: a ``clk`` input gets a clock, ``reset`` /
``areset`` / ``rst`` inputs get a reset pulse, everything else is driven
with seeded random vectors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SimulationError
from ..verilog.elaborate import ElabDesign
from ..verilog.limits import ResourceLimits
from .engine import get_default_sim_engine, make_simulator
from .simulator import Simulator
from .values import Logic
from .verdict import get_active_verdict_cache, verdict_key

CLOCK_NAMES = ("clk", "clock")
RESET_NAMES = ("reset", "rst", "areset", "arst", "resetn", "rst_n")


@dataclass
class Mismatch:
    sample: int
    output: str
    expected: str
    actual: str


@dataclass
class TestbenchResult:
    """Outcome of one differential run."""

    passed: bool
    samples: int = 0
    mismatch_count: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    #: Non-empty when the candidate could not be simulated at all
    #: (port interface mismatch, runaway loop, unsupported construct).
    failure_reason: str = ""

    def summary(self) -> str:
        if self.passed:
            return f"PASS ({self.samples} samples)"
        if self.failure_reason:
            return f"FAIL ({self.failure_reason})"
        return f"FAIL ({self.mismatch_count}/{self.samples} samples mismatched)"


def check_interface(candidate: ElabDesign, reference: ElabDesign) -> str:
    """Return an error string if the candidate's ports do not match the
    reference module's ports (name, direction, width); '' when fine."""
    ref_top = reference.top_module()
    cand_top = candidate.top_module()
    if cand_top is None:
        return "candidate has no modules"
    ref_ports = {p.name: p for p in ref_top.ports}
    cand_ports = {p.name: p for p in cand_top.ports}
    for name, ref_port in ref_ports.items():
        cand_port = cand_ports.get(name)
        if cand_port is None:
            return f"missing port {name!r}"
        if cand_port.direction != ref_port.direction:
            return f"port {name!r} direction mismatch"
        if cand_port.width != ref_port.width:
            return f"port {name!r} width {cand_port.width} != {ref_port.width}"
    extra = set(cand_ports) - set(ref_ports)
    if extra:
        return f"unexpected extra ports: {sorted(extra)}"
    return ""


def run_differential(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int = 64,
    seed: int = 0,
    max_mismatches_recorded: int = 4,
    engine: Optional[str] = None,
    limits: Optional[ResourceLimits] = None,
) -> TestbenchResult:
    """Drive both designs with identical stimulus and compare outputs.

    ``samples`` is the number of random input vectors (combinational) or
    clock cycles (sequential).  The whole verdict is memoized in the
    active :class:`~repro.sim.verdict.VerdictCache` keyed by the design
    digests and every stimulus parameter -- simulation is deterministic,
    so a repeated (candidate, reference, stimulus) triple returns the
    recorded verdict without simulating.
    """
    effective_engine = engine if engine is not None else get_default_sim_engine()
    cache = get_active_verdict_cache()
    key = None
    if cache is not None:
        key = verdict_key(
            "diff",
            (getattr(candidate, "digest", None), getattr(reference, "digest", None)),
            effective_engine,
            limits,
            samples, seed, max_mismatches_recorded,
        )
        cached = cache.get(key)
        if cached is not None:
            return cached

    result = _run_differential_uncached(
        candidate, reference, samples, seed, max_mismatches_recorded,
        effective_engine, limits,
    )
    if cache is not None:
        cache.put(key, result)
    return result


def _run_differential_uncached(
    candidate: ElabDesign,
    reference: ElabDesign,
    samples: int,
    seed: int,
    max_mismatches_recorded: int,
    engine: str,
    limits: Optional[ResourceLimits],
) -> TestbenchResult:
    interface_error = check_interface(candidate, reference)
    if interface_error:
        return TestbenchResult(passed=False, failure_reason=interface_error)

    try:
        cand_sim = make_simulator(candidate, engine=engine, limits=limits)
        ref_sim = make_simulator(reference, engine=engine, limits=limits)
    except SimulationError as exc:
        return TestbenchResult(passed=False, failure_reason=str(exc))

    rng = random.Random(seed)
    ref_inputs = ref_sim.inputs
    clock = next((p.name for p in ref_inputs if p.name in CLOCK_NAMES), None)
    resets = [p.name for p in ref_inputs if p.name in RESET_NAMES]
    data_inputs = [
        p for p in ref_inputs if p.name != clock and p.name not in resets
    ]
    outputs = [p.name for p in ref_sim.outputs]

    result = TestbenchResult(passed=True)
    try:
        if clock is None:
            _run_combinational(
                cand_sim, ref_sim, data_inputs, resets, outputs,
                samples, rng, result, max_mismatches_recorded,
            )
        else:
            _run_sequential(
                cand_sim, ref_sim, clock, data_inputs, resets, outputs,
                samples, rng, result, max_mismatches_recorded,
            )
    except SimulationError as exc:
        return TestbenchResult(passed=False, failure_reason=str(exc))
    result.passed = result.mismatch_count == 0 and not result.failure_reason
    return result


def _random_vector(rng: random.Random, width: int) -> int:
    # Mix uniform randomness with corner values so narrow comparisons
    # (all-zeros, all-ones) are exercised early.
    choice = rng.random()
    if choice < 0.1:
        return 0
    if choice < 0.2:
        return (1 << width) - 1
    return rng.getrandbits(width)


def _compare(
    cand_sim: Simulator,
    ref_sim: Simulator,
    outputs: list[str],
    sample: int,
    result: TestbenchResult,
    limit: int,
) -> None:
    result.samples += 1
    for name in outputs:
        expected = ref_sim.get(name)
        actual = cand_sim.get(name)
        if not expected.same_as(actual):
            result.mismatch_count += 1
            if len(result.mismatches) < limit:
                result.mismatches.append(
                    Mismatch(
                        sample=sample, output=name,
                        expected=str(expected), actual=str(actual),
                    )
                )
            break  # one mismatch per sample is enough


def _run_combinational(
    cand_sim, ref_sim, data_inputs, resets, outputs,
    samples, rng, result, limit,
) -> None:
    for sample in range(samples):
        stimulus: dict[str, Logic | int] = {}
        for port in data_inputs:
            stimulus[port.name] = _random_vector(rng, port.width)
        for name in resets:
            stimulus[name] = 0 if not name.endswith("n") else 1
        cand_sim.step(dict(stimulus))
        ref_sim.step(dict(stimulus))
        _compare(cand_sim, ref_sim, outputs, sample, result, limit)


def _run_sequential(
    cand_sim, ref_sim, clock, data_inputs, resets, outputs,
    samples, rng, result, limit,
) -> None:
    reset_cycles = 2 if resets else 0
    for cycle in range(samples):
        stimulus: dict[str, Logic | int] = {}
        in_reset = cycle < reset_cycles
        for name in resets:
            active = 1 if not name.endswith("n") else 0
            stimulus[name] = active if in_reset else active ^ 1
        for port in data_inputs:
            stimulus[port.name] = _random_vector(rng, port.width)
        stimulus[clock] = 0
        cand_sim.step(dict(stimulus))
        ref_sim.step(dict(stimulus))
        cand_sim.step({clock: 1})
        ref_sim.step({clock: 1})
        if not in_reset:
            _compare(cand_sim, ref_sim, outputs, cycle, result, limit)
