"""The never-crash simulation sandbox boundary.

The compiler front-end has had a never-crash boundary since the
resource-budget work (:func:`repro.diagnostics.compile_source` converts
overflows and internal errors into ``RESOURCE_LIMIT`` / ``INTERNAL``
diagnostics); this module gives the *simulator* the same treatment.
:func:`run_sandboxed` wraps one harness body and converts

* a :class:`~repro.errors.SimLimitExceeded` budget overflow into a
  typed ``limit`` :class:`SimVerdict` (the RESOURCE_LIMIT analogue),
* any other internal exception into a typed ``crashed`` verdict (the
  INTERNAL analogue),

both with engine + phase attribution, while ordinary
:class:`~repro.errors.SimulationError` failures stay ``fail`` verdicts
(design-caused, expected) and three families deliberately **propagate**:

* :class:`~repro.errors.DeadlineExceededError` -- the ambient service
  deadline fired at the ``sim-cycle`` seam; the service must see it
  typed (504), never converted into a crashed verdict;
* :class:`~repro.errors.InjectedFault` /
  :class:`~repro.errors.LLMTimeoutError` -- chaos faults are transient
  and must reach the retry/isolation layer untouched;
* ``KeyboardInterrupt`` / ``SystemExit`` -- shutdown is not a verdict.

``ok`` / ``fail`` verdicts are memoizable; ``limit`` / ``crashed`` /
chaos-injected verdicts never are (:attr:`SimVerdict.cacheable`), so the
:class:`~repro.sim.verdict.VerdictCache` only ever holds results that
are pure functions of design content and stimulus.

:func:`simulate` is the one-call boundary used by the hostile-corpus
gate, the fuzzer and tests: run a differential or traced-feedback
harness and always get a :class:`SimOutcome` back.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple

from ..errors import (
    DeadlineExceededError,
    InjectedFault,
    LLMTimeoutError,
    SimLimitExceeded,
    SimulationError,
)

#: Verdict categories, mirroring the compiler's diagnostic taxonomy:
#: ``ok``/``fail`` are ordinary outcomes, ``limit`` is RESOURCE_LIMIT's
#: analogue, ``crashed`` is INTERNAL's.
SIM_VERDICT_CATEGORIES = ("ok", "fail", "limit", "crashed")


@dataclass(frozen=True)
class SimVerdict:
    """Typed outcome classification of one sandboxed simulation."""

    category: str
    engine: str = ""
    #: Where the run was when the outcome fired (``construct``,
    #: ``cycle``, ``trace``, ``interface``, ``chaos``).
    phase: str = ""
    #: The exhausted budget kind for ``limit`` verdicts; the exception
    #: type name for ``crashed`` ones.
    kind: str = ""
    detail: str = ""
    #: True when the verdict was fabricated by chaos injection (never
    #: memoized, never trusted as a real outcome).
    injected: bool = False

    @property
    def ok(self) -> bool:
        return self.category == "ok"

    @property
    def cacheable(self) -> bool:
        """Only genuine ok/fail outcomes may enter the verdict cache."""
        return self.category in ("ok", "fail") and not self.injected

    def summary(self) -> str:
        head = f"{self.category}[{self.engine}]" if self.engine else self.category
        parts = [head]
        if self.phase:
            parts.append(f"phase={self.phase}")
        if self.kind:
            parts.append(f"kind={self.kind}")
        if self.injected:
            parts.append("injected")
        return " ".join(parts)


@dataclass
class SandboxStats:
    """Counters for sandbox interventions (``report.sim`` telemetry).

    Volatile execution telemetry: surfaced on stderr and in the markdown
    report but excluded from ``to_json`` so resume digests stay
    byte-identical.
    """

    limit_verdicts: int = 0
    crashed_verdicts: int = 0
    #: Subset of ``limit_verdicts`` where the wall-clock watchdog fired.
    watchdog_fires: int = 0
    #: Ambient deadlines that expired mid-simulation (``sim-cycle``).
    deadline_fires: int = 0
    #: Chaos faults drawn at the simulator seam (raised or fabricated).
    chaos_faults: int = 0

    def record(self, verdict: SimVerdict) -> None:
        if verdict.injected:
            return  # chaos fabrications are counted as chaos_faults
        if verdict.category == "limit":
            self.limit_verdicts += 1
            if verdict.kind == "wall clock":
                self.watchdog_fires += 1
        elif verdict.category == "crashed":
            self.crashed_verdicts += 1

    def as_dict(self) -> dict:
        return {
            "limit_verdicts": self.limit_verdicts,
            "crashed_verdicts": self.crashed_verdicts,
            "watchdog_fires": self.watchdog_fires,
            "deadline_fires": self.deadline_fires,
            "chaos_faults": self.chaos_faults,
        }


#: Process-wide default, active from import so ad-hoc harness calls are
#: always counted somewhere; reports scope their own instance.
DEFAULT_SANDBOX_STATS = SandboxStats()

_active_stats: Optional[SandboxStats] = DEFAULT_SANDBOX_STATS
_active_lock = threading.Lock()


def get_active_sandbox_stats() -> Optional[SandboxStats]:
    """The stats sink sandboxed harnesses currently count into."""
    return _active_stats


def set_active_sandbox_stats(
    stats: Optional[SandboxStats],
) -> Optional[SandboxStats]:
    """Install ``stats`` as the active sink; returns the previous one."""
    global _active_stats
    with _active_lock:
        previous = _active_stats
        _active_stats = stats
        return previous


@contextmanager
def use_sandbox_stats(
    stats: Optional[SandboxStats] = None,
) -> Iterator[SandboxStats]:
    """Scope a (fresh by default) stats sink to a ``with`` block."""
    scoped = stats if stats is not None else SandboxStats()
    previous = set_active_sandbox_stats(scoped)
    try:
        yield scoped
    finally:
        set_active_sandbox_stats(previous)


def classify_exception(exc: BaseException, engine: str) -> SimVerdict:
    """The :class:`SimVerdict` for one in-sandbox exception.

    Only meaningful for exception families the sandbox converts; the
    propagating families (deadline, chaos, shutdown) must be filtered by
    the caller first -- :func:`run_sandboxed` does.
    """
    if isinstance(exc, SimLimitExceeded):
        return SimVerdict(
            category="limit",
            engine=engine,
            phase=exc.phase,
            kind=exc.kind,
            detail=str(exc),
        )
    if isinstance(exc, SimulationError):
        return SimVerdict(
            category="fail", engine=engine, phase="construct", detail=str(exc)
        )
    return SimVerdict(
        category="crashed",
        engine=engine,
        kind=type(exc).__name__,
        detail=str(exc),
    )


def run_sandboxed(
    fn: Callable[[], Any], engine: str
) -> Tuple[Any, Optional[SimVerdict]]:
    """Run one harness body under the never-crash boundary.

    Returns ``(result, None)`` on success or ``(None, verdict)`` when
    the body raised a convertible exception; deadline expiry, chaos
    faults and shutdown propagate (see module docstring).
    """
    stats = get_active_sandbox_stats()
    try:
        return fn(), None
    except DeadlineExceededError:
        if stats is not None:
            stats.deadline_fires += 1
        raise
    except (InjectedFault, LLMTimeoutError):
        raise
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        verdict = classify_exception(exc, engine)
        if stats is not None:
            stats.record(verdict)
        return None, verdict


@dataclass
class SimOutcome:
    """What :func:`simulate` always returns: a verdict plus the harness
    payload (a :class:`~repro.sim.testbench.TestbenchResult` or a
    :class:`~repro.sim.feedback.SimFeedback`) when one was produced."""

    verdict: SimVerdict
    result: Any = None


def simulate(
    candidate,
    reference,
    mode: str = "diff",
    samples: int = 16,
    seed: int = 0,
    engine: Optional[str] = None,
    sim_limits=None,
) -> SimOutcome:
    """The one-call never-crash simulation boundary.

    ``mode`` selects the harness: ``"diff"`` runs the differential
    testbench (:func:`~repro.sim.testbench.run_differential`),
    ``"feedback"`` the traced-feedback harness
    (:func:`~repro.sim.feedback.make_sim_feedback`).  Both are
    sandboxed, so any budget overflow or internal error comes back as a
    typed ``limit``/``crashed`` verdict -- never an exception (deadline
    expiry and chaos faults still propagate, by design).
    """
    # Imported lazily: the harness modules import this one for the guard.
    if mode == "diff":
        from .testbench import run_differential

        result = run_differential(
            candidate, reference, samples=samples, seed=seed,
            engine=engine, sim_limits=sim_limits,
        )
    elif mode == "feedback":
        from .feedback import make_sim_feedback

        result = make_sim_feedback(
            candidate, reference, samples=samples, seed=seed,
            engine=engine, sim_limits=sim_limits,
        )
    else:
        raise ValueError(f"unknown simulate mode {mode!r}")
    verdict = result.verdict
    if verdict is None:  # defensive: harnesses always attach one
        verdict = SimVerdict(
            category="ok" if getattr(result, "passed", False) else "fail",
            engine=engine or "",
        )
    return SimOutcome(verdict=verdict, result=result)
