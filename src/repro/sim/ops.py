"""Verilog operator semantics over :class:`~repro.sim.values.Logic`."""

from __future__ import annotations

from .values import Logic


def _arith_width(a: Logic, b: Logic) -> int:
    return max(a.width, b.width)


def _both_signed(a: Logic, b: Logic) -> bool:
    return a.signed and b.signed


def binary(op: str, a: Logic, b: Logic) -> Logic:
    """Apply a Verilog binary operator."""
    if op in ("+", "-", "*", "/", "%", "**"):
        return _arith(op, a, b)
    if op in ("&", "|", "^", "^~", "~^"):
        return _bitwise(op, a, b)
    if op in ("==", "!=", "<", "<=", ">", ">="):
        return _compare(op, a, b)
    if op in ("===", "!=="):
        same = a.same_as(b)
        return Logic(1, int(same if op == "===" else not same))
    if op in ("&&", "||"):
        return _logical(op, a, b)
    if op in ("<<", ">>", "<<<", ">>>"):
        return _shift(op, a, b)
    raise ValueError(f"unknown binary operator {op!r}")


def unary(op: str, a: Logic) -> Logic:
    """Apply a Verilog unary operator."""
    if op == "+":
        return a
    if op == "-":
        if a.xmask:
            return Logic.all_x(a.width, a.signed)
        return Logic.from_int(-a.bits, a.width, a.signed)
    if op == "~":
        return Logic(a.width, ~a.bits & ~a.xmask, a.xmask, a.signed)
    if op == "!":
        truth = a.is_true()
        if truth is None:
            return Logic.all_x(1)
        return Logic(1, int(not truth))
    if op in ("&", "~&", "|", "~|", "^", "~^", "^~"):
        return _reduction(op, a)
    raise ValueError(f"unknown unary operator {op!r}")


def _arith(op: str, a: Logic, b: Logic) -> Logic:
    width = _arith_width(a, b)
    signed = _both_signed(a, b)
    if a.xmask or b.xmask:
        return Logic.all_x(width, signed)
    if signed:
        av = a.resize(width).to_signed_int()
        bv = b.resize(width).to_signed_int()
    else:  # unsigned context: operands are zero-extended
        av, bv = a.bits, b.bits
    if op == "+":
        result = av + bv
    elif op == "-":
        result = av - bv
    elif op == "*":
        result = av * bv
    elif op == "/":
        if bv == 0:
            return Logic.all_x(width, signed)
        result = abs(av) // abs(bv)
        if (av < 0) != (bv < 0):
            result = -result
    elif op == "%":
        if bv == 0:
            return Logic.all_x(width, signed)
        result = abs(av) % abs(bv)
        if av < 0:
            result = -result
    else:  # **
        if bv < 0:
            result = 0 if abs(av) != 1 else (1 if av == 1 or bv % 2 == 0 else -1)
        elif bv > 4096:  # clamp pathological exponents
            result = 0
        else:
            result = av**bv
    return Logic.from_int(result, width, signed)


def _bitwise(op: str, a: Logic, b: Logic) -> Logic:
    width = _arith_width(a, b)
    a = a.resize(width)
    b = b.resize(width)
    mask = (1 << width) - 1
    ak, bk = ~a.xmask & mask, ~b.xmask & mask  # known masks
    if op == "&":
        # Result known-0 where either side is known-0.
        zero = (ak & ~a.bits) | (bk & ~b.bits)
        one = (ak & a.bits) & (bk & b.bits)
    elif op == "|":
        one = (ak & a.bits) | (bk & b.bits)
        zero = (ak & ~a.bits) & (bk & ~b.bits)
    else:  # xor / xnor: needs both bits known
        both = ak & bk
        val = (a.bits ^ b.bits) & both
        if op in ("^~", "~^"):
            val = ~val & both
        one = val
        zero = both & ~val
    bits = one & mask
    xmask = mask & ~(one | zero)
    return Logic(width, bits, xmask, _both_signed(a, b))


def _compare(op: str, a: Logic, b: Logic) -> Logic:
    signed = _both_signed(a, b)
    width = _arith_width(a, b)
    if a.xmask or b.xmask:
        return Logic.all_x(1)
    if signed:
        av = a.resize(width).to_signed_int()
        bv = b.resize(width).to_signed_int()
    else:
        av, bv = a.bits, b.bits
    result = {
        "==": av == bv,
        "!=": av != bv,
        "<": av < bv,
        "<=": av <= bv,
        ">": av > bv,
        ">=": av >= bv,
    }[op]
    return Logic(1, int(result))


def _logical(op: str, a: Logic, b: Logic) -> Logic:
    at, bt = a.is_true(), b.is_true()
    if op == "&&":
        if at is False or bt is False:
            return Logic(1, 0)
        if at is None or bt is None:
            return Logic.all_x(1)
        return Logic(1, 1)
    if at is True or bt is True:
        return Logic(1, 1)
    if at is None or bt is None:
        return Logic.all_x(1)
    return Logic(1, 0)


def _shift(op: str, a: Logic, b: Logic) -> Logic:
    if b.xmask:
        return Logic.all_x(a.width, a.signed)
    amount = b.to_int()
    if amount >= a.width + 1 and op != ">>>":
        amount = min(amount, a.width)
    if op in ("<<", "<<<"):
        return Logic(a.width, a.bits << amount, a.xmask << amount, a.signed)
    if op == ">>" or (op == ">>>" and not a.signed):
        return Logic(a.width, a.bits >> amount, a.xmask >> amount, a.signed)
    # Arithmetic right shift on a signed value.
    amount = min(amount, a.width)
    msb = a.width - 1
    bits, xmask = a.bits >> amount, a.xmask >> amount
    if (a.xmask >> msb) & 1 or (a.bits >> msb) & 1:
        fill = ((1 << amount) - 1) << (a.width - amount) if amount else 0
        if (a.xmask >> msb) & 1:
            xmask |= fill
            if (a.bits >> msb) & 1:
                bits |= fill
        else:
            bits |= fill
    return Logic(a.width, bits, xmask, a.signed)


def _reduction(op: str, a: Logic) -> Logic:
    mask = (1 << a.width) - 1
    known = ~a.xmask & mask
    ones = a.bits & known
    zeros = known & ~a.bits
    if op in ("&", "~&"):
        if zeros:
            val: int | None = 0
        elif a.xmask:
            val = None
        else:
            val = 1
    elif op in ("|", "~|"):
        if ones:
            val = 1
        elif a.xmask:
            val = None
        else:
            val = 0
    else:  # xor family
        if a.xmask:
            val = None
        else:
            val = bin(a.bits).count("1") & 1
    if val is None:
        return Logic.all_x(1)
    if op in ("~&", "~|", "~^", "^~"):
        val ^= 1
    return Logic(1, val)


def concat(parts: list[Logic]) -> Logic:
    """Concatenate, first part = most significant."""
    width = sum(p.width for p in parts)
    bits = 0
    xmask = 0
    for part in parts:
        bits = (bits << part.width) | part.bits
        xmask = (xmask << part.width) | part.xmask
    return Logic(max(width, 1), bits, xmask)


def replicate(count: int, value: Logic) -> Logic:
    """Verilog replication ``{count{value}}``."""
    if count <= 0:
        return Logic(1, 0)
    return concat([value] * count)


def ternary(cond: Logic, then: Logic, other: Logic) -> Logic:
    """Verilog conditional ``cond ? then : other`` with X-merge."""
    truth = cond.is_true()
    width = max(then.width, other.width)
    if truth is True:
        return then.resize(width)
    if truth is False:
        return other.resize(width)
    # Unknown condition: bitwise-merge (agreeing known bits stay known).
    t = then.resize(width)
    o = other.resize(width)
    mask = (1 << width) - 1
    agree = ~(t.bits ^ o.bits) & ~t.xmask & ~o.xmask & mask
    return Logic(width, t.bits & agree, mask & ~agree)
