"""VCD (Value Change Dump) output for recorded traces.

Any credible Verilog simulator can dump VCD; this writer turns a
:class:`~repro.sim.trace.Trace` (or a pair of traces for expected-vs-
actual debugging) into a standard IEEE-1364 VCD file loadable by
GTKWave and friends.
"""

from __future__ import annotations

from dataclasses import dataclass

from .trace import Trace
from .values import Logic

_ID_CHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _identifier(index: int) -> str:
    """Short VCD identifier codes: !, ", ..., then two-char codes."""
    if index < len(_ID_CHARS):
        return _ID_CHARS[index]
    hi, lo = divmod(index, len(_ID_CHARS))
    return _ID_CHARS[hi - 1] + _ID_CHARS[lo]


def _format_value(value: Logic) -> str:
    """VCD scalar/vector value text (without the identifier)."""
    if value.width == 1:
        if value.xmask:
            return "z" if value.bits else "x"
        return str(value.bits)
    chars = []
    for i in reversed(range(value.width)):
        if (value.xmask >> i) & 1:
            chars.append("z" if (value.bits >> i) & 1 else "x")
        else:
            chars.append(str((value.bits >> i) & 1))
    return "b" + "".join(chars) + " "


@dataclass
class VcdSignal:
    name: str
    width: int
    identifier: str


class VcdWriter:
    """Accumulates VCD text for one or more traces."""

    def __init__(
        self, timescale: str = "1ns", module: str = "top", tracker: object = None
    ):
        self.timescale = timescale
        self.module = module
        #: Optional SimLimitTracker; when set, every emitted value change
        #: charges the trace-entry/byte budgets so a VCD of a hostile
        #: trace cannot balloon past the sandbox limits.
        self.tracker = tracker
        self._signals: list[VcdSignal] = []
        self._changes: dict[int, list[str]] = {}

    def add_trace(self, trace: Trace, prefix: str = "") -> None:
        """Register every signal of ``trace`` and record its changes.
        ``prefix`` namespaces the signals (e.g. 'expected_')."""
        tracker = self.tracker
        for name in trace.signals:
            values = trace.samples.get(name, [])
            width = values[0].width if values else 1
            signal = VcdSignal(
                name=prefix + name, width=width,
                identifier=_identifier(len(self._signals)),
            )
            self._signals.append(signal)
            previous: Logic | None = None
            for step, value in enumerate(values):
                if previous is not None and value.same_as(previous):
                    continue
                previous = value
                change = f"{_format_value(value)}{signal.identifier}"
                if tracker is not None:
                    tracker.charge_trace(1, len(change))
                self._changes.setdefault(step, []).append(change)

    def render(self) -> str:
        lines = [
            "$date repro RTLFixer reproduction $end",
            "$version repro.sim VCD writer $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {self.module} $end",
        ]
        for signal in self._signals:
            kind = "wire"
            lines.append(
                f"$var {kind} {signal.width} {signal.identifier} {signal.name} $end"
            )
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        for step in sorted(self._changes):
            lines.append(f"#{step}")
            lines.extend(self._changes[step])
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.render())


def dump_vcd(trace: Trace, path: str, module: str = "top") -> None:
    """Convenience: write one trace as a VCD file."""
    writer = VcdWriter(module=module)
    writer.add_trace(trace)
    writer.save(path)


def dump_comparison_vcd(
    actual: Trace, expected: Trace, path: str, module: str = "diff"
) -> None:
    """Expected and actual traces side by side for waveform debugging."""
    writer = VcdWriter(module=module)
    writer.add_trace(expected, prefix="expected_")
    writer.add_trace(actual, prefix="actual_")
    writer.save(path)
