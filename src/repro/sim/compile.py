"""Closure lowering: compile elaborated processes to two-state closures.

The interpretive simulator walks the AST for every process on every
delta cycle, paying per-node ``isinstance`` dispatch, per-lookup dict
resolution of hierarchical names, and a :class:`~repro.sim.values.Logic`
allocation per intermediate value.  This module lowers each process --
continuous assign, instance port connection, combinational or
edge-sensitive always block -- **once per design** into a specialized
Python closure operating on a *two-state* integer plane:

* every net read resolves through a pre-computed flat name and yields
  the raw ``bits`` integer of the stored :class:`Logic` (bailing out the
  moment an X/Z bit is observed);
* every operator is specialized at lowering time against the statically
  known operand widths and signedness, replicating the width-context
  rules of :class:`~repro.sim.eval.Evaluator` and the operator semantics
  of :mod:`repro.sim.ops` exactly for fully-known values;
* every write constructs at most one ``Logic`` (skipped entirely when
  the stored value is unchanged).

The contract with the engine (:mod:`repro.sim.engine`) is *bail-safe
speculation*: a lowered closure either completes with results
bit-identical to the interpreter, or returns ``None`` ("bail") after
recording every write it performed in an undo log.  The engine then
rolls the speculative writes back and re-runs the process on the
existing 4-state interpreter -- the fast path never needs to model X/Z
propagation, division by zero, out-of-range indexing or any other
4-state corner, it just refuses to run them.  Constructs with no fast
lowering at all (frames/local declarations, function calls, ``$display``,
X/Z literals outside case labels, ...) are detected at lowering time and
leave the process permanently interpreted.

Lowered designs are content-addressed: :func:`lowered_for` caches the
per-design closure tables in the active
:class:`~repro.verilog.pipeline.StageCache` under the ``sim-lower``
stage, keyed by the design digest stamped at elaboration -- a sixth
pipeline stage hanging off ``elaborate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..verilog import ast
from ..verilog.elaborate import ElabModule, const_eval
from ..verilog.pipeline import Artifact, _digest, get_active_stage_cache
from ..verilog.symbols import Symbol
from .exec import NbaUpdate, StmtExecutor
from .values import Logic

#: Stage name under which lowered designs are cached in the StageCache.
SIM_LOWER_STAGE = "sim-lower"

_DEFAULT_WIDTH = 32

#: Per-loop iteration bound for lowered For/While/Repeat bodies.  A loop
#: that runs longer bails to the interpreter, which applies (and, past
#: its own budget, diagnoses) the authoritative loop limits.
_FAST_LOOP_CAP = 4096


class Unlowerable(Exception):
    """Raised during lowering when a construct has no fast translation."""


# ---------------------------------------------------------------------------
# Small integer helpers (known-value mirrors of Logic.resize / to_signed_int)
# ---------------------------------------------------------------------------


def _mask(width: int) -> int:
    return (1 << width) - 1


def _ext(bits: int, from_w: int, to_w: int, signed: bool) -> int:
    """Known-value ``Logic.resize``: truncate-mask or (sign-)extend."""
    if to_w <= from_w:
        return bits & _mask(to_w)
    if signed and (bits >> (from_w - 1)) & 1:
        return bits | (_mask(to_w) ^ _mask(from_w))
    return bits


def _sv(bits: int, width: int) -> int:
    """Two's-complement reading of a known bit pattern."""
    if (bits >> (width - 1)) & 1:
        return bits - (1 << width)
    return bits


def _widened_fn(fn, from_w: int, to_w: int, signed: bool):
    """Compose :func:`_ext` onto ``fn`` at lowering time.

    Every lowered value keeps its bits masked to its own width, so
    widening an unsigned value is the identity -- only genuine
    sign-extension needs a wrapper.  Called with ``to_w >= from_w``."""
    if to_w <= from_w or not signed:
        return fn
    sign = 1 << (from_w - 1)
    extm = _mask(to_w) ^ _mask(from_w)

    def widened(values, arrays):
        b = fn(values, arrays)
        if b is None or not (b & sign):
            return b
        return b | extm

    return widened


def _set_slice_bits(
    cur_bits: int, cur_x: int, cur_w: int, hi: int, lo: int, vbits: int, vw: int
) -> tuple[int, int]:
    """Known-value mirror of ``Logic.set_slice`` over the bit planes.

    Bits of the target range beyond ``vw`` become X (reads past the end
    of the value read X); out-of-range target positions are ignored.
    """
    t_lo = max(lo, 0)
    t_hi = min(hi, cur_w - 1)
    if t_hi < t_lo:
        return cur_bits, cur_x
    window = (_mask(t_hi - t_lo + 1)) << t_lo
    # Positions whose source bit exists in the value (i = p - lo < vw).
    known_hi = min(t_hi, lo + vw - 1)
    if known_hi >= t_lo:
        known = (_mask(known_hi - t_lo + 1)) << t_lo
    else:
        known = 0
    placed = ((vbits >> (t_lo - lo)) << t_lo) & known
    bits = (cur_bits & ~window) | placed
    x = (cur_x & ~window) | (window & ~known)
    return bits, x


# ---------------------------------------------------------------------------
# Lowering context
# ---------------------------------------------------------------------------


@dataclass
class _LowerCtx:
    """Static per-instance naming context (mirror of EvalContext)."""

    module: ElabModule
    prefix: str

    def flat(self, name: str) -> str:
        return self.prefix + name

    def symbol(self, name: str) -> Optional[Symbol]:
        return self.module.symbol(name)

    @property
    def params(self) -> dict:
        return self.module.params


class _Val:
    """A lowered expression: closure + static width/signedness.

    ``fn(values, arrays)`` returns the known bit pattern as an int, or
    ``None`` to bail.  ``const`` holds the value when it is known at
    lowering time (enables constant folding up the tree).
    """

    __slots__ = ("fn", "width", "signed", "const")

    def __init__(self, fn, width: int, signed: bool, const: Optional[int] = None):
        self.fn = fn
        self.width = width
        self.signed = signed
        self.const = const


def _const(value: int, width: int, signed: bool) -> _Val:
    value &= _mask(width)
    return _Val(lambda values, arrays: value, width, signed, const=value)


def _fold(val: _Val, children: list[_Val]) -> _Val:
    """Constant-fold ``val`` when every child is a lowering-time constant."""
    if val.const is not None:
        return val
    if children and all(c.const is not None for c in children):
        folded = val.fn(None, None)
        if folded is None:
            # A constant that the fast plane cannot represent (e.g. a
            # constant division by zero evaluates to X): no fast path.
            raise Unlowerable("constant folds to an unknown value")
        return _const(folded, val.width, val.signed)
    return val


# ---------------------------------------------------------------------------
# Natural width (static mirror of Evaluator._natural_width, frame-free)
# ---------------------------------------------------------------------------


def _nat_width(ctx: _LowerCtx, expr: ast.Expr) -> int:
    if isinstance(expr, ast.Number):
        return max(expr.width if expr.width is not None else _DEFAULT_WIDTH, 1)
    if isinstance(expr, ast.StringLit):
        return max(8 * len(expr.value.encode()), 8)
    if isinstance(expr, ast.Identifier):
        symbol = ctx.symbol(expr.name)
        return max(symbol.width, 1) if symbol is not None else 1
    if isinstance(expr, ast.Select):
        symbol = _base_symbol(ctx, expr.base)
        if symbol is not None and symbol.array is not None:
            return max(symbol.width, 1)
        return 1
    if isinstance(expr, ast.RangeSelect):
        msb = const_eval(expr.msb, ctx.params)
        lsb = const_eval(expr.lsb, ctx.params)
        if msb is None or lsb is None:
            return 1
        return abs(msb - lsb) + 1
    if isinstance(expr, ast.IndexedSelect):
        width = const_eval(expr.width, ctx.params)
        return max(width, 1) if width else 1
    if isinstance(expr, ast.Concat):
        return max(sum(_nat_width(ctx, p) for p in expr.parts), 1)
    if isinstance(expr, ast.Replicate):
        count = const_eval(expr.count, ctx.params) or 1
        inner = sum(_nat_width(ctx, p) for p in expr.value.parts)
        return max(count * inner, 1)
    if isinstance(expr, ast.Unary):
        if expr.op in ("+", "-", "~"):
            return _nat_width(ctx, expr.operand)
        return 1
    if isinstance(expr, ast.Binary):
        if expr.op in _CONTEXT_BINOPS:
            return max(_nat_width(ctx, expr.lhs), _nat_width(ctx, expr.rhs))
        if expr.op in ("<<", ">>", "<<<", ">>>", "**"):
            return _nat_width(ctx, expr.lhs)
        return 1
    if isinstance(expr, ast.Ternary):
        return max(_nat_width(ctx, expr.then), _nat_width(ctx, expr.other))
    if isinstance(expr, ast.SystemCall):
        if expr.name in ("$signed", "$unsigned") and expr.args:
            return _nat_width(ctx, expr.args[0])
        return _DEFAULT_WIDTH
    if isinstance(expr, ast.FuncCall):
        decl = ctx.module.functions.get(expr.name)
        if decl is not None:
            from .eval import _range_width

            return _range_width(decl.range, ctx.params)
        return 1
    return 1


def _base_symbol(ctx: _LowerCtx, expr: ast.Expr) -> Optional[Symbol]:
    if isinstance(expr, ast.Identifier):
        return ctx.symbol(expr.name)
    return None


_CONTEXT_BINOPS = frozenset(["+", "-", "*", "/", "%", "&", "|", "^", "^~", "~^"])


# ---------------------------------------------------------------------------
# Expression lowering (mirror of Evaluator.eval / _eval)
# ---------------------------------------------------------------------------


def lower_expr(ctx: _LowerCtx, expr: ast.Expr, width: Optional[int]) -> _Val:
    """Lower ``expr`` under context ``width`` (mirror of Evaluator.eval)."""
    val = _lower(ctx, expr, width)
    if width is not None and val.width < width:
        fn, fw, signed = val.fn, val.width, val.signed
        if val.const is not None:
            return _const(_ext(val.const, fw, width, signed), width, signed)
        return _Val(_widened_fn(fn, fw, width, signed), width, signed)
    return val


def _lower(ctx: _LowerCtx, expr: ast.Expr, width: Optional[int]) -> _Val:
    if isinstance(expr, ast.Number):
        if expr.xmask:
            raise Unlowerable("x/z literal")  # detected at lowering time
        nat = max(expr.width if expr.width is not None else _DEFAULT_WIDTH, 1)
        return _const(expr.bits, nat, expr.signed)
    if isinstance(expr, ast.StringLit):
        data = expr.value.encode() or b"\0"
        return _const(int.from_bytes(data, "big"), 8 * len(data), False)
    if isinstance(expr, ast.Identifier):
        return _lower_ident(ctx, expr.name)
    if isinstance(expr, ast.Select):
        return _lower_select(ctx, expr)
    if isinstance(expr, ast.RangeSelect):
        return _lower_range_select(ctx, expr)
    if isinstance(expr, ast.IndexedSelect):
        return _lower_indexed_select(ctx, expr)
    if isinstance(expr, ast.Concat):
        return _lower_concat(ctx, expr.parts)
    if isinstance(expr, ast.Replicate):
        return _lower_replicate(ctx, expr)
    if isinstance(expr, ast.Unary):
        return _lower_unary(ctx, expr, width)
    if isinstance(expr, ast.Binary):
        return _lower_binary(ctx, expr, width)
    if isinstance(expr, ast.Ternary):
        return _lower_ternary(ctx, expr, width)
    if isinstance(expr, ast.SystemCall):
        return _lower_system_call(ctx, expr)
    raise Unlowerable(f"no fast lowering for {type(expr).__name__}")


def _lower_ident(ctx: _LowerCtx, name: str) -> _Val:
    symbol = ctx.symbol(name)
    if symbol is None:
        raise Unlowerable(f"undeclared identifier {name!r}")
    if symbol.kind == "parameter":
        value = symbol.value if symbol.value is not None else 0
        return _const(value, _DEFAULT_WIDTH, True)
    flat = ctx.flat(name)
    w = max(symbol.width, 1)

    def read(values, arrays, _flat=flat):
        v = values.get(_flat)
        if v is None or v.xmask:
            return None
        return v.bits

    return _Val(read, w, symbol.signed)


def _lower_select(ctx: _LowerCtx, expr: ast.Select) -> _Val:
    idx = lower_expr(ctx, expr.index, None)
    if isinstance(expr.base, ast.Identifier):
        name = expr.base.name
        symbol = ctx.symbol(name)
        if symbol is None:
            raise Unlowerable("select from undeclared identifier")
        if symbol.array is not None:
            flat = ctx.flat(name)
            lo, hi = symbol.array
            aw = max(symbol.width, 1)

            def read_word(values, arrays, _i=idx.fn, _f=flat, _lo=lo, _hi=hi):
                i = _i(values, arrays)
                if i is None or not _lo <= i <= _hi:
                    return None
                words = arrays.get(_f)
                if words is None:
                    return None
                word = words[i - _lo]
                if word.xmask or word.signed:
                    # signed words carry dynamic signedness the static
                    # plane cannot type; let the interpreter handle them.
                    return None
                return word.bits

            return _Val(read_word, aw, False)
        if symbol.kind in ("parameter", "function"):
            raise Unlowerable("bit-select of a parameter")
        base = _lower_ident(ctx, name)
        mode, ref = _offset_rule(symbol)
        bw = base.width

        def read_bit(values, arrays, _b=base.fn, _i=idx.fn, _m=mode, _r=ref, _w=bw):
            i = _i(values, arrays)
            if i is None:
                return None
            off = i - _r if _m == 0 else (_r - i if _m == 1 else i)
            b = _b(values, arrays)
            if b is None or not 0 <= off < _w:
                return None
            return (b >> off) & 1

        return _Val(read_bit, 1, False)
    base = lower_expr(ctx, expr.base, None)
    bw = base.width

    def read_dyn(values, arrays, _b=base.fn, _i=idx.fn, _w=bw):
        i = _i(values, arrays)
        b = _b(values, arrays)
        if i is None or b is None or not 0 <= i < _w:
            return None
        return (b >> i) & 1

    return _Val(read_dyn, 1, False)


def _offset_rule(symbol: Optional[Symbol]) -> tuple[int, int]:
    """Static form of Evaluator._bit_offset: (mode, ref).

    mode 0: offset = index - ref; mode 1: offset = ref - index;
    mode 2: offset = index (no declared range).
    """
    if symbol is None or symbol.msb is None or symbol.lsb is None:
        return (2, 0)
    if symbol.msb >= symbol.lsb:
        return (0, symbol.lsb)
    return (1, symbol.lsb)


def _lower_range_select(ctx: _LowerCtx, expr: ast.RangeSelect) -> _Val:
    msb = const_eval(expr.msb, ctx.params)
    lsb = const_eval(expr.lsb, ctx.params)
    if msb is None or lsb is None:
        raise Unlowerable("non-constant part-select bounds")
    base = lower_expr(ctx, expr.base, None)
    symbol = _base_symbol(ctx, expr.base)
    mode, ref = _offset_rule(symbol)
    hi = msb - ref if mode == 0 else (ref - msb if mode == 1 else msb)
    lo = lsb - ref if mode == 0 else (ref - lsb if mode == 1 else lsb)
    if hi < lo:
        hi, lo = lo, hi
    if lo < 0 or hi >= base.width:
        raise Unlowerable("part-select reads past the vector")
    w = hi - lo + 1
    m = _mask(w)

    def read(values, arrays, _b=base.fn, _lo=lo, _m=m):
        b = _b(values, arrays)
        if b is None:
            return None
        return (b >> _lo) & _m

    return _fold(_Val(read, w, False), [base])


def _lower_indexed_select(ctx: _LowerCtx, expr: ast.IndexedSelect) -> _Val:
    cw = const_eval(expr.width, ctx.params)
    if not cw:
        raise Unlowerable("non-constant indexed-select width")
    w = max(cw, 1)
    base = lower_expr(ctx, expr.base, None)
    start = lower_expr(ctx, expr.start, None)
    symbol = _base_symbol(ctx, expr.base)
    mode, ref = _offset_rule(symbol)
    bw = base.width
    m = _mask(w)
    asc = expr.ascending

    def read(values, arrays, _b=base.fn, _s=start.fn):
        s = _s(values, arrays)
        b = _b(values, arrays)
        if s is None or b is None:
            return None
        off = s - ref if mode == 0 else (ref - s if mode == 1 else s)
        lo = off if asc else off - w + 1
        if lo < 0 or lo + w > bw:
            return None
        return (b >> lo) & m

    return _Val(read, w, False)


def _lower_concat(ctx: _LowerCtx, parts: list[ast.Expr]) -> _Val:
    vals = [lower_expr(ctx, p, None) for p in parts]
    total = max(sum(v.width for v in vals), 1)
    pairs = [(v.fn, v.width) for v in vals]

    def read(values, arrays, _pairs=tuple(pairs)):
        out = 0
        for fn, w in _pairs:
            b = fn(values, arrays)
            if b is None:
                return None
            out = (out << w) | b
        return out

    return _fold(_Val(read, total, False), vals)


def _lower_replicate(ctx: _LowerCtx, expr: ast.Replicate) -> _Val:
    count = const_eval(expr.count, ctx.params)
    if count is None:
        raise Unlowerable("non-constant replication count")
    inner = _lower_concat(ctx, expr.value.parts)
    if count <= 0:
        return _const(0, 1, False)
    w = inner.width
    total = max(count * w, 1)

    def read(values, arrays, _fn=inner.fn, _w=w, _n=count):
        b = _fn(values, arrays)
        if b is None:
            return None
        out = 0
        for _ in range(_n):
            out = (out << _w) | b
        return out

    return _fold(_Val(read, total, False), [inner])


def _lower_unary(ctx: _LowerCtx, expr: ast.Unary, width: Optional[int]) -> _Val:
    op = expr.op
    if op in ("+", "-", "~"):
        a = lower_expr(ctx, expr.operand, width)
        if op == "+":
            return a
        w, s, m = a.width, a.signed, _mask(a.width)
        if op == "-":
            out = _Val(
                lambda values, arrays, _f=a.fn: None
                if (b := _f(values, arrays)) is None
                else (-b) & m,
                w, s,
            )
        else:
            out = _Val(
                lambda values, arrays, _f=a.fn: None
                if (b := _f(values, arrays)) is None
                else (~b) & m,
                w, s,
            )
        return _fold(out, [a])
    a = lower_expr(ctx, expr.operand, None)
    w, m = a.width, _mask(a.width)
    if op == "!":
        fn = lambda values, arrays, _f=a.fn: None if (b := _f(values, arrays)) is None else int(b == 0)  # noqa: E731
    elif op in ("&", "~&"):
        inv = op == "~&"
        fn = lambda values, arrays, _f=a.fn: None if (b := _f(values, arrays)) is None else int(b == m) ^ inv  # noqa: E731
    elif op in ("|", "~|"):
        inv = op == "~|"
        fn = lambda values, arrays, _f=a.fn: None if (b := _f(values, arrays)) is None else int(b != 0) ^ inv  # noqa: E731
    elif op in ("^", "~^", "^~"):
        inv = op != "^"
        fn = lambda values, arrays, _f=a.fn: None if (b := _f(values, arrays)) is None else (bin(b).count("1") & 1) ^ inv  # noqa: E731
    else:
        raise Unlowerable(f"unknown unary operator {op!r}")
    return _fold(_Val(fn, 1, False), [a])


def _lower_binary(ctx: _LowerCtx, expr: ast.Binary, width: Optional[int]) -> _Val:
    op = expr.op
    if op in _CONTEXT_BINOPS:
        context = max(
            width or 1, _nat_width(ctx, expr.lhs), _nat_width(ctx, expr.rhs)
        )
        a = lower_expr(ctx, expr.lhs, context)
        b = lower_expr(ctx, expr.rhs, context)
        if op in ("+", "-", "*", "/", "%"):
            return _fold(_lower_arith(op, a, b), [a, b])
        return _fold(_lower_bitwise(op, a, b), [a, b])
    if op in ("<", "<=", ">", ">=", "==", "!="):
        inner = max(_nat_width(ctx, expr.lhs), _nat_width(ctx, expr.rhs))
        a = lower_expr(ctx, expr.lhs, inner)
        b = lower_expr(ctx, expr.rhs, inner)
        return _fold(_lower_compare(op, a, b), [a, b])
    if op in ("<<", ">>", "<<<", ">>>"):
        a = lower_expr(ctx, expr.lhs, width)
        b = lower_expr(ctx, expr.rhs, None)
        return _fold(_lower_shift(op, a, b), [a, b])
    if op == "**":
        a = lower_expr(ctx, expr.lhs, width)
        b = lower_expr(ctx, expr.rhs, None)
        return _fold(_lower_arith("**", a, b), [a, b])
    if op in ("===", "!=="):
        a = lower_expr(ctx, expr.lhs, None)
        b = lower_expr(ctx, expr.rhs, None)
        w = max(a.width, b.width)
        want = op == "==="

        def identity(values, arrays, _a=a.fn, _b=b.fn, _aw=a.width, _bw=b.width,
                     _as=a.signed, _bs=b.signed):
            x = _a(values, arrays)
            y = _b(values, arrays)
            if x is None or y is None:
                return None
            same = _ext(x, _aw, w, _as) == _ext(y, _bw, w, _bs)
            return int(same is want)

        return _fold(_Val(identity, 1, False), [a, b])
    if op in ("&&", "||"):
        a = lower_expr(ctx, expr.lhs, None)
        b = lower_expr(ctx, expr.rhs, None)
        conj = op == "&&"

        def logical(values, arrays, _a=a.fn, _b=b.fn):
            x = _a(values, arrays)
            y = _b(values, arrays)
            if x is None or y is None:
                return None
            if conj:
                return int(bool(x) and bool(y))
            return int(bool(x) or bool(y))

        return _fold(_Val(logical, 1, False), [a, b])
    raise Unlowerable(f"unknown binary operator {op!r}")


def _lower_arith(op: str, a: _Val, b: _Val) -> _Val:
    w = max(a.width, b.width)
    s = a.signed and b.signed
    m = _mask(w)
    aw, bw = a.width, b.width

    # The ring operations are sign-agnostic modulo 2^w: specialize them
    # without the two's-complement detour or per-call op dispatch.
    if op in ("+", "-", "*"):
        fa, fb = a.fn, b.fn
        if op == "+":
            def arith(values, arrays):
                x = fa(values, arrays)
                if x is None:
                    return None
                y = fb(values, arrays)
                return None if y is None else (x + y) & m
        elif op == "-":
            def arith(values, arrays):
                x = fa(values, arrays)
                if x is None:
                    return None
                y = fb(values, arrays)
                return None if y is None else (x - y) & m
        else:
            def arith(values, arrays):
                x = fa(values, arrays)
                if x is None:
                    return None
                y = fb(values, arrays)
                return None if y is None else (x * y) & m
        return _Val(arith, w, s)

    def arith(values, arrays, _a=a.fn, _b=b.fn):
        x = _a(values, arrays)
        y = _b(values, arrays)
        if x is None or y is None:
            return None
        if s:
            av = _sv(x, aw)
            bv = _sv(y, bw)
        else:
            av, bv = x, y
        if op == "+":
            r = av + bv
        elif op == "-":
            r = av - bv
        elif op == "*":
            r = av * bv
        elif op == "/":
            if bv == 0:
                return None
            r = abs(av) // abs(bv)
            if (av < 0) != (bv < 0):
                r = -r
        elif op == "%":
            if bv == 0:
                return None
            r = abs(av) % abs(bv)
            if av < 0:
                r = -r
        else:  # **
            if bv < 0:
                r = 0 if abs(av) != 1 else (1 if av == 1 or bv % 2 == 0 else -1)
            elif bv > 4096:
                r = 0
            else:
                r = av**bv
        return r & m

    return _Val(arith, w, s)


def _lower_bitwise(op: str, a: _Val, b: _Val) -> _Val:
    w = max(a.width, b.width)
    s = a.signed and b.signed
    m = _mask(w)
    fa = _widened_fn(a.fn, a.width, w, a.signed)
    fb = _widened_fn(b.fn, b.width, w, b.signed)

    if op == "&":
        def bitwise(values, arrays):
            x = fa(values, arrays)
            if x is None:
                return None
            y = fb(values, arrays)
            return None if y is None else x & y
    elif op == "|":
        def bitwise(values, arrays):
            x = fa(values, arrays)
            if x is None:
                return None
            y = fb(values, arrays)
            return None if y is None else x | y
    elif op == "^":
        def bitwise(values, arrays):
            x = fa(values, arrays)
            if x is None:
                return None
            y = fb(values, arrays)
            return None if y is None else x ^ y
    else:  # ^~ / ~^
        def bitwise(values, arrays):
            x = fa(values, arrays)
            if x is None:
                return None
            y = fb(values, arrays)
            return None if y is None else ~(x ^ y) & m

    return _Val(bitwise, w, s)


def _lower_compare(op: str, a: _Val, b: _Val) -> _Val:
    w = max(a.width, b.width)
    s = a.signed and b.signed
    aw, bw = a.width, b.width

    def compare(values, arrays, _a=a.fn, _b=b.fn):
        x = _a(values, arrays)
        y = _b(values, arrays)
        if x is None or y is None:
            return None
        if s:
            av = _sv(x, aw)
            bv = _sv(y, bw)
        else:
            av, bv = x, y
        if op == "==":
            return int(av == bv)
        if op == "!=":
            return int(av != bv)
        if op == "<":
            return int(av < bv)
        if op == "<=":
            return int(av <= bv)
        if op == ">":
            return int(av > bv)
        return int(av >= bv)

    return _Val(compare, 1, False)


def _lower_shift(op: str, a: _Val, b: _Val) -> _Val:
    w, s = a.width, a.signed
    m = _mask(w)
    fa, fb = a.fn, b.fn

    if op in ("<<", "<<<"):
        def shift(values, arrays):
            x = fa(values, arrays)
            if x is None:
                return None
            amt = fb(values, arrays)
            if amt is None:
                return None
            return (x << (w if amt > w else amt)) & m
    elif op == ">>" or not s:
        # ">>>" on an unsigned operand is a plain logical shift; the
        # interpreter's amount clamp only bounds work, not the result.
        clamped = op != ">>>"

        def shift(values, arrays):
            x = fa(values, arrays)
            if x is None:
                return None
            amt = fb(values, arrays)
            if amt is None:
                return None
            if clamped and amt > w:
                amt = w
            return x >> amt
    else:
        def shift(values, arrays):
            x = fa(values, arrays)
            if x is None:
                return None
            amt = fb(values, arrays)
            if amt is None:
                return None
            if amt > w:
                amt = w
            bits = x >> amt
            if (x >> (w - 1)) & 1 and amt:
                bits |= (_mask(amt)) << (w - amt)
            return bits

    return _Val(shift, w, s)


def _lower_ternary(ctx: _LowerCtx, expr: ast.Ternary, width: Optional[int]) -> _Val:
    cond = lower_expr(ctx, expr.cond, None)
    then = lower_expr(ctx, expr.then, width)
    other = lower_expr(ctx, expr.other, width)
    if then.signed != other.signed:
        raise Unlowerable("ternary branches disagree on signedness")
    w = max(then.width, other.width)
    s = then.signed
    tw, ow = then.width, other.width

    ft = _widened_fn(then.fn, tw, w, s)
    fo = _widened_fn(other.fn, ow, w, s)

    def pick(values, arrays, _c=cond.fn):
        c = _c(values, arrays)
        if c is None:
            return None
        return ft(values, arrays) if c else fo(values, arrays)

    return _fold(_Val(pick, w, s), [cond, then, other])


def _lower_system_call(ctx: _LowerCtx, expr: ast.SystemCall) -> _Val:
    name = expr.name
    if name == "$signed" and expr.args:
        a = lower_expr(ctx, expr.args[0], None)
        return _Val(a.fn, a.width, True, const=a.const)
    if name == "$unsigned" and expr.args:
        a = lower_expr(ctx, expr.args[0], None)
        return _Val(a.fn, a.width, False, const=a.const)
    if name == "$clog2" and expr.args:
        a = lower_expr(ctx, expr.args[0], None)

        def clog2(values, arrays, _f=a.fn):
            v = _f(values, arrays)
            if v is None:
                return None
            return max(0, (v - 1).bit_length()) if v > 0 else 0

        return _fold(_Val(clog2, _DEFAULT_WIDTH, False), [a])
    if name in ("$time", "$stime", "$realtime"):
        return _const(0, 64, False)
    if name == "$random":
        return _const(hash(expr.span.start) & 0xFFFFFFFF, 32, False)
    raise Unlowerable(f"unsupported system function {name}")


# ---------------------------------------------------------------------------
# L-value lowering (mirrors of StmtExecutor._lvalue_width / assign)
# ---------------------------------------------------------------------------


def _lvalue_width(ctx: _LowerCtx, expr: ast.Expr) -> int:
    if isinstance(expr, ast.Identifier):
        symbol = ctx.symbol(expr.name)
        return symbol.width if symbol is not None else 1
    if isinstance(expr, ast.Select):
        return 1
    if isinstance(expr, ast.RangeSelect):
        msb = const_eval(expr.msb, ctx.params)
        lsb = const_eval(expr.lsb, ctx.params)
        if msb is None or lsb is None:
            return 1
        return abs(msb - lsb) + 1
    if isinstance(expr, ast.IndexedSelect):
        width = const_eval(expr.width, ctx.params)
        return width if width else 1
    if isinstance(expr, ast.Concat):
        return sum(_lvalue_width(ctx, p) for p in expr.parts)
    return 1


def _lower_writer(
    ctx: _LowerCtx, lvalue: ast.Expr, vw: int, vsigned: bool
) -> Callable:
    """A writer closure ``write(values, arrays, undo, bits) -> True|None``
    mirroring ``StmtExecutor.assign`` for a known RHS bit pattern of
    static width ``vw`` / signedness ``vsigned``.

    Writers bail (returning ``None``) only *before* any state change of
    their own; partially applied concat writers rely on the undo log.
    """
    if isinstance(lvalue, ast.Concat):
        subs = []
        offset = sum(_lvalue_width(ctx, p) for p in lvalue.parts)
        for part in lvalue.parts:
            pw = _lvalue_width(ctx, part)
            offset -= pw
            # Slices of a known value are known and unsigned.
            subs.append((offset, pw, _mask(pw), _lower_writer(ctx, part, pw, False)))

        def write_concat(values, arrays, undo, bits):
            for off, pw, pm, sub in subs:
                if sub(values, arrays, undo, (bits >> off) & pm) is None:
                    return None
            return True

        return write_concat
    if isinstance(lvalue, ast.Identifier):
        symbol = ctx.symbol(lvalue.name)
        if symbol is None or symbol.kind in ("parameter", "function"):
            raise Unlowerable("write to undeclared or constant name")
        if symbol.array is not None:
            raise Unlowerable("whole-array write")
        flat = ctx.flat(lvalue.name)
        sw = symbol.width
        ssigned = symbol.signed

        # _ext specialized at lowering time: truncation is a mask,
        # widening is the identity unless it genuinely sign-extends.
        msk = _mask(sw)
        sign = (1 << (vw - 1)) if (vsigned and sw > vw) else 0
        extm = (_mask(sw) ^ _mask(vw)) if sign else 0

        def write_ident(values, arrays, undo, bits):
            nb = (bits | extm) if (bits & sign) else (bits & msk)
            cur = values.get(flat)
            if cur is None:
                return None
            # Skip-if-same only when the stored value matches the new
            # one on every field Logic.__eq__ compares (settle's
            # fixpoint check relies on full equality).
            if (cur.xmask == 0 and cur.bits == nb
                    and cur.width == sw and cur.signed == ssigned):
                return True
            undo.append((0, flat, cur))
            values[flat] = Logic(sw, nb, 0, ssigned)
            return True

        return write_ident
    if isinstance(lvalue, ast.Select):
        return _lower_select_writer(ctx, lvalue, vw, vsigned)
    if isinstance(lvalue, ast.RangeSelect):
        return _lower_range_writer(ctx, lvalue, vw)
    if isinstance(lvalue, ast.IndexedSelect):
        return _lower_indexed_writer(ctx, lvalue, vw)
    raise Unlowerable(f"unsupported l-value {type(lvalue).__name__}")


def _require_scalar_base(ctx: _LowerCtx, lvalue) -> tuple[str, Symbol]:
    if not isinstance(lvalue.base, ast.Identifier):
        raise Unlowerable("nested l-value select")
    name = lvalue.base.name
    symbol = ctx.symbol(name)
    if symbol is None or symbol.kind in ("parameter", "function"):
        raise Unlowerable("select-write to undeclared or constant name")
    return name, symbol


def _lower_select_writer(ctx: _LowerCtx, lvalue: ast.Select, vw: int, vsigned: bool):
    name, symbol = _require_scalar_base(ctx, lvalue)
    idx = lower_expr(ctx, lvalue.index, None)
    flat = ctx.flat(name)
    if symbol.array is not None:
        lo, hi = symbol.array
        aw = max(symbol.width, 1)

        def write_word(values, arrays, undo, bits, _i=idx.fn):
            i = _i(values, arrays)
            if i is None:
                return None
            words = arrays.get(flat)
            if words is None:
                return True  # interpreter drops writes to missing arrays
            if lo <= i <= hi:
                undo.append((1, flat, i - lo, words[i - lo]))
                words[i - lo] = Logic(aw, _ext(bits, vw, aw, vsigned), 0, vsigned)
            return True  # out-of-range writes are silently dropped

        return write_word
    mode, ref = _offset_rule(symbol)
    sw = symbol.width
    ssigned = symbol.signed

    def write_bit(values, arrays, undo, bits, _i=idx.fn):
        i = _i(values, arrays)
        if i is None:
            return None
        cur = values.get(flat)
        if cur is None:
            return None
        off = i - ref if mode == 0 else (ref - i if mode == 1 else i)
        if not 0 <= off < sw:
            return True  # set_bit ignores out-of-range writes
        sel = 1 << off
        nb = (cur.bits & ~sel) | ((bits & 1) << off)
        nx = cur.xmask & ~sel
        if (nb == cur.bits and nx == cur.xmask
                and cur.width == sw and cur.signed == ssigned):
            return True
        undo.append((0, flat, cur))
        values[flat] = Logic(sw, nb, nx, ssigned)
        return True

    return write_bit


def _lower_range_writer(ctx: _LowerCtx, lvalue: ast.RangeSelect, vw: int):
    name, symbol = _require_scalar_base(ctx, lvalue)
    flat = ctx.flat(name)
    sw = symbol.width
    ssigned = symbol.signed
    msb = const_eval(lvalue.msb, ctx.params)
    lsb = const_eval(lvalue.lsb, ctx.params)
    if msb is None or lsb is None:
        # The interpreter silently drops part-select writes with
        # non-constant bounds; mirror that exactly.
        return lambda values, arrays, undo, bits: True
    mode, ref = _offset_rule(symbol)
    hi = msb - ref if mode == 0 else (ref - msb if mode == 1 else msb)
    lo = lsb - ref if mode == 0 else (ref - lsb if mode == 1 else lsb)
    if hi < lo:
        hi, lo = lo, hi

    def write_range(values, arrays, undo, bits):
        cur = values.get(flat)
        if cur is None:
            return None
        nb, nx = _set_slice_bits(cur.bits, cur.xmask, sw, hi, lo, bits, vw)
        if (nb == cur.bits and nx == cur.xmask
                and cur.width == sw and cur.signed == ssigned):
            return True
        undo.append((0, flat, cur))
        values[flat] = Logic(sw, nb, nx, ssigned)
        return True

    return write_range


def _lower_indexed_writer(ctx: _LowerCtx, lvalue: ast.IndexedSelect, vw: int):
    name, symbol = _require_scalar_base(ctx, lvalue)
    flat = ctx.flat(name)
    sw = symbol.width
    ssigned = symbol.signed
    start = lower_expr(ctx, lvalue.start, None)
    width_val = lower_expr(ctx, lvalue.width, None)
    mode, ref = _offset_rule(symbol)
    asc = lvalue.ascending

    def write_indexed(values, arrays, undo, bits, _s=start.fn, _w=width_val.fn):
        s = _s(values, arrays)
        wv = _w(values, arrays)
        if s is None or wv is None:
            return None
        w = max(wv, 1)
        off = s - ref if mode == 0 else (ref - s if mode == 1 else s)
        hi, lo = (off + w - 1, off) if asc else (off, off - w + 1)
        cur = values.get(flat)
        if cur is None:
            return None
        nb, nx = _set_slice_bits(cur.bits, cur.xmask, sw, hi, lo, bits, vw)
        if (nb == cur.bits and nx == cur.xmask
                and cur.width == sw and cur.signed == ssigned):
            return True
        undo.append((0, flat, cur))
        values[flat] = Logic(sw, nb, nx, ssigned)
        return True

    return write_indexed


# ---------------------------------------------------------------------------
# Statement lowering (mirror of StmtExecutor.exec_stmt)
# ---------------------------------------------------------------------------
#
# Statement closures have signature
#     stmt(values, arrays, undo, nba, ex) -> True | None
# where ``undo`` collects speculative writes, ``nba`` is the shared
# nonblocking queue (None in combinational contexts) and ``ex`` is a
# per-simulator StmtExecutor used only to commit nonblocking writes to
# complex l-values with exact interpreter semantics.


def lower_stmt(ctx: _LowerCtx, stmt: ast.Stmt, seq: bool) -> Callable:
    """Lower one statement to ``fn(values, arrays, undo, nba, ex) -> True|None``.

    ``seq`` selects non-blocking-assignment handling for edge-sensitive
    processes.  Raises :class:`Unlowerable` for constructs the fast path
    does not cover; the returned closure itself returns ``None`` (bail)
    when it meets X/Z at run time."""
    if isinstance(stmt, ast.NullStmt):
        return lambda values, arrays, undo, nba, ex: True
    if isinstance(stmt, ast.Block):
        if stmt.decls:
            raise Unlowerable("block-local declarations need a frame")
        children = [lower_stmt(ctx, child, seq) for child in stmt.stmts]

        def run_block(values, arrays, undo, nba, ex):
            for child in children:
                if child(values, arrays, undo, nba, ex) is None:
                    return None
            return True

        return run_block
    if isinstance(stmt, ast.ProcAssign):
        return _lower_assign(ctx, stmt, seq)
    if isinstance(stmt, ast.If):
        cond = lower_expr(ctx, stmt.cond, None)
        then = lower_stmt(ctx, stmt.then, seq)
        other = lower_stmt(ctx, stmt.other, seq) if stmt.other is not None else None

        def run_if(values, arrays, undo, nba, ex, _c=cond.fn):
            c = _c(values, arrays)
            if c is None:
                return None
            if c:
                return then(values, arrays, undo, nba, ex)
            if other is not None:
                return other(values, arrays, undo, nba, ex)
            return True

        return run_if
    if isinstance(stmt, ast.Case):
        return _lower_case(ctx, stmt, seq)
    if isinstance(stmt, ast.For):
        return _lower_for(ctx, stmt, seq)
    if isinstance(stmt, ast.While):
        cond = lower_expr(ctx, stmt.cond, None)
        body = lower_stmt(ctx, stmt.body, seq)

        def run_while(values, arrays, undo, nba, ex, _c=cond.fn):
            n = 0
            while True:
                c = _c(values, arrays)
                if c is None:
                    return None
                if not c:
                    return True
                if body(values, arrays, undo, nba, ex) is None:
                    return None
                n += 1
                if n > _FAST_LOOP_CAP:
                    return None  # let the interpreter police the budget

        return run_while
    if isinstance(stmt, ast.Repeat):
        count = lower_expr(ctx, stmt.count, None)
        body = lower_stmt(ctx, stmt.body, seq)

        def run_repeat(values, arrays, undo, nba, ex, _c=count.fn):
            times = _c(values, arrays)
            if times is None or times > _FAST_LOOP_CAP:
                return None
            for _ in range(times):
                if body(values, arrays, undo, nba, ex) is None:
                    return None
            return True

        return run_repeat
    raise Unlowerable(f"no fast lowering for {type(stmt).__name__}")


def _lower_assign(ctx: _LowerCtx, stmt: ast.ProcAssign, seq: bool) -> Callable:
    tw = _lvalue_width(ctx, stmt.lvalue)
    context = max(tw, _nat_width(ctx, stmt.rhs))
    val = lower_expr(ctx, stmt.rhs, context)
    vw, vsigned = val.width, val.signed
    if stmt.blocking or not seq:
        writer = _lower_writer(ctx, stmt.lvalue, vw, vsigned)

        def run_assign(values, arrays, undo, nba, ex, _v=val.fn):
            b = _v(values, arrays)
            if b is None:
                return None
            return writer(values, arrays, undo, b)

        return run_assign
    # Nonblocking in an edge-triggered process: capture the value now,
    # commit after every triggered process ran (standard NBA ordering).
    if isinstance(stmt.lvalue, ast.Identifier):
        symbol = ctx.symbol(stmt.lvalue.name)
        if symbol is None or symbol.kind in ("parameter", "function"):
            raise Unlowerable("nonblocking write to undeclared name")
        if symbol.array is not None:
            raise Unlowerable("whole-array write")
        flat = ctx.flat(stmt.lvalue.name)
        sw = symbol.width
        ssigned = symbol.signed

        # _ext specialized at lowering time (see write_ident).
        msk = _mask(sw)
        sign = (1 << (vw - 1)) if (vsigned and sw > vw) else 0
        extm = (_mask(sw) ^ _mask(vw)) if sign else 0

        def queue_ident(values, arrays, undo, nba, ex, _v=val.fn):
            b = _v(values, arrays)
            if b is None:
                return None
            nb = (b | extm) if (b & sign) else (b & msk)
            # A bare (flat, Logic) tuple, not an NbaUpdate: the engine's
            # commit loop applies tuples directly, saving a closure and
            # an object per queued update on the dominant NBA shape.
            nba.append((flat, Logic(sw, nb, 0, ssigned)))
            return True

        return queue_ident
    lvalue = stmt.lvalue
    _lower_writer(ctx, lvalue, vw, vsigned)  # validate lowerable now

    def queue_complex(values, arrays, undo, nba, ex, _v=val.fn):
        b = _v(values, arrays)
        if b is None:
            return None
        pending = Logic(vw, b, 0, vsigned)
        # Complex l-values (memory words, bit selects) resolve their
        # indices at commit time in the interpreter; reuse its assign
        # path verbatim for exact semantics.
        nba.append(NbaUpdate(apply=lambda: ex.assign(lvalue, pending)))
        return True

    return queue_complex


def _lower_case(ctx: _LowerCtx, stmt: ast.Case, seq: bool) -> Callable:
    subject = lower_expr(ctx, stmt.subject, None)
    sw, ssigned = subject.width, subject.signed
    kind = stmt.kind
    entries = []  # ("default", body) | ("match", matchers, body)
    for item in stmt.items:
        body = lower_stmt(ctx, item.body, seq)
        if not item.labels:
            entries.append(("default", None, body))
            continue
        matchers = [
            _label_matcher(ctx, label, kind, sw, ssigned) for label in item.labels
        ]
        entries.append(("match", matchers, body))

    # Last default wins (interpreter semantics) and a default never
    # outranks a label match, so it can be resolved at lowering time.
    default = None
    match_entries = []
    for tag, matchers, body in entries:
        if tag == "default":
            default = body
        else:
            match_entries.append((matchers, body))

    def run_case(values, arrays, undo, nba, ex, _s=subject.fn):
        s = _s(values, arrays)
        if s is None:
            return None
        for matchers, body in match_entries:
            for matcher in matchers:
                m = matcher(values, arrays, s)
                if m is None:
                    return None
                if m:
                    return body(values, arrays, undo, nba, ex)
        if default is not None:
            return default(values, arrays, undo, nba, ex)
        return True

    return run_case


def _label_matcher(ctx: _LowerCtx, label: ast.Expr, kind: str, sw: int, ssigned: bool):
    """A ``matcher(values, arrays, subject_bits) -> 1|0|None`` mirror of
    StmtExecutor._case_match against a *known* subject.

    Constant labels -- including casez/casex patterns with x/z wildcard
    bits -- are folded into a precomputed care-mask compare; runtime
    labels compare resized known values.
    """
    if isinstance(label, ast.Number):
        lw = max(label.width if label.width is not None else _DEFAULT_WIDTH, 1)
        lb = label.bits & _mask(lw)
        lx = label.xmask & _mask(lw)
        w = max(sw, lw)
        # Resize the label to the common width (x/sign-extension).
        if lw < w:
            ext = _mask(w) ^ _mask(lw)
            if (lx >> (lw - 1)) & 1:
                lx |= ext
                if (lb >> (lw - 1)) & 1:
                    lb |= ext
            elif label.signed and (lb >> (lw - 1)) & 1:
                lb |= ext
        full = _mask(w)
        if kind == "case":
            if lx:
                return lambda values, arrays, s: 0  # never matches known subject
            target = lb

            def match_exact(values, arrays, s):
                return int(_ext(s, sw, w, ssigned) == target)

            return match_exact
        dont_care = lx & lb  # z bits are wildcards in casez
        if kind == "casex":
            dont_care |= lx
        care = full & ~dont_care
        if lx & care:
            return lambda values, arrays, s: 0  # x bits can't match known subject
        target = lb & care

        def match_masked(values, arrays, s):
            return int((_ext(s, sw, w, ssigned) & care) == target)

        return match_masked
    lowered = lower_expr(ctx, label, None)
    lw, lsigned = lowered.width, lowered.signed
    w = max(sw, lw)

    def match_dynamic(values, arrays, s, _l=lowered.fn):
        lv = _l(values, arrays)
        if lv is None:
            return None
        return int(_ext(s, sw, w, ssigned) == _ext(lv, lw, w, lsigned))

    return match_dynamic


def _lower_for(ctx: _LowerCtx, stmt: ast.For, seq: bool) -> Callable:
    if stmt.inline_decl is not None:
        raise Unlowerable("inline loop declaration needs a frame")
    init = _lower_assign(ctx, stmt.init, seq) if stmt.init is not None else None
    cond = lower_expr(ctx, stmt.cond, None) if stmt.cond is not None else None
    step = _lower_assign(ctx, stmt.step, seq) if stmt.step is not None else None
    body = lower_stmt(ctx, stmt.body, seq)
    cond_fn = cond.fn if cond is not None else None

    def run_for(values, arrays, undo, nba, ex):
        if init is not None and init(values, arrays, undo, nba, ex) is None:
            return None
        n = 0
        while True:
            if cond_fn is not None:
                c = cond_fn(values, arrays)
                if c is None:
                    return None
                if not c:
                    return True
            if body(values, arrays, undo, nba, ex) is None:
                return None
            if step is None:
                return True
            if step(values, arrays, undo, nba, ex) is None:
                return None
            n += 1
            if n > _FAST_LOOP_CAP:
                return None

    return run_for


# ---------------------------------------------------------------------------
# Design lowering + stage-cache integration
# ---------------------------------------------------------------------------


@dataclass
class LoweredDesign:
    """Per-design closure tables, index-aligned with the simulator's
    process lists (``_assigns``/``_connections``/``_comb``/``_seq``).

    ``None`` entries mark processes with no fast lowering; they run on
    the interpreter permanently.  Closures capture only plain data
    (flat names, widths, masks) extracted from the elaborated design,
    so one lowered design serves every simulator instance of any design
    with the same content digest.
    """

    assigns: list  # assign_fn(values, arrays, undo) -> True|None
    connections: list
    comb: list  # stmt_fn(values, arrays, undo, nba, ex) -> True|None
    seq: list
    edges: list  # per seq process: list of expr_fn(values, arrays) | None

    @property
    def fast_processes(self) -> int:
        return sum(
            1
            for group in (self.assigns, self.connections, self.comb, self.seq)
            for fn in group
            if fn is not None
        )

    @property
    def total_processes(self) -> int:
        return sum(
            len(group)
            for group in (self.assigns, self.connections, self.comb, self.seq)
        )


def _lower_assign_process(src_ctx: _LowerCtx, rhs, dst_ctx: _LowerCtx, lvalue):
    """Lower one continuous assign / port connection (RHS evaluated in
    ``src_ctx``, l-value written in ``dst_ctx``)."""
    tw = _lvalue_width(dst_ctx, lvalue)
    context = max(tw, _nat_width(src_ctx, rhs))
    val = lower_expr(src_ctx, rhs, context)
    writer = _lower_writer(dst_ctx, lvalue, val.width, val.signed)

    def run(values, arrays, undo, _v=val.fn):
        b = _v(values, arrays)
        if b is None:
            return None
        return writer(values, arrays, undo, b)

    return run


def lower_design(sim) -> LoweredDesign:
    """Lower every process of a built :class:`~repro.sim.simulator.Simulator`.

    Works off the simulator's flattened process lists so hierarchy,
    parameter specialization and port connections are already resolved;
    each lowered entry is index-aligned with those lists.
    """
    assigns = []
    for ctx, assign in sim._assigns:
        lctx = _LowerCtx(ctx.module, ctx.prefix)
        try:
            assigns.append(_lower_assign_process(lctx, assign.rhs, lctx, assign.lvalue))
        except Unlowerable:
            assigns.append(None)
    connections = []
    for conn in sim._connections:
        src = _LowerCtx(conn.src_ctx.module, conn.src_ctx.prefix)
        dst = _LowerCtx(conn.dst_ctx.module, conn.dst_ctx.prefix)
        try:
            connections.append(
                _lower_assign_process(src, conn.src_expr, dst, conn.dst_lvalue)
            )
        except Unlowerable:
            connections.append(None)
    comb = []
    for proc in sim._comb:
        lctx = _LowerCtx(proc.ctx.module, proc.ctx.prefix)
        try:
            comb.append(lower_stmt(lctx, proc.block.body, seq=False))
        except Unlowerable:
            comb.append(None)
    seq = []
    edges = []
    for proc in sim._seq:
        lctx = _LowerCtx(proc.ctx.module, proc.ctx.prefix)
        try:
            seq.append(lower_stmt(lctx, proc.block.body, seq=True))
        except Unlowerable:
            seq.append(None)
        proc_edges = []
        for _, expr in proc.edges:
            try:
                proc_edges.append(lower_expr(lctx, expr, None).fn)
            except Unlowerable:
                proc_edges.append(None)
        edges.append(proc_edges)
    return LoweredDesign(
        assigns=assigns, connections=connections, comb=comb, seq=seq, edges=edges
    )


def lowered_for(sim) -> LoweredDesign:
    """The (possibly cached) :class:`LoweredDesign` for a built simulator.

    Content-addressed on the design digest stamped at elaboration plus
    the simulated top module; designs without a digest (error-bearing or
    hand-constructed) are lowered fresh each time.
    """
    digest = getattr(sim.design, "digest", None)
    cache = get_active_stage_cache()
    if digest is None or cache is None:
        return lower_design(sim)
    key = _digest(SIM_LOWER_STAGE, digest, sim.top.name)
    artifact = cache.get(SIM_LOWER_STAGE, key)
    if artifact is not None:
        return artifact.payload[0]
    lowered = lower_design(sim)
    cache.put(Artifact(stage=SIM_LOWER_STAGE, key=key, payload=(lowered,)))
    return lowered
