"""Event/cycle simulator for the supported Verilog subset.

Used to judge *functional* correctness (the paper's pass@k metric) by
differential simulation against a reference implementation.
"""

from .eval import EvalContext, Evaluator, NetState
from .exec import StmtExecutor
from .feedback import SimFeedback, make_sim_feedback, simulate_with_traces
from .simulator import Simulator
from .trace import Trace, render_comparison, render_waveform
from .vcd import VcdWriter, dump_comparison_vcd, dump_vcd
from .testbench import (
    CLOCK_NAMES,
    RESET_NAMES,
    Mismatch,
    TestbenchResult,
    check_interface,
    run_differential,
)
from .values import Logic

__all__ = [
    "CLOCK_NAMES",
    "EvalContext",
    "Evaluator",
    "Logic",
    "Mismatch",
    "NetState",
    "RESET_NAMES",
    "SimFeedback",
    "Simulator",
    "StmtExecutor",
    "TestbenchResult",
    "Trace",
    "VcdWriter",
    "check_interface",
    "dump_comparison_vcd",
    "dump_vcd",
    "make_sim_feedback",
    "render_comparison",
    "render_waveform",
    "run_differential",
    "simulate_with_traces",
]
