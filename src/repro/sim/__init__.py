"""Event/cycle simulator for the supported Verilog subset.

Used to judge *functional* correctness (the paper's pass@k metric) by
differential simulation against a reference implementation.

Two engines share one semantics: the interpreting
:class:`~repro.sim.simulator.Simulator` walks the AST in full 4-state
logic, and the compiled :class:`~repro.sim.engine.CompiledSimulator`
runs closure-lowered processes on a two-state fast path with
per-invocation fallback to the interpreter (see :mod:`repro.sim.compile`).
:func:`~repro.sim.engine.make_simulator` selects between them; whole
testbench verdicts are memoized content-addressed in
:mod:`repro.sim.verdict`.

Both engines run inside the crash-proof, resource-bounded sandbox:
:mod:`repro.sim.limits` defines the cooperative budget set
(:class:`~repro.sim.limits.SimLimits`) and :mod:`repro.sim.sandbox` the
never-crash boundary that converts budget overflows and internal errors
into typed ``limit``/``crashed`` :class:`~repro.sim.sandbox.SimVerdict`
outcomes instead of exceptions.
"""

from .compile import LoweredDesign, Unlowerable, lower_design, lowered_for
from .limits import (
    DEFAULT_SIM_LIMITS,
    FUZZ_SIM_LIMITS,
    UNTRACKED,
    BoundedDisplayLog,
    SimLimits,
    SimLimitTracker,
    get_default_sim_limits,
    parse_sim_limits,
    set_default_sim_limits,
    use_sim_limits,
)
from .sandbox import (
    DEFAULT_SANDBOX_STATS,
    SIM_VERDICT_CATEGORIES,
    SandboxStats,
    SimOutcome,
    SimVerdict,
    classify_exception,
    get_active_sandbox_stats,
    run_sandboxed,
    set_active_sandbox_stats,
    simulate,
    use_sandbox_stats,
)
from .engine import (
    SIM_ENGINES,
    CompiledSimulator,
    get_default_sim_engine,
    make_simulator,
    set_default_sim_engine,
)
from .eval import EvalContext, Evaluator, NetState
from .exec import StmtExecutor
from .feedback import SimFeedback, make_sim_feedback, simulate_with_traces
from .simulator import Simulator
from .trace import Trace, render_comparison, render_waveform
from .vcd import VcdWriter, dump_comparison_vcd, dump_vcd
from .testbench import (
    CLOCK_NAMES,
    RESET_NAMES,
    Mismatch,
    TestbenchResult,
    check_interface,
    run_differential,
)
from .values import Logic
from .verdict import (
    DEFAULT_VERDICT_CACHE,
    VerdictCache,
    VerdictStats,
    get_active_verdict_cache,
    no_verdict_cache,
    set_active_verdict_cache,
    use_verdict_cache,
    verdict_key,
)

__all__ = [
    "BoundedDisplayLog",
    "CLOCK_NAMES",
    "CompiledSimulator",
    "DEFAULT_SANDBOX_STATS",
    "DEFAULT_SIM_LIMITS",
    "DEFAULT_VERDICT_CACHE",
    "FUZZ_SIM_LIMITS",
    "SIM_VERDICT_CATEGORIES",
    "SandboxStats",
    "SimLimitTracker",
    "SimLimits",
    "SimOutcome",
    "SimVerdict",
    "UNTRACKED",
    "EvalContext",
    "Evaluator",
    "Logic",
    "LoweredDesign",
    "Mismatch",
    "NetState",
    "RESET_NAMES",
    "SIM_ENGINES",
    "SimFeedback",
    "Simulator",
    "StmtExecutor",
    "TestbenchResult",
    "Trace",
    "Unlowerable",
    "VcdWriter",
    "VerdictCache",
    "VerdictStats",
    "check_interface",
    "classify_exception",
    "dump_comparison_vcd",
    "dump_vcd",
    "get_active_sandbox_stats",
    "get_active_verdict_cache",
    "get_default_sim_engine",
    "get_default_sim_limits",
    "lower_design",
    "lowered_for",
    "make_sim_feedback",
    "make_simulator",
    "no_verdict_cache",
    "parse_sim_limits",
    "render_comparison",
    "render_waveform",
    "run_differential",
    "run_sandboxed",
    "set_active_sandbox_stats",
    "set_active_verdict_cache",
    "set_default_sim_engine",
    "set_default_sim_limits",
    "simulate",
    "simulate_with_traces",
    "use_sandbox_stats",
    "use_sim_limits",
    "use_verdict_cache",
    "verdict_key",
]
