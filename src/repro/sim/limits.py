"""Cooperative resource budgets for the simulation engines.

The simulator runs *untrusted* designs: every syntactically-valid-but-
buggy candidate an LLM emits goes straight into the differential
testbench, and hostile shapes (runaway procedural loops, oscillating
combinational nets, trace bombs, giant cycle counts) can hang a run or
blow up memory.  :class:`SimLimits` is the simulator-side counterpart of
:class:`repro.verilog.limits.ResourceLimits`: it bounds every dimension
in which a pathological design can consume unbounded work, and
:class:`SimLimitTracker` enforces the bounds *cooperatively* inside both
engines' dispatch loops -- an overflow raises
:class:`~repro.errors.SimLimitExceeded`, which the sandbox boundary
(:mod:`repro.sim.sandbox`) converts into a typed ``limit`` verdict
instead of letting it escape as a crash.

Two presets ship with the library:

* :data:`DEFAULT_SIM_LIMITS` -- generous bounds no legitimate
  VerilogEval-scale testbench run comes near, sized so a hostile design
  is cut off in a couple of seconds at worst;
* :data:`FUZZ_SIM_LIMITS` -- tight bounds used by the built-in fuzzer so
  a thousand adversarial simulations finish in seconds.

The budgets participate in every simulation verdict cache key (their
``repr`` is hashed into :func:`repro.sim.verdict.verdict_key` by the
harnesses), so runs under different limits can never alias.  The
process-wide default is installed with :func:`set_default_sim_limits`
(CLI ``--sim-limits``) or scoped with :func:`use_sim_limits`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields, replace
from typing import Callable, Iterator, Optional

from contextlib import contextmanager

from ..errors import SimLimitExceeded


@dataclass(frozen=True)
class SimLimits:
    """Bounds on the work one simulator instance may perform.

    All integer budgets are enforced deterministically (identical
    consumption on the interpreting and compiled engines, so the two
    always agree on which budget fires); the wall-clock watchdog is the
    only non-deterministic backstop and is sized so the deterministic
    budgets always trip first on anything but a pathologically slow
    host.
    """

    #: Maximum :meth:`~repro.sim.simulator.Simulator.step` calls over the
    #: simulator's lifetime (construction counts as one cycle).
    max_cycles: int = 5_000
    #: Maximum process evaluations (continuous assigns, port
    #: connections, combinational and triggered sequential blocks) per
    #: cycle; the pool refills every cycle.
    max_events_per_cycle: int = 200_000
    #: Maximum procedural statement executions per process invocation
    #: (the runaway-loop bound, formerly a module constant).
    max_stmt_executions: int = 200_000
    #: Maximum (signal, sample) entries recorded across all traces fed
    #: by one tracker (the traced-feedback harness and VCD dumps).
    max_trace_entries: int = 65_536
    #: Maximum total bytes of traced signal data.
    max_trace_bytes: int = 1_048_576
    #: Maximum ``$display``/``$write``/``$strobe`` lines captured.
    max_display_lines: int = 4_096
    #: Cooperative wall-clock watchdog (seconds), polled every few dozen
    #: cycles and every few thousand procedural statements.
    wall_clock_s: float = 10.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "wall_clock_s":
                if not isinstance(value, (int, float)) or value <= 0:
                    raise ValueError(
                        f"wall_clock_s must be a positive number, got {value!r}"
                    )
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(
                    f"{spec.name} must be a positive int, got {value!r}"
                )

    def describe(self) -> str:
        """Compact ``k=v`` rendering (CLI/telemetry)."""
        return (
            f"cycles={self.max_cycles} events={self.max_events_per_cycle} "
            f"stmts={self.max_stmt_executions} "
            f"trace-entries={self.max_trace_entries} "
            f"trace-bytes={self.max_trace_bytes} "
            f"display={self.max_display_lines} wall={self.wall_clock_s:g}"
        )


#: Production defaults: generous for real testbench runs (<= ~130 cycles,
#: a handful of outputs), hard wall for hostile designs.
DEFAULT_SIM_LIMITS = SimLimits()

#: Tight limits for fuzzing.  ``max_stmt_executions`` deliberately stays
#: at the production default: the statement budget is shared with the
#: compiled engine only through interpreter fallback (single loops past
#: the lowering cap always bail), so tightening it would let nested
#: fast-path loops diverge from the interpreter's accounting.
FUZZ_SIM_LIMITS = SimLimits(
    max_cycles=512,
    max_events_per_cycle=20_000,
    max_stmt_executions=200_000,
    max_trace_entries=2_048,
    max_trace_bytes=65_536,
    max_display_lines=256,
    wall_clock_s=10.0,
)


class _Untracked:
    """Sentinel: build the simulator with **no** budget tracker at all.

    Exists for the sandbox-overhead benchmark (the untracked baseline
    the <5% budget-check overhead is measured against); production paths
    always track."""

    __slots__ = ()

    def __repr__(self) -> str:  # stable for cache keys, just in case
        return "UNTRACKED"


UNTRACKED = _Untracked()

#: ``--sim-limits`` spec aliases -> :class:`SimLimits` field names.
_SPEC_KEYS = {
    "cycles": "max_cycles",
    "events": "max_events_per_cycle",
    "stmts": "max_stmt_executions",
    "trace-entries": "max_trace_entries",
    "trace-bytes": "max_trace_bytes",
    "display": "max_display_lines",
    "wall": "wall_clock_s",
}


def parse_sim_limits(spec: str) -> SimLimits:
    """Parse a ``--sim-limits`` spec string.

    Accepts the preset names ``default`` and ``fuzz``, or a
    comma-separated ``key=value`` list over the keys
    ``cycles``, ``events``, ``stmts``, ``trace-entries``,
    ``trace-bytes``, ``display`` and ``wall`` (wall is float seconds),
    e.g. ``"cycles=2000,wall=5"``.  Unspecified keys keep their
    defaults.  Raises ``ValueError`` on anything malformed.
    """
    text = spec.strip()
    if text == "default":
        return DEFAULT_SIM_LIMITS
    if text == "fuzz":
        return FUZZ_SIM_LIMITS
    overrides: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep or key not in _SPEC_KEYS:
            raise ValueError(
                f"bad --sim-limits entry {part!r}; expected one of "
                f"{sorted(_SPEC_KEYS)} as key=value"
            )
        field_name = _SPEC_KEYS[key]
        try:
            value = float(raw) if key == "wall" else int(raw)
        except ValueError:
            raise ValueError(f"bad --sim-limits value for {key!r}: {raw!r}")
        overrides[field_name] = value
    if not overrides:
        raise ValueError(f"empty --sim-limits spec {spec!r}")
    return replace(DEFAULT_SIM_LIMITS, **overrides)


class SimLimitTracker:
    """Mutable per-simulation budget enforcement for :class:`SimLimits`.

    Counters are plain decrementing ints (not the compiler tracker's
    dict-of-kinds) because they sit on the engines' innermost dispatch
    loops; the overhead budget for the whole sandbox is <5% on a clean
    corpus.  One tracker may be shared by several simulators (the
    differential harnesses run candidate and reference under one budget
    pool).  ``phase`` is mutated by the owning simulator (``construct``
    / ``cycle`` / ``trace``) and stamped into every overflow for verdict
    attribution.
    """

    #: Cycles between wall-clock polls in :meth:`begin_cycle`.  Reading
    #: the clock every cycle costs more than every deterministic budget
    #: check combined; per-cycle work is itself bounded by the event and
    #: statement budgets, so a 64-cycle poll stride keeps the watchdog's
    #: latency bounded too.
    TICK_STRIDE = 64

    __slots__ = (
        "limits",
        "phase",
        "cycles_left",
        "events_left",
        "display_left",
        "trace_entries_left",
        "trace_bytes_left",
        "_clock",
        "_deadline_at",
        "_tick_countdown",
    )

    def __init__(
        self,
        limits: Optional[SimLimits] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.limits = limits if limits is not None else DEFAULT_SIM_LIMITS
        self.phase = "construct"
        self.cycles_left = self.limits.max_cycles
        self.events_left = self.limits.max_events_per_cycle
        self.display_left = self.limits.max_display_lines
        self.trace_entries_left = self.limits.max_trace_entries
        self.trace_bytes_left = self.limits.max_trace_bytes
        self._clock = clock
        self._deadline_at = clock() + self.limits.wall_clock_s
        self._tick_countdown = 0

    def _overflow(self, kind: str, limit: float, phase: Optional[str] = None):
        raise SimLimitExceeded(
            kind, limit, phase=self.phase if phase is None else phase
        )

    def begin_cycle(self) -> None:
        """Charge one simulated cycle, refill the per-cycle event pool
        and poll the watchdog every :data:`TICK_STRIDE` cycles."""
        self.cycles_left -= 1
        if self.cycles_left < 0:
            self._overflow("simulated cycles", self.limits.max_cycles)
        self.events_left = self.limits.max_events_per_cycle
        self._tick_countdown -= 1
        if self._tick_countdown <= 0:
            self._tick_countdown = self.TICK_STRIDE
            self.tick()

    def charge_events(self, amount: int) -> None:
        """Charge ``amount`` process evaluations against this cycle."""
        self.events_left -= amount
        if self.events_left < 0:
            self._overflow("sim events", self.limits.max_events_per_cycle)

    def charge_display(self) -> None:
        """Charge one captured ``$display`` line."""
        self.display_left -= 1
        if self.display_left < 0:
            self._overflow("display lines", self.limits.max_display_lines)

    def charge_trace(self, entries: int, nbytes: int) -> None:
        """Charge recorded trace entries/bytes (phase ``trace``)."""
        self.trace_entries_left -= entries
        if self.trace_entries_left < 0:
            self._overflow(
                "trace entries", self.limits.max_trace_entries, phase="trace"
            )
        self.trace_bytes_left -= nbytes
        if self.trace_bytes_left < 0:
            self._overflow(
                "trace bytes", self.limits.max_trace_bytes, phase="trace"
            )

    def tick(self) -> None:
        """Cooperative wall-clock watchdog check."""
        if self._clock() > self._deadline_at:
            self._overflow("wall clock", self.limits.wall_clock_s)


class BoundedDisplayLog(list):
    """A ``$display`` sink that charges the tracker per appended line.

    A plain ``list`` subclass so every existing consumer (fuzz log
    comparisons, feedback rendering, tests) keeps working unchanged.
    """

    def __init__(self, tracker: Optional[SimLimitTracker] = None):
        super().__init__()
        self.tracker = tracker

    def append(self, line) -> None:
        tracker = self.tracker
        if tracker is not None:
            tracker.charge_display()
        super().append(line)


# ---------------------------------------------------------------------------
# Process-wide default (CLI --sim-limits / RTLFixerConfig.sim_limits)
# ---------------------------------------------------------------------------

_default_sim_limits: SimLimits = DEFAULT_SIM_LIMITS


def get_default_sim_limits() -> SimLimits:
    """The limits harnesses apply when none are passed explicitly."""
    return _default_sim_limits


def set_default_sim_limits(limits: SimLimits) -> SimLimits:
    """Install ``limits`` as the process-wide default; returns the
    previous default."""
    if not isinstance(limits, SimLimits):
        raise ValueError("sim limits must be a SimLimits instance")
    global _default_sim_limits
    previous = _default_sim_limits
    _default_sim_limits = limits
    return previous


@contextmanager
def use_sim_limits(limits: SimLimits) -> Iterator[SimLimits]:
    """Scope the default simulation limits to a ``with`` block."""
    previous = set_default_sim_limits(limits)
    try:
        yield limits
    finally:
        set_default_sim_limits(previous)
