"""The compiled simulation engine.

:class:`CompiledSimulator` is a drop-in :class:`~repro.sim.simulator.Simulator`
that swaps the per-delta-cycle AST walk for the lowered closures built by
:mod:`repro.sim.compile`.  Three ideas carry the speedup:

* **two-state speculation** -- every process first runs its lowered
  closure, which operates on raw known bit patterns and *bails* (returns
  ``None``) the moment it touches an X/Z bit or any other 4-state
  corner.  A bailed process has its speculative writes rolled back from
  an undo log and is re-run on the interpreter, so results are
  bit-identical by construction.  Demotion is per-invocation, not
  sticky: the same process speculates again next delta cycle, so a
  design that starts all-X at reset recovers the fast path as soon as
  its nets take known values.
* **change tracking instead of snapshots** -- the interpreter's settle
  loop copies and compares the whole value dict every pass;
  :class:`_TrackingDict` records first-seen old values per pass, making
  the fixpoint check O(writes) instead of O(nets).
* **content-addressed lowering** -- the closure tables are cached per
  design digest in the active stage cache (see
  :func:`repro.sim.compile.lowered_for`), so repeated simulations of the
  same design (testbench reruns, fuzz iterations, repair loops) skip the
  lowering pass entirely.

:func:`make_simulator` is the engine-selecting constructor every harness
(testbench, feedback, fuzz, CLI) routes through; the process-wide
default is ``compiled`` and can be overridden with
:func:`set_default_sim_engine` or the ``REPRO_SIM_ENGINE`` environment
variable.
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import SimLimitExceeded, SimulationError
from ..verilog.elaborate import ElabDesign
from ..verilog.limits import ResourceLimits
from .compile import LoweredDesign, lowered_for
from .eval import Evaluator
from .exec import NbaUpdate, StmtExecutor
from .limits import SimLimits, SimLimitTracker
from .simulator import Simulator, _edge_fired
from .values import Logic

#: Engines selectable through :func:`make_simulator`.
SIM_ENGINES = ("compiled", "interp")

_MISSING = object()


class _TrackingDict(dict):
    """A value dict that records per-pass first-seen old values.

    ``begin_pass()`` opens a pass; every ``d[k] = v`` during the pass
    remembers the value ``k`` had when the pass started (or ``_MISSING``
    for new keys); ``changed()`` reports whether any key differs from
    its pass-start value.  Replaces the settle loop's full-dict snapshot
    compare with bookkeeping proportional to the writes actually made.
    """

    __slots__ = ("epoch",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.epoch: dict = {}

    def __setitem__(self, key, value):
        if key not in self.epoch:
            self.epoch[key] = super().get(key, _MISSING)
        super().__setitem__(key, value)

    def begin_pass(self) -> None:
        self.epoch.clear()

    def changed(self) -> bool:
        for key, old in self.epoch.items():
            if old is _MISSING or super().get(key, _MISSING) != old:
                return True
        return False


class CompiledSimulator(Simulator):
    """A :class:`Simulator` running lowered processes with interpreter
    fallback; externally indistinguishable from the base class."""

    def _post_build(self) -> None:
        self.state.values = _TrackingDict(self.state.values)
        #: fast-path invocations vs. bail-and-reinterpret fallbacks,
        #: for tests and telemetry.
        self.fast_runs = 0
        self.demotions = 0
        self._undo: list = []
        self._lowered: LoweredDesign = lowered_for(self)
        # One reusable executor per process for NBA fallback commits
        # (complex l-values re-resolve indices at commit time through
        # the interpreter's own assign path).
        self._seq_ex = [StmtExecutor(proc.ctx) for proc in self._seq]
        self._input_ports = {
            p.name: (p.width, p.signed) for p in self.inputs
        }
        # Fused comb schedule: one (fast_fn|None, is_stmt, fallback) row
        # per process, in the interpreter's execution order, so the
        # settle loop runs without per-pass enumerate/index bookkeeping.
        lowered = self._lowered
        ops = []
        for i, (ctx, assign) in enumerate(self._assigns):
            ops.append((
                lowered.assigns[i], False,
                self._make_assign_fallback(ctx, assign.rhs, assign.lvalue),
            ))
        for i, conn in enumerate(self._connections):
            ops.append((
                lowered.connections[i], False,
                self._make_assign_fallback(
                    conn.src_ctx, conn.src_expr, conn.dst_lvalue, conn.dst_ctx
                ),
            ))
        for i, proc in enumerate(self._comb):
            ops.append((
                lowered.comb[i], True, self._make_proc_fallback(proc),
            ))
        self._comb_ops = ops

    def _make_assign_fallback(self, src_ctx, rhs, lvalue, dst_ctx=None):
        """Interpreter re-run of one continuous assign / port connection."""
        def fallback():
            executor = StmtExecutor(dst_ctx if dst_ctx is not None else src_ctx)
            value = Evaluator(src_ctx).eval_rhs(
                rhs, executor._lvalue_width(lvalue)
            )
            executor.assign(lvalue, value)
        return fallback

    def _make_proc_fallback(self, proc):
        """Interpreter re-run of one combinational always block."""
        def fallback():
            StmtExecutor(proc.ctx, display=self.display_log).exec_stmt(
                proc.block.body
            )
        return fallback

    def set_input(self, name, value) -> None:
        """Port-table :meth:`Simulator.set_input` (no linear port scan,
        no redundant resize for int stimulus)."""
        port = self._input_ports.get(name)
        if port is None:
            raise SimulationError(f"no such input port: {name!r}")
        width, signed = port
        if isinstance(value, int):
            self.state.values[name] = Logic.from_int(value, width, signed)
        else:
            self.state.values[name] = value.resize(width, signed)

    # -- speculation ------------------------------------------------------

    def _rollback(self) -> None:
        values = self.state.values
        arrays = self.state.arrays
        for entry in reversed(self._undo):
            if entry[0] == 0:
                values[entry[1]] = entry[2]
            else:
                arrays[entry[1]][entry[2]] = entry[3]
        self._undo.clear()
        self.demotions += 1

    def _comb_pass(self) -> None:
        values = self.state.values
        arrays = self.state.arrays
        undo = self._undo
        fast = 0
        for fn, is_stmt, fallback in self._comb_ops:
            if fn is not None:
                ok = (
                    fn(values, arrays, undo, None, None)
                    if is_stmt
                    else fn(values, arrays, undo)
                )
                if ok is not None:
                    if undo:
                        undo.clear()
                    fast += 1
                    continue
                self._rollback()
            fallback()
        self.fast_runs += fast

    def settle(self) -> None:
        """Change-tracked fixpoint; same bound and failure mode as the
        interpreter's snapshot-compare settle."""
        values = self.state.values
        budget = self.limits.max_settle_passes
        tracker = self.sim_tracker
        passes = 0
        for _ in range(budget):
            values.begin_pass()
            self._comb_pass()
            passes += 1
            if not values.changed():
                # Same bulk charge as the interpreter (one event per
                # process evaluation per pass, settled pass counts are
                # identical), so both engines exhaust identically.
                if tracker is not None:
                    tracker.events_left -= passes * self._n_comb_ops
                    if tracker.events_left < 0:
                        tracker.charge_events(0)  # raises "sim events"
                return
        raise SimLimitExceeded(
            "settle passes",
            budget,
            message="combinational logic did not settle after "
            f"{budget} passes (loop? raise max_settle_passes if legitimate)",
            phase=getattr(self.sim_tracker, "phase", ""),
        )

    # -- clock region -----------------------------------------------------

    def _sample_edges(self) -> dict:
        values = self.state.values
        arrays = self.state.arrays
        sampled: dict = {}
        lowered = self._lowered
        for pi, proc in enumerate(self._seq):
            fns = lowered.edges[pi]
            for i, (_, expr) in enumerate(proc.edges):
                fn = fns[i]
                bit = None
                if fn is not None:
                    raw = fn(values, arrays)
                    if raw is not None:
                        bit = (raw & 1, True)
                if bit is None:
                    value = Evaluator(proc.ctx).eval(expr)
                    b = value.bit(0)
                    bit = (b.bits, b.xmask == 0)
                sampled[id(proc) * 64 + i] = bit
        return sampled

    def step(self, inputs=None) -> None:
        tracker = self.sim_tracker
        if tracker is not None:
            tracker.phase = "cycle"
            tracker.begin_cycle()
        if inputs:
            values = self.state.values
            ports = self._input_ports
            for name, value in inputs.items():
                port = ports.get(name)
                if port is None:
                    raise SimulationError(f"no such input port: {name!r}")
                if isinstance(value, int):
                    values[name] = Logic.from_int(value, port[0], port[1])
                else:
                    values[name] = value.resize(port[0], port[1])
        self.settle()
        new_edges = self._sample_edges()
        triggered: list[int] = []
        for pi, proc in enumerate(self._seq):
            for i, (edge, _) in enumerate(proc.edges):
                key = id(proc) * 64 + i
                old = self._edge_state.get(key)
                new = new_edges[key]
                if old is None:
                    continue
                if _edge_fired_fast(edge, old, new):
                    triggered.append(pi)
                    break
        if tracker is not None and triggered:
            tracker.charge_events(len(triggered))
        nba: list[NbaUpdate] = []
        values = self.state.values
        arrays = self.state.arrays
        undo = self._undo
        lowered = self._lowered
        for pi in triggered:
            proc = self._seq[pi]
            fn = lowered.seq[pi]
            if fn is not None:
                mark = len(nba)
                if fn(values, arrays, undo, nba, self._seq_ex[pi]) is not None:
                    undo.clear()
                    self.fast_runs += 1
                    continue
                del nba[mark:]
                self._rollback()
            StmtExecutor(proc.ctx, nba=nba, display=self.display_log).exec_stmt(
                proc.block.body
            )
        for update in nba:
            # Fast-path NBAs are bare (flat, Logic) tuples; interpreter
            # fallbacks queue NbaUpdate objects.  One ordered list keeps
            # standard NBA commit ordering across both.
            if type(update) is tuple:
                values[update[0]] = update[1]
            else:
                update.apply()
        self.settle()
        self._edge_state = self._sample_edges()


def _edge_fired_fast(edge: str, old: tuple, new: tuple) -> bool:
    """(bit, known) form of :func:`repro.sim.simulator._edge_fired`."""
    old_bit, old_known = old
    new_bit, new_known = new
    if edge == "posedge":
        return (new_known and new_bit == 1) and not (old_known and old_bit == 1)
    return (new_known and new_bit == 0) and not (old_known and old_bit == 0)


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE = "compiled"
if os.environ.get("REPRO_SIM_ENGINE") in SIM_ENGINES:
    _DEFAULT_ENGINE = os.environ["REPRO_SIM_ENGINE"]


def get_default_sim_engine() -> str:
    """The engine :func:`make_simulator` uses when none is requested."""
    return _DEFAULT_ENGINE


def set_default_sim_engine(engine: str) -> None:
    """Set the process-wide default simulation engine."""
    if engine not in SIM_ENGINES:
        raise ValueError(
            f"unknown sim engine {engine!r}; expected one of {SIM_ENGINES}"
        )
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine


def make_simulator(
    design: ElabDesign,
    top: Optional[str] = None,
    engine: Optional[str] = None,
    limits: Optional[ResourceLimits] = None,
    sim_limits: Optional[SimLimits] = None,
    sim_tracker: Optional[SimLimitTracker] = None,
) -> Simulator:
    """Construct a simulator using ``engine`` (default: the process-wide
    default, normally ``compiled``).  Every harness routes through this
    so one flag switches the whole stack.  ``sim_limits``/``sim_tracker``
    configure the sandbox budgets (see :mod:`repro.sim.limits`); a
    shared tracker pools budgets across several simulators."""
    chosen = engine if engine is not None else _DEFAULT_ENGINE
    if chosen not in SIM_ENGINES:
        raise ValueError(
            f"unknown sim engine {chosen!r}; expected one of {SIM_ENGINES}"
        )
    cls = CompiledSimulator if chosen == "compiled" else Simulator
    return cls(
        design, top=top, limits=limits,
        sim_limits=sim_limits, sim_tracker=sim_tracker,
    )
