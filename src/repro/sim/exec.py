"""Procedural statement execution for the simulator.

A :class:`StmtExecutor` runs the body of an always/initial block or a
function.  Blocking assignments update state immediately; nonblocking
assignments are queued on ``nba`` and applied by the simulator after
every triggered process has run (standard NBA semantics).

Like :mod:`repro.sim.eval`, this is the 4-state reference semantics:
:mod:`repro.sim.compile` lowers statement bodies into speculative
closures and re-runs the original AST through :class:`StmtExecutor`
whenever a closure bails, so the two paths must stay in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import SimLimitExceeded, SimulationError
from ..verilog import ast
from ..verilog.elaborate import const_eval
from .eval import EvalContext, Evaluator, _decl_width
from .values import Logic

#: Fallback per-executor statement budget when the owning context has no
#: :class:`~repro.sim.limits.SimLimitTracker` (tracked simulators use
#: ``SimLimits.max_stmt_executions`` instead).
_LOOP_BUDGET = 200_000


@dataclass
class NbaUpdate:
    """A pending nonblocking update: apply(value) commits it."""

    apply: Callable[[], None]


_FORMAT_RE = None  # compiled lazily below


def _format_display(args: list[ast.Expr], evaluator) -> str:
    """Render $display arguments: a leading format string consumes the
    remaining arguments via %d/%b/%h/%o/%s/%c/%0d specifiers; without a
    format string, values print space-separated in decimal."""
    import re as _re

    global _FORMAT_RE
    if _FORMAT_RE is None:
        _FORMAT_RE = _re.compile(r"%0?[dbhoxsc]|%%")

    if args and isinstance(args[0], ast.StringLit):
        template = args[0].value
        values = [evaluator.eval(a) for a in args[1:]]
        cursor = {"i": 0}

        def repl(match: "_re.Match[str]") -> str:
            spec = match.group(0)
            if spec == "%%":
                return "%"
            if cursor["i"] >= len(values):
                return spec
            value = values[cursor["i"]]
            cursor["i"] += 1
            return _render_value(value, spec[-1])

        return _FORMAT_RE.sub(repl, template)
    values = [evaluator.eval(a) for a in args]
    return " ".join(_render_value(v, "d") for v in values)


def _render_value(value: Logic, spec: str) -> str:
    if value.xmask:
        return "x"
    if spec == "b":
        return f"{value.bits:b}"
    if spec in ("h", "x"):
        return f"{value.bits:x}"
    if spec == "o":
        return f"{value.bits:o}"
    if spec == "c":
        return chr(value.bits & 0x7F)
    if spec == "s":
        width_bytes = max(1, value.width // 8)
        raw = value.bits.to_bytes(width_bytes, "big")
        return raw.lstrip(b"\0").decode("ascii", "replace")
    return str(value.to_signed_int() if value.signed else value.bits)


class StmtExecutor:
    """Executes procedural statements against a NetState."""
    def __init__(
        self,
        ctx: EvalContext,
        frame: dict[str, Logic] | None = None,
        nba: list[NbaUpdate] | None = None,
        in_function: bool = False,
        display: list[str] | None = None,
    ):
        self.ctx = ctx
        self.frame = frame if frame is not None else {}
        self.evaluator = Evaluator(ctx, self.frame)
        #: When None (functions, comb contexts) nonblocking assigns are
        #: applied immediately; otherwise they are queued here.
        self.nba = nba
        self.in_function = in_function
        #: $display output sink (None = discard).
        self.display = display
        #: Budgets come from the owning simulator's tracker when present
        #: (and then include the periodic wall-clock watchdog poll).
        self.tracker = getattr(ctx, "tracker", None)
        self._budget_limit = (
            self.tracker.limits.max_stmt_executions
            if self.tracker is not None
            else _LOOP_BUDGET
        )
        self._budget = self._budget_limit

    # -- statement dispatch ------------------------------------------------

    def exec_stmt(self, stmt: ast.Stmt) -> None:
        budget = self._budget - 1
        self._budget = budget
        if budget < 0:
            raise SimLimitExceeded(
                "stmt executions",
                self._budget_limit,
                message="procedural loop budget exceeded (runaway loop?)",
                phase=getattr(self.tracker, "phase", ""),
            )
        if budget & 4095 == 0 and self.tracker is not None:
            self.tracker.tick()
        if isinstance(stmt, ast.NullStmt):
            return
        if isinstance(stmt, ast.Block):
            for decl in stmt.decls:
                if decl.name not in self.frame:
                    self.frame[decl.name] = Logic.all_x(
                        _decl_width(decl, self.ctx.module.params),
                        signed=decl.signed or decl.net_kind in ("integer", "int"),
                    )
            for child in stmt.stmts:
                self.exec_stmt(child)
            return
        if isinstance(stmt, ast.ProcAssign):
            self._exec_assign(stmt)
            return
        if isinstance(stmt, ast.If):
            cond = self.evaluator.eval(stmt.cond)
            if cond.is_true():
                self.exec_stmt(stmt.then)
            elif stmt.other is not None:
                self.exec_stmt(stmt.other)
            return
        if isinstance(stmt, ast.Case):
            self._exec_case(stmt)
            return
        if isinstance(stmt, ast.For):
            self._exec_for(stmt)
            return
        if isinstance(stmt, ast.While):
            while self.evaluator.eval(stmt.cond).is_true():
                self.exec_stmt(stmt.body)
            return
        if isinstance(stmt, ast.Repeat):
            count = self.evaluator.eval(stmt.count)
            times = count.to_int() if count.is_fully_known else 0
            for _ in range(min(times, _LOOP_BUDGET)):
                self.exec_stmt(stmt.body)
            return
        if isinstance(stmt, ast.TaskCall):
            self._exec_task(stmt)
            return
        raise SimulationError(f"cannot execute statement {type(stmt).__name__}")

    def _exec_task(self, stmt: ast.TaskCall) -> None:
        if self.display is None:
            return
        if stmt.name in ("$display", "$write", "$strobe"):
            self.display.append(_format_display(stmt.args, self.evaluator))

    # -- case ----------------------------------------------------------

    def _exec_case(self, stmt: ast.Case) -> None:
        subject = self.evaluator.eval(stmt.subject)
        default: Optional[ast.Stmt] = None
        for item in stmt.items:
            if not item.labels:
                default = item.body
                continue
            for label in item.labels:
                value = self.evaluator.eval(label)
                if self._case_match(stmt.kind, subject, value):
                    self.exec_stmt(item.body)
                    return
        if default is not None:
            self.exec_stmt(default)

    @staticmethod
    def _case_match(kind: str, subject: Logic, label: Logic) -> bool:
        width = max(subject.width, label.width)
        s = subject.resize(width)
        l = label.resize(width)
        if kind == "case":
            return s.bits == l.bits and s.xmask == l.xmask
        mask = (1 << width) - 1
        # casez: z bits (xmask set, bits set) on either side are wildcards;
        # casex: any x or z bit on either side is a wildcard.
        dont_care = (s.xmask & s.bits) | (l.xmask & l.bits)
        if kind == "casex":
            dont_care |= s.xmask | l.xmask
        care = mask & ~dont_care
        return (s.bits & care) == (l.bits & care) and (
            (s.xmask & care) == (l.xmask & care)
        )

    def _exec_for(self, stmt: ast.For) -> None:
        if stmt.inline_decl is not None and stmt.inline_decl not in self.frame:
            self.frame[stmt.inline_decl] = Logic.from_int(0, 32, signed=True)
        if stmt.init is not None:
            self._exec_assign(stmt.init)
        while True:
            if stmt.cond is not None:
                if not self.evaluator.eval(stmt.cond).is_true():
                    return
            self.exec_stmt(stmt.body)
            if stmt.step is not None:
                self._exec_assign(stmt.step)
            else:
                return
            self._budget -= 1
            if self._budget < 0:
                raise SimulationError("for-loop budget exceeded")

    # -- assignment -----------------------------------------------------------

    def _exec_assign(self, stmt: ast.ProcAssign) -> None:
        value = self.evaluator.eval_rhs(stmt.rhs, self._lvalue_width(stmt.lvalue))
        if stmt.blocking or self.nba is None:
            self.assign(stmt.lvalue, value)
        else:
            # Capture the *current* RHS value; commit later.
            self.nba.append(NbaUpdate(apply=self._make_commit(stmt.lvalue, value)))

    def _make_commit(self, lvalue: ast.Expr, value: Logic) -> Callable[[], None]:
        def commit() -> None:
            self.assign(lvalue, value)

        return commit

    def assign(self, lvalue: ast.Expr, value: Logic) -> None:
        """Blocking-style write of ``value`` into ``lvalue``."""
        if isinstance(lvalue, ast.Concat):
            # Parts from MSB to LSB.
            offset = sum(self._lvalue_width(p) for p in lvalue.parts)
            for part in lvalue.parts:
                width = self._lvalue_width(part)
                offset -= width
                self.assign(part, value.slice(offset + width - 1, offset))
            return
        if isinstance(lvalue, ast.Identifier):
            self._write_ident(lvalue.name, value)
            return
        if isinstance(lvalue, ast.Select):
            self._write_select(lvalue, value)
            return
        if isinstance(lvalue, ast.RangeSelect):
            self._write_range(lvalue, value)
            return
        if isinstance(lvalue, ast.IndexedSelect):
            self._write_indexed(lvalue, value)
            return
        raise SimulationError(f"unsupported l-value {type(lvalue).__name__}")

    def _lvalue_width(self, expr: ast.Expr) -> int:
        params = self.ctx.module.params
        if isinstance(expr, ast.Identifier):
            if expr.name in self.frame:
                return self.frame[expr.name].width
            symbol = self.ctx.symbol(expr.name)
            return symbol.width if symbol is not None else 1
        if isinstance(expr, ast.Select):
            return 1
        if isinstance(expr, ast.RangeSelect):
            msb = const_eval(expr.msb, params)
            lsb = const_eval(expr.lsb, params)
            if msb is None or lsb is None:
                return 1
            return abs(msb - lsb) + 1
        if isinstance(expr, ast.IndexedSelect):
            width = const_eval(expr.width, params)
            return width if width else 1
        if isinstance(expr, ast.Concat):
            return sum(self._lvalue_width(p) for p in expr.parts)
        return 1

    def _write_ident(self, name: str, value: Logic) -> None:
        if name in self.frame:
            current = self.frame[name]
            self.frame[name] = value.resize(current.width, current.signed)
            return
        symbol = self.ctx.symbol(name)
        width = symbol.width if symbol is not None else value.width
        signed = symbol.signed if symbol is not None else False
        self.ctx.state.values[self.ctx.flat(name)] = value.resize(width, signed)

    def _current(self, name: str) -> Logic:
        return self.evaluator.read_ident(name)

    def _write_select(self, lvalue: ast.Select, value: Logic) -> None:
        if not isinstance(lvalue.base, ast.Identifier):
            raise SimulationError("unsupported nested l-value select")
        name = lvalue.base.name
        symbol = self.ctx.symbol(name)
        index = self.evaluator.eval(lvalue.index)
        if not index.is_fully_known:
            return  # X index: write is lost
        idx = index.to_int()
        if symbol is not None and symbol.array is not None:
            flat = self.ctx.flat(name)
            words = self.ctx.state.arrays.get(flat)
            if words is None:
                return
            lo, hi = symbol.array
            if lo <= idx <= hi:
                words[idx - lo] = value.resize(max(symbol.width, 1))
            return
        current = self._current(name)
        offset = self.evaluator._bit_offset(symbol, idx)
        self._write_ident(name, current.set_bit(offset, value.resize(1)))

    def _write_range(self, lvalue: ast.RangeSelect, value: Logic) -> None:
        if not isinstance(lvalue.base, ast.Identifier):
            raise SimulationError("unsupported nested l-value select")
        name = lvalue.base.name
        symbol = self.ctx.symbol(name)
        msb = const_eval(lvalue.msb, self.ctx.module.params)
        lsb = const_eval(lvalue.lsb, self.ctx.module.params)
        if msb is None or lsb is None:
            return
        hi = self.evaluator._bit_offset(symbol, msb)
        lo = self.evaluator._bit_offset(symbol, lsb)
        if hi < lo:
            hi, lo = lo, hi
        current = self._current(name)
        self._write_ident(name, current.set_slice(hi, lo, value))

    def _write_indexed(self, lvalue: ast.IndexedSelect, value: Logic) -> None:
        if not isinstance(lvalue.base, ast.Identifier):
            raise SimulationError("unsupported nested l-value select")
        name = lvalue.base.name
        symbol = self.ctx.symbol(name)
        start = self.evaluator.eval(lvalue.start)
        width_val = self.evaluator.eval(lvalue.width)
        if not (start.is_fully_known and width_val.is_fully_known):
            return
        width = max(width_val.to_int(), 1)
        offset = self.evaluator._bit_offset(symbol, start.to_int())
        hi, lo = (offset + width - 1, offset) if lvalue.ascending else (offset, offset - width + 1)
        current = self._current(name)
        self._write_ident(name, current.set_slice(hi, lo, value))
