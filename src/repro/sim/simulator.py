"""Cycle-oriented 4-state simulator for elaborated designs.

The simulator flattens the instance hierarchy and runs a classic
two-region model per :meth:`Simulator.step`:

1. **settle** -- continuous assigns, instance port connections and
   combinational always blocks are re-evaluated to a fixpoint
   (delta cycles, with a bound to catch combinational loops);
2. **clock** -- edge-sensitive always blocks whose edge fired
   (relative to the previous step) run with nonblocking updates queued,
   the queue is committed, and the design settles again.

This matches what VerilogEval's testbenches observe: drive inputs, step
the clock, sample outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimLimitExceeded, SimulationError
from ..verilog import ast
from ..verilog.elaborate import ElabDesign, ElabModule, PortInfo
from ..verilog.limits import DEFAULT_LIMITS, ResourceLimits
from .eval import EvalContext, Evaluator, NetState
from .exec import NbaUpdate, StmtExecutor
from .limits import (
    UNTRACKED,
    BoundedDisplayLog,
    SimLimits,
    SimLimitTracker,
    get_default_sim_limits,
)
from .values import Logic


@dataclass
class _SeqProcess:
    ctx: EvalContext
    block: ast.AlwaysBlock
    #: (edge, watched expression) pairs, evaluated in the owning context.
    edges: list[tuple[str, ast.Expr]]


@dataclass
class _CombProcess:
    ctx: EvalContext
    block: ast.AlwaysBlock


@dataclass
class _Connection:
    """Continuous link for instance ports (both directions)."""

    src_ctx: EvalContext
    src_expr: ast.Expr
    dst_ctx: EvalContext
    dst_lvalue: ast.Expr


class Simulator:
    """Simulates the top module of an elaborated design."""

    def __init__(
        self,
        design: ElabDesign,
        top: str | None = None,
        limits: ResourceLimits | None = None,
        sim_limits: SimLimits | None = None,
        sim_tracker: SimLimitTracker | None = None,
    ):
        self.design = design
        #: Cooperative budgets; ``max_settle_passes`` bounds delta cycles.
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        #: Sandbox budgets (:class:`~repro.sim.limits.SimLimits`).  Pass
        #: ``sim_tracker`` to share one budget pool across simulators
        #: (the differential harnesses do); pass
        #: :data:`~repro.sim.limits.UNTRACKED` as ``sim_limits`` to
        #: disable tracking entirely (benchmark baseline only).
        if sim_tracker is not None:
            self.sim_tracker = sim_tracker
        elif sim_limits is UNTRACKED:
            self.sim_tracker = None
        else:
            self.sim_tracker = SimLimitTracker(
                sim_limits if sim_limits is not None else get_default_sim_limits()
            )
        top_name = top or design.top
        if top_name is None or top_name not in design.modules:
            top_module = design.top_module()
            if top_module is None:
                raise SimulationError("design has no modules to simulate")
            top_name = top_module.name
        self.top = design.modules[top_name]
        self.state = NetState()
        #: Output captured from $display/$write/$strobe calls (budgeted
        #: against ``max_display_lines`` when tracked).
        self.display_log: list[str] = BoundedDisplayLog(self.sim_tracker)
        self._assigns: list[tuple[EvalContext, ast.ContinuousAssign]] = []
        self._connections: list[_Connection] = []
        self._comb: list[_CombProcess] = []
        self._seq: list[_SeqProcess] = []
        self._initials: list[tuple[EvalContext, ast.InitialBlock]] = []
        self._build(self.top, prefix="", depth=0)
        #: Process evaluations one settle pass performs (event charging).
        self._n_comb_ops = (
            len(self._assigns) + len(self._connections) + len(self._comb)
        )
        self._post_build()
        tracker = self.sim_tracker
        if tracker is not None:
            tracker.phase = "construct"
            tracker.begin_cycle()  # construction counts as one cycle
        self._run_initials()
        self.settle()
        self._edge_state = self._sample_edges()

    def _post_build(self) -> None:
        """Hook for subclasses: runs after the net list is built but
        before initial blocks execute (the compiled engine swaps in its
        lowered processes here)."""

    # -- construction -----------------------------------------------------

    def _build(self, module: ElabModule, prefix: str, depth: int) -> None:
        if depth > 16:
            raise SimulationError("instance hierarchy too deep (recursive?)")
        ctx = EvalContext(state=self.state, module=module, prefix=prefix)
        ctx.tracker = self.sim_tracker

        for name, symbol in module.scope.symbols.items():
            if symbol.kind in ("parameter", "function"):
                continue
            flat = prefix + name
            if symbol.array is not None:
                lo, hi = symbol.array
                self.state.arrays[flat] = [
                    Logic.all_x(max(symbol.width, 1)) for _ in range(hi - lo + 1)
                ]
            else:
                self.state.values[flat] = Logic.all_x(
                    max(symbol.width, 1), symbol.signed
                )

        for assign in module.assigns:
            self._assigns.append((ctx, assign))
        for block in module.always:
            edges = self._edge_list(block)
            if edges:
                self._seq.append(_SeqProcess(ctx=ctx, block=block, edges=edges))
            else:
                self._comb.append(_CombProcess(ctx=ctx, block=block))
        for initial in module.initials:
            self._initials.append((ctx, initial))

        for inst in module.instances:
            child = self.design.modules.get(inst.module_name)
            if child is None:
                continue  # elaboration already reported this
            if inst.param_values:
                from ..verilog.elaborate import specialize_module

                child = specialize_module(
                    self.design, inst.module_name, inst.param_values
                )
            child_prefix = f"{prefix}{inst.instance_name}."
            self._build(child, child_prefix, depth + 1)
            child_ctx = EvalContext(state=self.state, module=child, prefix=child_prefix)
            child_ctx.tracker = self.sim_tracker
            for port in child.ports:
                expr = inst.port_map.get(port.name)
                if expr is None:
                    continue
                port_ident = ast.Identifier(span=expr.span, name=port.name)
                if port.direction == "input":
                    self._connections.append(
                        _Connection(src_ctx=ctx, src_expr=expr,
                                    dst_ctx=child_ctx, dst_lvalue=port_ident)
                    )
                elif port.direction == "output":
                    self._connections.append(
                        _Connection(src_ctx=child_ctx, src_expr=port_ident,
                                    dst_ctx=ctx, dst_lvalue=expr)
                    )

    @staticmethod
    def _edge_list(block: ast.AlwaysBlock) -> list[tuple[str, ast.Expr]]:
        if block.sensitivity is None or block.sensitivity.star:
            return []
        return [
            (item.edge, item.expr)
            for item in block.sensitivity.items
            if item.edge is not None
        ]

    def _run_initials(self) -> None:
        nba: list[NbaUpdate] = []
        for ctx, initial in self._initials:
            executor = StmtExecutor(ctx, nba=nba, display=self.display_log)
            executor.exec_stmt(initial.body)
        for update in nba:
            update.apply()

    # -- port metadata ------------------------------------------------------

    @property
    def inputs(self) -> list[PortInfo]:
        return [p for p in self.top.ports if p.direction == "input"]

    @property
    def outputs(self) -> list[PortInfo]:
        return [p for p in self.top.ports if p.direction == "output"]

    # -- state access ---------------------------------------------------------

    def get(self, name: str) -> Logic:
        """Read a (flat-named) net's current value."""
        value = self.state.values.get(name)
        if value is None:
            raise SimulationError(f"no such net: {name!r}")
        return value

    def set_input(self, name: str, value: Logic | int) -> None:
        """Drive a top-level input port."""
        port = next((p for p in self.inputs if p.name == name), None)
        if port is None:
            raise SimulationError(f"no such input port: {name!r}")
        if isinstance(value, int):
            value = Logic.from_int(value, port.width, port.signed)
        self.state.values[name] = value.resize(port.width, port.signed)

    # -- execution ---------------------------------------------------------

    def settle(self) -> None:
        """Propagate combinational logic to a fixpoint.

        Bounded by the cooperative ``max_settle_passes`` budget from
        :class:`~repro.verilog.limits.ResourceLimits`; hitting the bound
        raises :class:`~repro.errors.SimulationError`, which every
        harness (testbench, feedback, fuzz) degrades into an ordinary
        failed verdict rather than a crash.
        """
        budget = self.limits.max_settle_passes
        tracker = self.sim_tracker
        passes = 0
        for _ in range(budget):
            before = self.state.snapshot()
            self._comb_pass()
            passes += 1
            if self.state.values == before:
                # One bulk charge per settle (pass counts are identical
                # across engines), inlined to keep the budget check off
                # the hot path; the pass bound above caps the work a
                # single settle can do before the charge lands.
                if tracker is not None:
                    tracker.events_left -= passes * self._n_comb_ops
                    if tracker.events_left < 0:
                        tracker.charge_events(0)  # raises "sim events"
                return
        raise SimLimitExceeded(
            "settle passes",
            budget,
            message="combinational logic did not settle after "
            f"{budget} passes (loop? raise max_settle_passes if legitimate)",
            phase=getattr(self.sim_tracker, "phase", ""),
        )

    def _comb_pass(self) -> None:
        for ctx, assign in self._assigns:
            executor = StmtExecutor(ctx)
            value = Evaluator(ctx).eval_rhs(
                assign.rhs, executor._lvalue_width(assign.lvalue)
            )
            executor.assign(assign.lvalue, value)
        for conn in self._connections:
            executor = StmtExecutor(conn.dst_ctx)
            value = Evaluator(conn.src_ctx).eval_rhs(
                conn.src_expr, executor._lvalue_width(conn.dst_lvalue)
            )
            executor.assign(conn.dst_lvalue, value)
        for proc in self._comb:
            StmtExecutor(proc.ctx, display=self.display_log).exec_stmt(proc.block.body)

    def _sample_edges(self) -> dict[int, Logic]:
        sampled: dict[int, Logic] = {}
        for proc in self._seq:
            for i, (_, expr) in enumerate(proc.edges):
                sampled[id(proc) * 64 + i] = Evaluator(proc.ctx).eval(expr)
        return sampled

    def step(self, inputs: dict[str, Logic | int] | None = None) -> None:
        """Apply ``inputs``, settle, fire any clock edges, settle again."""
        tracker = self.sim_tracker
        if tracker is not None:
            tracker.phase = "cycle"
            tracker.begin_cycle()
        if inputs:
            for name, value in inputs.items():
                self.set_input(name, value)
        self.settle()
        new_edges = self._sample_edges()
        triggered: list[_SeqProcess] = []
        for proc in self._seq:
            for i, (edge, _) in enumerate(proc.edges):
                key = id(proc) * 64 + i
                old = self._edge_state.get(key)
                new = new_edges[key]
                if old is None:
                    continue
                if _edge_fired(edge, old, new):
                    triggered.append(proc)
                    break
        if tracker is not None and triggered:
            tracker.charge_events(len(triggered))
        nba: list[NbaUpdate] = []
        for proc in triggered:
            StmtExecutor(proc.ctx, nba=nba, display=self.display_log).exec_stmt(proc.block.body)
        for update in nba:
            update.apply()
        self.settle()
        self._edge_state = self._sample_edges()


def _edge_fired(edge: str, old: Logic, new: Logic) -> bool:
    old_bit = old.bit(0)
    new_bit = new.bit(0)
    old_known_1 = old_bit.xmask == 0 and old_bit.bits == 1
    old_known_0 = old_bit.xmask == 0 and old_bit.bits == 0
    new_known_1 = new_bit.xmask == 0 and new_bit.bits == 1
    new_known_0 = new_bit.xmask == 0 and new_bit.bits == 0
    if edge == "posedge":
        return new_known_1 and not old_known_1
    return new_known_0 and not old_known_0
