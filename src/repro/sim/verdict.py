"""Content-addressed memoization of whole testbench verdicts.

The experiment drivers run the same differential testbench over and over:
every trial of a repair loop re-simulates the unchanged golden reference,
resampled candidates frequently repeat earlier attempts byte-for-byte,
and multi-seed experiment grids re-evaluate identical (candidate,
reference) pairs.  Simulation is deterministic -- the stimulus is fully
derived from ``(samples, seed)``, ``$random`` is a pure hash of the call
site, and the engine has no other entropy source -- so the *entire
verdict* (pass/fail, mismatch list, captured traces) is a pure function
of the design contents and the stimulus parameters.

:class:`VerdictCache` memoizes those verdicts the way
:func:`repro.runtime.cache.cached_compile` memoizes compiles: keyed by
the **design digests** stamped at elaboration (see
:meth:`repro.diagnostics.engine.DiagnosticEngine.result`) plus every
stimulus parameter, LRU-bounded, thread-safe, with hit/miss/eviction
stats.  Designs without a digest (error-bearing or hand-built) are never
cached -- lookups simply miss and the caller runs the simulation.

Chaos engineering stays transparent by construction: fault injection
perturbs the *source text* before compilation
(:class:`~repro.runtime.faults.ChaosCompiler` appends garbage), which
changes the preprocessed text, hence the digest, hence the verdict key
-- a chaos-garbled design can never alias a clean design's verdict.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ..verilog.limits import DEFAULT_LIMITS, ResourceLimits

#: Default LRU bound; verdicts are small (a few mismatch tuples + trace
#: lists) so the full working set of an experiment run stays resident.
DEFAULT_MAXSIZE = 4096


def verdict_key(
    kind: str,
    digests: tuple,
    engine: str,
    limits: Optional[ResourceLimits],
    *params,
) -> Optional[str]:
    """Content address of one simulation verdict, or ``None`` when any
    participating design lacks a digest (uncacheable).

    ``kind`` namespaces the harness ("diff" for
    :func:`~repro.sim.testbench.run_differential`, "feedback" for
    :func:`~repro.sim.feedback.simulate_with_traces`); ``digests`` are
    the content digests of every design involved; ``engine`` and the
    effective resource limits participate because both can change the
    verdict (a compiled-only bug would otherwise poison interp results,
    and tighter settle budgets turn passes into failures); ``params``
    captures the stimulus (sample count, seed, recording caps, ...).
    """
    if any(d is None for d in digests):
        return None
    effective = limits if limits is not None else DEFAULT_LIMITS
    hasher = hashlib.sha256()
    for part in (kind, engine, repr(effective), *digests, *params):
        hasher.update(str(part).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


@dataclass
class VerdictStats:
    """Hit/miss/eviction counters for one :class:`VerdictCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Lookups skipped because a design had no digest.
    uncacheable: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def simulations_avoided(self) -> int:
        return self.hits

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (used by ``run_full_report``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "uncacheable": self.uncacheable,
            "simulations_avoided": self.simulations_avoided,
            "hit_rate": round(self.hit_rate, 4),
        }


class VerdictCache:
    """LRU-bounded, thread-safe memo of simulation verdicts.

    Values are treated as immutable by every consumer
    (:class:`~repro.sim.testbench.TestbenchResult` and the feedback
    trace tuples are never mutated after construction).
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.stats = VerdictStats()
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Optional[str]):
        """The cached verdict for ``key``, or ``None`` (counts stats)."""
        if key is None:
            self.stats.uncacheable += 1
            return None
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
            return None

    def put(self, key: Optional[str], verdict) -> None:
        """Store ``verdict`` under ``key`` (no-op for uncacheable keys)."""
        if key is None or verdict is None:
            return
        with self._lock:
            self._entries[key] = verdict
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = VerdictStats()


#: The process-wide default cache, active from import time.
DEFAULT_VERDICT_CACHE = VerdictCache()

_active_cache: Optional[VerdictCache] = DEFAULT_VERDICT_CACHE
_active_lock = threading.Lock()


def get_active_verdict_cache() -> Optional[VerdictCache]:
    """The cache the simulation harnesses currently consult (or None)."""
    return _active_cache


def set_active_verdict_cache(
    cache: Optional[VerdictCache],
) -> Optional[VerdictCache]:
    """Install ``cache`` as the active verdict cache; returns the
    previous one.  Pass ``None`` to disable verdict memoization."""
    global _active_cache
    with _active_lock:
        previous = _active_cache
        _active_cache = cache
        return previous


@contextmanager
def use_verdict_cache(
    cache: Optional[VerdictCache] = None, maxsize: int = DEFAULT_MAXSIZE
) -> Iterator[VerdictCache]:
    """Scope a verdict cache to a ``with`` block (fresh one by default);
    the previously active cache is restored on exit."""
    scoped = cache if cache is not None else VerdictCache(maxsize=maxsize)
    previous = set_active_verdict_cache(scoped)
    try:
        yield scoped
    finally:
        set_active_verdict_cache(previous)


@contextmanager
def no_verdict_cache() -> Iterator[None]:
    """Disable verdict memoization inside a ``with`` block (cold-path
    measurements, differential engine comparisons)."""
    previous = set_active_verdict_cache(None)
    try:
        yield
    finally:
        set_active_verdict_cache(previous)
