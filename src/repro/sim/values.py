"""Four-state logic values for simulation.

A :class:`Logic` is an immutable fixed-width vector where each bit is
0, 1, X or Z, encoded as two integers: ``bits`` (the 0/1 plane) and
``xmask`` (bit set = unknown; the corresponding ``bits`` bit selects X
vs Z, but for evaluation X and Z behave identically).

Semantics follow Verilog's self-determined rules closely enough for
differential testing: any X input to an arithmetic operator poisons the
whole result; bitwise operators propagate X per-bit with the usual
short-circuits (``0 & x = 0``, ``1 | x = 1``).
"""

from __future__ import annotations

__all__ = ["Logic", "X", "ZERO", "ONE"]


def _mask(width: int) -> int:
    return (1 << width) - 1


class Logic:
    """An immutable 4-state vector value.

    A plain slotted class rather than a dataclass: Logic construction is
    the simulator's hottest operation (tens of thousands per settle)."""

    __slots__ = ("width", "bits", "xmask", "signed")

    def __init__(self, width: int, bits: int, xmask: int = 0, signed: bool = False):
        if width <= 0:
            raise ValueError(f"Logic width must be positive, got {width}")
        mask = (1 << width) - 1
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "bits", bits & mask)
        object.__setattr__(self, "xmask", xmask & mask)
        object.__setattr__(self, "signed", signed)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Logic values are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Logic):
            return NotImplemented
        return (
            self.width == other.width
            and self.bits == other.bits
            and self.xmask == other.xmask
            and self.signed == other.signed
        )

    def __hash__(self) -> int:
        return hash((self.width, self.bits, self.xmask, self.signed))

    def __repr__(self) -> str:
        return (
            f"Logic(width={self.width}, bits={self.bits}, "
            f"xmask={self.xmask}, signed={self.signed})"
        )

    # -- constructors --------------------------------------------------

    @staticmethod
    def from_int(value: int, width: int, signed: bool = False) -> "Logic":
        """A fully-known value from a Python int (masked to width)."""
        return Logic(width=width, bits=value & _mask(width), signed=signed)

    @staticmethod
    def all_x(width: int, signed: bool = False) -> "Logic":
        """A value with every bit unknown."""
        return Logic(width=width, bits=0, xmask=_mask(width), signed=signed)

    # -- predicates -----------------------------------------------------

    @property
    def is_fully_known(self) -> bool:
        return self.xmask == 0

    @property
    def has_x(self) -> bool:
        return self.xmask != 0

    def is_true(self) -> bool | None:
        """Truthiness for conditions: True/False, or None when unknown.

        A value with some X bits is still *true* if any known bit is 1
        (matches Verilog: a condition is taken when the value contains a
        1 somewhere... strictly Verilog treats any-X-result specially,
        but known-1 dominates)."""
        if self.bits & ~self.xmask:
            return True
        if self.xmask:
            return None
        return False

    # -- conversions ------------------------------------------------------

    def to_int(self) -> int:
        """Unsigned integer value; X bits read as 0."""
        return self.bits & ~self.xmask & _mask(self.width)

    def to_signed_int(self) -> int:
        """Two's-complement integer value; X bits read as 0."""
        raw = self.to_int()
        if self.signed and raw >> (self.width - 1):
            raw -= 1 << self.width
        return raw

    def arith_int(self) -> int | None:
        """Integer for arithmetic, None if any bit is unknown."""
        if self.xmask:
            return None
        return self.to_signed_int() if self.signed else self.bits

    # -- width adjustment ---------------------------------------------------

    def resize(self, width: int, signed: bool | None = None) -> "Logic":
        """Truncate or extend to ``width``.  Extension is sign- or
        x-extending as appropriate."""
        signed = self.signed if signed is None else signed
        if width == self.width:
            return Logic(width, self.bits, self.xmask, signed)
        if width < self.width:
            return Logic(width, self.bits, self.xmask, signed)
        ext = _mask(width) ^ _mask(self.width)
        msb = self.width - 1
        bits, xmask = self.bits, self.xmask
        if (xmask >> msb) & 1:
            xmask |= ext
            if (bits >> msb) & 1:
                bits |= ext
        elif self.signed and (bits >> msb) & 1:
            bits |= ext
        return Logic(width, bits, xmask, signed)

    def as_unsigned(self) -> "Logic":
        """Same bits, unsigned interpretation ($unsigned)."""
        return Logic(self.width, self.bits, self.xmask, False)

    def as_signed(self) -> "Logic":
        """Same bits, signed interpretation ($signed)."""
        return Logic(self.width, self.bits, self.xmask, True)

    # -- bit access ---------------------------------------------------------

    def bit(self, index: int) -> "Logic":
        """Single-bit read; out-of-range reads X (Verilog semantics)."""
        if not 0 <= index < self.width:
            return Logic.all_x(1)
        return Logic(1, (self.bits >> index) & 1, (self.xmask >> index) & 1)

    def slice(self, high: int, low: int) -> "Logic":
        """Bit-range read [high:low] in *bit offsets*; out-of-range X."""
        width = high - low + 1
        if width <= 0:
            return Logic.all_x(1)
        if low >= 0 and high < self.width:
            mask = (1 << width) - 1
            return Logic(width, (self.bits >> low) & mask, (self.xmask >> low) & mask)
        out_bits = 0
        out_x = 0
        for i in range(width):
            src = low + i
            if 0 <= src < self.width:
                out_bits |= ((self.bits >> src) & 1) << i
                out_x |= ((self.xmask >> src) & 1) << i
            else:
                out_x |= 1 << i
        return Logic(width, out_bits, out_x)

    def set_bit(self, index: int, value: "Logic") -> "Logic":
        """Copy with one bit replaced (out-of-range writes ignored)."""
        if not 0 <= index < self.width:
            return self
        bit = 1 << index
        bits = (self.bits & ~bit) | ((value.bits & 1) << index)
        xmask = (self.xmask & ~bit) | ((value.xmask & 1) << index)
        return Logic(self.width, bits, xmask, self.signed)

    def set_slice(self, high: int, low: int, value: "Logic") -> "Logic":
        """Copy with bit range [high:low] replaced."""
        out = self
        for i in range(high - low + 1):
            out = out.set_bit(low + i, value.bit(i))
        return out

    # -- rendering ------------------------------------------------------------

    def __str__(self) -> str:
        if self.xmask == 0:
            ndigits = (self.width + 3) // 4
            return f"{self.width}'h{self.bits:0{ndigits}x}"
        chars = []
        for i in reversed(range(self.width)):
            if (self.xmask >> i) & 1:
                chars.append("z" if (self.bits >> i) & 1 else "x")
            else:
                chars.append(str((self.bits >> i) & 1))
        return f"{self.width}'b{''.join(chars)}"

    def same_as(self, other: "Logic") -> bool:
        """Bit-exact equality including X positions (=== semantics),
        after widening both to the larger width."""
        width = max(self.width, other.width)
        a = self.resize(width)
        b = other.resize(width)
        return a.bits == b.bits and a.xmask == b.xmask


X = Logic.all_x(1)
ZERO = Logic(1, 0)
ONE = Logic(1, 1)
