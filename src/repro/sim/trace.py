"""Waveform tracing: record signal values over time and render them as
text.

The paper's §5 describes feeding LLMs "text-formatted waveform-like
comparisons of error versus solution output" when attempting to debug
*simulation* errors.  A :class:`Trace` captures per-step values for a
set of signals; :func:`render_waveform` prints them in a compact table,
and :func:`render_comparison` aligns a failing trace against the golden
one and marks mismatching samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .simulator import Simulator
from .values import Logic


@dataclass
class Trace:
    """Recorded values: signal name -> list of per-sample values."""

    signals: list[str]
    samples: dict[str, list[Logic]] = field(default_factory=dict)
    #: Optional :class:`~repro.sim.limits.SimLimitTracker`; when set,
    #: every recorded (signal, sample) entry charges the trace budgets
    #: (trace bombs -- many wide outputs -- stop here instead of eating
    #: memory).  Excluded from equality/repr: a trace's identity is its
    #: recorded data.
    tracker: object = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        for name in self.signals:
            self.samples.setdefault(name, [])

    def record(self, sim: Simulator) -> None:
        """Capture the current value of every traced signal."""
        tracker = self.tracker
        for name in self.signals:
            value = sim.get(name)
            if tracker is not None:
                tracker.charge_trace(1, (value.width + 7) >> 3)
            self.samples[name].append(value)

    def append(self, name: str, value: Logic) -> None:
        if self.tracker is not None:
            self.tracker.charge_trace(1, (value.width + 7) >> 3)
        self.samples.setdefault(name, []).append(value)
        if name not in self.signals:
            self.signals.append(name)

    @property
    def length(self) -> int:
        if not self.signals:
            return 0
        return max((len(self.samples[s]) for s in self.signals), default=0)

    def value_at(self, name: str, index: int) -> Logic | None:
        values = self.samples.get(name, [])
        if 0 <= index < len(values):
            return values[index]
        return None


def _cell(value: Logic | None) -> str:
    if value is None:
        return "-"
    if value.xmask:
        return "x" * ((value.width + 3) // 4) if value.width > 1 else "x"
    if value.width == 1:
        return str(value.bits)
    return f"{value.bits:0{(value.width + 3) // 4}x}"


def render_waveform(trace: Trace, max_samples: int = 32) -> str:
    """A compact text waveform, one row per signal."""
    steps = min(trace.length, max_samples)
    name_width = max((len(s) for s in trace.signals), default=4)
    lines = []
    header = " " * (name_width + 2) + " ".join(f"{i:>4}" for i in range(steps))
    lines.append(header)
    for name in trace.signals:
        cells = " ".join(
            f"{_cell(trace.value_at(name, i)):>4}" for i in range(steps)
        )
        lines.append(f"{name:<{name_width}}  {cells}")
    return "\n".join(lines)


def render_comparison(
    actual: Trace,
    expected: Trace,
    signals: list[str] | None = None,
    max_samples: int = 24,
) -> str:
    """Side-by-side comparison with mismatch markers.

    This is the feedback format handed to the simulation-debugging agent
    (paper §5): per traced output, the expected row, the actual row, and
    a marker row flagging the samples that differ."""
    signals = signals or [s for s in expected.signals if s in actual.signals]
    steps = min(max(actual.length, expected.length), max_samples)
    blocks = []
    mismatch_total = 0
    for name in signals:
        exp_cells = []
        act_cells = []
        marks = []
        for i in range(steps):
            exp = expected.value_at(name, i)
            act = actual.value_at(name, i)
            exp_cells.append(f"{_cell(exp):>4}")
            act_cells.append(f"{_cell(act):>4}")
            same = exp is not None and act is not None and exp.same_as(act)
            if not same:
                mismatch_total += 1
            marks.append("   ^" if not same else "    ")
        blocks.append(
            f"signal {name}:\n"
            f"  expected {' '.join(exp_cells)}\n"
            f"  actual   {' '.join(act_cells)}\n"
            f"  mismatch {' '.join(marks)}"
        )
    header = f"{mismatch_total} mismatching sample(s) across {len(signals)} signal(s)"
    return header + "\n" + "\n".join(blocks)
