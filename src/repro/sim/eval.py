"""Expression evaluation and l-value assignment for the simulator.

An :class:`EvalContext` binds one module *instance* (elaborated module +
hierarchical name prefix) to the shared :class:`NetState`.  Procedural
execution adds a ``frame`` of local variables (function arguments,
block-local integers, SystemVerilog ``for (int i ...)`` variables).

This is the full 4-state (0/1/X/Z) evaluator and the semantic reference
for the compiled engine: :mod:`repro.sim.compile` lowers the common
expression shapes into two-state closures that must agree bit-for-bit
with :class:`Evaluator`, and anything they cannot prove known-valued
bails back here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SimulationError
from ..verilog import ast
from ..verilog.elaborate import ElabModule, const_eval
from ..verilog.symbols import Symbol
from . import ops
from .values import Logic

_DEFAULT_WIDTH = 32


@dataclass
class NetState:
    """Flat value storage for a whole design hierarchy."""

    values: dict[str, Logic] = field(default_factory=dict)
    arrays: dict[str, list[Logic]] = field(default_factory=dict)

    def snapshot(self) -> dict[str, Logic]:
        return dict(self.values)


@dataclass
class EvalContext:
    state: NetState
    module: ElabModule
    prefix: str = ""
    #: natural_width memo keyed by AST node id (module-level exprs only;
    #: the AST is held alive by the design, so ids are stable).
    width_cache: dict[int, int] = field(default_factory=dict)
    #: The owning simulator's :class:`~repro.sim.limits.SimLimitTracker`
    #: (None when untracked).  Carried on the context so every
    #: :class:`~repro.sim.exec.StmtExecutor` -- including the ones
    #: spawned for function calls and compiled-engine fallbacks --
    #: inherits the same budgets without per-callsite threading.
    tracker: object = None

    def flat(self, name: str) -> str:
        return self.prefix + name

    def symbol(self, name: str) -> Optional[Symbol]:
        return self.module.symbol(name)


#: Operators whose operand width is determined by the assignment context
#: (LRM "context-determined" operands).
_CONTEXT_BINOPS = frozenset(["+", "-", "*", "/", "%", "&", "|", "^", "^~", "~^"])
_CONTEXT_UNOPS = frozenset(["+", "-", "~"])


class Evaluator:
    """Evaluates expressions for one instance context.

    Width handling follows Verilog's context-determined rules: the width
    of an assignment's RHS is max(lvalue width, natural expression
    width), pushed down through arithmetic/bitwise/ternary operators so
    that e.g. an 8-bit + 8-bit addition assigned to a 9-bit target keeps
    its carry.
    """

    def __init__(self, ctx: EvalContext, frame: dict[str, Logic] | None = None):
        self.ctx = ctx
        self.frame = frame if frame is not None else {}

    # -- width analysis ----------------------------------------------------

    def natural_width(self, expr: ast.Expr) -> int:
        """Self/context-determined natural width of an expression.

        Memoized per AST node while no local frame is active (frame
        variables can change an identifier's width)."""
        if not self.frame:
            cached = self.ctx.width_cache.get(id(expr))
            if cached is not None:
                return cached
        width = self._natural_width(expr)
        if not self.frame:
            self.ctx.width_cache[id(expr)] = width
        return width

    def _natural_width(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Number):
            return max(expr.width if expr.width is not None else _DEFAULT_WIDTH, 1)
        if isinstance(expr, ast.StringLit):
            return max(8 * len(expr.value.encode()), 8)
        if isinstance(expr, ast.Identifier):
            if expr.name in self.frame:
                return self.frame[expr.name].width
            symbol = self.ctx.symbol(expr.name)
            return max(symbol.width, 1) if symbol is not None else 1
        if isinstance(expr, ast.Select):
            symbol = self._base_symbol(expr.base)
            if symbol is not None and symbol.array is not None:
                return max(symbol.width, 1)
            return 1
        if isinstance(expr, ast.RangeSelect):
            msb = const_eval(expr.msb, self.ctx.module.params)
            lsb = const_eval(expr.lsb, self.ctx.module.params)
            if msb is None or lsb is None:
                return 1
            return abs(msb - lsb) + 1
        if isinstance(expr, ast.IndexedSelect):
            width = const_eval(expr.width, self.ctx.module.params)
            return max(width, 1) if width else 1
        if isinstance(expr, ast.Concat):
            return max(sum(self.natural_width(p) for p in expr.parts), 1)
        if isinstance(expr, ast.Replicate):
            count = const_eval(expr.count, self.ctx.module.params) or 1
            inner = sum(self.natural_width(p) for p in expr.value.parts)
            return max(count * inner, 1)
        if isinstance(expr, ast.Unary):
            if expr.op in _CONTEXT_UNOPS:
                return self.natural_width(expr.operand)
            return 1  # reductions and !
        if isinstance(expr, ast.Binary):
            if expr.op in _CONTEXT_BINOPS:
                return max(self.natural_width(expr.lhs), self.natural_width(expr.rhs))
            if expr.op in ("<<", ">>", "<<<", ">>>", "**"):
                return self.natural_width(expr.lhs)
            return 1  # comparisons, logical
        if isinstance(expr, ast.Ternary):
            return max(self.natural_width(expr.then), self.natural_width(expr.other))
        if isinstance(expr, ast.SystemCall):
            if expr.name in ("$signed", "$unsigned") and expr.args:
                return self.natural_width(expr.args[0])
            return _DEFAULT_WIDTH
        if isinstance(expr, ast.FuncCall):
            decl = self.ctx.module.functions.get(expr.name)
            if decl is not None:
                return _range_width(decl.range, self.ctx.module.params)
            return 1
        return 1

    # -- reads ----------------------------------------------------------

    def eval(self, expr: ast.Expr, width: int | None = None) -> Logic:
        """Evaluate ``expr``; ``width`` is the context width pushed down
        from an enclosing assignment or operator (None = self-determined).
        """
        value = self._eval(expr, width)
        if width is not None and value.width < width:
            value = value.resize(width)
        return value

    def eval_rhs(self, expr: ast.Expr, target_width: int) -> Logic:
        """Evaluate the RHS of an assignment to a ``target_width`` lvalue."""
        context = max(target_width, self.natural_width(expr))
        return self.eval(expr, context)

    def _eval(self, expr: ast.Expr, width: int | None) -> Logic:
        if isinstance(expr, ast.Number):
            nat = expr.width if expr.width is not None else _DEFAULT_WIDTH
            return Logic(max(nat, 1), expr.bits, expr.xmask, expr.signed)
        if isinstance(expr, ast.StringLit):
            data = expr.value.encode() or b"\0"
            return Logic(8 * len(data), int.from_bytes(data, "big"))
        if isinstance(expr, ast.Identifier):
            return self.read_ident(expr.name)
        if isinstance(expr, ast.Select):
            return self._eval_select(expr)
        if isinstance(expr, ast.RangeSelect):
            return self._eval_range_select(expr)
        if isinstance(expr, ast.IndexedSelect):
            return self._eval_indexed_select(expr)
        if isinstance(expr, ast.Concat):
            return ops.concat([self.eval(p) for p in expr.parts])
        if isinstance(expr, ast.Replicate):
            count = self.eval(expr.count)
            value = ops.concat([self.eval(p) for p in expr.value.parts])
            return ops.replicate(count.to_int() if count.is_fully_known else 0, value)
        if isinstance(expr, ast.Unary):
            if expr.op in _CONTEXT_UNOPS:
                return ops.unary(expr.op, self.eval(expr.operand, width))
            return ops.unary(expr.op, self.eval(expr.operand))
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, width)
        if isinstance(expr, ast.Ternary):
            return ops.ternary(
                self.eval(expr.cond),
                self.eval(expr.then, width),
                self.eval(expr.other, width),
            )
        if isinstance(expr, ast.SystemCall):
            return self._eval_system_call(expr)
        if isinstance(expr, ast.FuncCall):
            return self._eval_func_call(expr)
        raise SimulationError(f"cannot evaluate expression node {type(expr).__name__}")

    def _eval_binary(self, expr: ast.Binary, width: int | None) -> Logic:
        if expr.op in _CONTEXT_BINOPS:
            context = max(
                width or 1,
                self.natural_width(expr.lhs),
                self.natural_width(expr.rhs),
            )
            return ops.binary(
                expr.op, self.eval(expr.lhs, context), self.eval(expr.rhs, context)
            )
        if expr.op in ("<", "<=", ">", ">=", "==", "!="):
            # Comparison operands size to each other, not to the context.
            inner = max(self.natural_width(expr.lhs), self.natural_width(expr.rhs))
            return ops.binary(
                expr.op, self.eval(expr.lhs, inner), self.eval(expr.rhs, inner)
            )
        if expr.op in ("<<", ">>", "<<<", ">>>", "**"):
            return ops.binary(expr.op, self.eval(expr.lhs, width), self.eval(expr.rhs))
        return ops.binary(expr.op, self.eval(expr.lhs), self.eval(expr.rhs))

    def read_ident(self, name: str) -> Logic:
        if name in self.frame:
            return self.frame[name]
        symbol = self.ctx.symbol(name)
        if symbol is not None and symbol.kind == "parameter":
            value = symbol.value if symbol.value is not None else 0
            return Logic.from_int(value, _DEFAULT_WIDTH, signed=True)
        flat = self.ctx.flat(name)
        value = self.ctx.state.values.get(flat)
        if value is not None:
            return value
        width = symbol.width if symbol is not None else 1
        return Logic.all_x(max(width, 1), symbol.signed if symbol else False)

    def _base_symbol(self, expr: ast.Expr) -> Optional[Symbol]:
        if isinstance(expr, ast.Identifier):
            return self.ctx.symbol(expr.name)
        return None

    def _bit_offset(self, symbol: Optional[Symbol], index: int) -> int:
        """Map a declared index to a bit offset (handles [0:7] vectors)."""
        if symbol is None or symbol.msb is None or symbol.lsb is None:
            return index
        if symbol.msb >= symbol.lsb:
            return index - symbol.lsb
        return symbol.lsb - index

    def _eval_select(self, expr: ast.Select) -> Logic:
        index = self.eval(expr.index)
        if isinstance(expr.base, ast.Identifier):
            name = expr.base.name
            symbol = self.ctx.symbol(name)
            flat = self.ctx.flat(name)
            if symbol is not None and symbol.array is not None:
                words = self.ctx.state.arrays.get(flat)
                if not index.is_fully_known or words is None:
                    return Logic.all_x(max(symbol.width, 1))
                word = index.to_int()
                lo, hi = symbol.array
                if not lo <= word <= hi:
                    return Logic.all_x(max(symbol.width, 1))
                return words[word - lo]
            base = self.read_ident(name)
            if not index.is_fully_known:
                return Logic.all_x(1)
            return base.bit(self._bit_offset(symbol, index.to_int()))
        base = self.eval(expr.base)
        if not index.is_fully_known:
            return Logic.all_x(1)
        return base.bit(index.to_int())

    def _eval_range_select(self, expr: ast.RangeSelect) -> Logic:
        base = self.eval(expr.base)
        symbol = self._base_symbol(expr.base)
        msb = const_eval(expr.msb, self.ctx.module.params)
        lsb = const_eval(expr.lsb, self.ctx.module.params)
        if msb is None or lsb is None:
            m = self.eval(expr.msb)
            l = self.eval(expr.lsb)
            if not (m.is_fully_known and l.is_fully_known):
                return Logic.all_x(1)
            msb, lsb = m.to_int(), l.to_int()
        hi = self._bit_offset(symbol, msb)
        lo = self._bit_offset(symbol, lsb)
        if hi < lo:
            hi, lo = lo, hi
        return base.slice(hi, lo)

    def _eval_indexed_select(self, expr: ast.IndexedSelect) -> Logic:
        base = self.eval(expr.base)
        symbol = self._base_symbol(expr.base)
        start = self.eval(expr.start)
        width_val = self.eval(expr.width)
        if not (start.is_fully_known and width_val.is_fully_known):
            return Logic.all_x(1)
        width = max(width_val.to_int(), 1)
        offset = self._bit_offset(symbol, start.to_int())
        if expr.ascending:
            return base.slice(offset + width - 1, offset)
        return base.slice(offset, offset - width + 1)

    def _eval_system_call(self, expr: ast.SystemCall) -> Logic:
        name = expr.name
        if name == "$signed" and expr.args:
            return self.eval(expr.args[0]).as_signed()
        if name == "$unsigned" and expr.args:
            return self.eval(expr.args[0]).as_unsigned()
        if name == "$clog2" and expr.args:
            value = self.eval(expr.args[0])
            if not value.is_fully_known:
                return Logic.all_x(_DEFAULT_WIDTH)
            v = value.to_int()
            return Logic.from_int(max(0, (v - 1).bit_length()) if v > 0 else 0, _DEFAULT_WIDTH)
        if name in ("$time", "$stime", "$realtime"):
            return Logic.from_int(0, 64)
        if name == "$random":
            # Deterministic pseudo-random: hash of call-site position.
            return Logic.from_int(hash(expr.span.start) & 0xFFFFFFFF, 32)
        raise SimulationError(f"unsupported system function {name}")

    def _eval_func_call(self, expr: ast.FuncCall) -> Logic:
        decl = self.ctx.module.functions.get(expr.name)
        if decl is None:
            raise SimulationError(f"call to unknown function {expr.name!r}")
        # Imported here to avoid a circular import at module load.
        from .exec import StmtExecutor

        frame: dict[str, Logic] = {}
        params = self.ctx.module.params
        for port, arg in zip(decl.inputs, expr.args):
            width = _decl_width(port, params)
            frame[port.name] = self.eval(arg).resize(width, port.signed)
        for local in decl.decls:
            frame[local.name] = Logic.all_x(
                _decl_width(local, params),
                signed=local.signed or local.net_kind in ("integer", "int"),
            )
        ret_width = _range_width(decl.range, params)
        frame[decl.name] = Logic.all_x(ret_width)
        executor = StmtExecutor(self.ctx, frame=frame, in_function=True)
        executor.exec_stmt(decl.body)
        return frame[decl.name].resize(ret_width, decl.signed)


def _range_width(rng: Optional[ast.Range], params: dict[str, int]) -> int:
    if rng is None:
        return 1
    msb = const_eval(rng.msb, params)
    lsb = const_eval(rng.lsb, params)
    if msb is None or lsb is None:
        return 1
    return abs(msb - lsb) + 1


def _decl_width(decl: ast.NetDecl, params: dict[str, int]) -> int:
    if decl.range is not None:
        return _range_width(decl.range, params)
    if decl.net_kind in ("integer", "int", "genvar"):
        return _DEFAULT_WIDTH
    return 1
