"""The ReAct debugging agent (paper §3.2).

Since the repair-engine refactor this agent is a thin configuration of
the generic :class:`~repro.repair.engine.RepairEngine`: a
:class:`~repro.repair.oracles.CompileOracle` over the session-backed
compiler, a :class:`~repro.repair.localizers.DiagnosticLocalizer` for
the RAG action, an :class:`~repro.repair.proposers.LLMProposer` over
the repair-model surface and the rule-based pre-fix prefix.  Its
transcripts, results and digests are bit-identical to the pre-refactor
hand-rolled loop (``scripts/repair_diff.py`` prosecutes this against
:mod:`repro.repair.legacy`).

Service integration comes from the engine's shared seams: the ambient
request :class:`~repro.service.deadline.Deadline` is checked at the top
of every iteration (an over-budget repair stops *mid-run* with
:class:`~repro.errors.DeadlineExceededError`), and every transcript
turn flows through the optional ``on_turn`` observer, which the repair
server streams to clients as per-iteration SSE progress events.  Both
are no-ops for batch runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..diagnostics import Compiler
from ..llm.base import RepairModel
from ..rag.retrievers import Retriever
from ..repair import (
    CompileOracle,
    DiagnosticLocalizer,
    EngineConfig,
    LLMProposer,
    RepairEngine,
    RuleFixProposer,
    record_rule_fix,  # re-exported: OneShotAgent shares the pre-pass  # noqa: F401
)
from ..repair.base import _head  # noqa: F401  (compat re-export)
from .transcript import Transcript, Turn

DEFAULT_MAX_ITERATIONS = 10

#: The ReAct flavor of the engine loop: Compiler action, trust the
#: model's every revision ("always" accept), Finish turns on success,
#: stop once a verified step declared itself done.
_REACT_CONFIG = EngineConfig(
    action="Compiler",
    head_lines=3,
    accept="always",
    finish_thought="The compiler reports no errors; the syntax "
    "error is resolved.",
    initial_finish=lambda rule_fixed: (
        "The rule-based fixes made the module compile cleanly; "
        "no model repair needed."
        if rule_fixed
        else "The module compiles cleanly; no repair needed."
    ),
    stop_after_done=True,
    deadline_stage="react-iteration",
)


@dataclass
class AgentResult:
    """Outcome of one debugging run."""

    success: bool
    final_code: str
    #: Number of code revisions submitted to the compiler (0 when the
    #: input already compiled).
    iterations: int
    transcript: Transcript = field(default_factory=Transcript)
    #: True when the rule-based pre-fixer materially changed the code
    #: before any model involvement.  A success with ``iterations == 0``
    #: and ``rule_fixed`` is a *rule-based repair*, not a clean input --
    #: Table 1 accounting must not conflate the two.
    rule_fixed: bool = False

    @property
    def gave_up(self) -> bool:
        return not self.success


class ReActAgent:
    """LLM-as-autonomous-agent with Compiler / RAG / Finish actions.

    The agent holds one :class:`~repro.diagnostics.Compiler` for its
    whole run; since each iteration edits only part of the previous
    candidate, the compiler's staged pipeline session
    (:class:`~repro.verilog.pipeline.CompileSession`) reuses unchanged
    stage artifacts across iterations instead of recompiling cold.
    """

    def __init__(
        self,
        model: RepairModel,
        compiler: Compiler,
        retriever: Optional[Retriever] = None,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        apply_rule_fix: bool = True,
        on_turn: Optional[Callable[[Turn], None]] = None,
    ):
        self.model = model
        self.compiler = compiler
        self.retriever = retriever
        self.max_iterations = max_iterations
        self.apply_rule_fix = apply_rule_fix
        #: Progress observer: called with every transcript Turn the
        #: moment it is recorded (the repair service streams these as
        #: SSE events).  May be (re)assigned after construction; must
        #: never raise -- it runs inside the repair loop.
        self.on_turn = on_turn

    def _engine(self) -> RepairEngine:
        """Assemble the ReAct configuration of the repair engine.

        Built per run (cheap: plain object composition) so post-
        construction reassignment of ``on_turn`` -- the repair server
        does this -- is honoured."""
        return RepairEngine(
            oracle=CompileOracle(self.compiler),
            proposer=LLMProposer(
                self.model, flavor=self.compiler.flavor,
                use_rag=self.retriever is not None,
            ),
            localizer=(
                DiagnosticLocalizer(self.retriever)
                if self.retriever is not None else None
            ),
            config=replace(_REACT_CONFIG, max_iterations=self.max_iterations),
            prefix=RuleFixProposer() if self.apply_rule_fix else None,
            on_turn=self.on_turn,
        )

    def run(self, code: str, description: str = "") -> AgentResult:
        """Debug ``code`` with the ReAct loop until it compiles or the
        iteration budget runs out."""
        outcome = self._engine().run(code)
        return AgentResult(
            success=outcome.success, final_code=outcome.final_code,
            iterations=outcome.iterations, transcript=outcome.transcript,
            rule_fixed=outcome.rule_fixed,
        )
