"""The ReAct debugging agent (paper §3.2).

The agent owns the loop: compile, read feedback, optionally retrieve
expert guidance (the RAG action), ask the model for a Thought + revised
code, recompile.  It stops on success (Finish action), when the model
declares itself done, or after ``max_iterations`` Thought-Action-
Observation rounds (the paper uses 10).

Service integration: the loop honours an ambient request
:class:`~repro.service.deadline.Deadline` -- checked at the top of
every iteration, so an over-budget repair stops *mid-run* with
:class:`~repro.errors.DeadlineExceededError` instead of discovering
the overrun after finishing -- and emits every transcript turn through
an optional ``on_turn`` observer, which the repair server streams to
clients as per-iteration SSE progress events.  Both are no-ops for
batch runs (no deadline in scope, no observer attached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..diagnostics import Compiler
from ..llm.base import RepairModel
from ..rag.retrievers import Retriever
from ..service.deadline import current_deadline
from .transcript import Transcript, Turn

DEFAULT_MAX_ITERATIONS = 10


@dataclass
class AgentResult:
    """Outcome of one debugging run."""

    success: bool
    final_code: str
    #: Number of code revisions submitted to the compiler (0 when the
    #: input already compiled).
    iterations: int
    transcript: Transcript = field(default_factory=Transcript)
    #: True when the rule-based pre-fixer materially changed the code
    #: before any model involvement.  A success with ``iterations == 0``
    #: and ``rule_fixed`` is a *rule-based repair*, not a clean input --
    #: Table 1 accounting must not conflate the two.
    rule_fixed: bool = False

    @property
    def gave_up(self) -> bool:
        return not self.success


class ReActAgent:
    """LLM-as-autonomous-agent with Compiler / RAG / Finish actions.

    The agent holds one :class:`~repro.diagnostics.Compiler` for its
    whole run; since each iteration edits only part of the previous
    candidate, the compiler's staged pipeline session
    (:class:`~repro.verilog.pipeline.CompileSession`) reuses unchanged
    stage artifacts across iterations instead of recompiling cold.
    """

    def __init__(
        self,
        model: RepairModel,
        compiler: Compiler,
        retriever: Optional[Retriever] = None,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        apply_rule_fix: bool = True,
        on_turn: Optional[Callable[[Turn], None]] = None,
    ):
        self.model = model
        self.compiler = compiler
        self.retriever = retriever
        self.max_iterations = max_iterations
        self.apply_rule_fix = apply_rule_fix
        #: Progress observer: called with every transcript Turn the
        #: moment it is recorded (the repair service streams these as
        #: SSE events).  May be (re)assigned after construction; must
        #: never raise -- it runs inside the repair loop.
        self.on_turn = on_turn

    def _record(self, transcript: Transcript, **turn_fields) -> Turn:
        """Append one transcript turn and notify the observer."""
        turn = transcript.add(**turn_fields)
        if self.on_turn is not None:
            self.on_turn(turn)
        return turn

    def run(self, code: str, description: str = "") -> AgentResult:
        """Debug ``code`` with the ReAct loop until it compiles or the
        iteration budget runs out."""
        from ..core.rulefix import rule_fix  # deferred: avoids an import
        # cycle (repro.core.fixer builds agents)

        transcript = Transcript()
        rule_fixed = False
        if self.apply_rule_fix:
            rule_result = rule_fix(code)
            rule_fixed = record_rule_fix(transcript, code, rule_result)
            if rule_fixed and self.on_turn is not None:
                self.on_turn(transcript.turns[-1])
            code = rule_result.code

        result = self.compiler.compile(code)
        if result.ok:
            self._record(
                transcript,
                thought=(
                    "The rule-based fixes made the module compile cleanly; "
                    "no model repair needed."
                    if rule_fixed
                    else "The module compiles cleanly; no repair needed."
                ),
                action="Finish", action_input="answer", observation="",
            )
            return AgentResult(success=True, final_code=code, iterations=0,
                               transcript=transcript, rule_fixed=rule_fixed)

        session = self.model.start(
            code, flavor=self.compiler.flavor, use_rag=self.retriever is not None
        )

        iterations = 0
        for _ in range(self.max_iterations):
            # Deadline seam: a request served past its budget helps no
            # one -- stop mid-ReAct instead of finishing the repair and
            # discovering the overrun post-hoc.  Batch runs have no
            # ambient deadline and skip this entirely.
            deadline = current_deadline()
            if deadline is not None:
                deadline.check(stage="react-iteration")
            feedback = result.log
            guidance = []
            # A crashed compile (internal-error diagnostic, see
            # compile_source's never-crash boundary) is still feedback
            # the model can react to, but there is no point retrieving
            # guidance for it: the RAG database indexes *design* errors,
            # not compiler defects.
            crashed = getattr(result, "crashed", False)
            if self.retriever is not None and feedback and not crashed:
                guidance = [r.entry for r in self.retriever.retrieve(feedback)]
                if guidance:
                    self._record(
                        transcript,
                        thought="I should look up expert guidance for this "
                        "compiler log.",
                        action="RAG",
                        action_input=feedback.split("\n")[0],
                        observation=guidance[0].guidance,
                    )

            step = session.step(code, feedback, guidance)
            iterations += 1
            code = step.code
            result = self.compiler.compile(code)
            # Escalation seam: sessions that route across model tiers
            # (repro.llm.pool) count failed iterations through this
            # duck-typed signal; plain sessions have no observe().
            notice = getattr(session, "observe", None)
            if callable(notice):
                notice(result.ok)
            self._record(
                transcript,
                thought=step.thought,
                action="Compiler",
                action_input=_head(code),
                observation=result.log,
            )
            if result.ok:
                self._record(
                    transcript,
                    thought="The compiler reports no errors; the syntax "
                    "error is resolved.",
                    action="Finish", action_input="answer", observation="",
                )
                return AgentResult(success=True, final_code=code,
                                   iterations=iterations, transcript=transcript,
                                   rule_fixed=rule_fixed)
            if step.declared_done:
                break
        return AgentResult(success=False, final_code=code,
                           iterations=iterations, transcript=transcript,
                           rule_fixed=rule_fixed)


def record_rule_fix(transcript: Transcript, original: str, rule_result) -> bool:
    """Record a rule-based pre-fix as its own transcript step.

    Returns True (and appends a ``RuleFix`` turn) only when the
    pre-fixer *materially* changed the code -- whitespace-only trims do
    not count, so clean inputs still short-circuit with a lone
    ``Finish`` turn.
    """
    if rule_result.code.strip() == original.strip():
        return False
    notes = []
    if rule_result.extracted_from_markdown:
        notes.append("extracted the Verilog from the surrounding text")
    if rule_result.moved_timescale:
        notes.append("hoisted the `timescale directive to the file top")
    if not notes:
        notes.append("normalized the module text")
    transcript.add(
        thought="Apply the rule-based pre-fixer before consulting the model.",
        action="RuleFix",
        action_input=_head(original),
        observation="; ".join(notes),
    )
    return True


def _head(code: str, lines: int = 3) -> str:
    return "\n".join(code.strip().split("\n")[:lines])
