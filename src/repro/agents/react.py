"""The ReAct debugging agent (paper §3.2).

The agent owns the loop: compile, read feedback, optionally retrieve
expert guidance (the RAG action), ask the model for a Thought + revised
code, recompile.  It stops on success (Finish action), when the model
declares itself done, or after ``max_iterations`` Thought-Action-
Observation rounds (the paper uses 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..diagnostics import Compiler
from ..llm.base import RepairModel
from ..rag.retrievers import Retriever
from .transcript import Transcript

DEFAULT_MAX_ITERATIONS = 10


@dataclass
class AgentResult:
    """Outcome of one debugging run."""

    success: bool
    final_code: str
    #: Number of code revisions submitted to the compiler (0 when the
    #: input already compiled).
    iterations: int
    transcript: Transcript = field(default_factory=Transcript)

    @property
    def gave_up(self) -> bool:
        return not self.success


class ReActAgent:
    """LLM-as-autonomous-agent with Compiler / RAG / Finish actions."""

    def __init__(
        self,
        model: RepairModel,
        compiler: Compiler,
        retriever: Optional[Retriever] = None,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        apply_rule_fix: bool = True,
    ):
        self.model = model
        self.compiler = compiler
        self.retriever = retriever
        self.max_iterations = max_iterations
        self.apply_rule_fix = apply_rule_fix

    def run(self, code: str, description: str = "") -> AgentResult:
        """Debug ``code`` with the ReAct loop until it compiles or the
        iteration budget runs out."""
        from ..core.rulefix import rule_fix  # deferred: avoids an import
        # cycle (repro.core.fixer builds agents)

        transcript = Transcript()
        if self.apply_rule_fix:
            code = rule_fix(code).code

        result = self.compiler.compile(code)
        if result.ok:
            transcript.add(
                thought="The module compiles cleanly; no repair needed.",
                action="Finish", action_input="answer", observation="",
            )
            return AgentResult(success=True, final_code=code, iterations=0,
                               transcript=transcript)

        session = self.model.start(
            code, flavor=self.compiler.flavor, use_rag=self.retriever is not None
        )

        iterations = 0
        for _ in range(self.max_iterations):
            feedback = result.log
            guidance = []
            if self.retriever is not None and feedback:
                guidance = [r.entry for r in self.retriever.retrieve(feedback)]
                if guidance:
                    transcript.add(
                        thought="I should look up expert guidance for this "
                        "compiler log.",
                        action="RAG",
                        action_input=feedback.split("\n")[0],
                        observation=guidance[0].guidance,
                    )

            step = session.step(code, feedback, guidance)
            iterations += 1
            code = step.code
            result = self.compiler.compile(code)
            transcript.add(
                thought=step.thought,
                action="Compiler",
                action_input=_head(code),
                observation=result.log,
            )
            if result.ok:
                transcript.add(
                    thought="The compiler reports no errors; the syntax "
                    "error is resolved.",
                    action="Finish", action_input="answer", observation="",
                )
                return AgentResult(success=True, final_code=code,
                                   iterations=iterations, transcript=transcript)
            if step.declared_done:
                break
        return AgentResult(success=False, final_code=code,
                           iterations=iterations, transcript=transcript)


def _head(code: str, lines: int = 3) -> str:
    return "\n".join(code.strip().split("\n")[:lines])
