"""The One-shot baseline (paper §3.2, Fig. 2a).

A single turn of feedback: compile once, hand the model the code, the
compiler message (and retrieved guidance when RAG is enabled), take one
revised implementation, and compile it once more.  No iterative loop, no
reasoning/action decomposition.
"""

from __future__ import annotations

from typing import Optional

from ..diagnostics import Compiler
from ..llm.base import RepairModel
from ..rag.retrievers import Retriever
from .react import AgentResult, record_rule_fix
from .transcript import Transcript


class OneShotAgent:
    """Single-turn repair baseline.

    Both compiles (the original and the one revision) go through the
    shared :class:`~repro.diagnostics.Compiler`, so the second compile
    reuses the first one's unchanged pipeline stage artifacts.
    """

    def __init__(
        self,
        model: RepairModel,
        compiler: Compiler,
        retriever: Optional[Retriever] = None,
        apply_rule_fix: bool = True,
    ):
        self.model = model
        self.compiler = compiler
        self.retriever = retriever
        self.apply_rule_fix = apply_rule_fix

    def run(self, code: str, description: str = "") -> AgentResult:
        """Single-turn repair: one feedback round, one revision."""
        from ..core.rulefix import rule_fix  # deferred: avoids an import
        # cycle (repro.core.fixer builds agents)

        transcript = Transcript()
        rule_fixed = False
        if self.apply_rule_fix:
            rule_result = rule_fix(code)
            rule_fixed = record_rule_fix(transcript, code, rule_result)
            code = rule_result.code

        result = self.compiler.compile(code)
        if result.ok:
            return AgentResult(success=True, final_code=code, iterations=0,
                               transcript=transcript, rule_fixed=rule_fixed)

        feedback = result.log
        guidance = []
        # As in ReActAgent: crashed compiles are usable feedback, but
        # internal-error logs have no RAG guidance to retrieve.
        if (
            self.retriever is not None
            and feedback
            and not getattr(result, "crashed", False)
        ):
            guidance = [r.entry for r in self.retriever.retrieve(feedback)]

        session = self.model.start(
            code, flavor=self.compiler.flavor, use_rag=self.retriever is not None
        )
        step = session.step(code, feedback, guidance)
        final = self.compiler.compile(step.code)
        transcript.add(
            thought=step.thought,
            action="Compiler",
            action_input=step.code.strip().split("\n")[0],
            observation=final.log,
        )
        return AgentResult(
            success=final.ok, final_code=step.code, iterations=1,
            transcript=transcript, rule_fixed=rule_fixed,
        )
