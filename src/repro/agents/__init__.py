"""Agents: the ReAct debugging loop and the One-shot baseline."""

from .oneshot import OneShotAgent
from .prompts import (
    GENERATION_SYSTEM_PROMPT,
    ONE_SHOT_TEMPLATE,
    REACT_INSTRUCTION,
    REACT_QUESTION,
    render_one_shot,
)
from .react import DEFAULT_MAX_ITERATIONS, AgentResult, ReActAgent
from .simfix import SimDebugAgent, SimFixResult
from .transcript import Transcript, Turn

__all__ = [
    "AgentResult",
    "DEFAULT_MAX_ITERATIONS",
    "SimDebugAgent",
    "SimFixResult",
    "GENERATION_SYSTEM_PROMPT",
    "ONE_SHOT_TEMPLATE",
    "OneShotAgent",
    "REACT_INSTRUCTION",
    "REACT_QUESTION",
    "ReActAgent",
    "Transcript",
    "Turn",
    "render_one_shot",
]
