"""Compatibility re-export: transcripts moved to
:mod:`repro.repair.transcript` with the repair-engine refactor (the
transcript is the engine's output format, not any one agent's)."""

from __future__ import annotations

from ..repair.transcript import Transcript, Turn

__all__ = ["Transcript", "Turn"]
