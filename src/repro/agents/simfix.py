"""Simulation-error debugging agent (paper §5 extension).

Adapts the ReAct loop to *functional* bugs: since the repair-engine
refactor this is a thin configuration of
:class:`~repro.repair.engine.RepairEngine` -- a
:class:`~repro.repair.oracles.SimOracle` (sandboxed differential
simulation against the golden reference, mismatch count as the score)
with hill-climbing acceptance: a candidate edit is accepted only if it
strictly reduces the mismatch count, and the run finishes when the
differential testbench passes.  Transcripts and results are
bit-identical to the pre-refactor hand-rolled loop.

The engine's shared service seams apply here too (they were ReAct-only
before the refactor): an ambient request
:class:`~repro.service.deadline.Deadline` stops a functional repair
mid-run with a 504, and ``on_turn`` streams per-iteration progress.

By default the model is the direct
:class:`~repro.llm.simfix.SimulatedLogicDebugger`; under an ambient
:func:`~repro.llm.pool.get_default_llm_routing` spec it becomes the
pool-routed :class:`~repro.llm.simfix.PooledLogicModel`, so tier
escalation and token accounting (``report.llm``) cover functional
repair like they cover syntax repair.

Note the evaluation asymmetry the paper glosses over: judging functional
correctness requires the benchmark's golden model, so this agent (like
the paper's preliminary study) is a *benchmark-harness* tool, not a
deployable flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..diagnostics import Compiler
from ..repair import (
    EngineConfig,
    LogicModelProposer,
    RepairEngine,
    SimOracle,
)
from .transcript import Transcript, Turn

#: The simulation flavor of the engine loop: Simulator action, 2-line
#: action input, improving-only (hill-climbing) acceptance, no Finish
#: turns on success, an explicit give-up turn, and the loop keeps
#: consulting the proposer after a declared-done step that changed the
#: code (exactly the legacy loop's shape).
_SIMFIX_CONFIG = EngineConfig(
    action="Simulator",
    head_lines=2,
    accept="improving",
    finish_thought=None,
    initial_finish=None,
    stop_after_done=False,
    give_up_turn=True,
    deadline_stage="sim-iteration",
)


@dataclass
class SimFixResult:
    success: bool
    final_code: str
    iterations: int
    initial_mismatches: int = 0
    final_mismatches: int = 0
    transcript: Transcript = field(default_factory=Transcript)


def default_logic_model():
    """The agent's model when none is injected: direct simulated
    debugger, or the pool-routed variant under ambient LLM routing."""
    from ..llm.pool import get_default_llm_routing
    from ..llm.simfix import PooledLogicModel, SimulatedLogicDebugger

    routing = get_default_llm_routing()
    if routing is not None:
        return PooledLogicModel(routing)
    return SimulatedLogicDebugger()


class SimDebugAgent:
    """Iterative logic debugging against a golden reference."""

    def __init__(
        self,
        model=None,
        max_iterations: int = 8,
        sim_samples: int = 16,
        sim_limits=None,
        on_turn: Optional[Callable[[Turn], None]] = None,
    ):
        self.model = model if model is not None else default_logic_model()
        self.max_iterations = max_iterations
        self.sim_samples = sim_samples
        #: Sandbox budgets for every simulation this agent runs (None =
        #: ambient default).  A runaway or trace-bombing candidate comes
        #: back as "Simulation failed to run: ..." feedback, never a hang.
        self.sim_limits = sim_limits
        #: Session-backed compiler: candidate edits across iterations
        #: are small, so the staged pipeline's incremental recompilation
        #: (and the whole-result cache) carry most of the work.
        self.compiler = Compiler()
        #: Progress observer (see :class:`~repro.agents.react.ReActAgent`):
        #: every transcript turn, as recorded.  May be (re)assigned
        #: after construction; must never raise.
        self.on_turn = on_turn

    def run(
        self, code: str, reference_code: str, difficulty: str = "hard"
    ) -> SimFixResult:
        engine = RepairEngine(
            oracle=SimOracle(
                reference_code, compiler=self.compiler,
                samples=self.sim_samples, sim_limits=self.sim_limits,
            ),
            proposer=LogicModelProposer(self.model, difficulty),
            config=replace(_SIMFIX_CONFIG, max_iterations=self.max_iterations),
            on_turn=self.on_turn,
        )
        outcome = engine.run(code)
        return SimFixResult(
            success=outcome.success, final_code=outcome.final_code,
            iterations=outcome.iterations,
            initial_mismatches=outcome.initial_score,
            final_mismatches=outcome.final_score,
            transcript=outcome.transcript,
        )
