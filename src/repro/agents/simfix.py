"""Simulation-error debugging agent (paper §5 extension).

Adapts the ReAct loop to *functional* bugs: the Compiler action is
replaced by a Simulator action whose observation is the §5 feedback
message (mismatch count + waveform-style comparison).  The loop accepts
a candidate edit only if it strictly reduces the mismatch count, and
finishes when the differential testbench passes.

Note the evaluation asymmetry the paper glosses over: judging functional
correctness requires the benchmark's golden model, so this agent (like
the paper's preliminary study) is a *benchmark-harness* tool, not a
deployable flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnostics import Compiler
from ..llm.simfix import SimulatedLogicDebugger
from ..sim.feedback import make_sim_feedback
from .transcript import Transcript


@dataclass
class SimFixResult:
    success: bool
    final_code: str
    iterations: int
    initial_mismatches: int = 0
    final_mismatches: int = 0
    transcript: Transcript = field(default_factory=Transcript)


class SimDebugAgent:
    """Iterative logic debugging against a golden reference."""

    def __init__(
        self,
        model: SimulatedLogicDebugger | None = None,
        max_iterations: int = 8,
        sim_samples: int = 16,
        sim_limits=None,
    ):
        self.model = model or SimulatedLogicDebugger()
        self.max_iterations = max_iterations
        self.sim_samples = sim_samples
        #: Sandbox budgets for every simulation this agent runs (None =
        #: ambient default).  A runaway or trace-bombing candidate comes
        #: back as "Simulation failed to run: ..." feedback, never a hang.
        self.sim_limits = sim_limits
        #: Session-backed compiler: candidate edits across iterations
        #: are small, so the staged pipeline's incremental recompilation
        #: (and the whole-result cache) carry most of the work.
        self.compiler = Compiler()

    def run(
        self, code: str, reference_code: str, difficulty: str = "hard"
    ) -> SimFixResult:
        transcript = Transcript()
        reference = self.compiler.compile(reference_code).elaborated
        compiled = self.compiler.compile(code)
        if not compiled.ok or compiled.elaborated is None or reference is None:
            return SimFixResult(
                success=False, final_code=code, iterations=0,
                transcript=transcript,
            )

        feedback = make_sim_feedback(
            compiled.elaborated, reference, samples=self.sim_samples,
            sim_limits=self.sim_limits,
        )
        best_code = code
        best_mismatches = feedback.mismatch_count
        initial = feedback.mismatch_count
        if feedback.passed:
            return SimFixResult(
                success=True, final_code=code, iterations=0,
                initial_mismatches=0, final_mismatches=0, transcript=transcript,
            )

        session = self.model.start(code, difficulty)
        iterations = 0
        for _ in range(self.max_iterations):
            step = session.step(best_code, feedback.text)
            if step.declared_done and step.code == best_code:
                transcript.add(step.thought, "Finish", "give up", feedback.text)
                break
            iterations += 1
            compiled = self.compiler.compile(step.code)
            if not compiled.ok or compiled.elaborated is None:
                transcript.add(step.thought, "Simulator", _head(step.code),
                               "edit broke compilation; reverted")
                continue
            candidate_feedback = make_sim_feedback(
                compiled.elaborated, reference, samples=self.sim_samples,
                sim_limits=self.sim_limits,
            )
            transcript.add(
                step.thought, "Simulator", _head(step.code),
                candidate_feedback.text.split("\n")[0],
            )
            if candidate_feedback.passed:
                return SimFixResult(
                    success=True, final_code=step.code, iterations=iterations,
                    initial_mismatches=initial, final_mismatches=0,
                    transcript=transcript,
                )
            if candidate_feedback.mismatch_count < best_mismatches:
                best_code = step.code
                best_mismatches = candidate_feedback.mismatch_count
                feedback = candidate_feedback
        return SimFixResult(
            success=False, final_code=best_code, iterations=iterations,
            initial_mismatches=initial, final_mismatches=best_mismatches,
            transcript=transcript,
        )


def _head(code: str, lines: int = 2) -> str:
    return "\n".join(code.strip().split("\n")[:lines])
