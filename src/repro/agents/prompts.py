"""Prompt templates from Fig. 2 of the paper.

The simulated model does not consume raw prompts, but the templates are
part of the framework's public surface (an API-backed model uses them
verbatim; examples and docs render them)."""

from __future__ import annotations

GENERATION_SYSTEM_PROMPT = (
    "Implement the Verilog module based on the following description. "
    "Assume that signals are positive clock/clk edge triggered unless "
    "otherwise stated."
)

ONE_SHOT_TEMPLATE = """{system_prompt}

Problem Description:
{description}

Erroneous Implementation:
{code}

Feedback:
{feedback}
"""

REACT_INSTRUCTION = """Solve a task with interleaving Thought, Action, Observation steps. \
Thought can reason about the current situation, and Action can be the following types:
(1) Compiler[code], which compiles the input code and provide error message if there is syntax error.
(2) Finish[answer], which returns the answer and finished the task.
(3) RAG[logs], input the compiler log and retrieve expert solutions to fix the syntax error.
"""

REACT_QUESTION = (
    "What is the syntax error in the given Verilog module implementation "
    "and how to fix it?"
)


def render_one_shot(description: str, code: str, feedback: str) -> str:
    """Fill the Fig. 2a One-shot template."""
    return ONE_SHOT_TEMPLATE.format(
        system_prompt=GENERATION_SYSTEM_PROMPT,
        description=description,
        code=code,
        feedback=feedback,
    )
