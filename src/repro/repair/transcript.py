"""ReAct transcripts: Thought / Action / Observation traces (Fig. 2c).

Home of :class:`Transcript` / :class:`Turn` since the repair-engine
refactor (``repro.agents.transcript`` re-exports them for
compatibility): the transcript is the engine's output format, shared by
every oracle/proposer configuration, so it lives with the engine rather
than with any one agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Turn:
    """One Thought-Action-Observation step."""

    index: int
    thought: str
    action: str  # "Compiler" | "Simulator" | "RAG" | "RuleFix" | "Finish"
    action_input: str
    observation: str


@dataclass
class Transcript:
    """The full interaction trace of one debugging session."""

    turns: list[Turn] = field(default_factory=list)

    def add(self, thought: str, action: str, action_input: str, observation: str) -> Turn:
        turn = Turn(
            index=len(self.turns) + 1,
            thought=thought,
            action=action,
            action_input=action_input,
            observation=observation,
        )
        self.turns.append(turn)
        return turn

    def __len__(self) -> int:
        return len(self.turns)

    def render(self, max_chars_per_field: int = 400) -> str:
        """Human-readable rendering in the paper's Fig. 2c style."""

        def clip(text: str) -> str:
            text = text.strip()
            if len(text) > max_chars_per_field:
                return text[: max_chars_per_field - 3] + "..."
            return text

        blocks = []
        for turn in self.turns:
            blocks.append(
                f"Thought {turn.index}: {clip(turn.thought)}\n"
                f"Action {turn.index}: {turn.action}[{clip(turn.action_input)}]\n"
                f"Observation {turn.index}: {clip(turn.observation) or '(compile passed)'}"
            )
        return "\n\n".join(blocks)
