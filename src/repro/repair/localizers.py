"""Localizers: narrow the fault before each proposal round.

* :class:`DiagnosticLocalizer` -- the syntax loop's RAG action: retrieve
  human expert guidance for the compiler log (paper §3.3) and surface
  it as a transcript turn.
* :class:`TraceDiffLocalizer` -- rtl-repair-style functional fault
  localization: simulate candidate and golden side by side, rank output
  signals by how many samples mismatch (earliest divergence breaks
  ties), then map each suspect signal to source lines -- its driver
  statements first, one hop of fan-in next, remaining mentions last.
  The template proposer searches suspect lines before the rest of the
  file.
"""

from __future__ import annotations

import re
from typing import Optional

from ..diagnostics import Compiler
from ..rag.retrievers import Retriever
from ..sim.engine import get_default_sim_engine
from ..sim.feedback import simulate_with_traces
from ..sim.sandbox import run_sandboxed
from .base import Localization, OracleVerdict, Suspect


class DiagnosticLocalizer:
    """Retrieve expert guidance for a compiler log (the RAG action)."""

    def __init__(self, retriever: Optional[Retriever]):
        self.retriever = retriever

    def localize(self, code: str, verdict: OracleVerdict) -> Localization:
        feedback = verdict.feedback
        # A crashed compile (internal-error diagnostic, see
        # compile_source's never-crash boundary) is still feedback the
        # model can react to, but there is no point retrieving guidance
        # for it: the RAG database indexes *design* errors, not
        # compiler defects.
        crashed = getattr(verdict.detail, "crashed", False)
        guidance = []
        if self.retriever is not None and feedback and not crashed:
            guidance = [r.entry for r in self.retriever.retrieve(feedback)]
        turn = None
        if guidance:
            turn = dict(
                thought="I should look up expert guidance for this "
                "compiler log.",
                action="RAG",
                action_input=feedback.split("\n")[0],
                observation=guidance[0].guidance,
            )
        return Localization(guidance=guidance, turn=turn)


def driver_lines(code: str, signal: str) -> list[int]:
    """1-based lines where ``signal`` is assigned (continuous or
    procedural)."""
    pattern = re.compile(
        rf"(?:\bassign\s+)?\b{re.escape(signal)}\b"
        rf"(?:\s*\[[^\]]*\])?\s*(?:<=|=)(?!=)"
    )
    lines = []
    for index, line in enumerate(code.split("\n"), start=1):
        if pattern.search(line):
            lines.append(index)
    return lines


def suspect_lines(code: str, signal: str) -> list[int]:
    """Source lines implicated by a mismatching ``signal``, rank order:
    driver statements, one hop of fan-in drivers, other mentions."""
    drivers = driver_lines(code, signal)
    lines = code.split("\n")
    fan_in: list[int] = []
    for line_no in drivers:
        rhs = lines[line_no - 1].split("=", 1)[-1]
        for ident in re.findall(r"[A-Za-z_]\w*", rhs):
            if ident == signal:
                continue
            for driver in driver_lines(code, ident):
                if driver not in drivers and driver not in fan_in:
                    fan_in.append(driver)
    mentions = [
        index
        for index, line in enumerate(lines, start=1)
        if re.search(rf"\b{re.escape(signal)}\b", line)
        and index not in drivers and index not in fan_in
    ]
    return drivers + fan_in + mentions


class TraceDiffLocalizer:
    """Rank suspect signals/lines from a candidate-vs-golden trace diff.

    ``reference`` is the golden :class:`~repro.verilog.elaborate.ElabDesign`.
    Localizations are memoized per candidate source (the engine
    re-localizes the current best every iteration, which only changes
    when a candidate is accepted), and the differential simulation runs
    inside the crash-proof sandbox -- a blow-up localizes to nothing
    rather than raising.
    """

    def __init__(
        self,
        reference,
        compiler: Optional[Compiler] = None,
        samples: int = 16,
        seed: int = 0,
        sim_limits=None,
        max_suspects: int = 8,
    ):
        self.reference = reference
        self.compiler = compiler or Compiler()
        self.samples = samples
        self.seed = seed
        self.sim_limits = sim_limits
        self.max_suspects = max_suspects
        self._memo: dict[str, Localization] = {}

    def localize(self, code: str, verdict: Optional[OracleVerdict] = None) -> Localization:
        found = self._memo.get(code)
        if found is None:
            found = self._localize(code)
            self._memo[code] = found
        return found

    def _localize(self, code: str) -> Localization:
        if self.reference is None:
            return Localization()
        compiled = self.compiler.compile(code)
        if not compiled.ok or compiled.elaborated is None:
            return Localization()
        engine = get_default_sim_engine()
        traces, sim_verdict = run_sandboxed(
            lambda: simulate_with_traces(
                compiled.elaborated, self.reference, samples=self.samples,
                seed=self.seed, sim_limits=self.sim_limits,
            ),
            engine,
        )
        if sim_verdict is not None:
            return Localization()
        cand_trace, ref_trace = traces

        ranked: list[tuple[str, int, int]] = []
        for name in ref_trace.signals:
            mismatches = 0
            first = ref_trace.length
            for index in range(ref_trace.length):
                expected = ref_trace.value_at(name, index)
                actual = cand_trace.value_at(name, index)
                same = (
                    expected is not None and actual is not None
                    and expected.same_as(actual)
                )
                if not same:
                    mismatches += 1
                    first = min(first, index)
            if mismatches:
                ranked.append((name, mismatches, first))
        # Most mismatches first; earlier first divergence breaks ties
        # (the signal that goes wrong first is closest to the fault).
        ranked.sort(key=lambda item: (-item[1], item[2], item[0]))

        suspects: list[Suspect] = []
        seen_lines: set[int] = set()
        total = max(ref_trace.length, 1)
        for name, mismatches, first in ranked[: self.max_suspects]:
            reason = (
                f"{mismatches}/{total} samples mismatch, "
                f"first at sample {first}"
            )
            lines = suspect_lines(code, name)
            if not lines:
                suspects.append(
                    Suspect(signal=name, line=None,
                            score=mismatches / total, reason=reason)
                )
            for line in lines:
                if line in seen_lines:
                    continue
                seen_lines.add(line)
                suspects.append(
                    Suspect(signal=name, line=line,
                            score=mismatches / total, reason=reason)
                )
        return Localization(suspects=suspects)
