"""The repair kernel's shared vocabulary.

Every repair loop in the repo -- syntax (ReAct, paper §3.2), functional
(§5 extension), and the Table-4-style template workload -- is one
instance of the same detect → localize → propose → verify cycle.  This
module defines the three pluggable protocols the
:class:`~repro.repair.engine.RepairEngine` runs over:

* an :class:`Oracle` decides whether a candidate is correct and turns
  the evidence into feedback (a compiler log, a waveform comparison);
* a :class:`Localizer` narrows the search: expert guidance retrieved
  for a compiler log, or suspect signals/lines ranked from a trace
  diff;
* a :class:`Proposer` produces candidate edits -- an LLM session, a
  rule-based pre-fixer, or a template enumerator.

The protocols are duck-typed (``Protocol``), matching the repo's other
seams (``observe``, ``with_seed``): engine configurations are plain
object composition, no registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from .transcript import Transcript


def _head(code: str, lines: int = 3) -> str:
    """The first ``lines`` lines of ``code`` -- transcript action input."""
    return "\n".join(code.strip().split("\n")[:lines])


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle judgement of one candidate.

    ``score`` orders candidates for hill-climbing acceptance (lower is
    better, 0 = correct): the compile oracle scores 0/1, the simulation
    oracle scores the mismatch count.  ``feedback`` is the full text the
    proposer sees next round; ``observation`` is what the transcript
    records (the compile oracle shows the whole log, the simulation
    oracle only the summary line).  ``compiled`` is False when the
    candidate did not even build -- the engine reverts such candidates
    without consulting score at all.
    """

    ok: bool
    score: int
    feedback: str
    observation: str
    compiled: bool = True
    #: The underlying evidence (a CompileResult or SimFeedback) for
    #: detail-hungry localizers; never part of the transcript.
    detail: object = None


@dataclass(frozen=True)
class Suspect:
    """One ranked fault-localization candidate."""

    signal: Optional[str]
    #: 1-based source line, or None when only the signal is known.
    line: Optional[int]
    #: Higher = more suspicious (the trace-diff localizer uses the
    #: mismatching-sample fraction).
    score: float
    reason: str = ""


@dataclass
class Localization:
    """What a localizer narrowed the search down to."""

    #: Expert guidance entries (the RAG action's retrieval results).
    guidance: list = field(default_factory=list)
    #: Ranked fault candidates, most suspicious first.
    suspects: list[Suspect] = field(default_factory=list)
    #: Optional transcript turn announcing the localization (the RAG
    #: turn); ``None`` records nothing.
    turn: Optional[dict] = None

    @property
    def suspect_lines(self) -> list[int]:
        """Suspect source lines in rank order, deduplicated."""
        lines: list[int] = []
        for suspect in self.suspects:
            if suspect.line is not None and suspect.line not in lines:
                lines.append(suspect.line)
        return lines


class Oracle(Protocol):
    """Judges candidates; the engine's detect/verify step."""

    #: Transcript action name for verify turns ("Compiler", "Simulator").
    action: str

    def check(self, code: str) -> OracleVerdict: ...


class Localizer(Protocol):
    """Narrows the fault before each proposal round."""

    def localize(self, code: str, verdict: OracleVerdict) -> Localization: ...


class ProposerSession(Protocol):
    """One stateful conversation/search about one buggy sample."""

    def propose(self, code: str, verdict: OracleVerdict,
                localization: Optional[Localization]): ...


class Proposer(Protocol):
    """Factory for proposer sessions."""

    def start(self, code: str, verdict: OracleVerdict) -> ProposerSession: ...


@dataclass(frozen=True)
class EngineConfig:
    """The per-flavor knobs that make one engine behave like the ReAct
    syntax loop and another like the hill-climbing simulation loop.

    Defaults are the ReAct loop's.  The simulation loop differs on
    every axis: Simulator action, 2-line action input, improving-only
    acceptance, no Finish turns, explicit give-up turn, and it keeps
    consulting an exhausted-but-not-done proposer instead of stopping.
    """

    #: Transcript action recorded for each verify turn.
    action: str = "Compiler"
    max_iterations: int = 10
    #: Lines of the candidate shown as the verify turn's action input.
    head_lines: int = 3
    #: "always" re-roots the search on every candidate (ReAct trusts the
    #: model); "improving" is hill-climbing (accept only a strictly
    #: better score).
    accept: str = "always"
    #: Thought for a Finish turn after a successful verify (None = no
    #: Finish turn, the simulation loop's style).
    finish_thought: Optional[str] = None
    #: Thought for the Finish turn when the *input* already passes,
    #: given whether the rule-based pre-fixer changed it.
    initial_finish: Optional[Callable[[bool], str]] = None
    #: Stop once a verified step declared itself done (ReAct); the
    #: simulation loop instead loops until the proposer gives up.
    stop_after_done: bool = True
    #: Record a Finish["give up"] turn (with the full feedback text)
    #: when the proposer declares done without changing the code.
    give_up_turn: bool = False
    #: Stage label for ambient-deadline checks.
    deadline_stage: str = "repair-iteration"


@dataclass
class RepairOutcome:
    """The engine's result, superset of every agent's result shape."""

    success: bool
    final_code: str
    #: Candidates submitted to the oracle (0 = input already passed).
    iterations: int
    transcript: Transcript = field(default_factory=Transcript)
    #: True when the rule-based pre-fixer materially changed the code.
    rule_fixed: bool = False
    #: Oracle scores before/after (mismatch counts for the simulation
    #: oracle; 0/1 for the compile oracle).
    initial_score: int = 0
    final_score: int = 0
    #: Which proposer produced the winning candidate ("template",
    #: "llm"); empty on failure or when the proposer doesn't say.
    fixed_by: str = ""
    #: Proposer-reported search statistics (templates tried, ...).
    stats: dict = field(default_factory=dict)

    @property
    def gave_up(self) -> bool:
        return not self.success
