"""The Table-4 functional-repair configuration of the engine.

Trace-diff localization feeding a breadth-first template search, with
LLM escalation when the templates dry up: the full
detect → localize → propose → verify stack over the compiled
differential simulator.  This is the workload configuration --
the legacy-equivalent :class:`~repro.agents.simfix.SimDebugAgent`
deliberately runs *without* the localizer and templates so its
transcripts stay bit-identical to the pre-refactor loop.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..diagnostics import Compiler
from .base import EngineConfig, RepairOutcome
from .engine import RepairEngine
from .localizers import TraceDiffLocalizer
from .oracles import SimOracle
from .proposers import FallbackProposer, LogicModelProposer
from .templates import TemplateProposer

#: The functional workload's engine knobs: Simulator action, 2-line
#: action input, hill-climbing acceptance, keep going while any
#: proposer in the chain has candidates, give-up turn on exhaustion.
FUNCTIONAL_CONFIG = EngineConfig(
    action="Simulator",
    head_lines=2,
    accept="improving",
    finish_thought=None,
    initial_finish=None,
    stop_after_done=False,
    give_up_turn=True,
    deadline_stage="sim-iteration",
)


def _default_logic_model():
    """Direct simulated debugger, or the pool-routed variant when an
    ambient :func:`~repro.llm.pool.get_default_llm_routing` spec is in
    scope (tier escalation + token accounting for the workload)."""
    from ..llm.pool import get_default_llm_routing
    from ..llm.simfix import PooledLogicModel, SimulatedLogicDebugger

    routing = get_default_llm_routing()
    if routing is not None:
        return PooledLogicModel(routing)
    return SimulatedLogicDebugger()


def build_functional_engine(
    reference_code: str,
    model=None,
    difficulty: str = "hard",
    max_iterations: int = 24,
    sim_samples: int = 16,
    sim_limits=None,
    max_template_candidates: int = 64,
    localize: bool = True,
    on_turn=None,
) -> RepairEngine:
    """Assemble the Table-4 engine for one golden reference."""
    compiler = Compiler()
    oracle = SimOracle(
        reference_code, compiler=compiler, samples=sim_samples,
        sim_limits=sim_limits,
    )
    if model is None:
        model = _default_logic_model()
    localizer: Optional[TraceDiffLocalizer] = None
    if localize and oracle.reference is not None:
        localizer = TraceDiffLocalizer(
            oracle.reference, compiler=compiler, samples=sim_samples,
            sim_limits=sim_limits,
        )
    proposer = FallbackProposer(
        TemplateProposer(max_candidates=max_template_candidates),
        LogicModelProposer(model, difficulty),
    )
    config = replace(FUNCTIONAL_CONFIG, max_iterations=max_iterations)
    return RepairEngine(
        oracle, proposer, localizer=localizer, config=config, on_turn=on_turn,
    )


def repair_functional(
    code: str,
    reference_code: str,
    **engine_kwargs,
) -> RepairOutcome:
    """One-call functional repair of ``code`` against a golden
    reference; keyword arguments go to :func:`build_functional_engine`."""
    engine = build_functional_engine(reference_code, **engine_kwargs)
    return engine.run(code)
