"""Oracles: the engine's detect/verify judges.

* :class:`CompileOracle` -- "correct" means the session-backed
  :class:`~repro.diagnostics.Compiler` reports no errors; the feedback
  is the compiler log (whose flavor is the paper's Table-1 axis).
* :class:`SimOracle` -- "correct" means the candidate matches a golden
  reference in sandboxed differential simulation
  (:func:`~repro.sim.feedback.make_sim_feedback`, memoized in the
  active :class:`~repro.sim.verdict.VerdictCache`); the feedback is the
  §5 waveform-style comparison and the score is the mismatch count.
"""

from __future__ import annotations

from typing import Optional

from ..diagnostics import Compiler
from ..sim.feedback import make_sim_feedback
from .base import OracleVerdict


class CompileOracle:
    """Syntax correctness via one session-backed compiler.

    The compiler is held for the oracle's whole life: candidate edits
    across iterations are small, so the staged pipeline session reuses
    unchanged stage artifacts instead of recompiling cold.
    """

    action = "Compiler"

    def __init__(self, compiler: Optional[Compiler] = None):
        self.compiler = compiler or Compiler()

    def check(self, code: str) -> OracleVerdict:
        result = self.compiler.compile(code)
        return OracleVerdict(
            ok=result.ok, score=0 if result.ok else 1,
            feedback=result.log, observation=result.log, detail=result,
        )


class SimOracle:
    """Functional correctness against a golden reference.

    The reference is compiled eagerly at construction (before any
    candidate -- the legacy agent's compile order, which the warm
    compile cache makes free on repeats).  A candidate that does not
    compile comes back ``compiled=False`` with the legacy
    "edit broke compilation; reverted" observation; so does every check
    when the *reference* itself failed to elaborate (nothing to judge
    against).
    """

    action = "Simulator"

    def __init__(
        self,
        reference_code: str,
        compiler: Optional[Compiler] = None,
        samples: int = 16,
        seed: int = 0,
        sim_limits=None,
    ):
        self.compiler = compiler or Compiler()
        self.samples = samples
        self.seed = seed
        self.sim_limits = sim_limits
        self.reference = self.compiler.compile(reference_code).elaborated

    def check(self, code: str) -> OracleVerdict:
        compiled = self.compiler.compile(code)
        if not compiled.ok or compiled.elaborated is None or self.reference is None:
            return OracleVerdict(
                ok=False, score=0, feedback="",
                observation="edit broke compilation; reverted",
                compiled=False, detail=compiled,
            )
        feedback = make_sim_feedback(
            compiled.elaborated, self.reference, samples=self.samples,
            seed=self.seed, sim_limits=self.sim_limits,
        )
        return OracleVerdict(
            ok=feedback.passed, score=feedback.mismatch_count,
            feedback=feedback.text,
            observation=feedback.text.split("\n")[0],
            detail=feedback,
        )
