"""The generic repair loop: detect → localize → propose → verify.

One engine, three plug points (:class:`~repro.repair.base.Oracle`,
:class:`~repro.repair.base.Localizer`,
:class:`~repro.repair.base.Proposer`) and a small
:class:`~repro.repair.base.EngineConfig` of per-flavor knobs.  The
ReAct syntax agent and the simulation-debugging agent are both thin
configurations of this loop (bit-identical to their pre-refactor
hand-rolled versions -- ``scripts/repair_diff.py`` prosecutes that),
and the Table-4 functional-repair workload is a third.

Cross-cutting service seams live here exactly once:

* the ambient request :class:`~repro.service.deadline.Deadline` is
  checked at the top of every iteration, so an over-budget repair stops
  mid-run with :class:`~repro.errors.DeadlineExceededError`;
* every recorded transcript turn flows through the optional ``on_turn``
  observer (the repair server streams these as SSE events);
* proposer sessions that implement the duck-typed ``observe(ok)``
  escalation seam (:mod:`repro.llm.pool`) hear every verify outcome.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Optional

from ..service.deadline import current_deadline
from .base import (
    EngineConfig,
    Localization,
    Localizer,
    Oracle,
    Proposer,
    RepairOutcome,
    _head,
)
from .transcript import Transcript, Turn


class RepairEngine:
    """Run one repair loop over pluggable oracle/localizer/proposer.

    ``prefix`` is an optional rule-based pre-pass (the
    :class:`~repro.repair.proposers.RuleFixProposer`) applied before the
    first detect; ``on_turn`` observes every transcript turn as it is
    recorded and must never raise.
    """

    def __init__(
        self,
        oracle: Oracle,
        proposer: Proposer,
        localizer: Optional[Localizer] = None,
        config: Optional[EngineConfig] = None,
        prefix=None,
        on_turn: Optional[Callable[[Turn], None]] = None,
    ):
        self.oracle = oracle
        self.proposer = proposer
        self.localizer = localizer
        self.config = config or EngineConfig()
        self.prefix = prefix
        self.on_turn = on_turn

    def _record(self, transcript: Transcript, **turn_fields) -> Turn:
        """Append one transcript turn and notify the observer."""
        turn = transcript.add(**turn_fields)
        if self.on_turn is not None:
            self.on_turn(turn)
        return turn

    @staticmethod
    def _observe(session, ok: bool) -> None:
        """Forward a verify outcome through the duck-typed escalation
        seam; plain sessions have no ``observe()``."""
        notice = getattr(session, "observe", None)
        if callable(notice):
            notice(ok)

    def run(self, code: str) -> RepairOutcome:
        cfg = self.config
        transcript = Transcript()
        rule_fixed = False
        if self.prefix is not None:
            code, rule_fixed = self.prefix.apply(transcript, code, self.on_turn)

        verdict = self.oracle.check(code)
        if not verdict.compiled:
            # The *input* (or the oracle's reference) doesn't build:
            # nothing to repair against.  Matches the legacy simulation
            # agent's silent zero-iteration failure.
            return RepairOutcome(
                success=False, final_code=code, iterations=0,
                transcript=transcript, rule_fixed=rule_fixed,
            )
        if verdict.ok:
            if cfg.initial_finish is not None:
                self._record(
                    transcript, thought=cfg.initial_finish(rule_fixed),
                    action="Finish", action_input="answer", observation="",
                )
            return RepairOutcome(
                success=True, final_code=code, iterations=0,
                transcript=transcript, rule_fixed=rule_fixed,
            )

        session = self.proposer.start(code, verdict)
        initial_score = verdict.score
        best_code, best_verdict = code, verdict
        iterations = 0
        for _ in range(cfg.max_iterations):
            # Deadline seam: a repair served past its budget helps no
            # one -- stop mid-loop instead of finishing and discovering
            # the overrun post-hoc.  Batch runs have no ambient deadline
            # and skip this entirely.
            deadline = current_deadline()
            if deadline is not None:
                deadline.check(stage=cfg.deadline_stage)

            localization: Optional[Localization] = None
            if self.localizer is not None:
                localization = self.localizer.localize(best_code, best_verdict)
                if localization is not None and localization.turn is not None:
                    self._record(transcript, **localization.turn)

            step = session.propose(best_code, best_verdict, localization)
            if cfg.give_up_turn and step.declared_done and step.code == best_code:
                self._record(
                    transcript, thought=step.thought, action="Finish",
                    action_input="give up", observation=best_verdict.feedback,
                )
                break
            iterations += 1
            candidate = self.oracle.check(step.code)
            if not candidate.compiled:
                self._observe(session, False)
                self._record(
                    transcript, thought=step.thought, action=cfg.action,
                    action_input=_head(step.code, cfg.head_lines),
                    observation=candidate.observation,
                )
                continue
            self._observe(session, candidate.ok)
            self._record(
                transcript, thought=step.thought, action=cfg.action,
                action_input=_head(step.code, cfg.head_lines),
                observation=candidate.observation,
            )
            if candidate.ok:
                if cfg.finish_thought is not None:
                    self._record(
                        transcript, thought=cfg.finish_thought,
                        action="Finish", action_input="answer", observation="",
                    )
                return RepairOutcome(
                    success=True, final_code=step.code, iterations=iterations,
                    transcript=transcript, rule_fixed=rule_fixed,
                    initial_score=initial_score, final_score=0,
                    fixed_by=getattr(session, "active_name", ""),
                    stats=dict(getattr(session, "stats", {}) or {}),
                )
            if cfg.accept == "always" or candidate.score < best_verdict.score:
                best_code, best_verdict = step.code, candidate
            if cfg.stop_after_done and step.declared_done:
                break
        return RepairOutcome(
            success=False, final_code=best_code, iterations=iterations,
            transcript=transcript, rule_fixed=rule_fixed,
            initial_score=initial_score, final_score=best_verdict.score,
            stats=dict(getattr(session, "stats", {}) or {}),
        )


def result_digest(result) -> str:
    """Content digest of a repair result, transcript included.

    Covers everything the equivalence gate cares about: outcome flags,
    iteration count, final code, mismatch bookkeeping (when present) and
    every recorded turn field.  Works on :class:`RepairOutcome`,
    ``AgentResult`` and ``SimFixResult`` alike, so legacy and
    engine-backed runs hash comparably.
    """
    payload = {
        "success": bool(result.success),
        "final_code": result.final_code,
        "iterations": result.iterations,
        "rule_fixed": bool(getattr(result, "rule_fixed", False)),
        "initial_mismatches": getattr(result, "initial_mismatches", None),
        "final_mismatches": getattr(result, "final_mismatches", None),
        "turns": [
            [turn.index, turn.thought, turn.action, turn.action_input,
             turn.observation]
            for turn in result.transcript.turns
        ],
    }
    blob = json.dumps(payload, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(blob.encode()).hexdigest()
