"""Parameterized repair templates and the breadth-first template search.

rtl-repair-style: instead of asking a model to invent an edit, apply a
small grammar of single-site semantic rewrites -- invert a condition,
swap an operator, nudge a constant by one, swap a pair of signals --
at every applicable site, and let the compiled differential simulator
judge the results.  Each template mirrors one class of the dataset's
logic mutations (:mod:`repro.dataset.mutate`), which is exactly the
fault model the Table-4 workload injects.

:class:`TemplateProposer` searches the edits breadth-first with greedy
re-rooting: one level enumerates every template at every site of the
current best candidate, ordered so edits on localizer-suspected lines
go first; whenever the engine accepts an improvement the search
re-roots on it and enumerates the next level.  Candidates that do not
even compile are filtered before they cost a simulation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional

from ..runtime import cached_compile
from .base import Localization, OracleVerdict


@dataclass(frozen=True)
class TemplateEdit:
    """One concrete rewrite produced by one template at one site."""

    code: str
    #: 1-based source line of the edited site (ranking key).
    line: int
    template: str
    description: str


def _line_of(code: str, offset: int) -> int:
    return code.count("\n", 0, offset) + 1


def _splice(code: str, start: int, end: int, replacement: str) -> str:
    return code[:start] + replacement + code[end:]


def invert_condition(code: str) -> list[TemplateEdit]:
    """Toggle the negation of every ``if (signal)`` condition."""
    edits = []
    for site in re.finditer(r"if \((!?)(\w+)\)", code):
        negated, signal = site.group(1), site.group(2)
        replacement = f"if ({signal})" if negated else f"if (!{signal})"
        edits.append(TemplateEdit(
            code=_splice(code, site.start(), site.end(), replacement),
            line=_line_of(code, site.start()),
            template="invert_condition",
            description=f"{'drop' if negated else 'add'} negation on "
            f"if ({signal})",
        ))
    return edits


#: Binary-operator swaps: each site rewrites to its counterpart.
_OPERATOR_FLIPS = {
    "&": "|", "|": "&",
    "+": "-", "-": "+",
    "<": ">", ">": "<",
    "==": "!=", "!=": "==",
}


def swap_operator(code: str) -> list[TemplateEdit]:
    """Swap one binary operator (``& | + - < > == !=``) or clock edge."""
    edits = []
    for site in re.finditer(r" (==|!=|[&|+\-<>]) ", code):
        operator = site.group(1)
        flipped = _OPERATOR_FLIPS[operator]
        edits.append(TemplateEdit(
            code=_splice(code, site.start(), site.end(), f" {flipped} "),
            line=_line_of(code, site.start()),
            template="swap_operator",
            description=f"swap {operator} for {flipped}",
        ))
    for site in re.finditer(r"\b(posedge|negedge)\b", code):
        edge = site.group(1)
        flipped = "negedge" if edge == "posedge" else "posedge"
        edits.append(TemplateEdit(
            code=_splice(code, site.start(), site.end(), flipped),
            line=_line_of(code, site.start()),
            template="swap_operator",
            description=f"clock on {flipped} instead of {edge}",
        ))
    return edits


def off_by_one_constant(code: str) -> list[TemplateEdit]:
    """Nudge every sized decimal literal by ±1 (mod its width)."""
    edits = []
    for site in re.finditer(r"(\d+)'d(\d+)", code):
        width, value = int(site.group(1)), int(site.group(2))
        modulus = 1 << width
        for delta in (1, -1):
            nudged = (value + delta) % modulus
            edits.append(TemplateEdit(
                code=_splice(code, site.start(), site.end(),
                             f"{width}'d{nudged}"),
                line=_line_of(code, site.start()),
                template="off_by_one_constant",
                description=f"{width}'d{value} -> {width}'d{nudged}",
            ))
    return edits


def swap_signals(code: str) -> list[TemplateEdit]:
    """Exchange a pair of signals: ternary arms, or the operands of a
    non-commutative binary operator."""
    edits = []
    for site in re.finditer(r"\? ([\w\[\]':]+) : ([\w\[\]':]+)", code):
        left, right = site.group(1), site.group(2)
        if left == right:
            continue
        edits.append(TemplateEdit(
            code=_splice(code, site.start(), site.end(),
                         f"? {right} : {left}"),
            line=_line_of(code, site.start()),
            template="swap_signals",
            description=f"swap ternary arms {left} / {right}",
        ))
    for site in re.finditer(r"\b(\w+) (-|<|>) (\w+)\b", code):
        left, operator, right = site.group(1), site.group(2), site.group(3)
        if left == right:
            continue
        edits.append(TemplateEdit(
            code=_splice(code, site.start(), site.end(),
                         f"{right} {operator} {left}"),
            line=_line_of(code, site.start()),
            template="swap_signals",
            description=f"swap operands of {left} {operator} {right}",
        ))
    return edits


#: The template grammar, in canonical application order.
TEMPLATES: tuple[Callable[[str], list[TemplateEdit]], ...] = (
    invert_condition,
    swap_operator,
    off_by_one_constant,
    swap_signals,
)


class TemplateProposer:
    """Breadth-first template search as a repair-engine proposer."""

    name = "template"

    def __init__(self, templates=TEMPLATES, max_candidates: int = 64):
        self.templates = tuple(templates)
        #: Total proposals this search may make before declaring done
        #: (the engine's ``max_iterations`` bounds verifications too).
        self.max_candidates = max_candidates

    def start(self, code: str, verdict: OracleVerdict) -> "TemplateSession":
        return TemplateSession(self.templates, self.max_candidates)


class TemplateSession:
    """One template search: a level per accepted root, suspects first."""

    active_name = "template"

    def __init__(self, templates, max_candidates: int):
        self.templates = templates
        self.max_candidates = max_candidates
        self._root: Optional[str] = None
        self._queue: list[TemplateEdit] = []
        self._tried: set[str] = set()
        self._proposed = 0
        self.stats = {"templates_enumerated": 0, "templates_tried": 0}

    def _enumerate(self, code: str,
                   localization: Optional[Localization]) -> list[TemplateEdit]:
        edits: list[TemplateEdit] = []
        for template in self.templates:
            edits.extend(template(code))
        self.stats["templates_enumerated"] += len(edits)
        rank: dict[int, int] = {}
        if localization is not None:
            for position, line in enumerate(localization.suspect_lines):
                rank.setdefault(line, position)
        # Stable sort: suspect-ranked lines first, enumeration order
        # within a rank -- fully deterministic.
        edits.sort(key=lambda edit: rank.get(edit.line, len(rank) + 1))
        return edits

    def propose(self, code: str, verdict: OracleVerdict,
                localization: Optional[Localization]):
        from ..llm.base import RepairStep

        if self._root != code:
            # The engine accepted an improvement (or this is the first
            # round): re-root and enumerate the next BFS level.
            self._root = code
            self._queue = self._enumerate(code, localization)
        while self._queue and self._proposed < self.max_candidates:
            edit = self._queue.pop(0)
            if edit.code == code or edit.code in self._tried:
                continue
            # Pre-filter through the content-addressed compile cache:
            # an uncompilable rewrite must not cost a simulation (or a
            # wasted engine iteration).
            if not cached_compile(edit.code).ok:
                continue
            self._tried.add(edit.code)
            self._proposed += 1
            self.stats["templates_tried"] += 1
            return RepairStep(
                thought=f"Apply repair template {edit.template} "
                f"(line {edit.line}: {edit.description}) and re-simulate.",
                code=edit.code,
            )
        return RepairStep(
            thought="The repair templates are exhausted without matching "
            "the reference behaviour.",
            code=code,
            declared_done=True,
        )
