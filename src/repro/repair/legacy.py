"""Frozen pre-refactor repair loops -- the equivalence reference.

These are verbatim copies of the hand-rolled ``ReActAgent.run`` and
``SimDebugAgent.run`` bodies as they stood *before* the repair-engine
refactor, kept deliberately self-contained (own ``_head`` /
``_record_rule_fix`` copies, no imports from the engine) so that
``scripts/repair_diff.py`` and the golden-transcript equivalence suite
can prosecute the engine's bit-identity claim against an independent
implementation forever, not against code that shares the bug surface
under test.

Do not "clean these up" to use the engine: their whole value is that
they do not.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..diagnostics import Compiler
from ..llm.base import RepairModel
from ..llm.simfix import SimulatedLogicDebugger
from ..rag.retrievers import Retriever
from ..service.deadline import current_deadline
from ..sim.feedback import make_sim_feedback
from .transcript import Transcript, Turn


class LegacyAgentResult:
    """Outcome shape of the pre-refactor ReAct loop."""

    def __init__(self, success, final_code, iterations, transcript,
                 rule_fixed=False):
        self.success = success
        self.final_code = final_code
        self.iterations = iterations
        self.transcript = transcript
        self.rule_fixed = rule_fixed

    @property
    def gave_up(self) -> bool:
        return not self.success


class LegacySimFixResult:
    """Outcome shape of the pre-refactor simulation-debugging loop."""

    def __init__(self, success, final_code, iterations,
                 initial_mismatches=0, final_mismatches=0, transcript=None):
        self.success = success
        self.final_code = final_code
        self.iterations = iterations
        self.initial_mismatches = initial_mismatches
        self.final_mismatches = final_mismatches
        self.transcript = transcript if transcript is not None else Transcript()


class LegacyReActAgent:
    """The pre-refactor hand-rolled ReAct loop (reference only)."""

    def __init__(
        self,
        model: RepairModel,
        compiler: Compiler,
        retriever: Optional[Retriever] = None,
        max_iterations: int = 10,
        apply_rule_fix: bool = True,
        on_turn: Optional[Callable[[Turn], None]] = None,
    ):
        self.model = model
        self.compiler = compiler
        self.retriever = retriever
        self.max_iterations = max_iterations
        self.apply_rule_fix = apply_rule_fix
        self.on_turn = on_turn

    def _record(self, transcript: Transcript, **turn_fields) -> Turn:
        turn = transcript.add(**turn_fields)
        if self.on_turn is not None:
            self.on_turn(turn)
        return turn

    def run(self, code: str, description: str = "") -> LegacyAgentResult:
        from ..core.rulefix import rule_fix  # deferred, as in the original

        transcript = Transcript()
        rule_fixed = False
        if self.apply_rule_fix:
            rule_result = rule_fix(code)
            rule_fixed = _record_rule_fix(transcript, code, rule_result)
            if rule_fixed and self.on_turn is not None:
                self.on_turn(transcript.turns[-1])
            code = rule_result.code

        result = self.compiler.compile(code)
        if result.ok:
            self._record(
                transcript,
                thought=(
                    "The rule-based fixes made the module compile cleanly; "
                    "no model repair needed."
                    if rule_fixed
                    else "The module compiles cleanly; no repair needed."
                ),
                action="Finish", action_input="answer", observation="",
            )
            return LegacyAgentResult(success=True, final_code=code, iterations=0,
                                     transcript=transcript, rule_fixed=rule_fixed)

        session = self.model.start(
            code, flavor=self.compiler.flavor, use_rag=self.retriever is not None
        )

        iterations = 0
        for _ in range(self.max_iterations):
            deadline = current_deadline()
            if deadline is not None:
                deadline.check(stage="react-iteration")
            feedback = result.log
            guidance = []
            crashed = getattr(result, "crashed", False)
            if self.retriever is not None and feedback and not crashed:
                guidance = [r.entry for r in self.retriever.retrieve(feedback)]
                if guidance:
                    self._record(
                        transcript,
                        thought="I should look up expert guidance for this "
                        "compiler log.",
                        action="RAG",
                        action_input=feedback.split("\n")[0],
                        observation=guidance[0].guidance,
                    )

            step = session.step(code, feedback, guidance)
            iterations += 1
            code = step.code
            result = self.compiler.compile(code)
            notice = getattr(session, "observe", None)
            if callable(notice):
                notice(result.ok)
            self._record(
                transcript,
                thought=step.thought,
                action="Compiler",
                action_input=_head(code),
                observation=result.log,
            )
            if result.ok:
                self._record(
                    transcript,
                    thought="The compiler reports no errors; the syntax "
                    "error is resolved.",
                    action="Finish", action_input="answer", observation="",
                )
                return LegacyAgentResult(success=True, final_code=code,
                                         iterations=iterations,
                                         transcript=transcript,
                                         rule_fixed=rule_fixed)
            if step.declared_done:
                break
        return LegacyAgentResult(success=False, final_code=code,
                                 iterations=iterations, transcript=transcript,
                                 rule_fixed=rule_fixed)


class LegacySimDebugAgent:
    """The pre-refactor hand-rolled simulation loop (reference only)."""

    def __init__(
        self,
        model: SimulatedLogicDebugger | None = None,
        max_iterations: int = 8,
        sim_samples: int = 16,
        sim_limits=None,
    ):
        self.model = model or SimulatedLogicDebugger()
        self.max_iterations = max_iterations
        self.sim_samples = sim_samples
        self.sim_limits = sim_limits
        self.compiler = Compiler()

    def run(
        self, code: str, reference_code: str, difficulty: str = "hard"
    ) -> LegacySimFixResult:
        transcript = Transcript()
        reference = self.compiler.compile(reference_code).elaborated
        compiled = self.compiler.compile(code)
        if not compiled.ok or compiled.elaborated is None or reference is None:
            return LegacySimFixResult(
                success=False, final_code=code, iterations=0,
                transcript=transcript,
            )

        feedback = make_sim_feedback(
            compiled.elaborated, reference, samples=self.sim_samples,
            sim_limits=self.sim_limits,
        )
        best_code = code
        best_mismatches = feedback.mismatch_count
        initial = feedback.mismatch_count
        if feedback.passed:
            return LegacySimFixResult(
                success=True, final_code=code, iterations=0,
                initial_mismatches=0, final_mismatches=0, transcript=transcript,
            )

        session = self.model.start(code, difficulty)
        iterations = 0
        for _ in range(self.max_iterations):
            step = session.step(best_code, feedback.text)
            if step.declared_done and step.code == best_code:
                transcript.add(step.thought, "Finish", "give up", feedback.text)
                break
            iterations += 1
            compiled = self.compiler.compile(step.code)
            if not compiled.ok or compiled.elaborated is None:
                transcript.add(step.thought, "Simulator", _head(step.code, 2),
                               "edit broke compilation; reverted")
                continue
            candidate_feedback = make_sim_feedback(
                compiled.elaborated, reference, samples=self.sim_samples,
                sim_limits=self.sim_limits,
            )
            transcript.add(
                step.thought, "Simulator", _head(step.code, 2),
                candidate_feedback.text.split("\n")[0],
            )
            if candidate_feedback.passed:
                return LegacySimFixResult(
                    success=True, final_code=step.code, iterations=iterations,
                    initial_mismatches=initial, final_mismatches=0,
                    transcript=transcript,
                )
            if candidate_feedback.mismatch_count < best_mismatches:
                best_code = step.code
                best_mismatches = candidate_feedback.mismatch_count
                feedback = candidate_feedback
        return LegacySimFixResult(
            success=False, final_code=best_code, iterations=iterations,
            initial_mismatches=initial, final_mismatches=best_mismatches,
            transcript=transcript,
        )


def _record_rule_fix(transcript: Transcript, original: str, rule_result) -> bool:
    if rule_result.code.strip() == original.strip():
        return False
    notes = []
    if rule_result.extracted_from_markdown:
        notes.append("extracted the Verilog from the surrounding text")
    if rule_result.moved_timescale:
        notes.append("hoisted the `timescale directive to the file top")
    if not notes:
        notes.append("normalized the module text")
    transcript.add(
        thought="Apply the rule-based pre-fixer before consulting the model.",
        action="RuleFix",
        action_input=_head(original),
        observation="; ".join(notes),
    )
    return True


def _head(code: str, lines: int = 3) -> str:
    return "\n".join(code.strip().split("\n")[:lines])
