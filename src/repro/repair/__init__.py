"""The generic repair kernel: detect → localize → propose → verify.

Every repair loop in the repo is one configuration of
:class:`RepairEngine` over the three pluggable protocols --
:class:`Oracle` (:class:`CompileOracle`, :class:`SimOracle`),
:class:`Localizer` (:class:`DiagnosticLocalizer`,
:class:`TraceDiffLocalizer`) and :class:`Proposer`
(:class:`LLMProposer`, :class:`RuleFixProposer`,
:class:`TemplateProposer`, chained by :class:`FallbackProposer`).
``legacy`` keeps the pre-refactor hand-rolled loops as the equivalence
reference for ``scripts/repair_diff.py``.

This package must not import :mod:`repro.agents` at module level (the
agents are configurations *of* it) and defers :mod:`repro.core` imports
into functions, matching the agents' own cycle-avoidance idiom.
"""

from .base import (
    EngineConfig,
    Localization,
    Localizer,
    Oracle,
    OracleVerdict,
    Proposer,
    ProposerSession,
    RepairOutcome,
    Suspect,
)
from .engine import RepairEngine, result_digest
from .functional import build_functional_engine, repair_functional
from .localizers import DiagnosticLocalizer, TraceDiffLocalizer, suspect_lines
from .oracles import CompileOracle, SimOracle
from .proposers import (
    FallbackProposer,
    LLMProposer,
    LogicModelProposer,
    RuleFixProposer,
    record_rule_fix,
)
from .templates import TEMPLATES, TemplateEdit, TemplateProposer
from .transcript import Transcript, Turn

__all__ = [
    "CompileOracle",
    "DiagnosticLocalizer",
    "EngineConfig",
    "FallbackProposer",
    "LLMProposer",
    "Localization",
    "Localizer",
    "LogicModelProposer",
    "Oracle",
    "OracleVerdict",
    "Proposer",
    "ProposerSession",
    "RepairEngine",
    "RepairOutcome",
    "RuleFixProposer",
    "SimOracle",
    "Suspect",
    "TEMPLATES",
    "TemplateEdit",
    "TemplateProposer",
    "TraceDiffLocalizer",
    "Transcript",
    "Turn",
    "build_functional_engine",
    "record_rule_fix",
    "repair_functional",
    "result_digest",
    "suspect_lines",
]
