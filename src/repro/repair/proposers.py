"""Proposers: candidate-edit sources for the repair engine.

* :class:`RuleFixProposer` -- the deterministic rule-based pre-pass
  (markdown extraction, `timescale hoisting) recorded as a ``RuleFix``
  transcript turn; runs once before the first detect.
* :class:`LLMProposer` -- one :class:`~repro.llm.base.RepairModel`
  session (direct simulated tier, OpenAI-backed, or a
  :mod:`repro.llm.pool` ladder); forwards the engine's verify outcomes
  through the duck-typed ``observe`` escalation seam.
* :class:`LogicModelProposer` -- same, for the §5 logic-debugging model
  surface (``start(code, difficulty)`` / ``step(code, feedback)``).
* :class:`FallbackProposer` -- chains proposers: when one declares done
  without changing the code (search exhausted), the next takes over
  from the current best.  Table 4 runs templates first, then escalates
  to the LLM.
"""

from __future__ import annotations

from typing import Optional

from .base import Localization, OracleVerdict, _head
from .transcript import Transcript


def record_rule_fix(transcript: Transcript, original: str, rule_result) -> bool:
    """Record a rule-based pre-fix as its own transcript step.

    Returns True (and appends a ``RuleFix`` turn) only when the
    pre-fixer *materially* changed the code -- whitespace-only trims do
    not count, so clean inputs still short-circuit with a lone
    ``Finish`` turn.
    """
    if rule_result.code.strip() == original.strip():
        return False
    notes = []
    if rule_result.extracted_from_markdown:
        notes.append("extracted the Verilog from the surrounding text")
    if rule_result.moved_timescale:
        notes.append("hoisted the `timescale directive to the file top")
    if not notes:
        notes.append("normalized the module text")
    transcript.add(
        thought="Apply the rule-based pre-fixer before consulting the model.",
        action="RuleFix",
        action_input=_head(original),
        observation="; ".join(notes),
    )
    return True


class RuleFixProposer:
    """The rule-based pre-pass, as the engine's ``prefix`` hook."""

    name = "rulefix"

    def apply(self, transcript: Transcript, code: str, on_turn=None):
        """Rule-fix ``code``; returns ``(new_code, materially_changed)``
        and notifies ``on_turn`` of the recorded turn, if any."""
        from ..core.rulefix import rule_fix  # deferred: avoids an import
        # cycle (repro.core.fixer builds agents, which build engines)

        rule_result = rule_fix(code)
        rule_fixed = record_rule_fix(transcript, code, rule_result)
        if rule_fixed and on_turn is not None:
            on_turn(transcript.turns[-1])
        return rule_result.code, rule_fixed


class LLMProposer:
    """A syntax-repair model session behind the proposer protocol."""

    name = "llm"

    def __init__(self, model, flavor: str = "simple", use_rag: bool = False):
        self.model = model
        self.flavor = flavor
        self.use_rag = use_rag

    def start(self, code: str, verdict: OracleVerdict) -> "LLMProposerSession":
        session = self.model.start(
            code, flavor=self.flavor, use_rag=self.use_rag
        )
        return LLMProposerSession(session)


class LLMProposerSession:
    """One repair-model conversation behind the session protocol."""

    active_name = "llm"

    def __init__(self, session):
        self.session = session

    def propose(self, code: str, verdict: OracleVerdict,
                localization: Optional[Localization]):
        guidance = localization.guidance if localization is not None else []
        return self.session.step(code, verdict.feedback, guidance)

    def observe(self, ok: bool) -> None:
        notice = getattr(self.session, "observe", None)
        if callable(notice):
            notice(ok)


class LogicModelProposer:
    """A §5 logic-debugging model session behind the proposer protocol."""

    name = "llm"

    def __init__(self, model, difficulty: str = "hard"):
        self.model = model
        self.difficulty = difficulty

    def start(self, code: str, verdict: OracleVerdict) -> "LogicProposerSession":
        return LogicProposerSession(self.model.start(code, self.difficulty))


class LogicProposerSession:
    """One logic-debugging conversation behind the session protocol."""

    active_name = "llm"

    def __init__(self, session):
        self.session = session

    def propose(self, code: str, verdict: OracleVerdict,
                localization: Optional[Localization]):
        return self.session.step(code, verdict.feedback)

    def observe(self, ok: bool) -> None:
        notice = getattr(self.session, "observe", None)
        if callable(notice):
            notice(ok)


class FallbackProposer:
    """Chain proposers; each takes over when the previous runs dry."""

    def __init__(self, *proposers):
        if not proposers:
            raise ValueError("FallbackProposer needs at least one proposer")
        self.proposers = proposers

    def start(self, code: str, verdict: OracleVerdict) -> "FallbackSession":
        return FallbackSession(self.proposers, code, verdict)


class FallbackSession:
    """The chained session: delegates to the active proposer's session,
    advancing down the chain whenever one declares done without
    changing the code."""

    def __init__(self, proposers, code: str, verdict: OracleVerdict):
        self.proposers = list(proposers)
        self._index = 0
        self._session = self.proposers[0].start(code, verdict)
        #: Stats of already-exhausted sessions, folded into ``stats``.
        self._drained_stats: dict = {}

    @property
    def active_name(self) -> str:
        return getattr(self._session, "active_name", "") or getattr(
            self.proposers[self._index], "name", ""
        )

    @property
    def stats(self) -> dict:
        merged: dict = {"escalated_to_llm": self._index > 0}
        merged.update(self._drained_stats)
        merged.update(getattr(self._session, "stats", {}) or {})
        return merged

    def propose(self, code: str, verdict: OracleVerdict,
                localization: Optional[Localization]):
        while True:
            step = self._session.propose(code, verdict, localization)
            exhausted = step.declared_done and step.code == code
            if not exhausted or self._index + 1 >= len(self.proposers):
                return step
            # Search dried up: hand the current best to the next
            # proposer (Table 4's templates -> LLM escalation).
            self._drained_stats.update(getattr(self._session, "stats", {}) or {})
            self._index += 1
            self._session = self.proposers[self._index].start(code, verdict)

    def observe(self, ok: bool) -> None:
        notice = getattr(self._session, "observe", None)
        if callable(notice):
            notice(ok)
