"""Evaluation: metrics (fix rate, pass@k), the experiment runner, and
per-table/figure experiment drivers."""

from .experiments import (
    FIG5_CODE,
    FIG6_CODE,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    Figure7Result,
    Table1Result,
    Table2Result,
    Table3Result,
    default_dataset,
    figure5_logs,
    figure6_failure_case,
    run_figure7,
    run_table1,
    run_table2,
    run_table3,
)
from .experiments import SimFixExtensionResult, run_simfix_extension
from .figures import bar_chart, composition_figure, histogram_figure
from .metrics import fix_rate, fix_rate_single, pass_at_k, pass_at_k_single
from .report import FullReport, ReportScale, run_full_report
from .runner import (
    FixExperimentResult,
    evaluate_code,
    evaluate_sample,
    run_fix_experiment,
)
from .tables import render_table

__all__ = [
    "FIG5_CODE",
    "FIG6_CODE",
    "Figure7Result",
    "FixExperimentResult",
    "FullReport",
    "ReportScale",
    "SimFixExtensionResult",
    "bar_chart",
    "composition_figure",
    "histogram_figure",
    "run_full_report",
    "run_simfix_extension",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "default_dataset",
    "evaluate_code",
    "evaluate_sample",
    "figure5_logs",
    "figure6_failure_case",
    "fix_rate",
    "fix_rate_single",
    "pass_at_k",
    "pass_at_k_single",
    "render_table",
    "run_figure7",
    "run_fix_experiment",
    "run_table1",
    "run_table2",
    "run_table3",
]
