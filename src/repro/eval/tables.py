"""Plain-text rendering of experiment results as paper-style tables."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Simple aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(row: Sequence[str]) -> str:
        return " | ".join(str(c).ljust(w) for c, w in zip(row, widths))

    out = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
