"""Experiment drivers: one function per table / figure of the paper.

Each driver returns a structured result object with a ``render()``
method that prints the same rows the paper reports.  The benchmarks in
``benchmarks/`` call these with full-size parameters; tests use scaled-
down ones.

Every driver accepts ``jobs=`` (and optionally ``runner=``): per-problem
/ per-trial work units fan out across a
:class:`repro.runtime.ParallelRunner`, with results reassembled in
submission order so parallel runs are bit-identical to serial ones at
the same seed.  Compilation inside the evaluation flow goes through the
content-addressed compile cache (:mod:`repro.runtime.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.config import RTLFixerConfig
from ..core.fixer import RTLFixer
from ..dataset.curate import SyntaxDataset, build_syntax_dataset
from ..dataset.generate import GenerationModel
from ..dataset.problem import Problem, ProblemSet
from ..diagnostics import compile_source
from ..runtime import (
    ParallelRunner,
    RunContext,
    WorkFailure,
    cached_compile,
    config_digest,
    unit_key,
)
from .metrics import pass_at_k_single
from .runner import FixExperimentResult, evaluate_code, evaluate_sample, run_fix_experiment
from .tables import render_table

#: Paper values, for side-by-side reporting in EXPERIMENTS.md.
PAPER_TABLE1 = {
    ("oneshot", "simple", False): 0.414,
    ("oneshot", "iverilog", False): 0.536,
    ("oneshot", "quartus", False): 0.587,
    ("oneshot", "iverilog", True): 0.800,
    ("oneshot", "quartus", True): 0.899,
    ("react", "simple", False): 0.671,
    ("react", "iverilog", False): 0.731,
    ("react", "quartus", False): 0.799,
    ("react", "iverilog", True): 0.820,
    ("react", "quartus", True): 0.985,
    ("oneshot-gpt4", "quartus", False): 0.91,
    ("oneshot-gpt4", "quartus", True): 0.98,
    ("react-gpt4", "quartus", False): 0.92,
    ("react-gpt4", "quartus", True): 0.99,
}

PAPER_TABLE2 = {
    ("human", "all"): {"p1": 0.267, "p1f": 0.368, "p5": 0.458, "p5f": 0.506},
    ("human", "easy"): {"p1": 0.521, "p1f": 0.666, "p5": 0.808, "p5f": 0.847},
    ("human", "hard"): {"p1": 0.053, "p1f": 0.120, "p5": 0.164, "p5f": 0.221},
    ("machine", "all"): {"p1": 0.467, "p1f": 0.799, "p5": 0.691, "p5f": 0.891},
    ("machine", "easy"): {"p1": 0.568, "p1f": 0.833, "p5": 0.782, "p5f": 0.892},
    ("machine", "hard"): {"p1": 0.367, "p1f": 0.771, "p5": 0.601, "p5f": 0.890},
}

PAPER_TABLE3 = {
    "syntax_before": 0.73, "pass1_before": 0.11,
    "syntax_after": 0.93, "pass1_after": 0.16,
}


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    #: (prompting, compiler, rag) -> measured fix rate
    rates: dict[tuple[str, str, bool], float] = field(default_factory=dict)
    details: dict[tuple[str, str, bool], FixExperimentResult] = field(default_factory=dict)

    @property
    def failed_units(self) -> int:
        """Total failed work units across all cells (``on_error="collect"``)."""
        return sum(len(run.failures) for run in self.details.values())

    def render(self) -> str:
        rows = []
        for prompting in ("oneshot", "react", "oneshot-gpt4", "react-gpt4"):
            for rag in (False, True):
                row = [prompting, "w/" if rag else "w/o"]
                any_cell = False
                for compiler in ("simple", "iverilog", "quartus"):
                    key = (prompting, compiler, rag)
                    if key in self.rates:
                        paper = PAPER_TABLE1.get(key)
                        cell = f"{self.rates[key]:.3f}"
                        if paper is not None:
                            cell += f" (paper {paper:.3f})"
                        row.append(cell)
                        any_cell = True
                    else:
                        row.append("-")
                if any_cell:
                    rows.append(row)
        return render_table(
            ["Prompt", "RAG", "Simple", "iverilog", "Quartus"],
            rows,
            title="Table 1: fix rate on VerilogEval-syntax",
        )


def run_table1(
    dataset: SyntaxDataset,
    repeats: int = 10,
    include_gpt4: bool = True,
    max_iterations: int = 10,
    progress=None,
    jobs: Optional[int] = None,
    on_error: Optional[str] = None,
    ctx: Optional[RunContext] = None,
) -> Table1Result:
    """Fix rate for One-shot vs ReAct, w/ and w/o RAG, across feedback
    qualities, plus the GPT-4 ablation column (§4.2, §4.3).  ``jobs``
    fans each configuration's trials across workers; ``on_error``
    selects abort-vs-isolate semantics for failed trials (see
    :func:`~repro.eval.runner.run_fix_experiment`); ``ctx`` makes every
    cell's trials durable/resumable (each cell is its own journal
    stage)."""
    result = Table1Result()
    grid: list[tuple[str, str, str, bool]] = []
    for prompting in ("oneshot", "react"):
        for compiler in ("simple", "iverilog", "quartus"):
            for rag in (False, True):
                if compiler == "simple" and rag:
                    continue  # no log to retrieve against (as in the paper)
                grid.append((prompting, prompting, compiler, rag))
    if include_gpt4:
        for prompting in ("oneshot", "react"):
            for rag in (False, True):
                grid.append((f"{prompting}-gpt4", prompting, "quartus", rag))

    for label, prompting, compiler, rag in grid:
        tier = "gpt-4-sim" if label.endswith("gpt4") else "gpt-3.5-sim"
        fixer = RTLFixer(
            prompting=prompting, compiler=compiler, use_rag=rag,
            tier=tier, max_iterations=max_iterations,
        )
        run = run_fix_experiment(
            dataset, fixer, repeats=repeats, progress=progress, jobs=jobs,
            on_error=on_error, ctx=ctx,
            stage=f"table1/{label}/{compiler}/{'rag' if rag else 'norag'}",
        )
        result.rates[(label, compiler, rag)] = run.rate
        result.details[(label, compiler, rag)] = run
    return result


# ---------------------------------------------------------------------------
# Table 2 / Figure 4
# ---------------------------------------------------------------------------


@dataclass
class ProblemOutcome:
    problem_id: str
    difficulty: str
    n: int
    correct_original: int
    correct_fixed: int
    syntax_original: int
    syntax_fixed: int
    sim_original: int
    sim_fixed: int


@dataclass
class Table2Result:
    #: benchmark -> list of per-problem outcomes
    outcomes: dict[str, list[ProblemOutcome]] = field(default_factory=dict)
    easy_threshold: float = 0.1
    #: failed (benchmark, problem) work units under ``on_error="collect"``
    #: (excluded from the aggregates above).
    failures: list[WorkFailure] = field(default_factory=list)

    # -- aggregation -------------------------------------------------------

    def _subset(self, benchmark: str, subset: str) -> list[ProblemOutcome]:
        outcomes = self.outcomes[benchmark]
        if subset == "all":
            return outcomes
        easy_ids = self.easy_ids()
        if subset == "easy":
            return [o for o in outcomes if o.problem_id in easy_ids]
        return [o for o in outcomes if o.problem_id not in easy_ids]

    def easy_ids(self) -> set[str]:
        """The paper splits easy/hard by a 0.1 pass-rate threshold on
        the *Human* original results."""
        human = self.outcomes.get("human", [])
        return {
            o.problem_id
            for o in human
            if o.n and o.correct_original / o.n > self.easy_threshold
        }

    def pass_at(self, benchmark: str, subset: str, k: int, fixed: bool) -> float:
        rows = self._subset(benchmark, subset)
        if not rows:
            return 0.0
        values = [
            pass_at_k_single(
                o.n, o.correct_fixed if fixed else o.correct_original, min(k, o.n)
            )
            for o in rows
        ]
        return sum(values) / len(values)

    def error_composition(self, benchmark: str, fixed: bool) -> dict[str, float]:
        """Fig. 4 pie data: fraction of samples passing / failing syntax
        / failing simulation."""
        rows = self.outcomes[benchmark]
        total = sum(o.n for o in rows)
        if not total:
            return {"pass": 0.0, "syntax": 0.0, "sim": 0.0}
        if fixed:
            syntax = sum(o.syntax_fixed for o in rows)
            sim = sum(o.sim_fixed for o in rows)
            ok = sum(o.correct_fixed for o in rows)
        else:
            syntax = sum(o.syntax_original for o in rows)
            sim = sum(o.sim_original for o in rows)
            ok = sum(o.correct_original for o in rows)
        return {"pass": ok / total, "syntax": syntax / total, "sim": sim / total}

    def syntax_share_of_failures(self, benchmark: str) -> float:
        """The paper's headline: ~55% of GPT-3.5 errors are syntax."""
        comp = self.error_composition(benchmark, fixed=False)
        failures = comp["syntax"] + comp["sim"]
        return comp["syntax"] / failures if failures else 0.0

    def render(self) -> str:
        rows = []
        for benchmark in ("human", "machine"):
            if benchmark not in self.outcomes:
                continue
            for subset in ("all", "easy", "hard"):
                paper = PAPER_TABLE2.get((benchmark, subset), {})
                rows.append([
                    benchmark.capitalize(), subset,
                    f"{self.pass_at(benchmark, subset, 1, False):.3f} (paper {paper.get('p1', 0):.3f})",
                    f"{self.pass_at(benchmark, subset, 1, True):.3f} (paper {paper.get('p1f', 0):.3f})",
                    f"{self.pass_at(benchmark, subset, 5, False):.3f} (paper {paper.get('p5', 0):.3f})",
                    f"{self.pass_at(benchmark, subset, 5, True):.3f} (paper {paper.get('p5f', 0):.3f})",
                ])
        return render_table(
            ["Dataset", "Set", "pass@1 orig", "pass@1 fixed", "pass@5 orig", "pass@5 fixed"],
            rows,
            title="Table 2: pass@k on VerilogEval before/after syntax fixing",
        )


@dataclass(frozen=True)
class _Table2Unit:
    """One (benchmark, problem) Table 2 work unit."""

    problem: Problem
    benchmark: str
    n_samples: int
    sim_samples: int
    config: RTLFixerConfig
    seed: int


def _table2_problem_outcome(unit: _Table2Unit) -> ProblemOutcome:
    """Evaluate (and fix) every sample of one problem -- the Table 2
    inner loop, self-contained so it can run in a pool worker."""
    fixer = RTLFixer(config=unit.config)
    model = GenerationModel(temperature=0.4, seed=unit.seed)
    problem = unit.problem
    outcome = ProblemOutcome(
        problem_id=problem.id, difficulty=problem.difficulty,
        n=unit.n_samples, correct_original=0, correct_fixed=0,
        syntax_original=0, syntax_fixed=0, sim_original=0, sim_fixed=0,
    )
    for sample in model.sample_n(problem, unit.n_samples, unit.benchmark):
        verdict = evaluate_sample(sample.raw, problem, samples=unit.sim_samples)
        if verdict == "pass":
            outcome.correct_original += 1
            outcome.correct_fixed += 1
        elif verdict == "sim":
            outcome.sim_original += 1
            outcome.sim_fixed += 1
        else:
            outcome.syntax_original += 1
            fix = fixer.fix(sample.raw, description=problem.description(unit.benchmark))
            if fix.success:
                after = evaluate_code(fix.final_code, problem, samples=unit.sim_samples)
            else:
                after = "syntax"
            if after == "pass":
                outcome.correct_fixed += 1
            elif after == "sim":
                outcome.sim_fixed += 1
            else:
                outcome.syntax_fixed += 1
    return outcome


def run_table2(
    problems: ProblemSet,
    n_samples: int = 20,
    benchmarks: tuple[str, ...] = ("human", "machine"),
    fixer_config: Optional[RTLFixerConfig] = None,
    sim_samples: int = 32,
    seed: int = 0,
    progress=None,
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
    on_error: Optional[str] = None,
    ctx: Optional[RunContext] = None,
) -> Table2Result:
    """Pass@k before/after fixing syntax errors (§4.2, Table 2 + Fig. 4).

    Problems are independent work units: ``jobs`` fans them across a
    :class:`~repro.runtime.ParallelRunner` with results identical to the
    serial path.  ``progress`` receives ``(benchmark, done, total)`` per
    completed problem.  ``on_error`` (default: the fixer config's
    setting) selects abort-vs-isolate handling of failed problems.
    ``ctx`` journals each (benchmark, problem) outcome for resume.
    """
    config = fixer_config or RTLFixerConfig()
    if on_error is None:
        on_error = config.on_error
    if ctx is None:
        ctx = RunContext()
    if runner is None:
        runner = ParallelRunner(jobs=config.jobs if jobs is None else jobs)
    problem_list = list(problems)
    # Warm the compile cache with every golden reference up front: the
    # serial path then never recompiles them, and process-pool workers
    # inherit the warm cache through fork.
    for problem in problem_list:
        cached_compile(problem.reference)

    units = [
        _Table2Unit(
            problem=problem, benchmark=benchmark, n_samples=n_samples,
            sim_samples=sim_samples, config=config, seed=seed,
        )
        for benchmark in benchmarks
        for problem in problem_list
    ]
    cfg_digest = config_digest(config)
    keys = [
        unit_key(
            "table2", benchmark=unit.benchmark, problem=unit.problem.id,
            n_samples=unit.n_samples, sim_samples=unit.sim_samples,
            config=cfg_digest, seed=unit.seed,
        )
        for unit in units
    ]
    tick = None
    if progress is not None:
        done_per_bench = {benchmark: 0 for benchmark in benchmarks}

        def tick(done, total, unit):
            done_per_bench[unit.benchmark] += 1
            progress(unit.benchmark, done_per_bench[unit.benchmark], len(problem_list))

    outcomes = ctx.map(
        runner, _table2_problem_outcome, units, keys=keys, stage="table2",
        progress=tick, on_error=on_error,
    )

    result = Table2Result()
    for benchmark in benchmarks:
        result.outcomes[benchmark] = []
    for unit, outcome in zip(units, outcomes):
        if isinstance(outcome, WorkFailure):
            result.failures.append(outcome)
            continue
        result.outcomes[unit.benchmark].append(outcome)
    return result


# ---------------------------------------------------------------------------
# Table 3 (RTLLM generalization)
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    syntax_before: float = 0.0
    syntax_after: float = 0.0
    pass1_before: float = 0.0
    pass1_after: float = 0.0
    #: failed per-problem work units under ``on_error="collect"``
    #: (excluded from the rates above).
    failures: list[WorkFailure] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            ["GPT-3.5",
             f"{self.syntax_before:.2f} (paper {PAPER_TABLE3['syntax_before']:.2f})",
             f"{self.pass1_before:.2f} (paper {PAPER_TABLE3['pass1_before']:.2f})"],
            ["GPT-3.5 + RTLFixer",
             f"{self.syntax_after:.2f} (paper {PAPER_TABLE3['syntax_after']:.2f})",
             f"{self.pass1_after:.2f} (paper {PAPER_TABLE3['pass1_after']:.2f})"],
        ]
        return render_table(
            ["LLM", "Syntax Success Rate", "pass@1"],
            rows,
            title="Table 3: RTLLM generalization (ReAct + RAG + Quartus)",
        )


@dataclass(frozen=True)
class _Table3Unit:
    """One per-problem Table 3 work unit."""

    problem: Problem
    n_samples: int
    sim_samples: int
    seed: int


def _table3_problem_counts(unit: _Table3Unit) -> tuple[int, int, int, int, int]:
    """Evaluate one RTLLM problem; returns ``(total, syntax_ok_before,
    syntax_ok_after, c_before, c_after)``."""
    fixer = RTLFixer()  # ReAct + RAG + Quartus, stock database
    model = GenerationModel(temperature=0.4, seed=unit.seed)
    problem = unit.problem
    total = syntax_ok_before = syntax_ok_after = c_before = c_after = 0
    for sample in model.sample_n(problem, unit.n_samples, "rtllm"):
        total += 1
        verdict = evaluate_sample(sample.raw, problem, samples=unit.sim_samples)
        if verdict != "syntax":
            syntax_ok_before += 1
            syntax_ok_after += 1
            if verdict == "pass":
                c_before += 1
                c_after += 1
            continue
        fix = fixer.fix(sample.raw, description=problem.human_desc)
        if fix.success:
            syntax_ok_after += 1
            if evaluate_code(fix.final_code, problem, samples=unit.sim_samples) == "pass":
                c_after += 1
    return total, syntax_ok_before, syntax_ok_after, c_before, c_after


def run_table3(
    problems: ProblemSet,
    n_samples: int = 10,
    sim_samples: int = 32,
    seed: int = 0,
    progress=None,
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
    on_error: str = "raise",
    ctx: Optional[RunContext] = None,
) -> Table3Result:
    """Generalization to the RTLLM-style corpus *without* any new RAG
    entries (§4.2, Table 3).  ``jobs`` fans problems across workers;
    ``on_error="collect"`` isolates failed problems instead of aborting;
    ``ctx`` journals per-problem counts for resume."""
    result = Table3Result()
    if ctx is None:
        ctx = RunContext()
    if runner is None:
        runner = ParallelRunner(jobs=jobs)
    problem_list = list(problems)
    for problem in problem_list:
        cached_compile(problem.reference)
    units = [
        _Table3Unit(
            problem=problem, n_samples=n_samples, sim_samples=sim_samples, seed=seed
        )
        for problem in problem_list
    ]
    cfg_digest = config_digest(RTLFixerConfig())  # the stock Table 3 fixer
    keys = [
        unit_key(
            "table3", problem=unit.problem.id, n_samples=unit.n_samples,
            sim_samples=unit.sim_samples, config=cfg_digest, seed=unit.seed,
        )
        for unit in units
    ]
    tick = None
    if progress is not None:
        tick = lambda done, total, unit: progress(done, total)  # noqa: E731
    outcomes = ctx.map(
        runner, _table3_problem_counts, units, keys=keys, stage="table3",
        progress=tick, on_error=on_error,
    )
    counts = []
    for outcome in outcomes:
        if isinstance(outcome, WorkFailure):
            result.failures.append(outcome)
        else:
            counts.append(outcome)
    if not counts:
        return result

    total = sum(c[0] for c in counts)
    syntax_ok_before = sum(c[1] for c in counts)
    syntax_ok_after = sum(c[2] for c in counts)
    per_problem_pass = [(n_samples, c[3], c[4]) for c in counts]

    result.syntax_before = syntax_ok_before / total if total else 0.0
    result.syntax_after = syntax_ok_after / total if total else 0.0
    result.pass1_before = sum(
        pass_at_k_single(n, c, 1) for n, c, _ in per_problem_pass
    ) / len(per_problem_pass)
    result.pass1_after = sum(
        pass_at_k_single(n, c, 1) for n, _, c in per_problem_pass
    ) / len(per_problem_pass)
    return result


# ---------------------------------------------------------------------------
# Figure 7 (iterations histogram)
# ---------------------------------------------------------------------------


@dataclass
class Figure7Result:
    #: iteration count -> number of successful repairs taking that many
    histogram: dict[int, int] = field(default_factory=dict)
    #: failed trials under ``on_error="collect"`` (not in the histogram).
    failures: list[WorkFailure] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(self.histogram.values())

    def fraction(self, iterations: int) -> float:
        if not self.total:
            return 0.0
        return self.histogram.get(iterations, 0) / self.total

    def single_revision_share(self) -> float:
        """Paper: 'About 90% of problems are resolved in a single
        revision.'"""
        return self.fraction(1)

    def render(self) -> str:
        rows = [
            [k, v, f"{v / self.total:.1%}"]
            for k, v in sorted(self.histogram.items())
        ]
        return render_table(
            ["iterations", "count", "share"],
            rows,
            title="Figure 7: ReAct iterations needed to fix (paper: ~90% in 1)",
        )


def run_figure7(
    dataset: SyntaxDataset,
    repeats: int = 10,
    progress=None,
    jobs: Optional[int] = None,
    on_error: Optional[str] = None,
    ctx: Optional[RunContext] = None,
) -> Figure7Result:
    """Histogram of ReAct iterations needed per successful fix."""
    fixer = RTLFixer()  # the paper's headline config
    run = run_fix_experiment(
        dataset, fixer, repeats=repeats, progress=progress, jobs=jobs,
        on_error=on_error, ctx=ctx, stage="figure7",
    )
    result = Figure7Result(failures=list(run.failures))
    for iterations in run.iterations:
        if iterations <= 0:
            continue  # already compiling, not a repair
        result.histogram[iterations] = result.histogram.get(iterations, 0) + 1
    return result


# ---------------------------------------------------------------------------
# Figure 5 (qualitative compiler-log comparison)
# ---------------------------------------------------------------------------

FIG5_CODE = """module top_module (
  input [99:0] in,
  output reg [99:0] out
);
always @(posedge clk) begin
  for (int i = 0; i < 100; i = i + 1) begin
    out[i] <= in[99 - i];
  end
end
endmodule
"""


def figure5_logs(code: str = FIG5_CODE) -> dict[str, str]:
    """The same erroneous design rendered through both compilers."""
    return {
        "iverilog": compile_source(code, name="vector100r.sv", flavor="iverilog").log,
        "quartus": compile_source(code, name="vector100r.sv", flavor="quartus").log,
    }


# ---------------------------------------------------------------------------
# Figure 6 (failure case)
# ---------------------------------------------------------------------------

FIG6_CODE = """module top_module (
  input [255:0] q,
  output reg [255:0] next
);
integer i;
integer j;
always @(*) begin
  for (i = 0; i < 16; i = i + 1) begin
    for (j = 0; j < 16; j = j + 1) begin
      next[i*16 + j] = q[(i-1)*16 + (j-1)];
    end
  end
end
endmodule
"""


def figure6_failure_case(repeats: int = 10) -> dict:
    """The index-arithmetic failure case: RTLFixer's fix rate on it is
    far below average (the paper reports the agent cannot fix it)."""
    log = compile_source(FIG6_CODE, flavor="quartus").log
    fixer = RTLFixer()
    wins = sum(fixer.with_seed(s).fix(FIG6_CODE).success for s in range(repeats))
    return {"log": log, "fix_rate": wins / repeats}


# ---------------------------------------------------------------------------
# §5 extension: simulation-error (logic) debugging
# ---------------------------------------------------------------------------


@dataclass
class SimFixExtensionResult:
    """Outcome of the §5 preliminary study: can the agent fix *logic*
    errors from waveform-style feedback?"""

    #: difficulty -> (attempted, fixed)
    by_difficulty: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: failed per-problem work units under ``on_error="collect"``.
    failures: list[WorkFailure] = field(default_factory=list)

    def fix_rate(self, difficulty: str) -> float:
        attempted, fixed = self.by_difficulty.get(difficulty, (0, 0))
        return fixed / attempted if attempted else 0.0

    def render(self) -> str:
        rows = [
            [difficulty, attempted, fixed,
             f"{fixed / attempted:.2f}" if attempted else "-"]
            for difficulty, (attempted, fixed) in sorted(self.by_difficulty.items())
        ]
        return render_table(
            ["difficulty", "logic-buggy samples", "fixed", "fix rate"],
            rows,
            title="§5 extension: simulation-error debugging "
            "(paper: works on simple problems only)",
        )


@dataclass(frozen=True)
class _SimFixUnit:
    """One per-problem §5-extension work unit."""

    problem: Problem
    samples_per_problem: int
    sim_samples: int
    max_iterations: int
    seed: int


def _simfix_problem_counts(unit: _SimFixUnit) -> tuple[str, int, int]:
    """Mutate and debug one problem; returns ``(difficulty, attempted,
    fixed)``."""
    from ..agents.simfix import SimDebugAgent
    from ..dataset.mutate import force_behavior_change, mutate_logic
    import random as _random

    agent = SimDebugAgent(
        max_iterations=unit.max_iterations, sim_samples=unit.sim_samples
    )
    problem = unit.problem
    rng = _random.Random(f"simfix|{unit.seed}|{problem.id}")
    attempted = fixed = 0
    for trial in range(unit.samples_per_problem):
        buggy = mutate_logic(problem.reference, rng)
        if buggy == problem.reference:
            forced = force_behavior_change(problem.reference)
            if forced is None:
                continue
            buggy = forced
        verdict = evaluate_code(buggy, problem, samples=unit.sim_samples)
        if verdict != "sim":
            continue  # accidentally equivalent (or broken) mutant
        run = agent.run(buggy, problem.reference, difficulty=problem.difficulty)
        attempted += 1
        fixed += int(run.success)
    return problem.difficulty, attempted, fixed


def run_simfix_extension(
    problems: ProblemSet,
    samples_per_problem: int = 4,
    sim_samples: int = 16,
    max_iterations: int = 8,
    seed: int = 0,
    progress=None,
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
    on_error: str = "raise",
    ctx: Optional[RunContext] = None,
) -> SimFixExtensionResult:
    """Generate logic-buggy (compiling, functionally wrong) samples and
    let the simulation-debugging agent try to repair them.  ``jobs``
    fans problems across workers; ``on_error="collect"`` isolates
    failed problems instead of aborting; ``ctx`` journals per-problem
    counts for resume."""
    result = SimFixExtensionResult()
    counts: dict[str, list[int]] = {"easy": [0, 0], "hard": [0, 0]}
    if ctx is None:
        ctx = RunContext()
    if runner is None:
        runner = ParallelRunner(jobs=jobs)
    units = [
        _SimFixUnit(
            problem=problem, samples_per_problem=samples_per_problem,
            sim_samples=sim_samples, max_iterations=max_iterations, seed=seed,
        )
        for problem in problems
    ]
    keys = [
        unit_key(
            "simfix", problem=unit.problem.id,
            samples_per_problem=unit.samples_per_problem,
            sim_samples=unit.sim_samples, max_iterations=unit.max_iterations,
            seed=unit.seed,
        )
        for unit in units
    ]
    tick = None
    if progress is not None:
        tick = lambda done, total, unit: progress(done, total)  # noqa: E731
    for outcome in ctx.map(
        runner, _simfix_problem_counts, units, keys=keys, stage="simfix",
        progress=tick, on_error=on_error,
    ):
        if isinstance(outcome, WorkFailure):
            result.failures.append(outcome)
            continue
        difficulty, attempted, fixed = outcome
        counts[difficulty][0] += attempted
        counts[difficulty][1] += fixed

    for difficulty, (attempted, fixed) in counts.items():
        result.by_difficulty[difficulty] = (attempted, fixed)
    return result


# ---------------------------------------------------------------------------
# Table 4 (functional repair on the unified engine)
# ---------------------------------------------------------------------------


@dataclass
class Table4Result:
    """Outcome of the Table-4-style functional-repair workload: logic-
    buggy samples repaired by the full engine stack (trace-diff
    localization -> template BFS -> LLM escalation)."""

    #: bug class -> (attempted, template_fixed, llm_fixed)
    by_class: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    #: Repair templates actually simulated, across all attempts.
    templates_tried: int = 0
    #: Attempts where the trace-diff localizer's suspect lines covered
    #: the actually mutated line, over attempts where it said anything.
    localization_hits: int = 0
    localization_total: int = 0
    #: failed per-problem work units under ``on_error="collect"``.
    failures: list[WorkFailure] = field(default_factory=list)

    def totals(self) -> tuple[int, int, int]:
        """``(attempted, template_fixed, llm_fixed)`` across classes."""
        attempted = template_fixed = llm_fixed = 0
        for a, t, l in self.by_class.values():
            attempted += a
            template_fixed += t
            llm_fixed += l
        return attempted, template_fixed, llm_fixed

    @property
    def fix_rate(self) -> float:
        attempted, template_fixed, llm_fixed = self.totals()
        return (template_fixed + llm_fixed) / attempted if attempted else 0.0

    @property
    def template_fix_rate(self) -> float:
        attempted, template_fixed, _ = self.totals()
        return template_fixed / attempted if attempted else 0.0

    @property
    def localization_accuracy(self) -> float:
        if not self.localization_total:
            return 0.0
        return self.localization_hits / self.localization_total

    def digest(self) -> str:
        """Content digest of the result (same seed -> same digest)."""
        import hashlib
        import json

        payload = {
            "by_class": {
                name: list(counts)
                for name, counts in sorted(self.by_class.items())
            },
            "templates_tried": self.templates_tried,
            "localization": [self.localization_hits, self.localization_total],
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def render(self) -> str:
        rows = []
        for bug_class, (attempted, template_fixed, llm_fixed) in sorted(
            self.by_class.items()
        ):
            fixed = template_fixed + llm_fixed
            rows.append(
                [bug_class, attempted, template_fixed, llm_fixed,
                 f"{fixed / attempted:.2f}" if attempted else "-"]
            )
        attempted, template_fixed, llm_fixed = self.totals()
        rows.append(
            ["TOTAL", attempted, template_fixed, llm_fixed,
             f"{self.fix_rate:.2f}" if attempted else "-"]
        )
        table = render_table(
            ["bug class", "attempted", "template fixes", "LLM fixes",
             "fix rate"],
            rows,
            title="Table 4 analog: functional repair "
            "(trace-diff localization + template BFS + LLM escalation)",
        )
        extra = (
            f"templates simulated: {self.templates_tried}; "
            f"localization accuracy: {self.localization_accuracy:.2f} "
            f"({self.localization_hits}/{self.localization_total})"
        )
        return table + "\n" + extra


@dataclass(frozen=True)
class _Table4Unit:
    """One per-problem Table-4 work unit."""

    problem: Problem
    samples_per_problem: int
    sim_samples: int
    max_iterations: int
    seed: int


def _table4_problem_rows(
    unit: _Table4Unit,
) -> list[tuple[str, bool, str, int, Optional[bool]]]:
    """Mutate and engine-repair one problem; one row per attempted
    trial: ``(bug_class, fixed, fixed_by, templates_tried, loc_hit)``
    where ``loc_hit`` is None when the localizer stayed silent."""
    import random as _random

    from ..dataset.mutate import force_behavior_change, mutate_logic_labeled
    from ..repair import build_functional_engine

    problem = unit.problem
    rng = _random.Random(f"table4|{unit.seed}|{problem.id}")
    rows: list[tuple[str, bool, str, int, Optional[bool]]] = []
    for trial in range(unit.samples_per_problem):
        buggy, bug_class = mutate_logic_labeled(problem.reference, rng)
        if buggy == problem.reference:
            forced = force_behavior_change(problem.reference)
            if forced is None:
                continue
            buggy, bug_class = forced, "forced_inversion"
        verdict = evaluate_code(buggy, problem, samples=unit.sim_samples)
        if verdict != "sim":
            continue  # accidentally equivalent (or broken) mutant
        engine = build_functional_engine(
            problem.reference,
            difficulty=problem.difficulty,
            max_iterations=unit.max_iterations,
            sim_samples=unit.sim_samples,
        )
        # Localization accuracy: the mutant differs from the golden on
        # known lines; a "hit" is the localizer ranking one of them
        # among its suspects.  (Only meaningful on same-shape mutants.)
        loc_hit: Optional[bool] = None
        buggy_lines = buggy.split("\n")
        golden_lines = problem.reference.split("\n")
        if len(buggy_lines) == len(golden_lines) and engine.localizer is not None:
            mutated_lines = {
                index
                for index, (got, want) in enumerate(
                    zip(buggy_lines, golden_lines), start=1
                )
                if got != want
            }
            suspects = engine.localizer.localize(buggy).suspect_lines
            if suspects and mutated_lines:
                loc_hit = bool(mutated_lines & set(suspects))
        outcome = engine.run(buggy)
        rows.append(
            (
                bug_class,
                outcome.success,
                outcome.fixed_by,
                int(outcome.stats.get("templates_tried", 0)),
                loc_hit,
            )
        )
    return rows


def run_table4(
    problems: ProblemSet,
    samples_per_problem: int = 2,
    sim_samples: int = 16,
    max_iterations: int = 24,
    seed: int = 0,
    progress=None,
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
    on_error: str = "raise",
    ctx: Optional[RunContext] = None,
) -> Table4Result:
    """The Table-4-style functional-repair experiment: seed logic bugs
    of known classes into golden references, then repair each with the
    full engine stack -- trace-diff localization feeding a breadth-first
    template search, escalating to the logic-debugging LLM when the
    templates dry up.  Reports fix rate by bug class, template-vs-LLM
    attribution, and localization accuracy.  Deterministic: the same
    seed yields the same :meth:`Table4Result.digest`."""
    result = Table4Result()
    counts: dict[str, list[int]] = {}
    if ctx is None:
        ctx = RunContext()
    if runner is None:
        runner = ParallelRunner(jobs=jobs)
    units = [
        _Table4Unit(
            problem=problem, samples_per_problem=samples_per_problem,
            sim_samples=sim_samples, max_iterations=max_iterations, seed=seed,
        )
        for problem in problems
    ]
    keys = [
        unit_key(
            "table4", problem=unit.problem.id,
            samples_per_problem=unit.samples_per_problem,
            sim_samples=unit.sim_samples, max_iterations=unit.max_iterations,
            seed=unit.seed,
        )
        for unit in units
    ]
    tick = None
    if progress is not None:
        tick = lambda done, total, unit: progress(done, total)  # noqa: E731
    for outcome in ctx.map(
        runner, _table4_problem_rows, units, keys=keys, stage="table4",
        progress=tick, on_error=on_error,
    ):
        if isinstance(outcome, WorkFailure):
            result.failures.append(outcome)
            continue
        for bug_class, fixed, fixed_by, templates_tried, loc_hit in outcome:
            # Journaled outcomes come back as JSON lists, not tuples.
            tally = counts.setdefault(bug_class, [0, 0, 0])
            tally[0] += 1
            if fixed:
                tally[1 if fixed_by == "template" else 2] += 1
            result.templates_tried += templates_tried
            if loc_hit is not None:
                result.localization_total += 1
                result.localization_hits += int(loc_hit)

    for bug_class, (attempted, template_fixed, llm_fixed) in counts.items():
        result.by_class[bug_class] = (attempted, template_fixed, llm_fixed)
    return result


# ---------------------------------------------------------------------------
# Convenience: default dataset
# ---------------------------------------------------------------------------


def default_dataset(
    samples_per_problem: int = 20, target_size: int = 212, seed: int = 0
) -> SyntaxDataset:
    """The VerilogEval-syntax-equivalent dataset used by the benches."""
    from ..dataset.corpus import verilogeval

    return build_syntax_dataset(
        verilogeval(), samples_per_problem=samples_per_problem,
        target_size=target_size, seed=seed,
    )
