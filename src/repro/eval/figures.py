"""Plain-text figure rendering: ASCII bar charts for Fig. 4 (error
composition) and Fig. 7 (iteration histogram)."""

from __future__ import annotations


def bar_chart(
    data: dict[str, float],
    width: int = 40,
    title: str = "",
    fmt: str = "{:.1%}",
) -> str:
    """Horizontal ASCII bars, one per key, scaled to the max value."""
    if not data:
        return title
    peak = max(data.values()) or 1.0
    name_width = max(len(str(k)) for k in data)
    lines = [title] if title else []
    for key, value in data.items():
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{str(key):<{name_width}}  {bar:<{width}} {fmt.format(value)}")
    return "\n".join(lines)


def composition_figure(
    before: dict[str, float], after: dict[str, float], benchmark: str
) -> str:
    """Fig. 4 as two stacked text bars (inner/outer ring equivalent)."""
    return "\n".join([
        f"Figure 4 [{benchmark}] sample composition",
        bar_chart(before, title="  before fixing:"),
        bar_chart(after, title="  after fixing:"),
    ])


def histogram_figure(histogram: dict[int, int], title: str = "Figure 7") -> str:
    """Fig. 7 as an ASCII histogram over iteration counts."""
    total = sum(histogram.values()) or 1
    shares = {
        f"{k} iter": v / total for k, v in sorted(histogram.items())
    }
    return bar_chart(shares, title=f"{title} ({total} fixes)")
