"""Shared experiment plumbing.

* :func:`run_fix_experiment` -- run a fixer configuration over the
  VerilogEval-syntax dataset with n repeated trials (the paper repeats
  each experiment 10 times and reports the average fix rate).  Trials
  are independent, explicitly seeded work units, so they fan out across
  a :class:`repro.runtime.ParallelRunner` (``jobs=``) with bit-identical
  results to the serial path.
* :func:`evaluate_sample` -- classify one raw LLM sample as pass /
  syntax-error / simulation-error using the rule-fixer, the compiler and
  the differential testbench (the paper's evaluation flow).  Both
  evaluators route compilation through the content-addressed compile
  cache, so a problem's golden reference is elaborated once -- not once
  per sample.  Cache misses still compile warm: each fixer's
  :class:`~repro.verilog.pipeline.CompileSession` reuses unchanged
  stage artifacts from the run-wide stage cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Literal, Optional

from ..core.config import RTLFixerConfig
from ..core.fixer import RTLFixer
from ..core.rulefix import rule_fix
from ..dataset.curate import SyntaxDataset
from ..dataset.problem import Problem
from ..llm.base import RepairModel
from ..runtime import (
    ParallelRunner,
    RunContext,
    WorkFailure,
    cached_compile,
    config_digest,
    content_digest,
    unit_key,
)
from ..sim import run_differential
from .metrics import fix_rate

Verdict = Literal["pass", "syntax", "sim"]


@dataclass
class FixExperimentResult:
    """Per-entry fix counts for one configuration."""

    label: str
    trials: int
    #: entry index -> number of trials that fixed it
    fixed_counts: list[int] = field(default_factory=list)
    #: iterations used in each *successful* trial (feeds Fig. 7)
    iterations: list[int] = field(default_factory=list)
    #: failed work units under ``on_error="collect"``, ordered by unit
    #: index (``entry * trials + trial``).  A failed trial counts as
    #: not-fixed in ``rate`` -- failure isolation must not inflate it.
    failures: list[WorkFailure] = field(default_factory=list)

    @property
    def rate(self) -> float:
        return fix_rate((c, self.trials) for c in self.fixed_counts)


@dataclass(frozen=True)
class _FixTrial:
    """One (entry, trial) work unit, reconstructible in a worker.

    ``model`` carries a caller-injected repair model (chaos wrappers,
    custom backends) into the worker; ``None`` means the worker builds
    the config-default model itself.
    """

    config: RTLFixerConfig
    code: str
    description: str
    entry: int
    trial: int
    model: Optional[RepairModel] = None


def _run_fix_trial(unit: _FixTrial) -> tuple[bool, int]:
    """Execute one trial: build the configured fixer with the trial's
    seed and attempt the repair.  Top-level (and config-addressed) so
    process-pool workers can unpickle and run it."""
    seed = unit.config.seed + unit.trial
    model = unit.model
    if model is not None:
        reseed = getattr(model, "with_seed", None)
        if callable(reseed):
            model = reseed(seed)
    fixer = RTLFixer(config=replace(unit.config, seed=seed), model=model)
    outcome = fixer.fix(unit.code, description=unit.description)
    return outcome.success, outcome.iterations


def _fix_trial_keys(
    fixer: RTLFixer, entries: list, repeats: int, stage: str
) -> list[str]:
    """Content-addressed trial ids for one fix experiment.

    Each key is a digest over the stage name, the fixer-config digest
    (result-relevant fields only), the entry's problem id and code
    content address, and the trial's derived seed -- so a resumed run
    with the same configuration addresses the same journal records.
    """
    digest = config_digest(fixer.config)
    return [
        unit_key(
            stage, config=digest, problem=entry.problem_id,
            code=content_digest(entry.code), trial=trial,
            seed=fixer.config.seed + trial,
        )
        for entry in entries
        for trial in range(repeats)
    ]


def run_fix_experiment(
    dataset: SyntaxDataset,
    fixer: RTLFixer,
    repeats: int = 10,
    progress: Optional[Callable[[int, int], None]] = None,
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
    on_error: Optional[str] = None,
    ctx: Optional[RunContext] = None,
    stage: str = "fix",
) -> FixExperimentResult:
    """Run ``fixer`` over every dataset entry ``repeats`` times.

    ``progress`` fires per *trial* as ``progress(done, total)`` (long
    runs surface liveness at the finest granularity).  ``jobs`` (default:
    ``fixer.config.jobs``) fans trials across a
    :class:`~repro.runtime.ParallelRunner`; pass ``runner`` to control
    the backend.  Every trial derives its randomness from the explicit
    ``(seed + trial)`` key, so parallel results are bit-identical to
    serial ones.  A caller-injected ``model`` is carried into parallel
    workers (and re-seeded per trial); a custom ``database`` still only
    takes effect on the serial path.

    ``on_error`` (default: ``fixer.config.on_error``) selects failure
    handling: ``"raise"`` aborts on the first failed trial, ``"collect"``
    records failed trials as :class:`~repro.runtime.WorkFailure` entries
    in ``result.failures`` (counted as not-fixed) and keeps going.

    ``ctx`` (a :class:`~repro.runtime.RunContext`) adds durability: each
    trial is keyed content-addressed (``stage`` x config digest x
    problem x seed), journaled as it completes, and replayed instead of
    re-executed on resume -- the final result is bit-identical to an
    uninterrupted run.  With no ``ctx``, ``fixer.config.run_dir`` /
    ``breaker_threshold`` stand up a local one (durable standalone
    runs): the run directory is pinned by a manifest (stage + config
    digest), so re-running with the same config resumes implicitly and
    a changed config raises :class:`~repro.errors.CheckpointError`
    instead of mixing journals.  Under resume, ``progress`` totals
    cover only the trials that still execute.
    """
    if on_error is None:
        on_error = fixer.config.on_error
    local_state = None
    if ctx is None:
        breaker = None
        if fixer.config.breaker_threshold > 0:
            from ..runtime import CircuitBreaker

            breaker = CircuitBreaker(fixer.config.breaker_threshold)
        if fixer.config.run_dir is not None:
            from ..runtime import RunState

            local_state = RunState(fixer.config.run_dir)
            try:
                # Pin the run's identity just like the CLI path does:
                # reusing the directory with a changed result-relevant
                # config fails fast instead of silently appending
                # mismatched trials to the same journal.  A matching
                # config resumes implicitly (trial keys are content-
                # addressed, so replay is bit-identical by construction).
                local_state.ensure_manifest(
                    {
                        "kind": "fix_experiment",
                        "stage": stage,
                        "config": config_digest(fixer.config),
                    },
                    resume=True,
                )
            except BaseException:
                local_state.close()
                raise
        ctx = RunContext(state=local_state, breaker=breaker)
    result = FixExperimentResult(label=fixer.config.label(), trials=repeats)
    entries = list(dataset)
    if runner is None:
        runner = ParallelRunner(jobs=fixer.config.jobs if jobs is None else jobs)

    # getattr: duck-typed fixer stands-ins (tests) may lack the property,
    # and the serial path below never needs it.
    injected = getattr(fixer, "injected_model", None)
    units = [
        _FixTrial(
            config=fixer.config, code=entry.code, description=entry.description,
            entry=index, trial=trial, model=injected,
        )
        for index, entry in enumerate(entries)
        for trial in range(repeats)
    ]
    keys = None
    if ctx.state is not None:
        keys = _fix_trial_keys(fixer, entries, repeats, stage)

    if runner.is_serial:
        # The in-process path runs through the *same* fixer object (a
        # caller-injected model or database is honoured directly).
        def run_unit(unit: _FixTrial) -> tuple[bool, int]:
            outcome = fixer.with_seed(fixer.config.seed + unit.trial).fix(
                unit.code, description=unit.description
            )
            return outcome.success, outcome.iterations

        fn = run_unit
    else:
        fn = _run_fix_trial
    tick = None
    if progress is not None:
        tick = lambda done, total, unit: progress(done, total)  # noqa: E731
    try:
        outcomes = ctx.map(
            runner, fn, units, keys=keys, stage=stage, on_error=on_error,
            progress=tick,
        )
    finally:
        if local_state is not None:
            local_state.close()

    counts = [0] * len(entries)
    for unit, outcome in zip(units, outcomes):
        if isinstance(outcome, WorkFailure):
            result.failures.append(outcome)
            continue
        success, iterations = outcome
        if success:
            counts[unit.entry] += 1
            result.iterations.append(iterations)
    result.fixed_counts = counts
    return result


def evaluate_sample(
    raw: str, problem: Problem, samples: int = 32, sim_limits=None
) -> Verdict:
    """Judge one raw LLM sample: does it compile, and does it match the
    golden model in differential simulation?"""
    return evaluate_code(
        rule_fix(raw).code, problem, samples=samples, sim_limits=sim_limits
    )


def evaluate_code(
    code: str, problem: Problem, samples: int = 32, sim_limits=None
) -> Verdict:
    """Like :func:`evaluate_sample` but for already-rule-fixed code.

    Simulation runs inside the sandbox (``sim_limits``, default the
    ambient budgets): a candidate that exhausts its budgets or crashes
    the simulator is classified ``"sim"`` -- a typed not-equivalent
    verdict, never an exception out of the evaluator."""
    result = cached_compile(code)
    if not result.ok or result.elaborated is None:
        return "syntax"
    reference = cached_compile(problem.reference).elaborated
    diff = run_differential(
        result.elaborated, reference, samples=samples, sim_limits=sim_limits
    )
    return "pass" if diff.passed else "sim"
