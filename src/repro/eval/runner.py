"""Shared experiment plumbing.

* :func:`run_fix_experiment` -- run a fixer configuration over the
  VerilogEval-syntax dataset with n repeated trials (the paper repeats
  each experiment 10 times and reports the average fix rate).
* :func:`evaluate_sample` -- classify one raw LLM sample as pass /
  syntax-error / simulation-error using the rule-fixer, the compiler and
  the differential testbench (the paper's evaluation flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal, Optional

from ..core.fixer import RTLFixer
from ..core.rulefix import rule_fix
from ..dataset.curate import SyntaxDataset
from ..dataset.problem import Problem
from ..diagnostics import compile_source
from ..sim import run_differential
from .metrics import fix_rate

Verdict = Literal["pass", "syntax", "sim"]


@dataclass
class FixExperimentResult:
    """Per-entry fix counts for one configuration."""

    label: str
    trials: int
    #: entry index -> number of trials that fixed it
    fixed_counts: list[int] = field(default_factory=list)
    #: iterations used in each *successful* trial (feeds Fig. 7)
    iterations: list[int] = field(default_factory=list)

    @property
    def rate(self) -> float:
        return fix_rate((c, self.trials) for c in self.fixed_counts)


def run_fix_experiment(
    dataset: SyntaxDataset,
    fixer: RTLFixer,
    repeats: int = 10,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FixExperimentResult:
    """Run ``fixer`` over every dataset entry ``repeats`` times."""
    result = FixExperimentResult(label=fixer.config.label(), trials=repeats)
    total = len(dataset)
    for index, entry in enumerate(dataset):
        fixed = 0
        for trial in range(repeats):
            outcome = fixer.with_seed(fixer.config.seed + trial).fix(
                entry.code, description=entry.description
            )
            if outcome.success:
                fixed += 1
                result.iterations.append(outcome.iterations)
        result.fixed_counts.append(fixed)
        if progress is not None:
            progress(index + 1, total)
    return result


def evaluate_sample(raw: str, problem: Problem, samples: int = 32) -> Verdict:
    """Judge one raw LLM sample: does it compile, and does it match the
    golden model in differential simulation?"""
    fixed = rule_fix(raw)
    result = compile_source(fixed.code)
    if not result.ok or result.elaborated is None:
        return "syntax"
    reference = compile_source(problem.reference).elaborated
    diff = run_differential(result.elaborated, reference, samples=samples)
    return "pass" if diff.passed else "sim"


def evaluate_code(code: str, problem: Problem, samples: int = 32) -> Verdict:
    """Like :func:`evaluate_sample` but for already-rule-fixed code."""
    result = compile_source(code)
    if not result.ok or result.elaborated is None:
        return "syntax"
    reference = compile_source(problem.reference).elaborated
    diff = run_differential(result.elaborated, reference, samples=samples)
    return "pass" if diff.passed else "sim"
