"""Shared experiment plumbing.

* :func:`run_fix_experiment` -- run a fixer configuration over the
  VerilogEval-syntax dataset with n repeated trials (the paper repeats
  each experiment 10 times and reports the average fix rate).  Trials
  are independent, explicitly seeded work units, so they fan out across
  a :class:`repro.runtime.ParallelRunner` (``jobs=``) with bit-identical
  results to the serial path.
* :func:`evaluate_sample` -- classify one raw LLM sample as pass /
  syntax-error / simulation-error using the rule-fixer, the compiler and
  the differential testbench (the paper's evaluation flow).  Both
  evaluators route compilation through the content-addressed compile
  cache, so a problem's golden reference is elaborated once -- not once
  per sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Literal, Optional

from ..core.config import RTLFixerConfig
from ..core.fixer import RTLFixer
from ..core.rulefix import rule_fix
from ..dataset.curate import SyntaxDataset
from ..dataset.problem import Problem
from ..llm.base import RepairModel
from ..runtime import ParallelRunner, WorkFailure, cached_compile, isolable
from ..sim import run_differential
from .metrics import fix_rate

Verdict = Literal["pass", "syntax", "sim"]


@dataclass
class FixExperimentResult:
    """Per-entry fix counts for one configuration."""

    label: str
    trials: int
    #: entry index -> number of trials that fixed it
    fixed_counts: list[int] = field(default_factory=list)
    #: iterations used in each *successful* trial (feeds Fig. 7)
    iterations: list[int] = field(default_factory=list)
    #: failed work units under ``on_error="collect"``, ordered by unit
    #: index (``entry * trials + trial``).  A failed trial counts as
    #: not-fixed in ``rate`` -- failure isolation must not inflate it.
    failures: list[WorkFailure] = field(default_factory=list)

    @property
    def rate(self) -> float:
        return fix_rate((c, self.trials) for c in self.fixed_counts)


@dataclass(frozen=True)
class _FixTrial:
    """One (entry, trial) work unit, reconstructible in a worker.

    ``model`` carries a caller-injected repair model (chaos wrappers,
    custom backends) into the worker; ``None`` means the worker builds
    the config-default model itself.
    """

    config: RTLFixerConfig
    code: str
    description: str
    entry: int
    trial: int
    model: Optional[RepairModel] = None


def _run_fix_trial(unit: _FixTrial) -> tuple[bool, int]:
    """Execute one trial: build the configured fixer with the trial's
    seed and attempt the repair.  Top-level (and config-addressed) so
    process-pool workers can unpickle and run it."""
    seed = unit.config.seed + unit.trial
    model = unit.model
    if model is not None:
        reseed = getattr(model, "with_seed", None)
        if callable(reseed):
            model = reseed(seed)
    fixer = RTLFixer(config=replace(unit.config, seed=seed), model=model)
    outcome = fixer.fix(unit.code, description=unit.description)
    return outcome.success, outcome.iterations


def run_fix_experiment(
    dataset: SyntaxDataset,
    fixer: RTLFixer,
    repeats: int = 10,
    progress: Optional[Callable[[int, int], None]] = None,
    jobs: Optional[int] = None,
    runner: Optional[ParallelRunner] = None,
    on_error: Optional[str] = None,
) -> FixExperimentResult:
    """Run ``fixer`` over every dataset entry ``repeats`` times.

    ``progress`` fires per *trial* as ``progress(done, total)`` (long
    runs surface liveness at the finest granularity).  ``jobs`` (default:
    ``fixer.config.jobs``) fans trials across a
    :class:`~repro.runtime.ParallelRunner`; pass ``runner`` to control
    the backend.  Every trial derives its randomness from the explicit
    ``(seed + trial)`` key, so parallel results are bit-identical to
    serial ones.  A caller-injected ``model`` is carried into parallel
    workers (and re-seeded per trial); a custom ``database`` still only
    takes effect on the serial path.

    ``on_error`` (default: ``fixer.config.on_error``) selects failure
    handling: ``"raise"`` aborts on the first failed trial, ``"collect"``
    records failed trials as :class:`~repro.runtime.WorkFailure` entries
    in ``result.failures`` (counted as not-fixed) and keeps going.
    """
    if on_error is None:
        on_error = fixer.config.on_error
    result = FixExperimentResult(label=fixer.config.label(), trials=repeats)
    entries = list(dataset)
    if runner is None:
        runner = ParallelRunner(jobs=fixer.config.jobs if jobs is None else jobs)

    if runner.is_serial:
        done = 0
        total = len(entries) * repeats
        for index, entry in enumerate(entries):
            fixed = 0
            for trial in range(repeats):
                try:
                    outcome = fixer.with_seed(fixer.config.seed + trial).fix(
                        entry.code, description=entry.description
                    )
                except BaseException as exc:
                    # Ctrl-C / SystemExit must abort the run, never be
                    # filed away as a not-fixed trial (see isolable()).
                    if on_error != "collect" or not isolable(exc):
                        raise
                    result.failures.append(
                        WorkFailure.from_exception(index * repeats + trial, entry, exc)
                    )
                    outcome = None
                if outcome is not None and outcome.success:
                    fixed += 1
                    result.iterations.append(outcome.iterations)
                done += 1
                if progress is not None:
                    progress(done, total)
            result.fixed_counts.append(fixed)
        return result

    units = [
        _FixTrial(
            config=fixer.config, code=entry.code, description=entry.description,
            entry=index, trial=trial, model=fixer.injected_model,
        )
        for index, entry in enumerate(entries)
        for trial in range(repeats)
    ]
    tick = None
    if progress is not None:
        tick = lambda done, total, unit: progress(done, total)  # noqa: E731
    outcomes = runner.map(_run_fix_trial, units, progress=tick, on_error=on_error)

    counts = [0] * len(entries)
    for unit, outcome in zip(units, outcomes):
        if isinstance(outcome, WorkFailure):
            result.failures.append(outcome)
            continue
        success, iterations = outcome
        if success:
            counts[unit.entry] += 1
            result.iterations.append(iterations)
    result.fixed_counts = counts
    return result


def evaluate_sample(raw: str, problem: Problem, samples: int = 32) -> Verdict:
    """Judge one raw LLM sample: does it compile, and does it match the
    golden model in differential simulation?"""
    return evaluate_code(rule_fix(raw).code, problem, samples=samples)


def evaluate_code(code: str, problem: Problem, samples: int = 32) -> Verdict:
    """Like :func:`evaluate_sample` but for already-rule-fixed code."""
    result = cached_compile(code)
    if not result.ok or result.elaborated is None:
        return "syntax"
    reference = cached_compile(problem.reference).elaborated
    diff = run_differential(result.elaborated, reference, samples=samples)
    return "pass" if diff.passed else "sim"
