"""One-call reproduction report.

:func:`run_full_report` executes every experiment (Tables 1-3, Figures
4-7, the §5 extension) at a configurable scale and produces a
paper-vs-measured report as structured data, JSON, or markdown --
convenient for regenerating EXPERIMENTS.md after changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..dataset.corpus import verilogeval
from ..dataset.curate import SyntaxDataset, build_syntax_dataset
from ..dataset.rtllm import rtllm
from ..runtime import CompileCache, use_compile_cache
from .experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    figure5_logs,
    figure6_failure_case,
    run_figure7,
    run_simfix_extension,
    run_table1,
    run_table2,
    run_table3,
)
from .figures import composition_figure, histogram_figure


@dataclass
class ReportScale:
    """How big to run everything; defaults take a few minutes."""

    dataset_size: int = 212
    dataset_samples_per_problem: int = 20
    repeats: int = 3
    n_samples: int = 10
    sim_samples: int = 24
    include_gpt4: bool = True
    simfix_samples_per_problem: int = 2


@dataclass
class FullReport:
    scale: ReportScale
    table1: dict = field(default_factory=dict)
    table2: dict = field(default_factory=dict)
    table3: dict = field(default_factory=dict)
    figure4: dict = field(default_factory=dict)
    figure7: dict = field(default_factory=dict)
    figure5: dict = field(default_factory=dict)
    figure6: dict = field(default_factory=dict)
    simfix: dict = field(default_factory=dict)
    #: Compile-cache counters for the whole run (hits, misses,
    #: evictions, compiles avoided) -- the runtime's observability.
    cache: dict = field(default_factory=dict)
    #: stage -> number of failed work units (nonzero only under
    #: ``on_error="collect"``; an aborting run never gets here).
    failures: dict = field(default_factory=dict)
    rendered: dict = field(default_factory=dict)

    @property
    def failed_units(self) -> int:
        """Total failed work units across every experiment stage."""
        return sum(self.failures.values())

    def to_json(self) -> str:
        payload = {
            "scale": vars(self.scale),
            "table1": {" ".join(map(str, k)): v for k, v in self.table1.items()},
            "table2": self.table2,
            "table3": self.table3,
            "figure4": self.figure4,
            "figure7": {str(k): v for k, v in self.figure7.items()},
            "figure6": self.figure6,
            "simfix": self.simfix,
            "cache": self.cache,
            "failures": self.failures,
        }
        return json.dumps(payload, indent=2)

    def to_markdown(self) -> str:
        sections = ["# Reproduction report\n"]
        for name in ("table1", "table2", "table3", "figure4", "figure7",
                     "figure6", "simfix", "cache", "failures"):
            if name in self.rendered:
                sections.append(f"## {name}\n\n```\n{self.rendered[name]}\n```\n")
        return "\n".join(sections)


def run_full_report(
    scale: Optional[ReportScale] = None,
    dataset: Optional[SyntaxDataset] = None,
    progress=None,
    jobs: Optional[int] = None,
    on_error: str = "raise",
) -> FullReport:
    """Run every experiment and collect a paper-vs-measured report.

    The whole run executes under a fresh content-addressed compile cache
    (its hit/miss/eviction counters land in ``report.cache``); ``jobs``
    fans every driver's work units across that many workers (0 = all
    CPUs) without changing any result.  ``on_error="collect"`` turns on
    failure isolation: failed work units are recorded per stage in
    ``report.failures`` instead of aborting the whole report.
    """
    scale = scale or ReportScale()
    cache = CompileCache()
    with use_compile_cache(cache):
        report = _run_experiments(scale, dataset, progress, jobs, on_error)
    report.cache = cache.stats.as_dict()
    report.rendered["cache"] = "\n".join(
        f"{key}: {value}" for key, value in report.cache.items()
    )
    report.rendered["failures"] = "\n".join(
        f"{stage}: {count} failed work unit(s)"
        for stage, count in report.failures.items()
    ) + f"\ntotal: {report.failed_units}"
    return report


def _run_experiments(
    scale: ReportScale,
    dataset: Optional[SyntaxDataset],
    progress,
    jobs: Optional[int],
    on_error: str,
) -> FullReport:
    """The report body, executed under the report's compile cache."""
    report = FullReport(scale=scale)

    def tick(stage: str) -> None:
        if progress is not None:
            progress(stage)

    if dataset is None:
        tick("building VerilogEval-syntax dataset")
        dataset = build_syntax_dataset(
            verilogeval(),
            samples_per_problem=scale.dataset_samples_per_problem,
            target_size=scale.dataset_size,
        )

    tick("Table 1")
    t1 = run_table1(
        dataset, repeats=scale.repeats, include_gpt4=scale.include_gpt4, jobs=jobs,
        on_error=on_error,
    )
    report.failures["table1"] = t1.failed_units
    report.table1 = {
        key: {"measured": rate, "paper": PAPER_TABLE1.get(key)}
        for key, rate in t1.rates.items()
    }
    report.rendered["table1"] = t1.render()

    tick("Table 2 / Figure 4")
    t2 = run_table2(
        verilogeval(), n_samples=scale.n_samples, sim_samples=scale.sim_samples,
        jobs=jobs, on_error=on_error,
    )
    report.failures["table2"] = len(t2.failures)
    report.table2 = {
        f"{bench}/{subset}": {
            "pass@1": t2.pass_at(bench, subset, 1, False),
            "pass@1_fixed": t2.pass_at(bench, subset, 1, True),
            "pass@5": t2.pass_at(bench, subset, min(5, scale.n_samples), False),
            "pass@5_fixed": t2.pass_at(bench, subset, min(5, scale.n_samples), True),
            "paper": PAPER_TABLE2.get((bench, subset)),
        }
        for bench in ("human", "machine")
        for subset in ("all", "easy", "hard")
    }
    report.rendered["table2"] = t2.render()
    report.figure4 = {
        bench: {
            "before": t2.error_composition(bench, fixed=False),
            "after": t2.error_composition(bench, fixed=True),
            "syntax_share_of_failures": t2.syntax_share_of_failures(bench),
        }
        for bench in ("human", "machine")
    }
    report.rendered["figure4"] = "\n\n".join(
        composition_figure(
            report.figure4[bench]["before"], report.figure4[bench]["after"], bench
        )
        for bench in ("human", "machine")
    )

    tick("Table 3")
    t3 = run_table3(
        rtllm(), n_samples=scale.n_samples, sim_samples=scale.sim_samples, jobs=jobs,
        on_error=on_error,
    )
    report.failures["table3"] = len(t3.failures)
    report.table3 = {
        "syntax_before": t3.syntax_before, "syntax_after": t3.syntax_after,
        "pass1_before": t3.pass1_before, "pass1_after": t3.pass1_after,
        "paper": PAPER_TABLE3,
    }
    report.rendered["table3"] = t3.render()

    tick("Figure 7")
    f7 = run_figure7(
        dataset, repeats=max(1, scale.repeats // 2), jobs=jobs, on_error=on_error
    )
    report.failures["figure7"] = len(f7.failures)
    report.figure7 = dict(f7.histogram)
    report.rendered["figure7"] = histogram_figure(f7.histogram)

    tick("Figures 5/6")
    report.figure5 = figure5_logs()
    report.figure6 = figure6_failure_case(repeats=max(4, scale.repeats))
    report.rendered["figure6"] = (
        report.figure6["log"] + f"\nfix rate: {report.figure6['fix_rate']:.2f}"
    )

    tick("§5 extension")
    simfix = run_simfix_extension(
        verilogeval(),
        samples_per_problem=scale.simfix_samples_per_problem,
        sim_samples=scale.sim_samples,
        jobs=jobs,
        on_error=on_error,
    )
    report.failures["simfix"] = len(simfix.failures)
    report.simfix = {
        difficulty: {"attempted": attempted, "fixed": fixed}
        for difficulty, (attempted, fixed) in simfix.by_difficulty.items()
    }
    report.rendered["simfix"] = simfix.render()
    return report
