"""One-call reproduction report.

:func:`run_full_report` executes every experiment (Tables 1-3, Figures
4-7, the §5 extension) at a configurable scale and produces a
paper-vs-measured report as structured data, JSON, or markdown --
convenient for regenerating EXPERIMENTS.md after changes.

With ``run_dir=`` the run is *durable*: every completed work unit is
journaled the moment it finishes, a checkpoint manifest pins the run's
scale, and ``resume=True`` replays journaled trials so a killed run
re-executes only the remainder -- producing a report JSON byte-identical
to an uninterrupted run (``to_json`` deliberately excludes volatile
runtime telemetry like compile-cache counters for exactly this reason).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..dataset.corpus import verilogeval
from ..dataset.curate import SyntaxDataset, build_syntax_dataset
from ..dataset.rtllm import rtllm
from ..llm.pool import RoutingSpec, get_default_llm_routing, use_llm_routing
from ..runtime import (
    CircuitBreaker,
    CompileCache,
    RunContext,
    RunState,
    StageCache,
    TokenCounter,
    use_compile_cache,
    use_stage_cache,
    use_token_counter,
)
from ..sim.engine import get_default_sim_engine
from ..sim.sandbox import SandboxStats, use_sandbox_stats
from ..sim.verdict import VerdictCache, use_verdict_cache
from .experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    figure5_logs,
    figure6_failure_case,
    run_figure7,
    run_simfix_extension,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from .figures import composition_figure, histogram_figure


@dataclass
class ReportScale:
    """How big to run everything; defaults take a few minutes."""

    dataset_size: int = 212
    dataset_samples_per_problem: int = 20
    repeats: int = 3
    n_samples: int = 10
    sim_samples: int = 24
    include_gpt4: bool = True
    simfix_samples_per_problem: int = 2
    table4_samples_per_problem: int = 2


@dataclass
class FullReport:
    scale: ReportScale
    table1: dict = field(default_factory=dict)
    table2: dict = field(default_factory=dict)
    table3: dict = field(default_factory=dict)
    figure4: dict = field(default_factory=dict)
    figure7: dict = field(default_factory=dict)
    figure5: dict = field(default_factory=dict)
    figure6: dict = field(default_factory=dict)
    simfix: dict = field(default_factory=dict)
    #: The Table-4 functional-repair workload (fix rate by bug class,
    #: template-vs-LLM attribution, localization accuracy, digest).
    table4: dict = field(default_factory=dict)
    #: Compile-cache counters for the whole run (hits, misses,
    #: evictions, compiles avoided) -- the runtime's observability.
    cache: dict = field(default_factory=dict)
    #: stage -> number of failed work units (nonzero only under
    #: ``on_error="collect"``; an aborting run never gets here).
    failures: dict = field(default_factory=dict)
    #: Circuit-breaker snapshot (state, trips, skipped trials) when a
    #: breaker was armed; empty otherwise.  Runtime telemetry -- not
    #: part of ``to_json`` (it would differ between an interrupted and
    #: an uninterrupted run).
    breaker: dict = field(default_factory=dict)
    #: Replay/execute telemetry for durable runs (how many work units
    #: were served from the journal vs dispatched).  Runtime telemetry
    #: -- excluded from ``to_json`` like ``cache``/``breaker``.
    resume: dict = field(default_factory=dict)
    #: Per-stage pipeline counters (stage hits/misses, stage seconds,
    #: incremental-lex and parse-segment reuse) from the run's shared
    #: :class:`~repro.runtime.StageCache`.  Runtime telemetry --
    #: excluded from ``to_json`` like ``cache``/``breaker``/``resume``.
    pipeline: dict = field(default_factory=dict)
    #: Simulation telemetry: the active engine, the run's verdict-cache
    #: counters (hits = whole testbench runs skipped), and the sandbox
    #: counters (limit/crashed verdicts, watchdog and mid-simulation
    #: deadline fires, chaos faults).  Runtime telemetry -- excluded
    #: from ``to_json`` like the rest.
    sim: dict = field(default_factory=dict)
    #: LLM pool telemetry (routing description plus the run's
    #: TokenCounter ledger: per-backend tokens, cost, throttles,
    #: hedges, failovers, escalations).  Populated only when the run
    #: was routed through a pool.  Runtime telemetry -- excluded from
    #: ``to_json``, so a pooled run over simulated tiers produces a
    #: report byte-identical to the direct run.
    llm: dict = field(default_factory=dict)
    #: Repair-service telemetry (admission/shed/outcome counters from
    #: the ambient :class:`~repro.service.ServiceStats` ledger), present
    #: only when a report runs under a live service scope.  Runtime
    #: telemetry -- excluded from ``to_json`` like ``llm``/``sim``.
    service: dict = field(default_factory=dict)
    rendered: dict = field(default_factory=dict)

    @property
    def failed_units(self) -> int:
        """Total failed work units across every experiment stage."""
        return sum(self.failures.values())

    @property
    def breaker_tripped(self) -> bool:
        """Whether the circuit breaker tripped at least once this run."""
        return bool(self.breaker.get("trips", 0))

    def to_json(self) -> str:
        """Deterministic report JSON.

        Only experiment *results* are included.  Runtime telemetry
        (``cache``, ``pipeline``, ``breaker``, ``resume``) is
        deliberately excluded so a resumed run's report is
        byte-identical to an uninterrupted one -- telemetry lives on
        the report object and in the markdown.
        """
        payload = {
            "scale": vars(self.scale),
            "table1": {" ".join(map(str, k)): v for k, v in self.table1.items()},
            "table2": self.table2,
            "table3": self.table3,
            "figure4": self.figure4,
            "figure7": {str(k): v for k, v in self.figure7.items()},
            "figure6": self.figure6,
            "simfix": self.simfix,
            "table4": self.table4,
            "failures": self.failures,
        }
        return json.dumps(payload, indent=2)

    def to_markdown(self) -> str:
        sections = ["# Reproduction report\n"]
        for name in ("table1", "table2", "table3", "figure4", "figure7",
                     "figure6", "simfix", "table4", "cache", "pipeline", "sim",
                     "llm", "service", "resume", "breaker", "failures"):
            if name in self.rendered:
                sections.append(f"## {name}\n\n```\n{self.rendered[name]}\n```\n")
        return "\n".join(sections)


def report_manifest(scale: ReportScale, llm: Optional[dict] = None) -> dict:
    """The checkpoint manifest pinning a full-report run's identity.

    Only result-relevant parameters participate: the scale, plus -- when
    the run routes through an LLM pool -- the pool spec and escalation
    policy (they can change which model answers, so a pooled run must
    not resume a direct run's journal).  Execution knobs (``jobs``,
    ``on_error``, breaker threshold, hedging/limiter settings) are free
    to change between a run and its resume; omitting the ``llm`` key
    when no pool is configured keeps old manifests valid.
    """
    manifest = {"kind": "full_report", "scale": vars(scale)}
    if llm:
        manifest["llm"] = llm
    return manifest


def run_full_report(
    scale: Optional[ReportScale] = None,
    dataset: Optional[SyntaxDataset] = None,
    progress=None,
    jobs: Optional[int] = None,
    on_error: str = "raise",
    run_dir: Optional[str] = None,
    resume: bool = False,
    breaker_threshold: int = 0,
    should_stop: Optional[Callable[[], bool]] = None,
    llm_pool: Optional[str] = None,
    llm_escalate_after: int = 0,
    llm_hedge: float = 0.0,
) -> FullReport:
    """Run every experiment and collect a paper-vs-measured report.

    The whole run executes under a fresh content-addressed compile cache
    (its hit/miss/eviction counters land in ``report.cache``) and a
    fresh per-stage pipeline cache (its stage counters and timings land
    in ``report.pipeline``); ``jobs``
    fans every driver's work units across that many workers (0 = all
    CPUs) without changing any result.  ``on_error="collect"`` turns on
    failure isolation: failed work units are recorded per stage in
    ``report.failures`` instead of aborting the whole report.

    ``run_dir`` makes the run durable: a :class:`~repro.runtime.RunState`
    journals every completed work unit and ``resume=True`` replays the
    journal so only the remainder executes -- the final report (written
    atomically to ``run_dir/report.json``) is byte-identical to an
    uninterrupted run.  ``breaker_threshold`` arms a circuit breaker
    (requires ``on_error="collect"``); ``should_stop`` is polled between
    dispatches for graceful shutdown and raises
    :class:`~repro.errors.RunInterrupted` once in-flight work drains.

    ``llm_pool`` routes every model call through a backend pool
    (:mod:`repro.llm.pool`): the spec string is an escalation ladder
    (e.g. ``"cheap=gpt-3.5-sim,strong=gpt-4-sim"``),
    ``llm_escalate_after`` climbs a rung after that many failed agent
    iterations, and ``llm_hedge`` duplicates a seeded fraction of calls
    to the next rung for tail latency.  Token/cost accounting for the
    whole run lands in ``report.llm``; a pool of simulated tiers with
    escalation disabled produces a report byte-identical to the direct
    run.
    """
    scale = scale or ReportScale()
    if breaker_threshold > 0 and on_error != "collect":
        raise ValueError(
            "breaker_threshold requires on_error='collect' (skipped "
            "trials are collected records, not exceptions)"
        )
    breaker = CircuitBreaker(breaker_threshold) if breaker_threshold > 0 else None
    routing: Optional[RoutingSpec] = None
    if llm_pool:
        routing = RoutingSpec.parse(
            llm_pool, escalate_after=llm_escalate_after, hedge_rate=llm_hedge
        )
    else:
        # Respect a caller-scoped use_llm_routing(...) ambient spec
        # (how offline suites inject chaos-wrapped pools).
        routing = get_default_llm_routing()
    llm_manifest: Optional[dict] = None
    if routing is not None:
        # Only the result-relevant routing bits: the ladder and the
        # escalation policy.  Hedging and limiter settings are timing-
        # only and may change between a run and its resume.
        llm_manifest = {
            "pool": ",".join(f"{m.name}={m.tier}" for m in routing.members),
            "escalate_after": routing.escalate_after,
        }
    state: Optional[RunState] = None
    if run_dir is not None:
        state = RunState(run_dir)
        state.ensure_manifest(report_manifest(scale, llm=llm_manifest), resume=resume)
    ctx = RunContext(state=state, breaker=breaker, should_stop=should_stop)
    cache = CompileCache()
    stage_cache = StageCache()
    verdict_cache = VerdictCache()
    sandbox_stats = SandboxStats()
    llm_counter = TokenCounter()
    try:
        with use_compile_cache(cache), use_stage_cache(stage_cache), \
                use_verdict_cache(verdict_cache), use_llm_routing(routing), \
                use_sandbox_stats(sandbox_stats), \
                use_token_counter(llm_counter):
            report = _run_experiments(scale, dataset, progress, jobs, on_error, ctx)
        report.cache = cache.stats.as_dict()
        report.pipeline = stage_cache.stats.as_dict()
        report.sim = {
            "engine": get_default_sim_engine(),
            **verdict_cache.stats.as_dict(),
            **sandbox_stats.as_dict(),
        }
        report.resume = ctx.stats()
        report.rendered["cache"] = "\n".join(
            f"{key}: {value}" for key, value in report.cache.items()
        )
        report.rendered["pipeline"] = "\n".join(
            f"{key}: {value}" for key, value in report.pipeline.items()
        )
        report.rendered["sim"] = "\n".join(
            f"{key}: {value}" for key, value in report.sim.items()
        )
        if routing is not None:
            ledger = llm_counter.as_dict()
            report.llm = {"routing": routing.describe(), **ledger}
            llm_lines = [f"routing: {routing.describe()}"]
            for backend, usage in ledger["backends"].items():
                llm_lines.append(
                    f"{backend}: "
                    + ", ".join(f"{key}={value}" for key, value in usage.items())
                )
            llm_lines.extend(
                f"{key}: {value}"
                for key, value in ledger.items()
                if key != "backends"
            )
            report.rendered["llm"] = "\n".join(llm_lines)
        # The ambient service ledger, when this report runs under a
        # live repair service (lazy import: the report layer must not
        # pull the service stack in for plain batch runs).
        from ..service.scheduler import get_active_service_stats

        service_stats = get_active_service_stats()
        if service_stats is not None:
            report.service = service_stats.as_dict()
            report.rendered["service"] = "\n".join(
                f"{key}: {value}"
                for key, value in report.service.items()
                if key != "tenants"
            )
        report.rendered["resume"] = "\n".join(
            f"{key}: {value}" for key, value in report.resume.items()
        )
        if breaker is not None:
            report.breaker = breaker.snapshot()
            report.rendered["breaker"] = "\n".join(
                f"{key}: {value}" for key, value in report.breaker.items()
            )
        report.rendered["failures"] = "\n".join(
            f"{stage}: {count} failed work unit(s)"
            for stage, count in report.failures.items()
        ) + f"\ntotal: {report.failed_units}"
        if state is not None:
            state.write_report(report.to_json())
        return report
    finally:
        if state is not None:
            state.close()


def _run_experiments(
    scale: ReportScale,
    dataset: Optional[SyntaxDataset],
    progress,
    jobs: Optional[int],
    on_error: str,
    ctx: RunContext,
) -> FullReport:
    """The report body, executed under the report's compile cache."""
    report = FullReport(scale=scale)

    def tick(stage: str) -> None:
        if progress is not None:
            progress(stage)

    if dataset is None:
        tick("building VerilogEval-syntax dataset")
        dataset = build_syntax_dataset(
            verilogeval(),
            samples_per_problem=scale.dataset_samples_per_problem,
            target_size=scale.dataset_size,
        )

    tick("Table 1")
    t1 = run_table1(
        dataset, repeats=scale.repeats, include_gpt4=scale.include_gpt4, jobs=jobs,
        on_error=on_error, ctx=ctx,
    )
    report.failures["table1"] = t1.failed_units
    report.table1 = {
        key: {"measured": rate, "paper": PAPER_TABLE1.get(key)}
        for key, rate in t1.rates.items()
    }
    report.rendered["table1"] = t1.render()

    tick("Table 2 / Figure 4")
    t2 = run_table2(
        verilogeval(), n_samples=scale.n_samples, sim_samples=scale.sim_samples,
        jobs=jobs, on_error=on_error, ctx=ctx,
    )
    report.failures["table2"] = len(t2.failures)
    report.table2 = {
        f"{bench}/{subset}": {
            "pass@1": t2.pass_at(bench, subset, 1, False),
            "pass@1_fixed": t2.pass_at(bench, subset, 1, True),
            "pass@5": t2.pass_at(bench, subset, min(5, scale.n_samples), False),
            "pass@5_fixed": t2.pass_at(bench, subset, min(5, scale.n_samples), True),
            "paper": PAPER_TABLE2.get((bench, subset)),
        }
        for bench in ("human", "machine")
        for subset in ("all", "easy", "hard")
    }
    report.rendered["table2"] = t2.render()
    report.figure4 = {
        bench: {
            "before": t2.error_composition(bench, fixed=False),
            "after": t2.error_composition(bench, fixed=True),
            "syntax_share_of_failures": t2.syntax_share_of_failures(bench),
        }
        for bench in ("human", "machine")
    }
    report.rendered["figure4"] = "\n\n".join(
        composition_figure(
            report.figure4[bench]["before"], report.figure4[bench]["after"], bench
        )
        for bench in ("human", "machine")
    )

    tick("Table 3")
    t3 = run_table3(
        rtllm(), n_samples=scale.n_samples, sim_samples=scale.sim_samples, jobs=jobs,
        on_error=on_error, ctx=ctx,
    )
    report.failures["table3"] = len(t3.failures)
    report.table3 = {
        "syntax_before": t3.syntax_before, "syntax_after": t3.syntax_after,
        "pass1_before": t3.pass1_before, "pass1_after": t3.pass1_after,
        "paper": PAPER_TABLE3,
    }
    report.rendered["table3"] = t3.render()

    tick("Figure 7")
    f7 = run_figure7(
        dataset, repeats=max(1, scale.repeats // 2), jobs=jobs, on_error=on_error,
        ctx=ctx,
    )
    report.failures["figure7"] = len(f7.failures)
    report.figure7 = dict(f7.histogram)
    report.rendered["figure7"] = histogram_figure(f7.histogram)

    tick("Figures 5/6")
    report.figure5 = figure5_logs()
    report.figure6 = figure6_failure_case(repeats=max(4, scale.repeats))
    report.rendered["figure6"] = (
        report.figure6["log"] + f"\nfix rate: {report.figure6['fix_rate']:.2f}"
    )

    tick("§5 extension")
    simfix = run_simfix_extension(
        verilogeval(),
        samples_per_problem=scale.simfix_samples_per_problem,
        sim_samples=scale.sim_samples,
        jobs=jobs,
        on_error=on_error,
        ctx=ctx,
    )
    report.failures["simfix"] = len(simfix.failures)
    report.simfix = {
        difficulty: {"attempted": attempted, "fixed": fixed}
        for difficulty, (attempted, fixed) in simfix.by_difficulty.items()
    }
    report.rendered["simfix"] = simfix.render()

    tick("Table 4 (functional repair)")
    t4 = run_table4(
        verilogeval(),
        samples_per_problem=scale.table4_samples_per_problem,
        sim_samples=scale.sim_samples,
        jobs=jobs,
        on_error=on_error,
        ctx=ctx,
    )
    report.failures["table4"] = len(t4.failures)
    report.table4 = {
        "by_class": {
            bug_class: {
                "attempted": attempted,
                "template_fixed": template_fixed,
                "llm_fixed": llm_fixed,
            }
            for bug_class, (attempted, template_fixed, llm_fixed)
            in sorted(t4.by_class.items())
        },
        "fix_rate": t4.fix_rate,
        "template_fix_rate": t4.template_fix_rate,
        "templates_tried": t4.templates_tried,
        "localization_accuracy": t4.localization_accuracy,
        "digest": t4.digest(),
    }
    report.rendered["table4"] = t4.render()
    return report
