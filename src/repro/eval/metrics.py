"""Evaluation metrics (paper §4.1).

* :func:`fix_rate` -- Eq. 1: the expectation over problems of c/n where
  c is the number of fixed samples out of n trials.
* :func:`pass_at_k` -- Eq. 2: the unbiased pass@k estimator from the
  Codex paper, applied per problem and averaged.
"""

from __future__ import annotations

from math import comb
from typing import Iterable, Sequence


def fix_rate_single(fixed: int, trials: int) -> float:
    """c/n for one problem."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= fixed <= trials:
        raise ValueError(f"fixed={fixed} outside [0, {trials}]")
    return fixed / trials


def fix_rate(per_problem: Iterable[tuple[int, int]]) -> float:
    """Expectation over problems of c/n (Eq. 1).

    ``per_problem`` yields (fixed, trials) pairs."""
    rates = [fix_rate_single(c, n) for c, n in per_problem]
    if not rates:
        return 0.0
    return sum(rates) / len(rates)


def pass_at_k_single(n: int, c: int, k: int) -> float:
    """Unbiased pass@k for one problem (Eq. 2).

    Probability that at least one of k samples drawn without replacement
    from n samples (of which c are correct) is correct."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= c <= n:
        raise ValueError(f"c={c} outside [0, {n}]")
    if k <= 0 or k > n:
        raise ValueError(f"k={k} outside [1, {n}]")
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def pass_at_k(per_problem: Iterable[tuple[int, int]], k: int) -> float:
    """Mean unbiased pass@k over problems.

    ``per_problem`` yields (n_samples, n_correct) pairs."""
    values = [pass_at_k_single(n, c, k) for n, c in per_problem]
    if not values:
        return 0.0
    return sum(values) / len(values)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0
