"""Exception hierarchy shared across the :mod:`repro` library.

Every exception raised deliberately by the library derives from
:class:`ReproError`, so callers can catch a single base type.  Compiler
*diagnostics* (syntax/semantic errors in user Verilog) are **not**
exceptions -- they are data, collected in a
:class:`repro.diagnostics.CompileResult`.  Exceptions are reserved for
misuse of the library itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VerilogInternalError(ReproError):
    """The Verilog front-end reached an inconsistent internal state.

    This indicates a bug in the front-end, never in user code: user-code
    problems are reported as diagnostics instead.
    """


class SimulationError(ReproError):
    """The simulator could not run an elaborated design.

    Raised e.g. for designs with unsupported constructs, combinational
    loops that do not converge, or stimulus that does not match the
    design's ports.
    """


class DatasetError(ReproError):
    """A dataset could not be built or loaded (bad problem id, corpus
    inconsistency, failed error injection)."""


class AgentError(ReproError):
    """An agent was driven incorrectly (e.g. action emitted after Finish)."""


class RetrievalError(ReproError):
    """A RAG database or retriever was misconfigured."""


class LLMError(ReproError):
    """An LLM client failed (bad configuration, missing backend)."""
