"""Exception hierarchy shared across the :mod:`repro` library.

Every exception raised deliberately by the library derives from
:class:`ReproError`, so callers can catch a single base type.  Compiler
*diagnostics* (syntax/semantic errors in user Verilog) are **not**
exceptions -- they are data, collected in a
:class:`repro.diagnostics.CompileResult`.  Exceptions are reserved for
misuse of the library itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VerilogInternalError(ReproError):
    """The Verilog front-end reached an inconsistent internal state.

    This indicates a bug in the front-end, never in user code: user-code
    problems are reported as diagnostics instead.
    """


class ResourceLimitExceeded(ReproError):
    """A cooperative resource budget of the compiler front-end ran out.

    Raised *inside* pipeline stages (see
    :class:`repro.verilog.limits.LimitTracker`) when unwinding via an
    exception is simpler than threading a flag; always caught at the
    :func:`repro.diagnostics.compiler.compile_source` boundary and
    converted into an ordinary ``RESOURCE_LIMIT`` diagnostic.  It never
    escapes the front-end.
    """

    def __init__(self, kind: str, limit: int):
        super().__init__(f"{kind} limit ({limit}) exceeded")
        self.kind = kind
        self.limit = limit


class SimulationError(ReproError):
    """The simulator could not run an elaborated design.

    Raised e.g. for designs with unsupported constructs, combinational
    loops that do not converge, or stimulus that does not match the
    design's ports.
    """


class SimLimitExceeded(SimulationError):
    """A cooperative simulation budget ran out
    (:class:`repro.sim.limits.SimLimits`).

    The simulator-side analogue of :class:`ResourceLimitExceeded`: it
    derives :class:`SimulationError` so every existing handler still
    degrades it into an ordinary failed verdict, while the sandbox
    boundary (:mod:`repro.sim.sandbox`) distinguishes it from genuine
    simulation failures and classifies the outcome as a typed ``limit``
    verdict (vs. ``crashed`` for internal errors).

    ``kind`` names the exhausted budget (``"simulated cycles"``,
    ``"sim events"``, ``"stmt executions"``, ``"trace entries"``,
    ``"trace bytes"``, ``"display lines"``, ``"wall clock"``, ``"settle
    passes"``); ``phase`` says where in the run it fired (``construct``,
    ``cycle``, ``trace``).
    """

    def __init__(
        self,
        kind: str,
        limit: float,
        message: str | None = None,
        phase: str = "",
    ):
        super().__init__(
            message
            if message is not None
            else f"simulation {kind} limit ({limit}) exceeded"
        )
        self.kind = kind
        self.limit = limit
        self.phase = phase


class DatasetError(ReproError):
    """A dataset could not be built or loaded (bad problem id, corpus
    inconsistency, failed error injection)."""


class AgentError(ReproError):
    """An agent was driven incorrectly (e.g. action emitted after Finish)."""


class RetrievalError(ReproError):
    """A RAG database or retriever was misconfigured."""


class LLMError(ReproError):
    """An LLM client failed (bad configuration, missing backend)."""


class TransientError(ReproError):
    """A fault that may clear on retry (network hiccup, rate limit,
    injected chaos).  :mod:`repro.runtime.retry` retries exactly this
    family; everything else propagates immediately."""


class LLMTimeoutError(TransientError, LLMError):
    """A model call exceeded its per-call timeout budget.

    Retryable: timeouts are the canonical transient fault of API-backed
    backends (see :class:`repro.runtime.retry.RetryPolicy`).
    """


class InjectedFault(TransientError):
    """A fault raised deliberately by the chaos harness
    (:mod:`repro.runtime.faults`), never by production code paths."""


class DeadlineExceededError(ReproError):
    """A per-request deadline ran out before the work finished.

    Distinct from :class:`LLMTimeoutError` on purpose: a *per-call*
    budget overrun is a transient backend fault worth retrying, while an
    expired *deadline* means the caller's overall budget is gone -- no
    retry can help, so this is **not** a :class:`TransientError` and the
    retry layer never re-dispatches after it (see
    :func:`repro.runtime.retry.call_with_retry`).  The repair service
    (:mod:`repro.service`) raises it from inside the ReAct loop so an
    over-deadline job stops mid-iteration instead of discovering the
    overrun after completing, and reports it as a typed
    ``deadline_exceeded`` response rather than a backend error.

    ``stage`` names where the deadline fired (e.g. ``"queued"``,
    ``"react-iteration"``, ``"retry-backoff"``).
    """

    def __init__(self, message: str, stage: str = ""):
        super().__init__(message)
        self.stage = stage


class OverloadedError(ReproError):
    """The repair service refused to admit a job (load shedding).

    Raised by the admission controller (:mod:`repro.service.scheduler`)
    and converted by the server into a typed ``overloaded`` HTTP
    response; ``reason`` is the machine-readable shed reason
    (``tenant_queue_full``, ``server_queue_full``, ``tenant_quota``,
    ``breaker_open``, ``draining``).
    """

    def __init__(self, message: str, reason: str = ""):
        super().__init__(message)
        self.reason = reason


class CheckpointError(ReproError):
    """A durable run directory could not be used (manifest mismatch,
    journal clobber without ``--resume``, undecodable journal payload).

    Raised before any trial executes: checkpoint misuse must fail fast,
    never silently discard or overwrite a previous run's journal.
    """


class CircuitOpenError(TransientError):
    """A work unit was skipped because the circuit breaker is open.

    Recorded (never raised through the executor) as the ``error_type``
    of the SKIPPED :class:`repro.runtime.WorkFailure` slots a tripped
    breaker produces.  It derives :class:`TransientError` because the
    condition is expected to clear: a resumed run re-executes skipped
    trials instead of replaying them from the journal.
    """


class RunInterrupted(ReproError):
    """A graceful shutdown stopped an experiment run mid-way.

    Raised by :meth:`repro.runtime.ParallelRunner.map` after the first
    SIGINT/SIGTERM: dispatch stops, in-flight work units drain (and are
    journaled), then this propagates so the caller can exit with a
    resumable checkpoint.  Carries how far the interrupted stage got and
    the signal number (for a faithful ``128 + signum`` exit code).
    """

    def __init__(self, message: str, done: int = 0, total: int = 0,
                 signum: int | None = None):
        super().__init__(message)
        self.done = done
        self.total = total
        self.signum = signum


class RetryExhaustedError(ReproError):
    """A retried call kept failing past its retry budget.

    Carries the attempt count and the last underlying error, so failure
    collectors (``ParallelRunner.map(on_error="collect")``) can report
    the root cause per work unit.
    """

    def __init__(self, message: str, attempts: int, last_error: Exception | None = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error
