"""Command-line interface: ``rtlfixer``.

Subcommands:

* ``fix <file.v>``      -- debug a Verilog file with RTLFixer;
* ``compile <file.v>``  -- show compiler diagnostics (pick a flavour);
* ``dataset <out.json>``-- build the VerilogEval-syntax-equivalent
  dataset and save it as JSON;
* ``report``            -- run the full reproduction report (every
  table/figure), optionally fanned out with ``--jobs`` and made
  durable/resumable with ``--run-dir`` / ``--resume``.  Exit codes:
  0 success, 2 durable-run misuse, 3 failed work units were isolated,
  4 the circuit breaker tripped, 128+signum interrupted (first
  SIGINT/SIGTERM drains and checkpoints; a second aborts hard);
* ``serve``             -- run the repair service: an overload-safe
  asyncio HTTP/JSON front-end with bounded admission, per-tenant
  weighted fairness, per-request deadlines, SSE progress streaming,
  and two-stage graceful drain on SIGTERM (``--run-dir``/``--resume``
  make drained results replayable);
* ``fuzz``              -- fuzz the compiler front-end and the
  simulation sandbox, verifying the never-crash/never-hang invariants
  plus the engine sandbox-differential and cache/chaos transparency
  (``--seed``/``--iterations``).
"""

from __future__ import annotations

import argparse
import sys


def _llm_line(ledger: dict, routing_text: str) -> str:
    """The ``# llm:`` stderr accounting line (fix and report share it)."""
    return (
        f"# llm: pool {routing_text}; {ledger['calls']} call(s), "
        f"{ledger['total_tokens']} tokens (~${ledger['cost_usd']:.4f}); "
        f"escalations={ledger['escalations']} failovers={ledger['failovers']} "
        f"hedges={ledger['hedges']} throttled={ledger['throttled']} "
        f"failures={ledger['failures']}"
    )


def _service_line(snapshot: dict) -> str:
    """The ``# service:`` stderr line (admission/shed/outcome ledger)."""
    shed = ",".join(
        f"{reason}={count}" for reason, count in snapshot["shed"].items()
    ) or "none"
    tenants = ",".join(
        f"{name}:{row['admitted']}/{row['shed']}"
        for name, row in snapshot.get("tenants", {}).items()
    ) or "none"
    return (
        f"# service: admitted={snapshot['admitted']} "
        f"completed={snapshot['completed']} "
        f"shed={snapshot['total_shed']}[{shed}] "
        f"deadline_expired={snapshot['deadline_expired']} "
        f"backend_errors={snapshot['backend_errors']} "
        f"crashed={snapshot['crashed']} replayed={snapshot['replayed']} "
        f"tenants[admitted/shed]={tenants}"
    )


def _cmd_fix(args: argparse.Namespace) -> int:
    import contextlib

    from .core import RTLFixer

    with open(args.file) as f:
        code = f.read()
    fixer = RTLFixer(
        prompting=args.prompting,
        compiler=args.compiler,
        use_rag=not args.no_rag and args.compiler != "simple",
        tier=args.tier,
        seed=args.seed,
        max_retries=args.max_retries,
        step_timeout=args.step_timeout,
        llm_pool=args.llm_pool,
        llm_escalate_after=args.llm_escalate_after,
        llm_hedge=args.llm_hedge,
        sim_limits=args.sim_limits,
    )
    counter = None
    scope = contextlib.nullcontext()
    if args.llm_pool:
        from .runtime import TokenCounter, use_token_counter

        counter = TokenCounter()
        scope = use_token_counter(counter)
    with scope:
        result = fixer.fix(code)
    if counter is not None:
        print(
            _llm_line(counter.as_dict(), fixer.model.routing.describe()),
            file=sys.stderr,
        )
    if args.transcript:
        print(result.transcript.render())
        print()
    if result.success:
        print(f"# fixed in {result.iterations} iteration(s)")
        print(result.final_code)
        return 0
    print("# could not fix; final attempt was:")
    print(result.final_code)
    return 1


def _cmd_compile(args: argparse.Namespace) -> int:
    from .diagnostics import compile_source

    with open(args.file) as f:
        code = f.read()
    result = compile_source(code, name=args.file, flavor=args.compiler)
    if result.ok:
        print("compile OK")
        return 0
    print(result.log)
    return 1


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .dataset import build_syntax_dataset, verilogeval

    dataset = build_syntax_dataset(
        verilogeval(),
        samples_per_problem=args.samples,
        target_size=args.size,
        seed=args.seed,
    )
    dataset.save(args.out)
    stats = dataset.stats
    print(f"wrote {len(dataset)} entries to {args.out}")
    print(
        f"sampled={stats.sampled} failing={stats.failing_kept} "
        f"clusters={stats.clusters}"
    )
    for category, count in dataset.category_histogram().items():
        print(f"  {category}: {count}")
    return 0


def _job_count(text: str) -> int:
    """argparse type for ``--jobs``: a non-negative int (0 = all CPUs)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"must be an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all CPUs), got {value}"
        )
    return value


#: ``report`` exit codes beyond the usual 0/1 (documented in README):
#: misuse of the durable-run machinery (bad --resume, manifest mismatch).
EXIT_CHECKPOINT_MISUSE = 2
#: the run finished but isolated at least one failed work unit.
EXIT_FAILED_UNITS = 3
#: the circuit breaker tripped (trials were skipped fail-fast).
EXIT_BREAKER_TRIPPED = 4


def _cmd_report(args: argparse.Namespace) -> int:
    import signal as _signal

    from .errors import CheckpointError, RunInterrupted
    from .eval.report import ReportScale, run_full_report
    from .runtime import GracefulShutdown, atomic_write_text
    from .sim import set_default_sim_engine, set_default_sim_limits

    if args.sim_engine:
        set_default_sim_engine(args.sim_engine)
    if args.sim_limits is not None:
        # Process-default budgets: every simulation in the run inherits
        # them ambiently (the report's trial keys stay budget-free the
        # way serve's job keys stay deadline-free).
        set_default_sim_limits(args.sim_limits)
    if args.resume and not args.run_dir:
        print("error: --resume requires --run-dir", file=sys.stderr)
        return EXIT_CHECKPOINT_MISUSE
    if args.breaker_threshold > 0 and args.on_error != "collect":
        print(
            "error: --breaker-threshold requires --on-error collect "
            "(skipped trials are collected records, not exceptions)",
            file=sys.stderr,
        )
        return EXIT_CHECKPOINT_MISUSE
    scale = ReportScale(
        dataset_size=args.dataset_size,
        dataset_samples_per_problem=args.dataset_samples,
        repeats=args.repeats,
        n_samples=args.n_samples,
        sim_samples=args.sim_samples,
        include_gpt4=not args.no_gpt4,
        simfix_samples_per_problem=args.simfix_samples,
        table4_samples_per_problem=args.table4_samples,
    )
    try:
        with GracefulShutdown() as shutdown:
            report = run_full_report(
                scale=scale,
                jobs=args.jobs,
                on_error=args.on_error,
                progress=lambda stage: print(f"[{stage}]", file=sys.stderr),
                run_dir=args.run_dir,
                resume=args.resume,
                breaker_threshold=args.breaker_threshold,
                should_stop=shutdown.requested,
                llm_pool=args.llm_pool,
                llm_escalate_after=args.llm_escalate_after,
                llm_hedge=args.llm_hedge,
            )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CHECKPOINT_MISUSE
    except RunInterrupted as exc:
        signum = shutdown.signum or exc.signum or _signal.SIGINT
        hint = (
            f"; resume with: rtlfixer report --run-dir {args.run_dir} --resume"
            if args.run_dir
            else "; pass --run-dir to make interrupted runs resumable"
        )
        print(f"# interrupted: {exc}{hint}", file=sys.stderr)
        return 128 + int(signum)
    if args.json:
        atomic_write_text(args.json, report.to_json())
        print(f"wrote {args.json}")
    else:
        print(report.to_markdown())
    stats = report.cache
    print(
        f"# compile cache: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['evictions']} evictions, "
        f"{stats['compiles_avoided']} compiles avoided "
        f"(hit rate {stats['hit_rate']:.1%})",
        file=sys.stderr,
    )
    pipe = report.pipeline
    print(
        f"# pipeline: {pipe['compiles']} session compiles, "
        f"{sum(pipe['stage_hits'].values())} stage hits, "
        f"{sum(pipe['stage_misses'].values())} stage misses "
        f"(hit rate {pipe['hit_rate']:.1%}), "
        f"{pipe['tokens_reused']} tokens and "
        f"{pipe['segments_reused']} parse segments reused incrementally",
        file=sys.stderr,
    )
    sim = report.sim
    print(
        f"# sim: engine={sim['engine']}, {sim['hits']} verdict-cache hits, "
        f"{sim['misses']} misses, {sim['simulations_avoided']} testbench "
        f"runs avoided (hit rate {sim['hit_rate']:.1%}), "
        f"limits={sim.get('limit_verdicts', 0)} "
        f"crashed={sim.get('crashed_verdicts', 0)} "
        f"watchdog={sim.get('watchdog_fires', 0)} "
        f"sim-deadlines={sim.get('deadline_fires', 0)}",
        file=sys.stderr,
    )
    if report.llm:
        print(_llm_line(report.llm, report.llm["routing"]), file=sys.stderr)
    if report.service:
        print(_service_line(report.service), file=sys.stderr)
    if args.run_dir:
        print(
            f"# durable run: {report.resume.get('replayed', 0)} trial(s) "
            f"replayed from the journal, {report.resume.get('executed', 0)} "
            f"executed ({args.run_dir})",
            file=sys.stderr,
        )
    if report.breaker_tripped:
        print(
            f"# circuit breaker TRIPPED {report.breaker['trips']} time(s): "
            f"{report.breaker['skipped']} trial(s) skipped fail-fast "
            f"(final state: {report.breaker['state']})",
            file=sys.stderr,
        )
    if args.on_error == "collect":
        detail = ", ".join(f"{k}={v}" for k, v in report.failures.items())
        print(
            f"# failures: {report.failed_units} work unit(s) isolated "
            f"({detail})",
            file=sys.stderr,
        )
    if report.breaker_tripped:
        return EXIT_BREAKER_TRIPPED
    if report.failed_units:
        return EXIT_FAILED_UNITS
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.scheduler import SchedulerConfig
    from .service.server import RepairServer, ServerConfig

    weights: dict[str, float] = {}
    for item in args.weight or []:
        name, sep, value = item.partition("=")
        if not sep or not name:
            print(f"error: --weight wants TENANT=WEIGHT, got {item!r}",
                  file=sys.stderr)
            return 2
        try:
            weights[name] = float(value)
        except ValueError:
            print(f"error: --weight {item!r}: weight must be a number",
                  file=sys.stderr)
            return 2
    chaos = None
    if args.chaos_outage:
        start_text, sep, count_text = args.chaos_outage.partition(":")
        try:
            if not sep:
                raise ValueError
            chaos = (int(start_text), int(count_text))
        except ValueError:
            print(
                f"error: --chaos-outage wants START:COUNT, got "
                f"{args.chaos_outage!r}",
                file=sys.stderr,
            )
            return 2
    from .errors import CheckpointError

    if args.sim_limits is not None:
        # Serve-side sandbox budgets are a process default, not part of
        # per-job configs: job keys stay budget-free so journal replay
        # works across budget changes (the deadline rationale).
        from .sim import set_default_sim_limits

        set_default_sim_limits(args.sim_limits)
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            scheduler=SchedulerConfig(
                capacity=args.capacity,
                max_queue_per_tenant=args.queue_per_tenant,
                max_queued=args.max_queued,
                tenant_rate=args.tenant_rate,
                tenant_burst=args.tenant_burst,
                weights=weights,
                default_deadline_s=args.default_deadline,
            ),
            breaker_threshold=args.breaker_threshold,
            probe_interval=args.probe_interval,
            run_dir=args.run_dir,
            resume=args.resume,
            max_retries=args.max_retries,
            step_timeout=args.step_timeout,
            llm_pool=args.llm_pool,
            work_delay=args.work_delay,
            chaos_outage=chaos,
        )
        server = RepairServer(config)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CHECKPOINT_MISUSE
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return server.run()


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .runtime.faults import FaultInjector, FaultSpec
    from .runtime.fuzz import FuzzConfig, run_fuzz

    injector = None
    if args.chaos_rate > 0:
        injector = FaultInjector(
            seed=args.seed,
            compiler=FaultSpec(rate=args.chaos_rate, kind="garbage"),
            # The same rate drives the simulator seam, so the fuzzer's
            # sim-chaos-transparency invariant is exercised in one run.
            sim=FaultSpec(rate=args.chaos_rate, kind="garbage"),
        )
    report = run_fuzz(
        FuzzConfig(
            seed=args.seed,
            iterations=args.iterations,
            per_input_budget=args.per_input_budget,
            injector=injector,
        )
    )
    print(report.summary())
    return 0 if report.ok else 1


def _sim_limits_spec(text: str):
    """argparse type for ``--sim-limits``: a parsed SimLimits."""
    from .sim.limits import parse_sim_limits

    try:
        return parse_sim_limits(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_sim_limits_arg(parser: argparse.ArgumentParser) -> None:
    """The ``--sim-limits`` sandbox flag, shared by fix/report/serve."""
    parser.add_argument(
        "--sim-limits", type=_sim_limits_spec, default=None, metavar="SPEC",
        help="simulation sandbox budgets: 'default', 'fuzz', or "
        "comma-separated key=value overrides (keys: cycles, events, "
        "stmts, trace-entries, trace-bytes, display, wall; e.g. "
        "'cycles=2000,wall=5').  Budget overflows come back as typed "
        "limit verdicts instead of hangs or crashes",
    )


def _add_llm_pool_args(parser: argparse.ArgumentParser) -> None:
    """The ``--llm-*`` pool flags, shared by ``fix`` and ``report``."""
    parser.add_argument(
        "--llm-pool", metavar="SPEC", default=None,
        help="route model calls through a backend pool: comma-separated "
        "name=tier escalation ladder, weakest first (e.g. "
        "'cheap=gpt-3.5-sim,strong=gpt-4-sim'); *-sim tiers run the "
        "offline simulated backend, other names the OpenAI API "
        "(requires OPENAI_API_KEY).  Accounting is printed as a "
        "'# llm:' line on stderr",
    )
    parser.add_argument(
        "--llm-escalate-after", type=int, default=0, metavar="K",
        help="climb one pool rung after K failed agent iterations (the "
        "paper's gpt-3.5 -> gpt-4 axis as a runtime policy; 0 = never "
        "escalate, outage failover still applies)",
    )
    parser.add_argument(
        "--llm-hedge", type=float, default=0.0, metavar="RATE",
        help="seeded fraction of pool calls duplicated to the next rung "
        "for tail latency; the primary's reply is always preferred, so "
        "results never change (0 disables)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the rtlfixer argument parser."""
    parser = argparse.ArgumentParser(
        prog="rtlfixer",
        description="RTLFixer: automatic Verilog syntax-error fixing "
        "(DAC 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fix = sub.add_parser("fix", help="debug a Verilog file")
    fix.add_argument("file")
    fix.add_argument("--prompting", choices=["react", "oneshot"], default="react")
    fix.add_argument("--compiler", choices=["simple", "iverilog", "quartus"],
                     default="quartus")
    fix.add_argument("--no-rag", action="store_true")
    fix.add_argument("--tier", default="gpt-3.5-sim")
    fix.add_argument("--seed", type=int, default=0)
    fix.add_argument("--transcript", action="store_true",
                     help="print the ReAct Thought/Action/Observation trace")
    fix.add_argument(
        "--max-retries", type=int, default=2,
        help="bounded retries for transient model faults, with "
        "deterministic exponential backoff (0 disables the retry layer)",
    )
    fix.add_argument(
        "--step-timeout", type=float, default=None, metavar="SECONDS",
        help="per-model-call timeout budget; over-budget calls count as "
        "retryable timeouts (default: unlimited)",
    )
    _add_sim_limits_arg(fix)
    _add_llm_pool_args(fix)
    fix.set_defaults(func=_cmd_fix)

    comp = sub.add_parser("compile", help="compile and show diagnostics")
    comp.add_argument("file")
    comp.add_argument("--compiler", choices=["simple", "iverilog", "quartus"],
                      default="iverilog")
    comp.set_defaults(func=_cmd_compile)

    ds = sub.add_parser("dataset", help="build the VerilogEval-syntax dataset")
    ds.add_argument("out")
    ds.add_argument("--samples", type=int, default=20)
    ds.add_argument("--size", type=int, default=212)
    ds.add_argument("--seed", type=int, default=0)
    ds.set_defaults(func=_cmd_dataset)

    rep = sub.add_parser(
        "report",
        help="run the full reproduction report (all tables and figures)",
    )
    rep.add_argument(
        "--jobs", type=_job_count, default=1,
        help="parallel workers for experiment fan-out "
        "(1 = serial, 0 = all CPUs; results are identical at any job count)",
    )
    rep.add_argument(
        "--on-error", choices=["raise", "collect"], default="raise",
        help="failure handling for experiment work units: 'raise' aborts "
        "on the first failure (pending units are cancelled), 'collect' "
        "isolates failed units as per-unit failure records and finishes "
        "the run (counts are reported per stage)",
    )
    rep.add_argument("--json", metavar="OUT",
                     help="write the report as JSON here instead of markdown "
                     "(written atomically: write-temp-then-rename)")
    rep.add_argument(
        "--run-dir", metavar="DIR", default=None,
        help="make the run durable: journal every completed trial into "
        "DIR (crash-safe, fsync'd) and write DIR/report.json on success; "
        "a killed run can be continued with --resume",
    )
    rep.add_argument(
        "--resume", action="store_true",
        help="resume a previous --run-dir run: replay journaled trials "
        "and execute only the remainder (the final report is "
        "byte-identical to an uninterrupted run)",
    )
    rep.add_argument(
        "--breaker-threshold", type=int, default=0, metavar="N",
        help="arm a circuit breaker: after N consecutive non-transient "
        "trial failures the rest of the run is skipped fail-fast "
        "(requires --on-error collect; 0 disables; exit code 4 when "
        "tripped)",
    )
    rep.add_argument("--dataset-size", type=int, default=212)
    rep.add_argument("--dataset-samples", type=int, default=20)
    rep.add_argument("--repeats", type=int, default=3)
    rep.add_argument("--n-samples", type=int, default=10)
    rep.add_argument("--sim-samples", type=int, default=24)
    rep.add_argument("--simfix-samples", type=int, default=2)
    rep.add_argument("--table4-samples", type=int, default=2,
                     help="logic-buggy samples per problem for the Table-4 "
                     "functional-repair workload")
    rep.add_argument("--no-gpt4", action="store_true",
                     help="skip the GPT-4 ablation rows")
    rep.add_argument(
        "--sim-engine", choices=["compiled", "interp"], default=None,
        help="simulation engine for all testbench runs: 'compiled' "
        "(closure-lowered two-state fast path, the default) or 'interp' "
        "(the reference AST-walking 4-state interpreter); both produce "
        "bit-identical verdicts",
    )
    _add_sim_limits_arg(rep)
    _add_llm_pool_args(rep)
    rep.set_defaults(func=_cmd_report)

    srv = sub.add_parser(
        "serve",
        help="run the repair service: an overload-safe async HTTP/JSON "
        "front-end with admission control, per-request deadlines, SSE "
        "progress streaming and graceful drain on SIGTERM",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8357,
                     help="listen port (0 = pick a free port; the bound "
                     "address is printed as a 'SERVING http://...' line)")
    srv.add_argument("--capacity", type=int, default=2, metavar="N",
                     help="concurrent repair workers (the in-flight limit)")
    srv.add_argument("--queue-per-tenant", type=int, default=8, metavar="N",
                     help="bounded per-tenant queue depth; submissions "
                     "beyond it are shed with reason tenant_queue_full")
    srv.add_argument("--max-queued", type=int, default=64, metavar="N",
                     help="server-wide bound on total queued jobs")
    srv.add_argument("--tenant-rate", type=float, default=0.0, metavar="RPS",
                     help="per-tenant admission quota in jobs/second "
                     "(token bucket; 0 = unlimited)")
    srv.add_argument("--tenant-burst", type=int, default=8, metavar="N",
                     help="per-tenant quota burst (bucket capacity)")
    srv.add_argument("--weight", action="append", metavar="TENANT=W",
                     help="scheduling weight for a tenant (repeatable); "
                     "under contention a weight-2 tenant drains twice as "
                     "fast as a weight-1 tenant (default weight: 1)")
    srv.add_argument("--default-deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="deadline applied to requests that do not set "
                     "deadline_s (default: none)")
    srv.add_argument("--breaker-threshold", type=int, default=5, metavar="N",
                     help="consecutive backend failures that trip the "
                     "circuit breaker; while open, submissions shed with "
                     "reason breaker_open (0 disables)")
    srv.add_argument("--probe-interval", type=int, default=3, metavar="N",
                     help="every Nth breaker denial converts into a "
                     "half-open heal probe")
    srv.add_argument("--run-dir", metavar="DIR", default=None,
                     help="journal every terminal result into DIR; a "
                     "drained/killed server restarted with --resume "
                     "answers resubmitted jobs from the journal with "
                     "digest-identical results")
    srv.add_argument("--resume", action="store_true",
                     help="continue an existing --run-dir journal")
    srv.add_argument("--max-retries", type=int, default=2,
                     help="per-job retry budget for transient backend "
                     "faults")
    srv.add_argument("--step-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-model-call timeout applied to every job")
    srv.add_argument("--llm-pool", metavar="SPEC", default=None,
                     help="LLM backend pool spec applied to every job "
                     "(same syntax as fix/report --llm-pool)")
    srv.add_argument("--work-delay", type=float, default=0.0,
                     metavar="SECONDS",
                     help="artificial deadline-aware work per job; makes "
                     "overload/drain drills deterministic (0 disables)")
    srv.add_argument("--chaos-outage", metavar="START:COUNT", default=None,
                     help="chaos drill: dispatched jobs [START, "
                     "START+COUNT) fail as a backend outage; the service "
                     "must shed, trip the breaker, and heal via a probe")
    _add_sim_limits_arg(srv)
    srv.set_defaults(func=_cmd_serve)

    fz = sub.add_parser(
        "fuzz",
        help="fuzz the compiler front-end (never-crash/never-hang check)",
    )
    fz.add_argument("--seed", type=int, default=0,
                    help="fuzzing seed; same seed => identical mutation "
                    "sequence and verdicts")
    fz.add_argument("--iterations", type=int, default=200,
                    help="number of fuzzed inputs to compile")
    fz.add_argument(
        "--per-input-budget", type=float, default=2.0, metavar="SECONDS",
        help="wall-clock ceiling per fuzzed input; slower counts as a hang",
    )
    fz.add_argument(
        "--chaos-rate", type=float, default=0.0, metavar="RATE",
        help="also splice chaos-harness garbage into this fraction of "
        "inputs and draw simulator-seam faults at the same rate "
        "(0 disables the fault-injection integration)",
    )
    fz.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
