"""Circuit breaker for persistent LLM / compiler outages.

The retry layer (:mod:`repro.runtime.retry`) absorbs *transient* faults:
a timeout or rate-limit clears after a bounded backoff.  A *persistent*
outage -- an API key revoked mid-run, a backend hard-down, a compiler
service returning garbage for every request -- looks different: every
trial burns its full retry budget and still fails.  On a
hundreds-of-trials report run that turns a 5-minute outage into hours of
futile backoff.

:class:`CircuitBreaker` is the complementary mechanism, one state
machine per run:

* **closed** (normal): trials flow; consecutive *counted* failures are
  tallied, any success resets the tally;
* **open** (tripped, after ``failure_threshold`` consecutive counted
  failures): :meth:`allow` denies trials, which the executor records as
  journaled SKIPPED :class:`~repro.runtime.WorkFailure` slots -- the run
  finishes fast instead of grinding through the outage;
* **half-open** (probing): after ``probe_interval`` denials one probe
  trial is let through; success closes the breaker (the outage cleared,
  the run recovers), failure re-opens it.

Composition with retries: by the time a failure reaches the executor it
is either a :class:`~repro.errors.RetryExhaustedError` (the retry layer
gave up -- counted) or a non-transient bug (counted).  A *bare*
:class:`~repro.errors.TransientError` is not counted -- with retries
disabled a lone hiccup must not march the breaker toward a trip; enable
the retry layer so persistent transients surface as exhaustion.

Skipped trials are journaled with a ``skipped`` marker, never replayed:
a resumed run re-executes them, because the outage that caused the skip
is expected to have cleared.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TransientError

#: The three breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Trip after N consecutive counted failures; fail the rest fast.

    >>> breaker = CircuitBreaker(failure_threshold=3)
    >>> breaker.allow()            # closed: dispatch the trial
    >>> breaker.record_failure(exc)  # tally (or ignore a bare transient)
    >>> breaker.state
    """

    def __init__(
        self, failure_threshold: int = 5, probe_interval: Optional[int] = 25
    ):
        """``failure_threshold`` consecutive counted failures trip the
        breaker; while open, every ``probe_interval``-th denied trial is
        let through as a half-open probe (``None`` disables probing --
        once open, open for the rest of the run)."""
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if probe_interval is not None and probe_interval < 1:
            raise ValueError(
                f"probe_interval must be >= 1 (or None), got {probe_interval}"
            )
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self.state = CLOSED
        self.consecutive_failures = 0
        #: How many times the breaker tripped (closed/half-open -> open).
        self.trips = 0
        #: Trials denied (skipped) while open.
        self.skipped = 0
        self._denied_since_open = 0

    @staticmethod
    def counts(exc: BaseException) -> bool:
        """Whether a failure participates in the consecutive tally.

        Everything counts except a *bare* transient fault
        (:class:`~repro.errors.TransientError` and subclasses):
        transients are the retry layer's job, and exhausted retries
        surface as :class:`~repro.errors.RetryExhaustedError`, which is
        not transient and does count.
        """
        return not isinstance(exc, TransientError)

    def allow(self) -> bool:
        """Whether the next trial may dispatch (False = skip it).

        While open, denials are tallied; every ``probe_interval``-th
        denial converts into a half-open probe instead.  While a probe
        is in flight (half-open) all other trials are denied.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and self.probe_interval is not None:
            self._denied_since_open += 1
            if self._denied_since_open >= self.probe_interval:
                self.state = HALF_OPEN
                return True
        self.skipped += 1
        return False

    def record_success(self) -> None:
        """A trial succeeded: reset the tally, close the breaker."""
        self.state = CLOSED
        self.consecutive_failures = 0
        self._denied_since_open = 0

    def record_failure(self, exc: Optional[BaseException] = None) -> None:
        """A trial failed; tally it unless it is an uncounted transient.

        A half-open probe failure re-opens immediately; in the closed
        state the ``failure_threshold``-th consecutive counted failure
        trips the breaker.
        """
        if exc is not None and not self.counts(exc):
            return
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._trip()
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        """Transition to open and start a fresh denial tally."""
        self.state = OPEN
        self.trips += 1
        self._denied_since_open = 0

    @property
    def tripped(self) -> bool:
        """Whether the breaker ever tripped during this run."""
        return self.trips > 0

    def snapshot(self) -> dict:
        """JSON-friendly telemetry (surfaced by ``run_full_report``)."""
        return {
            "state": self.state,
            "trips": self.trips,
            "skipped": self.skipped,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
        }
