"""Circuit breaker for persistent LLM / compiler outages.

The retry layer (:mod:`repro.runtime.retry`) absorbs *transient* faults:
a timeout or rate-limit clears after a bounded backoff.  A *persistent*
outage -- an API key revoked mid-run, a backend hard-down, a compiler
service returning garbage for every request -- looks different: every
trial burns its full retry budget and still fails.  On a
hundreds-of-trials report run that turns a 5-minute outage into hours of
futile backoff.

:class:`CircuitBreaker` is the complementary mechanism, one state
machine per run:

* **closed** (normal): trials flow; consecutive *counted* failures are
  tallied, any success resets the tally;
* **open** (tripped, after ``failure_threshold`` consecutive counted
  failures): :meth:`allow` denies trials, which the executor records as
  journaled SKIPPED :class:`~repro.runtime.WorkFailure` slots -- the run
  finishes fast instead of grinding through the outage;
* **half-open** (probing): after ``probe_interval`` denials one probe
  trial is let through; success closes the breaker (the outage cleared,
  the run recovers), failure re-opens it.  *Any* probe failure settles
  the state -- even an uncounted bare transient re-opens the breaker,
  because a probe that leaves the breaker half-open forever would
  starve dispatch.  Parallel executors tell the breaker which recorded
  outcome is the probe's (``probe=``): outcomes from other units that
  were already in flight when the probe dispatched only adjust the
  failure tally, never transition the state.

Composition with retries: by the time a failure reaches the executor it
is either a :class:`~repro.errors.RetryExhaustedError` (the retry layer
gave up -- counted) or a non-transient bug (counted).  A *bare*
:class:`~repro.errors.TransientError` is not counted -- with retries
disabled a lone hiccup must not march the breaker toward a trip; enable
the retry layer so persistent transients surface as exhaustion.

Skipped trials are journaled with a ``skipped`` marker, never replayed:
a resumed run re-executes them (like journaled real failures), because
the outage that caused the skip is expected to have cleared.

Concurrency: the breaker was built for the serial dispatch loop in
:mod:`repro.runtime.executor`, but the repair service
(:mod:`repro.service`) drives it from many concurrent handlers.  All
state transitions are therefore guarded by a reentrant lock, and
:meth:`admit` offers the *atomic* allow-and-sample-probe operation the
concurrent callers need -- the executor's two-step ``allow()`` /
``probing`` dance is safe only because its dispatch loop is serial;
two concurrent handlers interleaving it could both believe they hold
the half-open probe (double-dispatch) or lose a trip.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..errors import TransientError

#: The three breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Trip after N consecutive counted failures; fail the rest fast.

    >>> breaker = CircuitBreaker(failure_threshold=3)
    >>> breaker.allow()            # closed: dispatch the trial
    >>> breaker.record_failure(exc)  # tally (or ignore a bare transient)
    >>> breaker.state
    """

    def __init__(
        self, failure_threshold: int = 5, probe_interval: Optional[int] = 25
    ):
        """``failure_threshold`` consecutive counted failures trip the
        breaker; while open, every ``probe_interval``-th denied trial is
        let through as a half-open probe (``None`` disables probing --
        once open, open for the rest of the run)."""
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if probe_interval is not None and probe_interval < 1:
            raise ValueError(
                f"probe_interval must be >= 1 (or None), got {probe_interval}"
            )
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self.state = CLOSED
        self.consecutive_failures = 0
        #: How many times the breaker tripped (closed/half-open -> open).
        self.trips = 0
        #: Trials denied (skipped) while open.
        self.skipped = 0
        self._denied_since_open = 0
        self._probe_outstanding = False
        # Reentrant so record_failure may call _trip while holding it;
        # guards every state transition against concurrent handlers.
        self._lock = threading.RLock()

    @staticmethod
    def counts(exc: BaseException) -> bool:
        """Whether a failure participates in the consecutive tally.

        Everything counts except a *bare* transient fault
        (:class:`~repro.errors.TransientError` and subclasses):
        transients are the retry layer's job, and exhausted retries
        surface as :class:`~repro.errors.RetryExhaustedError`, which is
        not transient and does count.
        """
        return not isinstance(exc, TransientError)

    def allow(self) -> bool:
        """Whether the next trial may dispatch (False = skip it).

        While open, denials are tallied; every ``probe_interval``-th
        denial converts into a half-open probe instead.  While a probe
        is in flight (half-open) all other trials are denied.

        Serial callers only: concurrent callers must use :meth:`admit`,
        which also reports *atomically* whether the admitted unit is
        the probe (sampling :attr:`probing` after ``allow`` returns is
        racy under concurrency).
        """
        allowed, _ = self.admit()
        return allowed

    def admit(self) -> tuple[bool, bool]:
        """Atomic dispatch decision: ``(allowed, is_probe)``.

        Equivalent to :meth:`allow` plus sampling :attr:`probing`, but
        as one locked transition, so two concurrent handlers can never
        both conclude they hold the half-open probe.  Callers that
        receive ``is_probe=True`` **must** settle the probe by passing
        ``probe=True`` to exactly one ``record_*`` call, or the breaker
        stays half-open and starves dispatch.
        """
        with self._lock:
            if self.state == CLOSED:
                return True, False
            if self.state == OPEN and self.probe_interval is not None:
                self._denied_since_open += 1
                if self._denied_since_open >= self.probe_interval:
                    self.state = HALF_OPEN
                    self._probe_outstanding = True
                    return True, True
            self.skipped += 1
            return False, False

    @property
    def probing(self) -> bool:
        """True while a half-open probe is dispatched but not yet
        recorded.  Executors sample this right after :meth:`allow`
        returns True to learn whether the unit they are about to run is
        the probe, and pass that back via ``probe=`` when recording."""
        with self._lock:
            return self.state == HALF_OPEN and self._probe_outstanding

    def record_success(self, probe: Optional[bool] = None) -> None:
        """A trial succeeded: reset the tally; close the breaker.

        ``probe`` marks whether this outcome belongs to the half-open
        probe (``None`` infers it from the state -- correct for serial
        callers, where at most one unit is ever in flight).  While
        half-open, only the probe's success closes the breaker; a
        straggler success from a unit dispatched before the trip resets
        the failure tally but leaves the probe to settle the state.
        """
        with self._lock:
            if probe is None:
                probe = self.state == HALF_OPEN
            self.consecutive_failures = 0
            if self.state == HALF_OPEN and not probe:
                return
            self.state = CLOSED
            self._probe_outstanding = False
            self._denied_since_open = 0

    def record_failure(
        self, exc: Optional[BaseException] = None,
        probe: Optional[bool] = None,
    ) -> None:
        """A trial failed; tally it unless it is an uncounted transient.

        While half-open, *only the probe's* failure settles the state,
        and it always does: any probe failure -- even an uncounted bare
        transient -- re-opens the breaker (a probe must never leave the
        breaker stuck half-open, which would starve dispatch forever).
        Failures from other in-flight units merely adjust the tally.
        In the closed state the ``failure_threshold``-th consecutive
        counted failure trips the breaker.
        """
        with self._lock:
            if probe is None:
                probe = self.state == HALF_OPEN
            counted = exc is None or self.counts(exc)
            if self.state == HALF_OPEN and probe:
                if counted:
                    self.consecutive_failures += 1
                self._trip()
                return
            if not counted:
                return
            self.consecutive_failures += 1
            if (
                self.state == CLOSED
                and self.consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        """Transition to open and start a fresh denial tally (callers
        hold the lock)."""
        self.state = OPEN
        self.trips += 1
        self._denied_since_open = 0
        self._probe_outstanding = False

    @property
    def tripped(self) -> bool:
        """Whether the breaker ever tripped during this run."""
        return self.trips > 0

    def snapshot(self) -> dict:
        """JSON-friendly telemetry (surfaced by ``run_full_report``)."""
        with self._lock:
            return {
                "state": self.state,
                "trips": self.trips,
                "skipped": self.skipped,
                "consecutive_failures": self.consecutive_failures,
                "failure_threshold": self.failure_threshold,
            }

    def __getstate__(self) -> dict:
        """Pickle without the lock (a breaker crossing into a process
        worker starts with a fresh one)."""
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        """Restore and re-create the lock."""
        self.__dict__.update(state)
        self._lock = threading.RLock()
