"""Atomic file persistence for run-directory artifacts.

Every artifact a durable run writes -- the final report JSON, the
checkpoint manifest, recovered journal segments -- must never be
observable in a torn state: a SIGKILL between ``open(..., "w")`` and the
final ``write`` must leave either the old file or the new one, never a
prefix.  The classic recipe is write-to-temp-then-:func:`os.replace`
(rename is atomic on POSIX within one filesystem), with ``fsync`` on the
temp file before the rename and on the directory after it so the rename
itself survives a power loss.

:func:`atomic_write_text` / :func:`atomic_write_json` are the shared
helpers the rest of the runtime (and the CLI's ``--json`` report write)
build on.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def fsync_directory(path: str) -> None:
    """Flush a directory entry to disk (best-effort).

    After an :func:`os.replace` the *data* is durable but the rename
    lives in the directory; syncing the directory fd makes the rename
    itself crash-safe.  Platforms that cannot open directories simply
    skip this (the write is still atomic, just not power-loss-durable).
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: str, text: str, encoding: str = "utf-8", fsync: bool = True
) -> None:
    """Write ``text`` to ``path`` atomically (write-temp-then-replace).

    The temp file lives in the destination directory (``os.replace``
    must not cross filesystems) and is removed on any failure, so an
    interrupted write leaves no debris and never a torn ``path``.
    ``fsync=False`` skips the durability syncs (tests, throwaway dirs).
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(directory)


def atomic_write_json(
    path: str, payload: Any, indent: int = 2, fsync: bool = True
) -> None:
    """Serialize ``payload`` as JSON and write it atomically."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n",
        fsync=fsync,
    )
